#!/usr/bin/env python3
"""Parameterized verification of finite-state protocols (Appendix A).

Algorithm 6 model-checks the counter abstraction ``(T, k)`` of a
finite-state thread with growing ``k``: short counterexamples are genuine,
long ones trigger a counter refinement, and a safe verdict at any ``k``
covers unboundedly many threads.  This example runs it on a test-and-set
mutex, a broken (non-atomic) variant, and a two-phase handshake.

Run:  python examples/parametric_protocols.py
"""

from repro import lower_source
from repro.parametric import (
    FiniteThread,
    mutual_exclusion_error,
    parameterized_verify,
    race_error,
)

MUTEX = """
global int lk;
thread main {
  while (1) {
    atomic { assume(lk == 0); lk = 1; }   // acquire (atomic test-and-set)
    skip;                                  // critical section
    lk = 0;                                // release
  }
}
"""

BROKEN_MUTEX = MUTEX.replace(
    "atomic { assume(lk == 0); lk = 1; }", "assume(lk == 0); lk = 1;"
)

HANDSHAKE = """
global int phase;
thread main {
  while (1) {
    atomic { assume(phase == 0); phase = 1; }   // claim
    atomic { assume(phase == 1); phase = 2; }   // work
    phase = 0;                                   // release
  }
}
"""


def verify_mutex(name: str, source: str) -> None:
    cfa = lower_source(source)
    thread = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    critical = {e.dst for e in cfa.edges if str(e.op) == "lk := 1"}
    result = parameterized_verify(
        thread, mutual_exclusion_error(thread, critical)
    )
    if result.safe:
        print(f"{name}: mutual exclusion holds for ANY number of threads "
              f"(proved at counter bound k={result.k})")
    else:
        print(f"{name}: VIOLATED -- genuine witness at k={result.k}:")
        for state in result.trace:
            print(f"    {state}")


def verify_handshake() -> None:
    cfa = lower_source(HANDSHAKE)
    thread = FiniteThread.from_cfa(cfa, {"phase": [0, 1, 2]})
    # Race question: can two threads write `phase` outside atomic sections
    # simultaneously?
    writes = {
        q
        for q in cfa.locations
        if cfa.may_write(q, "phase") and not cfa.is_atomic(q)
    }
    result = parameterized_verify(thread, race_error(thread, writes, writes))
    verdict = "race-free" if result.safe else "RACY"
    print(f"handshake: non-atomic phase writes are {verdict} (k={result.k})")


def main() -> None:
    verify_mutex("test-and-set mutex", MUTEX)
    verify_mutex("broken mutex (non-atomic acquire)", BROKEN_MUTEX)
    verify_handshake()


if __name__ == "__main__":
    main()
