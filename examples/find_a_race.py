#!/usr/bin/env python3
"""Find a genuine race and replay its witness (the sense/tosPort bug).

The paper's Section 6 recounts how CIRC *found* a real race in the sense
application: an ADC interrupt could reset the protecting state variable
between another thread's acquisition and its write to ``tosPort``.  This
example reproduces the discovery on the buggy model, validates the
counterexample by concrete replay, then verifies the fixed model.

Run:  python examples/find_a_race.py
"""

from repro import MultiProgram, check_race, replay
from repro.nesc import benchmark


def show_witness(result, cfa) -> None:
    print(f"  race with {result.n_threads} threads:")
    program = MultiProgram.symmetric(cfa, result.n_threads)
    ok, states = replay(program, result.steps, race_on=result.variable)
    assert ok, "witness must replay concretely"
    for (tid, edge), state in zip(result.steps, states[1:]):
        print(f"    T{tid}: {str(edge.op):28s} -> {state}")
    print(f"  final state is a race on {result.variable!r}: both accesses")
    print("  are enabled with no atomic section active.")


def main() -> None:
    buggy = benchmark("sense/tosPort_buggy")
    print("checking the buggy sense model (ADC interrupt always enabled)...")
    cfa = buggy.app.cfa()
    result = check_race(cfa, "tosPort")
    assert not result.safe, "the buggy model must race"
    show_witness(result, cfa)

    print()
    print("checking the fixed model (interrupt enabled only after the write)...")
    fixed = benchmark("sense/tosPort")
    result2 = check_race(fixed.app.cfa(), "tosPort")
    assert result2.safe
    print(
        f"  SAFE: {len(result2.predicates)} predicates, "
        f"context ACFA size {result2.context.size}"
    )


if __name__ == "__main__":
    main()
