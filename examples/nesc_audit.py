#!/usr/bin/env python3
"""Audit a TinyOS-style application the way the paper did (Section 6).

Pipeline:

1. run the nesC compiler's flow analysis on each application model --
   the variables it flags are the ones programmers annotate ``norace``;
2. run the Eraser-style lockset discipline for a second opinion;
3. feed every flagged variable to CIRC, which either *proves* the
   hand-rolled synchronization correct or produces a concrete interleaved
   race.

Run:  python examples/nesc_audit.py [app]     (app: secureTosBase | surge | sense)
"""

import sys
import time

from repro import check_race
from repro.baselines import flow_analysis, lockset_analysis
from repro.nesc import benchmarks_for


def audit(app_name: str) -> None:
    print(f"=== auditing {app_name} ===")
    rows = benchmarks_for(app_name)
    if not rows:
        print("unknown application; try secureTosBase, surge or sense")
        return
    for bench in rows:
        var = bench.variable.replace("_buggy", "")
        cfa = bench.app.cfa()
        flow = flow_analysis(bench.app)
        lock = lockset_analysis(cfa)
        flagged = flow.warns_on(var) or lock.warns_on(var)
        tag = []
        if flow.warns_on(var):
            tag.append("flow")
        if lock.warns_on(var):
            tag.append("lockset")
        print(f"\n{bench.key}: flagged by {tag or 'nobody'}")
        if bench.note:
            print(f"  idiom: {bench.note}")
        if not flagged:
            print("  baselines are satisfied; skipping CIRC")
            continue
        start = time.perf_counter()
        result = check_race(cfa, var)
        elapsed = time.perf_counter() - start
        if result.safe:
            print(
                f"  CIRC: SAFE in {elapsed:.1f}s "
                f"({len(result.predicates)} predicates, "
                f"ACFA size {result.context.size}) "
                "-> the baseline warning is a false positive"
            )
        else:
            print(f"  CIRC: RACE in {elapsed:.1f}s -- witness:")
            for tid, edge in result.steps:
                print(f"      T{tid}: {edge.op}")


def main() -> None:
    apps = sys.argv[1:] or ["secureTosBase", "surge", "sense"]
    for app in apps:
        audit(app)


if __name__ == "__main__":
    main()
