#!/usr/bin/env python3
"""Quickstart: prove the paper's Figure 1 program race-free.

The program guards a shared counter ``x`` with a *test-and-set state
variable* instead of a lock -- the synchronization idiom that defeats
lockset-based and type-based race checkers.  CIRC infers a context model
(predicates + ACFA + counters) that proves the absence of races for
arbitrarily many threads.

Run:  python examples/quickstart.py
"""

from repro import check_race, lower_source
from repro.baselines.lockset import lockset_analysis
from repro.smt.terms import pretty

SOURCE = """
global int x, state;

thread main {
  local int old;
  while (1) {
    atomic {                      // nesC atomic section
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {               // this thread won the test-and-set
      x = x + 1;                  // ... so it may touch x
      state = 0;                  // release
    }
  }
}
"""


def main() -> None:
    cfa = lower_source(SOURCE)
    print("Thread CFA (Figure 1b):")
    print(cfa)
    print()

    # The lockset baseline false-positives on this idiom.
    report = lockset_analysis(cfa)
    print(
        "Eraser-style lockset analysis:",
        "WARNS (false positive)" if report.warns_on("x") else "clean",
    )
    print()

    # CIRC proves it.
    result = check_race(cfa, "x")
    print(result)
    print()
    if result.safe:
        print("Inferred context ACFA (compare Figure 1c):")
        print(result.context)
        print()
        print("Discovered predicates:")
        for p in result.predicates:
            print("   ", pretty(p))


if __name__ == "__main__":
    main()
