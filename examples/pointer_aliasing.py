#!/usr/bin/env python3
"""The Section 5 memory model: races through pointer aliases.

In real nesC code the protected variables are often accessed through
pointers (``rec_ptr`` literally is one), so the checker "cannot infer the
global memory address being accessed syntactically".  The paper's answer is
a flow-insensitive alias analysis that bounds the lvalue pairs to check.
This example shows the pipeline: points-to analysis, escape set, and CIRC
verdicts on races that only exist through an alias.

Run:  python examples/pointer_aliasing.py
"""

from repro import check_race
from repro.lang.parser import parse_program
from repro.lang.pointers import analyze_pointers

BUGGY = """
global int buffer, spare;
global int *cursor;

thread worker {
  local int tmp;
  while (1) {
    if (*) { cursor = &buffer; } else { cursor = &spare; }
    tmp = *cursor;          // read through the alias
    *cursor = tmp + 1;      // unprotected read-modify-write: races!
  }
}
"""

FIXED = """
global int buffer, spare, mtx;
global int *cursor;

thread worker {
  local int tmp;
  while (1) {
    lock(mtx);
    if (*) { cursor = &buffer; } else { cursor = &spare; }
    tmp = *cursor;
    *cursor = tmp + 1;
    unlock(mtx);
  }
}
"""


def show_alias_analysis(source: str) -> None:
    info = analyze_pointers(parse_program(source))
    print("  points-to:", {p: sorted(s) for p, s in info.pts.items()})
    print("  escaped (address-taken):", sorted(info.escaped()))
    print(
        "  may cursor alias buffer?",
        info.may_alias("cursor", "buffer"),
    )


def main() -> None:
    print("buggy worker (no lock around the deref read-modify-write):")
    show_alias_analysis(BUGGY)
    for var in ("buffer", "spare"):
        result = check_race(BUGGY, var)
        print(f"  race on {var!r}: {'NO' if result.safe else 'YES'}")
        if not result.safe:
            for tid, edge in result.steps[-4:]:
                print(f"      ... T{tid}: {edge.op}")

    print()
    print("fixed worker (lock held across the aliased access):")
    for var in ("buffer", "spare"):
        result = check_race(FIXED, var)
        print(f"  race on {var!r}: {'NO' if result.safe else 'YES'}")


if __name__ == "__main__":
    main()
