#!/usr/bin/env python3
"""Asymmetric thread sets: producers and consumers (the general algorithm).

The paper's formal development is symmetric "for clarity", but Section 2.3
states the general requirement: every thread runs one of finitely many
pieces of code.  ``circ_multi`` checks arbitrarily many copies of *each*
template running concurrently, inferring one context ACFA per template and
closing the circular assume-guarantee argument over their disjoint union.

Run:  python examples/producer_consumer.py
"""

from repro.circ import circ_multi
from repro.lang import lower_program
from repro.smt.terms import pretty

SOURCE = """
global int buf, full;

thread producer {
  while (1) {
    atomic { assume(full == 0); full = 1; }   // claim the empty slot
    buf = buf + 1;                             // produce
    full = 2;                                  // publish
  }
}

thread consumer {
  while (1) {
    atomic { assume(full == 2); full = 3; }   // claim the full slot
    buf = 0;                                   // consume
    full = 0;                                  // release
  }
}
"""

# The broken variant consumes while the producer may still be writing.
BROKEN = SOURCE.replace("assume(full == 2)", "assume(full == 1)")


def main() -> None:
    print("checking the 4-phase handoff with unboundedly many producers")
    print("AND unboundedly many consumers...")
    result = circ_multi(lower_program(SOURCE), race_on="buf")
    assert result.safe
    print("  buf: SAFE")
    for name, preds in result.predicates.items():
        print(f"  {name} predicates: {[pretty(p) for p in preds]}")
        print(f"  {name} context ACFA: {result.contexts[name].size} locations")

    print()
    print("now the broken variant (consumer fires one phase early)...")
    bad = circ_multi(lower_program(BROKEN), race_on="buf")
    assert not bad.safe
    print(f"  RACE between {sorted(set(bad.template_of.values()))}:")
    for tid, edge in bad.steps:
        print(f"    T{tid} ({bad.template_of[tid]}): {edge.op}")


if __name__ == "__main__":
    main()
