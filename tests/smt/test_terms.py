"""Unit tests for the term layer."""

import pytest

from repro.smt import terms as T


def test_var_equality_and_hash():
    assert T.var("x") == T.var("x")
    assert T.var("x") != T.var("y")
    assert hash(T.var("x")) == hash(T.var("x"))
    assert len({T.var("x"), T.var("x"), T.var("y")}) == 2


def test_terms_are_immutable():
    v = T.var("x")
    with pytest.raises(AttributeError):
        v.name = "y"


def test_smart_and_flattens_and_simplifies():
    a, b = T.le(T.var("x"), 0), T.le(T.var("y"), 0)
    assert T.and_() == T.TRUE
    assert T.and_(a) == a
    assert T.and_(a, T.TRUE) == a
    assert T.and_(a, T.FALSE) == T.FALSE
    nested = T.and_(T.and_(a, b), a)
    assert isinstance(nested, T.And)
    assert len(nested.args) == 3


def test_smart_or_flattens_and_simplifies():
    a, b = T.le(T.var("x"), 0), T.le(T.var("y"), 0)
    assert T.or_() == T.FALSE
    assert T.or_(a) == a
    assert T.or_(a, T.FALSE) == a
    assert T.or_(a, T.TRUE) == T.TRUE
    nested = T.or_(T.or_(a, b), b)
    assert len(nested.args) == 3


def test_not_involution():
    a = T.le(T.var("x"), 0)
    assert T.not_(T.not_(a)) == a
    assert T.not_(T.TRUE) == T.FALSE
    assert T.not_(T.FALSE) == T.TRUE


def test_int_coercion_in_constructors():
    t = T.eq(T.var("x"), 5)
    assert isinstance(t.rhs, T.IntConst)
    assert t.rhs.value == 5


def test_free_vars():
    f = T.and_(T.eq(T.var("x"), T.var("y")), T.le(T.add(T.var("z"), 1), 0))
    assert T.free_vars(f) == {"x", "y", "z"}
    assert T.free_vars(T.num(3)) == frozenset()


def test_substitute():
    f = T.eq(T.var("x"), T.add(T.var("y"), 1))
    g = T.substitute(f, {"y": T.num(4)})
    assert T.free_vars(g) == {"x"}
    assert T.evaluate(g, {"x": 5}) is True
    assert T.evaluate(g, {"x": 6}) is False


def test_substitute_simultaneous():
    # x -> y and y -> x must swap, not chain.
    f = T.sub(T.var("x"), T.var("y"))
    g = T.substitute(f, {"x": T.var("y"), "y": T.var("x")})
    assert T.evaluate(g, {"x": 3, "y": 10}) == 7


def test_rename():
    f = T.eq(T.var("x"), T.num(0))
    g = T.rename(f, {"x": "x__1"})
    assert T.free_vars(g) == {"x__1"}


@pytest.mark.parametrize(
    "term,env,expected",
    [
        (T.add(T.var("x"), T.num(2)), {"x": 3}, 5),
        (T.sub(T.num(2), T.var("x")), {"x": 3}, -1),
        (T.mul(T.num(4), T.var("x")), {"x": 3}, 12),
        (T.neg(T.var("x")), {"x": 3}, -3),
        (T.lt(T.var("x"), 4), {"x": 3}, True),
        (T.ge(T.var("x"), 4), {"x": 3}, False),
        (T.ne(T.var("x"), 4), {"x": 3}, True),
        (T.implies(T.FALSE, T.FALSE), {}, True),
        (T.iff(T.TRUE, T.FALSE), {}, False),
    ],
)
def test_evaluate(term, env, expected):
    assert T.evaluate(term, env) == expected


def test_atoms_collects_comparisons():
    a = T.eq(T.var("x"), 0)
    b = T.le(T.var("y"), 1)
    f = T.or_(T.and_(a, T.not_(b)), a)
    assert T.atoms(f) == {a, b}


def test_pretty_round_trips_structure():
    f = T.implies(T.eq(T.var("x"), 0), T.or_(T.le(T.var("y"), 1), T.FALSE))
    s = T.pretty(f)
    assert "x == 0" in s and "->" in s


def test_is_atom():
    assert T.is_atom(T.eq(T.var("x"), 0))
    assert T.is_atom(T.TRUE)
    assert not T.is_atom(T.and_(T.eq(T.var("x"), 0), T.eq(T.var("y"), 0)))
