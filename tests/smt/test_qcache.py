"""Tests for the unified SMT query cache: canonical keys, LRU, persistence."""

from repro.smt import terms as T
from repro.smt.cnf import rewrite_to_le, to_nnf
from repro.smt.qcache import (
    LruCache,
    QueryCache,
    SAT_CACHE,
    conjunction_key,
    key_digest,
    literal_key,
    term_key,
)
from repro.smt.solver import (
    clear_conjunction_cache,
    is_sat,
    is_sat_conjunction,
    is_valid,
)

x, y = T.var("x"), T.var("y")


def _nnf(f):
    return to_nnf(rewrite_to_le(f))


# -- canonical keys ----------------------------------------------------------


def test_literal_key_idempotent_and_memoized():
    lit = T.le(x, T.num(1))
    assert literal_key(lit) == literal_key(lit)


def test_equivalent_spellings_share_a_key():
    # x <= 1 and x < 2 are the same integer halfspace.
    a, _ = literal_key(T.le(x, T.num(1)))
    b, _ = literal_key(T.lt(x, T.num(2)))
    assert a == b
    # not (x > 1) is also x <= 1.
    c, _ = literal_key(T.not_(T.gt(x, T.num(1))))
    assert a == c


def test_equality_key_is_direction_free():
    a, _ = literal_key(T.eq(x, y))
    b, _ = literal_key(T.eq(y, x))
    assert a == b


def test_disequality_key_is_direction_free():
    a, _ = literal_key(T.ne(x, y))
    b, _ = literal_key(T.ne(y, x))
    assert a == b


def test_conjunction_key_order_and_duplicate_insensitive():
    p, q = T.le(x, T.num(1)), T.ge(y, T.num(0))
    assert conjunction_key([p, q]) == conjunction_key([q, p, q])


def test_term_key_permutation_and_flattening_invariance():
    p, q, r = T.le(x, T.num(0)), T.ge(y, T.num(2)), T.eq(x, y)
    flat = _nnf(T.or_(p, q, r))
    permuted = _nnf(T.or_(r, p, q))
    nested = _nnf(T.or_(p, T.or_(q, r)))
    assert term_key(flat) == term_key(permuted) == term_key(nested)


def test_term_key_idempotent():
    f = _nnf(T.and_(T.or_(T.le(x, T.num(1)), T.eq(y, T.num(0))), T.ge(x, y)))
    assert term_key(f) == term_key(f)


def test_key_digest_stable():
    key = term_key(_nnf(T.le(x, T.num(3))))
    assert key_digest(key) == key_digest(key)
    assert len(key_digest(key)) == 64


# -- LRU ---------------------------------------------------------------------


def test_lru_eviction_order():
    lru = LruCache(maxsize=3)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("c", 3)
    assert lru.get("a") == 1  # refresh a: b is now least recent
    lru.put("d", 4)
    assert "b" not in lru
    assert "a" in lru and "c" in lru and "d" in lru
    assert lru.evictions == 1


def test_lru_counters():
    lru = LruCache(maxsize=2)
    assert lru.get("missing") is None
    lru.put("k", True)
    assert lru.get("k") is True
    s = lru.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["size"] == 1


def test_lru_update_does_not_evict():
    lru = LruCache(maxsize=2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)
    assert len(lru) == 2 and lru.evictions == 0
    assert lru.get("a") == 10


# -- QueryCache --------------------------------------------------------------


def test_query_cache_roundtrip_and_stats():
    qc = QueryCache(maxsize=8)
    key = conjunction_key([T.le(x, T.num(1))])
    assert qc.lookup(key) is None
    qc.store(key, True)
    assert qc.lookup(key) is True
    s = qc.stats()
    assert s["hits"] == 1 and s["misses"] == 1


def test_query_cache_disabled_bypasses():
    qc = QueryCache(maxsize=8)
    qc.enabled = False
    key = ("le(1*x+-1)",)
    qc.store(key, True)
    assert qc.lookup(key) is None


def test_query_cache_persistence_roundtrip(tmp_path):
    path = tmp_path / "qcache.json"
    qc = QueryCache(maxsize=8)
    k1 = conjunction_key([T.le(x, T.num(1))])
    k2 = term_key(_nnf(T.or_(T.eq(x, T.num(0)), T.ge(y, T.num(3)))))
    qc.store(k1, True)
    qc.store(k2, False)
    assert qc.save(path) == 2

    warm = QueryCache(maxsize=8)
    assert warm.load(path) == 2
    # Warm hits are served by digest and promoted to the primary tier.
    assert warm.lookup(k1) is True
    assert warm.lookup(k2) is False
    assert warm.stats()["warm_hits"] == 2
    assert warm.lookup(k1) is True  # now a primary hit
    assert warm.stats()["warm_hits"] == 2


def test_query_cache_load_tolerates_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert QueryCache().load(path) == 0
    path.write_text('{"format": "something-else", "entries": {}}')
    assert QueryCache().load(path) == 0
    assert QueryCache().load(tmp_path / "missing.json") == 0


# -- integration with the solver entry points --------------------------------


def test_conjunction_queries_hit_shared_cache():
    clear_conjunction_cache()
    before = SAT_CACHE.stats()["hits"]
    lits = [T.le(x, T.num(4)), T.ge(x, T.num(2))]
    assert is_sat_conjunction(lits)
    assert is_sat_conjunction(list(reversed(lits)))  # permuted: same key
    assert SAT_CACHE.stats()["hits"] == before + 1


def test_clear_conjunction_cache_empties_shared_cache():
    is_sat_conjunction([T.le(x, T.num(0))])
    assert len(SAT_CACHE) > 0
    clear_conjunction_cache()
    assert len(SAT_CACHE) == 0


def test_is_valid_shares_entries_with_is_sat_negation():
    clear_conjunction_cache()
    f = T.implies(T.eq(x, T.num(5)), T.ge(x, T.num(0)))
    # is_valid(f) solves is_sat(not f); a prior is_sat(not f) seeds it.
    assert not is_sat(T.not_(f))
    before = SAT_CACHE.stats()["hits"]
    assert is_valid(f)
    assert SAT_CACHE.stats()["hits"] == before + 1


def test_cached_verdicts_are_correct_across_spellings():
    clear_conjunction_cache()
    assert not is_sat_conjunction([T.le(x, T.num(1)), T.gt(x, T.num(1))])
    # Same halfspaces, different spellings: must hit and stay unsat.
    assert not is_sat_conjunction([T.lt(x, T.num(2)), T.ge(x, T.num(2))])


# -- incremental autosave (the serve daemon's periodic warm-tier spill) ------


def test_autosave_flushes_every_n_stores(tmp_path):
    path = tmp_path / "qcache.json"
    qc = QueryCache()
    qc.set_autosave(path, every=3)
    qc.store("k1", True)
    qc.store("k2", False)
    assert not path.exists()  # under the threshold: nothing spilled yet
    qc.store("k3", True)
    assert path.exists()
    assert qc.autosave_flushes == 1
    # The spilled tier warm-starts a fresh cache.
    warm = QueryCache()
    assert warm.load(path) == 3
    assert warm.lookup("k2") is False


def test_autosave_disable_and_forced_flush(tmp_path):
    path = tmp_path / "qcache.json"
    qc = QueryCache()
    qc.set_autosave(path, every=1000)
    qc.store("k1", True)
    assert qc.flush() == 1  # explicit flush spills below the threshold
    qc.set_autosave(None)
    qc.store("k2", True)
    assert qc.flush() == 0  # disabled: no path, nothing written


# -- multi-writer warm tier (the sharded engine's workers) --------------------


def test_save_merges_instead_of_overwriting(tmp_path):
    """Two caches with disjoint entries saving to one path accumulate:
    the second save must re-read and fold, not blindly overwrite (the
    original last-writer-wins spill lost the first worker's verdicts)."""
    path = tmp_path / "qcache.json"
    a, b = QueryCache(maxsize=8), QueryCache(maxsize=8)
    a.store("only-in-a", True)
    b.store("only-in-b", False)
    assert a.save(path) == 1
    assert b.save(path) == 2  # merged size, not b's own size

    warm = QueryCache(maxsize=8)
    assert warm.load(path) == 2
    assert warm.lookup("only-in-a") is True
    assert warm.lookup("only-in-b") is False


def test_save_returns_merged_count_and_is_idempotent(tmp_path):
    path = tmp_path / "qcache.json"
    qc = QueryCache(maxsize=8)
    qc.store("k", True)
    assert qc.save(path) == 1
    assert qc.save(path) == 1  # re-merging the same entries is stable


def test_two_process_concurrent_save_loses_nothing(tmp_path):
    """Two real OS processes flushing disjoint tiers concurrently: the
    flock + read-merge-write protocol must end with the full union."""
    import subprocess
    import sys
    from pathlib import Path

    src = str(Path(__file__).resolve().parents[2] / "src")
    script = (
        "import sys\n"
        f"sys.path.insert(0, {src!r})\n"
        "from repro.smt.qcache import QueryCache\n"
        "path, tag = sys.argv[1], sys.argv[2]\n"
        "qc = QueryCache(maxsize=256)\n"
        "for i in range(100):\n"
        "    qc.store(f'{tag}-{i}', i % 2 == 0)\n"
        "    if i % 10 == 9:\n"
        "        qc.save(path)\n"
        "qc.save(path)\n"
    )
    path = tmp_path / "qcache.json"
    procs = [
        subprocess.Popen([sys.executable, "-c", script, str(path), tag])
        for tag in ("a", "b")
    ]
    for p in procs:
        assert p.wait() == 0
    warm = QueryCache(maxsize=256)
    assert warm.load(path) == 200  # no delta lost to a concurrent flush
    for tag in ("a", "b"):
        assert warm.lookup(f"{tag}-3") is False
        assert warm.lookup(f"{tag}-4") is True
