"""Unit tests for linear-form extraction and atom normalization."""

from fractions import Fraction

import pytest

from repro.smt import terms as T
from repro.smt.linear import (
    LinEq,
    LinExpr,
    LinLe,
    NonLinearError,
    linearize,
    normalize_atom,
)


def test_linexpr_algebra():
    a = LinExpr({"x": Fraction(2)}, 1)
    b = LinExpr({"x": Fraction(-2), "y": Fraction(1)}, 2)
    s = a + b
    assert s.coeff("x") == 0
    assert s.coeff("y") == 1
    assert s.const == 3
    assert "x" not in s.coeffs  # zero coefficients dropped


def test_linexpr_scale_and_neg():
    a = LinExpr({"x": Fraction(3)}, -6)
    assert (-a).coeff("x") == -3
    assert a.scale(Fraction(1, 3)).const == -2


def test_linexpr_substitute():
    # x + 2y, substitute y := z - 1  ->  x + 2z - 2
    e = LinExpr({"x": Fraction(1), "y": Fraction(2)})
    repl = LinExpr({"z": Fraction(1)}, -1)
    out = e.substitute("y", repl)
    assert out.coeff("x") == 1 and out.coeff("z") == 2 and out.const == -2


def test_linexpr_evaluate():
    e = LinExpr({"x": Fraction(2), "y": Fraction(-1)}, 5)
    assert e.evaluate({"x": 1, "y": 3}) == 4


def test_linearize_basic():
    t = T.add(T.mul(T.num(2), T.var("x")), T.sub(T.var("y"), 3))
    e = linearize(t)
    assert e.coeff("x") == 2 and e.coeff("y") == 1 and e.const == -3


def test_linearize_rejects_products():
    with pytest.raises(NonLinearError):
        linearize(T.mul(T.var("x"), T.var("y")))


def test_linearize_allows_constant_products():
    e = linearize(T.mul(T.var("x"), T.num(3)))
    assert e.coeff("x") == 3


def test_normalize_le():
    (c,) = normalize_atom(T.le(T.var("x"), 5))
    assert isinstance(c, LinLe)
    assert c.expr.coeff("x") == 1 and c.expr.const == -5


def test_normalize_lt_uses_integer_tightening():
    (c,) = normalize_atom(T.lt(T.var("x"), 5))
    # x < 5  ==>  x - 4 <= 0
    assert isinstance(c, LinLe)
    assert c.holds({"x": 4})
    assert not c.holds({"x": 5})


def test_normalize_eq():
    (c,) = normalize_atom(T.eq(T.var("x"), T.var("y")))
    assert isinstance(c, LinEq)
    assert c.holds({"x": 2, "y": 2})
    assert not c.holds({"x": 2, "y": 3})


def test_normalize_negated_eq_gives_disjunction():
    (pair,) = normalize_atom(T.eq(T.var("x"), 0), negated=True)
    assert isinstance(pair, tuple)
    lo, hi = pair
    # x <= -1  or  x >= 1
    assert lo.holds({"x": -1}) and not lo.holds({"x": 0})
    assert hi.holds({"x": 1}) and not hi.holds({"x": 0})


def test_normalize_ne():
    (pair,) = normalize_atom(T.ne(T.var("x"), T.var("y")))
    assert isinstance(pair, tuple)


def test_normalize_negated_le():
    (c,) = normalize_atom(T.le(T.var("x"), 5), negated=True)
    # not (x <= 5)  ==>  x >= 6  ==>  6 - x <= 0
    assert c.holds({"x": 6})
    assert not c.holds({"x": 5})


def test_normalized_key_is_direction_canonical():
    a = LinExpr({"x": Fraction(2), "y": Fraction(4)}, 6).normalized()
    b = LinExpr({"x": Fraction(1), "y": Fraction(2)}, 3).normalized()
    assert a == b


def test_to_term_round_trip():
    e = LinExpr({"x": Fraction(2), "y": Fraction(-1)}, 7)
    t = e.to_term()
    assert T.evaluate(t, {"x": 1, "y": 4}) == 2 + (-4) + 7
