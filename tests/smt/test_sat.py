"""Unit tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.smt.sat import SAT, UNSAT, SatSolver


def test_empty_problem_is_sat():
    assert SatSolver().solve() == SAT


def test_unit_clause():
    s = SatSolver()
    s.add_clause([1])
    assert s.solve() == SAT
    assert s.model()[1] is True


def test_contradicting_units():
    s = SatSolver()
    s.add_clause([1])
    s.add_clause([-1])
    assert s.solve() == UNSAT


def test_empty_clause_unsat():
    s = SatSolver()
    s.add_clause([1, 2])
    s.add_clause([])
    assert s.solve() == UNSAT


def test_tautology_is_dropped():
    s = SatSolver()
    s.add_clause([1, -1])
    assert s.solve() == SAT


def test_simple_implication_chain():
    s = SatSolver()
    s.add_clause([1])
    s.add_clause([-1, 2])
    s.add_clause([-2, 3])
    assert s.solve() == SAT
    m = s.model()
    assert m[1] and m[2] and m[3]


def test_pigeonhole_3_into_2_unsat():
    # Variable p(i,j): pigeon i in hole j. 3 pigeons, 2 holes.
    def v(i, j):
        return i * 2 + j + 1

    s = SatSolver()
    for i in range(3):
        s.add_clause([v(i, 0), v(i, 1)])
    for j in range(2):
        for i1, i2 in itertools.combinations(range(3), 2):
            s.add_clause([-v(i1, j), -v(i2, j)])
    assert s.solve() == UNSAT


def test_model_satisfies_all_clauses_random():
    rng = random.Random(42)
    for trial in range(30):
        n_vars = rng.randint(3, 12)
        n_clauses = rng.randint(3, 40)
        clauses = []
        for _ in range(n_clauses):
            width = rng.randint(1, 4)
            clause = [
                rng.choice([1, -1]) * rng.randint(1, n_vars)
                for _ in range(width)
            ]
            clauses.append(clause)
        s = SatSolver()
        for c in clauses:
            s.add_clause(c)
        verdict = s.solve()
        # Cross-check against brute force.
        brute_sat = False
        for bits in itertools.product([False, True], repeat=n_vars):
            assign = {v: bits[v - 1] for v in range(1, n_vars + 1)}
            if all(
                any(assign[abs(l)] == (l > 0) for l in c) for c in clauses
            ):
                brute_sat = True
                break
        assert (verdict == SAT) == brute_sat, f"trial {trial}"
        if verdict == SAT:
            m = s.model()
            for c in clauses:
                assert any(m[abs(l)] == (l > 0) for l in c)


def test_incremental_clause_addition():
    s = SatSolver()
    s.add_clause([1, 2])
    assert s.solve() == SAT
    s.add_clause([-1])
    assert s.solve() == SAT
    assert s.model()[2] is True
    s.add_clause([-2])
    assert s.solve() == UNSAT


def test_rejects_literal_zero():
    s = SatSolver()
    with pytest.raises(ValueError):
        s.add_clause([0])


def test_duplicate_literals_collapse():
    s = SatSolver()
    s.add_clause([1, 1, 1])
    assert s.solve() == SAT
    assert s.model()[1] is True


def test_large_chain_forces_propagation():
    s = SatSolver()
    n = 200
    s.add_clause([1])
    for i in range(1, n):
        s.add_clause([-i, i + 1])
    s.add_clause([-n, -1])  # contradiction at the end
    assert s.solve() == UNSAT
