"""Tests for incremental sessions and assumption-based SAT solving.

The property test mirrors the expression shapes of :mod:`repro.fuzz.gen`
(small variable pool, constants 0..2, all six comparisons, and/or/not
nesting) and checks that one long-lived :class:`Session` agrees with a
fresh single-query :class:`Solver` on every formula -- the soundness
contract that makes learned-clause and theory-lemma retention safe.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt.sat import SAT, SatSolver, UNSAT
from repro.smt.session import Session
from repro.smt.solver import Solver
from repro.smt.terms import evaluate

x, y = T.var("x"), T.var("y")


# -- assumption solving at the SAT layer -------------------------------------


def test_solve_under_assumptions_does_not_assert():
    s = SatSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])
    assert s.solve(assumptions=(-a,)) == SAT
    assert s.model()[b] is True
    # The assumption was not asserted: a is free again next call.
    assert s.solve(assumptions=(a,)) == SAT
    assert s.model()[a] is True


def test_conflicting_assumptions_are_unsat_but_transient():
    s = SatSolver()
    a = s.new_var()
    s.add_clause([a])
    assert s.solve(assumptions=(-a,)) == UNSAT
    assert s.solve() == SAT
    assert s.model()[a] is True


def test_assumptions_compose_with_learning():
    s = SatSolver()
    a, b, c = s.new_var(), s.new_var(), s.new_var()
    s.add_clause([-a, b])
    s.add_clause([-b, c])
    assert s.solve(assumptions=(a, -c)) == UNSAT
    assert s.solve(assumptions=(a,)) == SAT
    m = s.model()
    assert m[b] is True and m[c] is True


# -- session unit behavior ---------------------------------------------------


def test_session_verdicts_and_models():
    sess = Session()
    f = T.and_(T.eq(x, T.add(y, 1)), T.ge(y, 5))
    r = sess.check(f)
    assert r.is_sat
    assert r.model["x"] == r.model["y"] + 1 and r.model["y"] >= 5
    assert not sess.check(T.and_(T.le(x, 0), T.ge(x, 1))).is_sat
    assert sess.check(T.TRUE).is_sat
    assert not sess.check(T.FALSE).is_sat


def test_session_encode_reuse_across_repeats():
    sess = Session()
    f = T.or_(T.eq(x, 1), T.and_(T.ge(y, 0), T.le(y, 2)))
    assert sess.check(f).is_sat
    vars_after_first = sess.num_vars
    assert sess.check(f).is_sat
    assert sess.num_vars == vars_after_first  # nothing re-encoded
    assert sess.stats.encode_hits == 1


def test_session_queries_are_independent():
    sess = Session()
    # An unsat query must not constrain later ones sharing its atoms.
    assert not sess.check(T.and_(T.eq(x, 0), T.eq(x, 1))).is_sat
    assert sess.check(T.eq(x, 0)).is_sat
    assert sess.check(T.eq(x, 1)).is_sat


def test_session_auto_resets_past_max_vars():
    sess = Session(max_vars=8)
    for i in range(12):
        assert sess.check(T.eq(T.var(f"v{i}"), T.num(i))).is_sat
    assert sess.stats.resets >= 1
    assert sess.num_vars <= 8 + 4  # bounded again after the reset
    assert sess.check(T.eq(x, 3)).is_sat


# -- differential property: session vs fresh solver --------------------------

_names = st.sampled_from(["x", "y", "s"])
_consts = st.integers(min_value=0, max_value=2)


@st.composite
def _atoms(draw):
    lhs = T.var(draw(_names))
    rhs = (
        T.num(draw(_consts))
        if draw(st.booleans())
        else T.var(draw(_names))
    )
    op = draw(
        st.sampled_from([T.eq, T.ne, T.lt, T.le, T.gt, T.ge])
    )
    return op(lhs, rhs)


_formulas = st.recursive(
    _atoms(),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda t: T.and_(*t)),
        st.tuples(children, children).map(lambda t: T.or_(*t)),
        children.map(T.not_),
    ),
    max_leaves=8,
)

_SHARED = Session()


@settings(max_examples=200, deadline=None)
@given(_formulas)
def test_session_agrees_with_fresh_solver(f):
    """One live session across all examples vs a fresh solver per example."""
    fresh = Solver(f).check()
    live = _SHARED.check(f)
    assert live.is_sat == fresh.is_sat
    if live.is_sat:
        env = {name: live.model.get(name, 0) for name in T.free_vars(f)}
        assert evaluate(f, env) is True
