"""Unit tests for the LIA conjunction decision procedure."""

from fractions import Fraction

from repro.smt.lia import implies_conjunction, solve_conjunction
from repro.smt.linear import LinEq, LinExpr, LinLe


def le(coeffs, const=0):
    return LinLe(LinExpr({k: Fraction(v) for k, v in coeffs.items()}, const))


def eq(coeffs, const=0):
    return LinEq(LinExpr({k: Fraction(v) for k, v in coeffs.items()}, const))


def check_model(constraints, result):
    assert result.is_sat
    for c in constraints:
        assert c.holds(result.model), f"{c!r} violated by {result.model}"


def test_empty_is_sat():
    assert solve_conjunction([]).is_sat


def test_single_bound():
    cs = [le({"x": 1}, -5)]  # x <= 5
    check_model(cs, solve_conjunction(cs))


def test_simple_unsat_interval():
    # x <= 2 and x >= 5
    cs = [le({"x": 1}, -2), le({"x": -1}, 5)]
    r = solve_conjunction(cs)
    assert not r.is_sat
    assert r.core == {0, 1}


def test_equality_chain_sat():
    # x == y, y == z, z == 7
    cs = [
        eq({"x": 1, "y": -1}),
        eq({"y": 1, "z": -1}),
        eq({"z": 1}, -7),
    ]
    r = solve_conjunction(cs)
    check_model(cs, r)
    assert r.model["x"] == 7


def test_equality_chain_unsat():
    # x == 0, x == 1
    cs = [eq({"x": 1}), eq({"x": 1}, -1)]
    r = solve_conjunction(cs)
    assert not r.is_sat
    assert r.all_equalities
    assert r.core == {0, 1}


def test_transitive_inequalities():
    # x <= y, y <= z, z <= x - 1 : unsat
    cs = [
        le({"x": 1, "y": -1}),
        le({"y": 1, "z": -1}),
        le({"z": 1, "x": -1}, 1),
    ]
    r = solve_conjunction(cs)
    assert not r.is_sat
    assert r.core == {0, 1, 2}


def test_farkas_certificate_sums_to_positive_constant():
    cs = [
        le({"x": 1, "y": -1}),       # x - y <= 0
        le({"y": 1}, -3),            # y <= 3
        le({"x": -1}, 5),            # x >= 5
    ]
    r = solve_conjunction(cs)
    assert not r.is_sat
    total = LinExpr()
    for idx, lam in r.farkas.items():
        assert lam >= 0  # all inequalities here
        total = total + cs[idx].expr.scale(lam)
    assert total.is_const() and total.const > 0


def test_mixed_eq_and_ineq():
    # x == y + 1, x <= 0, y >= 0 : unsat
    cs = [
        eq({"x": 1, "y": -1}, -1),
        le({"x": 1}),
        le({"y": -1}),
    ]
    assert not solve_conjunction(cs).is_sat


def test_unbounded_gets_model():
    cs = [le({"x": -1, "y": 1})]  # y <= x
    check_model(cs, solve_conjunction(cs))


def test_integer_gap_detected():
    # 2x == 1 has a rational solution but no integer one.
    cs = [eq({"x": 2}, -1)]
    r = solve_conjunction(cs)
    assert not r.is_sat


def test_integer_gap_inequalities():
    # 1 <= 2x <= 1  (i.e. 2x >= 1 and 2x <= 1): rational sat at x=1/2 only.
    cs = [le({"x": -2}, 1), le({"x": 2}, -1)]
    r = solve_conjunction(cs)
    assert not r.is_sat


def test_branch_and_bound_finds_integer_point():
    # 2 <= 2x <= 5  ->  x in {1, 2} after integer tightening
    cs = [le({"x": -2}, 2), le({"x": 2}, -5)]
    r = solve_conjunction(cs)
    check_model(cs, r)
    assert r.model["x"] in (1, 2)


def test_many_variables():
    # x1 <= x2 <= ... <= x6, x1 >= 10, x6 <= 20
    cs = []
    for i in range(1, 6):
        cs.append(le({f"x{i}": 1, f"x{i+1}": -1}))
    cs.append(le({"x1": -1}, 10))
    cs.append(le({"x6": 1}, -20))
    check_model(cs, solve_conjunction(cs))


def test_core_is_minimal_ish():
    # Only constraints 1 and 3 conflict; 0 and 2 are irrelevant.
    cs = [
        le({"a": 1}, -100),
        le({"x": 1}),          # x <= 0
        le({"b": -1}, -50),
        le({"x": -1}, 1),      # x >= 1
    ]
    r = solve_conjunction(cs)
    assert not r.is_sat
    assert r.core == {1, 3}


def test_implies_conjunction_le():
    ante = [le({"x": 1}, -3)]  # x <= 3
    assert implies_conjunction(ante, le({"x": 1}, -5))  # x <= 5
    assert not implies_conjunction(ante, le({"x": 1}, -2))  # x <= 2


def test_implies_conjunction_eq():
    ante = [eq({"x": 1}, -4)]
    assert implies_conjunction(ante, eq({"x": 1}, -4))
    assert implies_conjunction(ante, le({"x": 1}, -4))
    assert not implies_conjunction(ante, eq({"x": 1}, -5))


def test_degenerate_constant_constraints():
    assert solve_conjunction([le({}, -1)]).is_sat  # -1 <= 0
    assert not solve_conjunction([le({}, 1)]).is_sat  # 1 <= 0
    assert solve_conjunction([eq({}, 0)]).is_sat
    assert not solve_conjunction([eq({}, 2)]).is_sat
