"""Property-based tests: the LIA procedure vs brute force on small boxes."""

import itertools
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.lia import implies_conjunction, solve_conjunction
from repro.smt.linear import LinEq, LinExpr, LinLe

_NAMES = ["x", "y", "z"]
_BOX = range(-3, 4)


@st.composite
def constraints(draw):
    n_vars = draw(st.integers(min_value=1, max_value=3))
    names = _NAMES[:n_vars]
    coeffs = {
        name: Fraction(draw(st.integers(min_value=-2, max_value=2)))
        for name in names
    }
    const = Fraction(draw(st.integers(min_value=-4, max_value=4)))
    expr = LinExpr(coeffs, const)
    if draw(st.booleans()):
        return LinLe(expr)
    return LinEq(expr)


def brute_force_sat(cs) -> bool:
    names = sorted({n for c in cs for n in c.expr.vars()})
    if not names:
        return all(c.holds({}) for c in cs)
    for values in itertools.product(_BOX, repeat=len(names)):
        env = dict(zip(names, values))
        if all(c.holds(env) for c in cs):
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(st.lists(constraints(), min_size=1, max_size=4))
def test_sat_agrees_with_bruteforce_on_box(cs):
    """Within a small box: brute-force SAT implies solver SAT (the solver
    searches all of Z, so the converse need not hold -- check that
    direction only when the solver's model lands in the box)."""
    result = solve_conjunction(cs)
    brute = brute_force_sat(cs)
    if brute:
        assert result.is_sat
    if result.is_sat:
        model = result.model
        # Solver models always satisfy the constraints.
        for c in cs:
            env = {n: model.get(n, 0) for n in c.expr.vars()}
            assert c.holds(env)


@settings(max_examples=80, deadline=None)
@given(st.lists(constraints(), min_size=1, max_size=3), constraints())
def test_implication_is_sound(antecedent, consequent):
    """implies_conjunction never claims an implication violated by a point."""
    if not implies_conjunction(antecedent, consequent):
        return
    names = sorted(
        {n for c in antecedent + [consequent] for n in c.expr.vars()}
    )
    for values in itertools.product(_BOX, repeat=len(names)):
        env = dict(zip(names, values))
        if all(c.holds(env) for c in antecedent):
            assert consequent.holds(env)


@settings(max_examples=80, deadline=None)
@given(st.lists(constraints(), min_size=1, max_size=4))
def test_unsat_core_is_unsat(cs):
    """The reported core is itself unsatisfiable."""
    result = solve_conjunction(cs)
    if result.is_sat or result.core is None:
        return
    core = [cs[i] for i in sorted(result.core)]
    assert not solve_conjunction(core).is_sat
