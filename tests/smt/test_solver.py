"""Unit and property tests for the DPLL(T) solver facade."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt.solver import (
    entails,
    equivalent,
    get_model,
    is_sat,
    is_sat_conjunction,
    is_valid,
)

x, y, z = T.var("x"), T.var("y"), T.var("z")


def test_true_and_false():
    assert is_sat(T.TRUE)
    assert not is_sat(T.FALSE)
    assert is_valid(T.TRUE)
    assert not is_valid(T.FALSE)


def test_basic_sat_with_model():
    f = T.and_(T.eq(x, T.add(y, 1)), T.ge(y, 5))
    m = get_model(f)
    assert m is not None
    assert m["x"] == m["y"] + 1 and m["y"] >= 5


def test_basic_unsat():
    f = T.and_(T.le(x, 0), T.ge(x, 1))
    assert not is_sat(f)


def test_disjunction_requires_sat_engine():
    f = T.and_(
        T.or_(T.eq(x, 1), T.eq(x, 2)),
        T.ne(x, 1),
    )
    m = get_model(f)
    assert m["x"] == 2


def test_negated_equality():
    f = T.and_(T.ne(x, 0), T.ge(x, 0), T.le(x, 1))
    m = get_model(f)
    assert m["x"] == 1


def test_implication_validity():
    f = T.implies(T.eq(x, 5), T.ge(x, 0))
    assert is_valid(f)
    g = T.implies(T.ge(x, 0), T.eq(x, 5))
    assert not is_valid(g)


def test_iff():
    f = T.iff(T.le(x, 0), T.not_(T.gt(x, 0)))
    assert is_valid(f)


def test_entails():
    assert entails(T.eq(x, 3), T.le(x, 10))
    assert not entails(T.le(x, 10), T.eq(x, 3))
    assert entails(T.FALSE, T.eq(x, 3))


def test_equivalent():
    assert equivalent(T.le(x, 4), T.lt(x, 5))  # integers
    assert not equivalent(T.le(x, 4), T.le(x, 5))


def test_unsat_via_transitivity_with_disjunction():
    f = T.and_(
        T.or_(T.le(x, y), T.le(x, z)),
        T.gt(x, y),
        T.gt(x, z),
    )
    assert not is_sat(f)


def test_model_evaluates_formula_true():
    f = T.and_(
        T.or_(T.eq(x, y), T.eq(x, z)),
        T.eq(T.add(y, z), 10),
        T.ge(x, 6),
    )
    m = get_model(f)
    assert m is not None
    assert T.evaluate(f, m) is True


def test_conjunction_fast_path():
    lits = [T.eq(x, 3), T.le(y, x), T.not_(T.eq(y, 3))]
    assert is_sat_conjunction(lits)
    lits_unsat = [T.eq(x, 3), T.ge(y, x), T.le(y, x), T.not_(T.eq(y, 3))]
    assert not is_sat_conjunction(lits_unsat)


def test_conjunction_fast_path_trivial():
    assert is_sat_conjunction([])
    assert is_sat_conjunction([T.TRUE])
    assert not is_sat_conjunction([T.FALSE])


# ---------------------------------------------------------------------------
# Property-based cross-check against brute-force evaluation
# ---------------------------------------------------------------------------

_names = st.sampled_from(["x", "y", "z"])


def _atoms():
    consts = st.integers(min_value=-4, max_value=4)

    def mk(draw_pair):
        name, c = draw_pair
        return st.sampled_from(
            [
                T.le(T.var(name), c),
                T.eq(T.var(name), c),
                T.lt(T.var(name), c),
                T.ne(T.var(name), c),
            ]
        )

    return st.tuples(_names, consts).flatmap(mk)


def _formulas(depth=2):
    if depth == 0:
        return _atoms()
    sub = _formulas(depth - 1)
    return st.one_of(
        _atoms(),
        st.tuples(sub, sub).map(lambda p: T.and_(*p)),
        st.tuples(sub, sub).map(lambda p: T.or_(*p)),
        sub.map(T.not_),
        st.tuples(sub, sub).map(lambda p: T.implies(*p)),
    )


@settings(max_examples=60, deadline=None)
@given(_formulas())
def test_solver_agrees_with_bruteforce(formula):
    names = sorted(T.free_vars(formula))
    brute = False
    # Atoms compare single vars against constants in [-4, 4]; the formula is
    # satisfiable iff satisfiable with each var in [-6, 6].
    import itertools

    for values in itertools.product(range(-6, 7), repeat=len(names)):
        if T.evaluate(formula, dict(zip(names, values))):
            brute = True
            break
    assert is_sat(formula) == brute


@settings(max_examples=40, deadline=None)
@given(_formulas())
def test_model_when_sat_is_genuine(formula):
    m = get_model(formula)
    if m is not None:
        assert T.evaluate(formula, m) is True
