"""Unit and property tests for Farkas interpolation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt.interpolate import binary_interpolant, sequence_interpolants
from repro.smt.solver import entails, is_sat

x, y, z = T.var("x"), T.var("y"), T.var("z")


def check_interpolant(a_lits, b_lits, itp):
    """The three Craig conditions."""
    assert entails(T.and_(*a_lits), itp), "A must imply the interpolant"
    assert not is_sat(T.and_(itp, *b_lits)), "itp & B must be unsat"
    shared = T.free_vars(T.and_(*a_lits)) & T.free_vars(T.and_(*b_lits))
    assert T.free_vars(itp) <= shared, "itp must use only shared symbols"


def test_simple_bound_interpolant():
    a = [T.le(x, 2)]
    b = [T.ge(x, 5)]
    itp = binary_interpolant(a, b)
    assert itp is not None
    check_interpolant(a, b, itp)


def test_equality_chain_interpolant():
    a = [T.eq(x, y), T.eq(y, 3)]
    b = [T.eq(x, z), T.eq(z, 4)]
    itp = binary_interpolant(a, b)
    assert itp is not None
    check_interpolant(a, b, itp)


def test_consistent_pair_returns_none():
    assert binary_interpolant([T.le(x, 2)], [T.le(x, 5)]) is None


def test_sequence_interpolants_count_and_conditions():
    groups = [
        [T.eq(x, 0)],
        [T.eq(y, T.add(x, 1))],
        [T.eq(z, T.add(y, 1))],
        [T.ge(z, 5)],
    ]
    itps = sequence_interpolants(groups)
    assert itps is not None
    assert len(itps) == 3
    for cut in range(1, 4):
        prefix = [lit for g in groups[:cut] for lit in g]
        suffix = [lit for g in groups[cut:] for lit in g]
        check_interpolant(prefix, suffix, itps[cut - 1])


def test_interpolants_with_disequality():
    a = [T.eq(x, 0)]
    b = [T.ne(x, 0)]
    itp = binary_interpolant(a, b)
    assert itp is not None
    check_interpolant(a, b, itp)


def test_figure5_style_trace():
    """The paper's Figure 5 TF: old1 = state1; state1 = 0; state2 = 1;
    old1 = 0; old2 = state2; state2 = 0 -- unsat because state2 is 1."""
    groups = [
        [T.eq(T.var("old1"), T.var("state1"))],
        [T.eq(T.var("state1"), 0)],
        [T.eq(T.var("state2"), 1)],
        [T.eq(T.var("old1"), 0)],
        [T.eq(T.var("old2"), T.var("state2"))],
        [T.eq(T.var("state2"), 0)],
    ]
    itps = sequence_interpolants(groups)
    assert itps is not None
    # The interpolant before the last group must force state2 == 1 (or an
    # equivalent), which the paper mines as the predicate state = 1.
    final_itp = itps[-1]
    assert entails(final_itp, T.ne(T.var("state2"), 0))


_consts = st.integers(min_value=-3, max_value=3)
_names = st.sampled_from(["x", "y"])


@st.composite
def literal(draw):
    name = draw(_names)
    c = draw(_consts)
    kind = draw(st.sampled_from(["le", "ge", "eq"]))
    v = T.var(name)
    return {"le": T.le, "ge": T.ge, "eq": T.eq}[kind](v, c)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(literal(), min_size=1, max_size=3),
    st.lists(literal(), min_size=1, max_size=3),
)
def test_interpolant_conditions_hold_whenever_produced(a_lits, b_lits):
    itp = binary_interpolant(a_lits, b_lits)
    joint_sat = is_sat(T.and_(*(a_lits + b_lits)))
    if itp is None:
        assert joint_sat  # None only for consistent pairs
    else:
        assert not joint_sat
        check_interpolant(a_lits, b_lits, itp)
