"""Differential harness: hash-consing must be observationally invisible.

Every workload here runs twice -- once with the intern table on, once on
the preserved structural-equality path (:func:`repro.smt.terms
.set_interning`) -- from identical cold global state, and the two runs
must agree on *everything a caller can observe*: verdicts, discovered
predicates, exploration statistics, report-v1 rows, solver query counts,
and the shared query cache's hit/miss deltas.

Workloads cover the three public entry paths:

* **check** -- :func:`repro.circ.circ` on the Fig 2-4 test-and-set model
  and a seeded fuzz-generator sample;
* **batch** -- :func:`repro.engine.run_batch` over a small model set,
  compared on shared-schema report rows;
* **portfolio** -- :func:`repro.portfolio.driver.run_portfolio` with
  cancellation off (maximal disagreement surface), compared row-wise.

The ``smoke`` tests are the CI slice (fast, fixed inputs); the fuzz
sample extends the same properties over generated programs.
"""

from repro.circ.circ import CircBudgetExceeded, CircError, circ
from repro.circ.result import CircSafe, CircUnsafe
from repro.engine import BatchItem, run_batch
from repro.fuzz.gen import GenConfig, generate
from repro.lang import lower_source
from repro.lang.lower import lower_thread
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.portfolio.driver import run_portfolio
from repro.races.report import rows_from_batch, rows_from_portfolio
from repro.smt import terms as T
from repro.smt.profile import PROFILER
from repro.smt.qcache import SAT_CACHE
from repro.smt.session import reset_default_session

#: A program with an unprotected write: the racy counterpart of Fig 2-4.
RACY_SOURCE = """
global int y;
thread main {
  y = y + 1;
}
"""

BUDGET = dict(max_outer=6, max_inner=40, timeout_s=20.0)

FUZZ_SEEDS = (0, 7, 19, 42, 1001, 4242)


def _cold_state() -> None:
    SAT_CACHE.clear()
    reset_default_session()
    T.clear_intern_table()
    PROFILER.reset()


def _run_mode(interning: bool, fn):
    """Run ``fn`` from cold global state under the given equality mode.

    Returns ``(result, qcache delta, profiler totals)``.  Cache counters
    survive :meth:`QueryCache.clear`, so deltas are measured against a
    pre-run snapshot.
    """
    prev = T.set_interning(interning)
    try:
        _cold_state()
        before = SAT_CACHE.stats()
        out = fn()
        after = SAT_CACHE.stats()
        delta = {k: after[k] - before[k] for k in ("hits", "misses")}
        totals = PROFILER.totals()
        queries = {
            k: totals[k] for k in ("queries", "sat", "unsat", "cache_hits")
        }
        return out, delta, queries
    finally:
        T.set_interning(prev)
        _cold_state()


def _differential(fn):
    """Run ``fn`` in both modes; assert cache/query parity; return both."""
    interned, d_on, q_on = _run_mode(True, fn)
    structural, d_off, q_off = _run_mode(False, fn)
    assert d_on == d_off, f"qcache hit/miss deltas diverged: {d_on} {d_off}"
    assert q_on == q_off, f"solver query counts diverged: {q_on} {q_off}"
    return interned, structural


def _circ_observables(result):
    if result is None:
        return None
    obs = {
        "kind": type(result).__name__,
        "predicates": tuple(p.key() for p in result.predicates),
        "outer": result.stats.outer_iterations,
        "inner": result.stats.inner_iterations,
        "states": result.stats.abstract_states,
        "final_k": result.stats.final_k,
    }
    if isinstance(result, CircSafe):
        obs["acfa_size"] = result.context.size
    if isinstance(result, CircUnsafe):
        obs["steps"] = len(result.steps)
        obs["threads"] = result.n_threads
    return obs


def _checked(cfa, race_on):
    try:
        return circ(cfa, race_on=race_on, **BUDGET)
    except CircBudgetExceeded as exc:
        return exc.result
    except CircError:
        return None


def _row_objs(rows):
    """Report-v1 rows with the wall-clock field masked (all else exact)."""
    out = []
    for r in rows:
        obj = r.to_obj()
        obj.pop("time_ms")
        out.append(obj)
    return out


# -- CI smoke slice -----------------------------------------------------------


def test_smoke_fig2to4_check_path():
    def run():
        result = circ(
            lower_source(TEST_AND_SET_SOURCE), race_on="x", keep_history=True
        )
        return _circ_observables(result)

    interned, structural = _differential(run)
    assert interned == structural
    assert interned["kind"] == "CircSafe"


def test_smoke_batch_path_report_rows():
    items = [
        BatchItem(model="fig2to4", source=TEST_AND_SET_SOURCE, variables=("x",)),
        BatchItem(model="racy", source=RACY_SOURCE, variables=("y",)),
    ]

    def run():
        report = run_batch(items, cache_dir=None, workers=1)
        return _row_objs(rows_from_batch(report))

    interned, structural = _differential(run)
    assert interned == structural
    verdicts = {r["model"]: r["verdict"] for r in interned}
    assert verdicts == {"fig2to4": "safe", "racy": "race"}


def test_smoke_portfolio_path_report_rows():
    def run():
        report = run_portfolio(
            lower_source(TEST_AND_SET_SOURCE),
            "x",
            cancel=False,
            parallel=False,
        )
        rows = _row_objs(rows_from_portfolio(report, model="fig2to4"))
        return report.verdict, rows

    (v_on, rows_on), (v_off, rows_off) = _differential(run)
    assert v_on == v_off == "safe"
    assert rows_on == rows_off


# -- seeded fuzz sample -------------------------------------------------------


def test_fuzz_sample_check_path():
    programs = []
    for seed in FUZZ_SEEDS:
        gp = generate(seed, GenConfig(pointers=False))
        programs.append((seed, gp.program, gp.thread, gp.race_var))

    def run():
        out = {}
        for seed, program, thread, race_var in programs:
            cfa = lower_thread(program, thread)
            out[seed] = _circ_observables(_checked(cfa, race_var))
        return out

    interned, structural = _differential(run)
    assert interned == structural


def test_fuzz_sample_batch_rows():
    items = []
    for seed in FUZZ_SEEDS[:3]:
        gp = generate(seed, GenConfig(pointers=False))
        items.append(
            BatchItem(
                model=f"fuzz-{seed}",
                source=gp.source,
                thread=gp.thread,
                variables=(gp.race_var,),
            )
        )

    def run():
        report = run_batch(items, cache_dir=None, workers=1, **BUDGET)
        return _row_objs(rows_from_batch(report))

    interned, structural = _differential(run)
    assert interned == structural


# -- mode bookkeeping sanity --------------------------------------------------


def test_modes_actually_differ():
    """The harness would be vacuous if both runs took the interned path."""
    prev = T.set_interning(True)
    try:
        a = T.le(T.var("hc_probe"), T.num(1))
        b = T.le(T.var("hc_probe"), T.num(1))
        assert a is b and a.tid is not None
        T.set_interning(False)
        c = T.le(T.var("hc_probe"), T.num(1))
        d = T.le(T.var("hc_probe"), T.num(1))
        assert c is not d and c.tid is None
        assert c == d == a
    finally:
        T.set_interning(prev)
