"""Property suite for the hash-consed term layer.

Five families of properties, each against an independently computed
oracle:

* **intern identity** -- building a term twice, from scratch, yields the
  *same object*, and pickling round-trips through re-interning;
* **canonicalization idempotence** -- :meth:`UnionFind.canon` is a
  fixpoint after one application;
* **alpha-renaming digest stability** -- canonical qcache digests are
  invariant under how a renamed formula was built (direct construction
  vs. :func:`substitute`), under conjunct permutation/duplication, and
  under rename round-trips;
* **union-find laws** -- find/union agree with a naive partition oracle,
  and ``find`` compresses the path it walked;
* **memoized traversals** -- ``free_vars``/``atoms``/``substitute``
  agree with from-scratch recomputation (structural-mode runs and a
  semantic evaluation oracle).
"""

import multiprocessing
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt.qcache import conjunction_key, key_digest

SETTINGS = dict(max_examples=60, deadline=None)

_NAMES = ("x", "y", "z", "w")
names = st.sampled_from(_NAMES)
ints = st.integers(min_value=-4, max_value=4)

arith = st.recursive(
    st.one_of(names.map(T.var), ints.map(T.num)),
    lambda kids: st.one_of(
        st.tuples(kids, kids).map(lambda ab: T.Add((ab[0], ab[1]))),
        st.tuples(kids, kids).map(lambda ab: T.Sub(ab[0], ab[1])),
        kids.map(T.Neg),
        st.tuples(ints, kids).map(lambda ab: T.Mul(T.num(ab[0]), ab[1])),
    ),
    max_leaves=8,
)

atoms_st = st.tuples(st.sampled_from(T.CMP_OPS), arith, arith).map(
    lambda t: T.Cmp(t[0], t[1], t[2])
)

formulas = st.recursive(
    st.one_of(atoms_st, st.booleans().map(T.BoolConst)),
    lambda kids: st.one_of(
        kids.map(T.Not),
        st.lists(kids, min_size=1, max_size=3).map(lambda xs: T.And(tuple(xs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda xs: T.Or(tuple(xs))),
        st.tuples(kids, kids).map(lambda ab: T.Implies(ab[0], ab[1])),
        st.tuples(kids, kids).map(lambda ab: T.Iff(ab[0], ab[1])),
    ),
    max_leaves=6,
)

terms = st.one_of(arith, formulas)


def deep_rebuild(t: T.Term) -> T.Term:
    """Reconstruct ``t`` bottom-up through raw constructor calls."""
    if isinstance(t, T.Var):
        return T.Var(str(t.name))
    if isinstance(t, T.IntConst):
        return T.IntConst(int(t.value))
    if isinstance(t, T.BoolConst):
        return T.BoolConst(bool(t.value))
    if isinstance(t, (T.Add, T.And, T.Or)):
        return type(t)(tuple(deep_rebuild(k) for k in t.args))
    if isinstance(t, T.Cmp):
        return T.Cmp(t.op, deep_rebuild(t.lhs), deep_rebuild(t.rhs))
    if isinstance(t, (T.Sub, T.Mul, T.Implies, T.Iff)):
        return type(t)(deep_rebuild(t.lhs), deep_rebuild(t.rhs))
    if isinstance(t, (T.Neg, T.Not)):
        return type(t)(deep_rebuild(t.arg))
    raise TypeError(t)


# -- intern identity ----------------------------------------------------------


@settings(**SETTINGS)
@given(terms)
def test_building_twice_yields_the_same_object(t):
    assert deep_rebuild(t) is t


@settings(**SETTINGS)
@given(terms)
def test_structural_mode_builds_fresh_but_equal_nodes(t):
    prev = T.set_interning(False)
    try:
        a = deep_rebuild(t)
        b = deep_rebuild(t)
    finally:
        T.set_interning(prev)
    assert a == b
    assert a is not b
    assert a.tid is None and b.tid is None
    # Cross-mode comparison falls back to structural equality.
    assert a == t and t == a


@settings(**SETTINGS)
@given(terms)
def test_hash_agrees_across_modes(t):
    prev = T.set_interning(False)
    try:
        a = deep_rebuild(t)
    finally:
        T.set_interning(prev)
    assert hash(a) == hash(t)
    assert len({a, t}) == 1


@settings(**SETTINGS)
@given(terms)
def test_interned_terms_carry_process_unique_ids(t):
    seen = {}
    for node in T.subterms(t):
        assert node.tid is not None
        prior = seen.setdefault(node.tid, node)
        assert prior is node  # one id, one object
    assert deep_rebuild(t).tid == t.tid


@settings(**SETTINGS)
@given(terms)
def test_pickle_roundtrip_reinterns_to_the_same_object(t):
    assert pickle.loads(pickle.dumps(t)) is t


# -- union-find laws ----------------------------------------------------------

pairs = st.lists(st.tuples(names, names), min_size=0, max_size=12)


def _oracle_partition(union_ops):
    """Naive disjoint-set oracle: a list of frozensets."""
    classes = [frozenset((n,)) for n in _NAMES]
    for a, b in union_ops:
        ca = next(c for c in classes if a in c)
        cb = next(c for c in classes if b in c)
        if ca is not cb:
            classes = [c for c in classes if c is not ca and c is not cb]
            classes.append(ca | cb)
    return classes


@settings(**SETTINGS)
@given(pairs)
def test_union_find_matches_partition_oracle(ops):
    uf = T.UnionFind()
    for a, b in ops:
        uf.union(T.var(a), T.var(b))
    classes = _oracle_partition(ops)
    for c in classes:
        reps = {uf.find(T.var(n)) for n in c}
        assert len(reps) == 1  # same class, same representative
        rep = reps.pop()
        assert rep.name in c  # the representative is a member
    for ca in classes:
        for cb in classes:
            if ca is not cb:
                assert uf.find(T.var(next(iter(ca)))) != uf.find(
                    T.var(next(iter(cb)))
                )


@settings(**SETTINGS)
@given(pairs, names)
def test_find_is_idempotent_and_compresses(ops, probe):
    uf = T.UnionFind()
    for a, b in ops:
        uf.union(T.var(a), T.var(b))
    v = T.var(probe)
    root = uf.find(v)
    assert uf.find(root) is root
    assert uf.find(v) is root
    # Path compression: after a find, every touched node points at the
    # root directly (or is the root and absent from the parent map).
    if v is not root:
        assert uf._parent[v] is root


def test_union_by_rank_keeps_chains_flat():
    uf = T.UnionFind()
    vs = [T.var(f"r{i}") for i in range(8)]
    for i in range(1, len(vs)):
        uf.union(vs[0], vs[i])
    root = uf.find(vs[0])
    for v in vs:
        assert uf.find(v) is root
        if v is not root:
            assert uf._parent[v] is root


@settings(**SETTINGS)
@given(pairs, terms)
def test_canonicalization_is_idempotent(ops, t):
    uf = T.UnionFind()
    for a, b in ops:
        uf.union(T.var(a), T.var(b))
    once = uf.canon(t)
    assert uf.canon(once) is once
    # Canonicalization only ever substitutes representatives in.
    reps = {uf.find(T.var(n)).name for n in T.free_vars(t)}
    assert T.free_vars(once) <= reps


# -- alpha-renaming digest stability ------------------------------------------

atom_lists = st.lists(atoms_st, min_size=1, max_size=5)


@settings(**SETTINGS)
@given(atom_lists, st.randoms(use_true_random=False))
def test_conjunction_digest_is_order_and_duplicate_insensitive(lits, rng):
    shuffled = list(lits) + [rng.choice(lits)]
    rng.shuffle(shuffled)
    assert key_digest(conjunction_key(lits)) == key_digest(
        conjunction_key(shuffled)
    )


@settings(**SETTINGS)
@given(atom_lists)
def test_alpha_renaming_digest_stability(lits):
    mapping = {n: f"{n}__renamed" for n in _NAMES}
    inverse = {v: k for k, v in mapping.items()}
    direct = [T.rename(lit, mapping) for lit in lits]
    # Substituting var terms and renaming names build the same formula...
    subst = [
        T.substitute(lit, {k: T.var(v) for k, v in mapping.items()})
        for lit in lits
    ]
    assert all(a is b for a, b in zip(direct, subst))
    # ...so the canonical digest cannot depend on construction route.
    assert key_digest(conjunction_key(direct)) == key_digest(
        conjunction_key(subst)
    )
    # Renaming back is the identity on interned terms and digests.
    back = [T.rename(lit, inverse) for lit in direct]
    assert all(a is b for a, b in zip(back, lits))
    assert key_digest(conjunction_key(back)) == key_digest(
        conjunction_key(lits)
    )


# -- memoized traversals vs. from-scratch oracles -----------------------------


def _scratch_free_vars(t):
    return frozenset(n.name for n in T.subterms(t) if isinstance(n, T.Var))


def _scratch_atoms(t):
    return frozenset(n for n in T.subterms(t) if isinstance(n, T.Cmp))


@settings(**SETTINGS)
@given(terms)
def test_memoized_free_vars_matches_scratch_walk(t):
    assert T.free_vars(t) == _scratch_free_vars(t)
    assert T.free_vars(t) is T.free_vars(t)  # memo returns the cached set


@settings(**SETTINGS)
@given(formulas)
def test_memoized_atoms_matches_scratch_walk(t):
    assert T.atoms(t) == _scratch_atoms(t)
    assert T.atoms(t) is T.atoms(t)


subst_maps = st.dictionaries(names, ints, min_size=0, max_size=3)


@settings(**SETTINGS)
@given(arith, subst_maps, st.integers(-3, 3))
def test_substitute_matches_semantic_oracle(t, const_map, fill):
    mapping = {k: T.num(v) for k, v in const_map.items()}
    out = T.substitute(t, mapping)
    assert out is T.substitute(t, mapping)  # memoized result is stable
    env = {n: fill for n in _NAMES}
    subst_env = dict(env)
    subst_env.update(const_map)
    assert T.evaluate(out, env) == T.evaluate(t, subst_env)


@settings(**SETTINGS)
@given(terms, subst_maps)
def test_substitute_matches_structural_mode_recomputation(t, const_map):
    mapping = {k: T.num(v) for k, v in const_map.items()}
    memoized = T.substitute(t, mapping)
    # set_interning flushes the substitution memo, so the structural run
    # recomputes from scratch; cross-mode == is structural equality.
    prev = T.set_interning(False)
    try:
        scratch = T.substitute(t, mapping)
    finally:
        T.set_interning(prev)
    assert memoized == scratch


@settings(**SETTINGS)
@given(terms, subst_maps)
def test_substitute_untouched_subtrees_are_shared(t, const_map):
    mapping = {k: T.num(v) for k, v in const_map.items()}
    if T.free_vars(t).isdisjoint(mapping):
        assert T.substitute(t, mapping) is t


# -- pickling across process boundaries (scheduler / serve workers) ----------


def _fixture_term():
    x, y = T.var("x"), T.var("y")
    return T.and_(
        T.le(T.add(x, T.mul(T.num(2), y)), T.num(3)),
        T.or_(T.eq(x, T.num(0)), T.not_(T.ge(y, T.num(1)))),
    )


def _child_probe(blob: bytes) -> tuple[bool, bool, bytes]:
    """Runs in a spawned process with an empty intern table."""
    received = pickle.loads(blob)
    local = _fixture_term()
    return (received is local, received.tid is not None, pickle.dumps(received))


def test_unpickling_reinterns_across_process_boundary():
    t = _fixture_term()
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        same, interned, back = pool.apply(_child_probe, (pickle.dumps(t),))
    # The child re-interned the payload: it coincides with the term the
    # child built locally, and the round-trip home re-interns onto ours.
    assert same
    assert interned
    assert pickle.loads(back) is t


def test_unpickling_reinterns_after_table_clear():
    t = _fixture_term()
    blob = pickle.dumps(t)
    gen = T.intern_generation()
    T.clear_intern_table()
    try:
        assert T.intern_generation() == gen + 1
        restored = pickle.loads(blob)
        assert restored is not t  # new generation, new canonical object
        assert restored == t  # cross-generation equality is structural
        assert restored is pickle.loads(blob)
    finally:
        T.clear_intern_table()
