"""Unit tests for formula normalization (rewrite, NNF, Tseitin)."""

import pytest

from repro.smt import terms as T
from repro.smt.cnf import AtomTable, rewrite_to_le, to_nnf, tseitin
from repro.smt.sat import SAT, UNSAT, SatSolver

x, y = T.var("x"), T.var("y")


def test_rewrite_eq_becomes_conjunction():
    out = rewrite_to_le(T.eq(x, 3))
    assert isinstance(out, T.And)
    assert len(out.args) == 2
    for atom in out.args:
        assert isinstance(atom, T.Cmp) and atom.op == "<="


def test_rewrite_ne_becomes_disjunction():
    out = rewrite_to_le(T.ne(x, 3))
    assert isinstance(out, T.Or)


def test_rewrite_strict_uses_integer_tightening():
    out = rewrite_to_le(T.lt(x, 3))
    # x < 3 == x - 2 <= 0: satisfied at 2, violated at 3.
    assert T.evaluate(out, {"x": 2}) is True
    assert T.evaluate(out, {"x": 3}) is False


def test_rewrite_preserves_semantics():
    f = T.implies(T.gt(x, 0), T.or_(T.ge(y, x), T.eq(y, 0)))
    g = rewrite_to_le(f)
    for vx in range(-2, 3):
        for vy in range(-2, 3):
            env = {"x": vx, "y": vy}
            assert T.evaluate(f, env) == T.evaluate(g, env)


def test_nnf_removes_negations():
    f = rewrite_to_le(T.not_(T.and_(T.le(x, 0), T.not_(T.le(y, 0)))))
    g = to_nnf(f)
    assert not any(isinstance(s, T.Not) for s in T.subterms(g))


def test_nnf_preserves_semantics():
    f = rewrite_to_le(
        T.not_(T.implies(T.le(x, 2), T.and_(T.le(y, 0), T.le(x, 5))))
    )
    g = to_nnf(f)
    for vx in range(-1, 7):
        for vy in range(-2, 3):
            env = {"x": vx, "y": vy}
            assert T.evaluate(f, env) == T.evaluate(g, env)


def test_nnf_requires_rewritten_atoms():
    with pytest.raises(ValueError):
        to_nnf(T.eq(x, 0))


def test_tseitin_true_formula():
    s = SatSolver()
    table = AtomTable(s.new_var)
    assert tseitin(T.TRUE, s, table) is None
    assert s.solve() == SAT


def test_tseitin_false_formula():
    s = SatSolver()
    table = AtomTable(s.new_var)
    tseitin(T.FALSE, s, table)
    assert s.solve() == UNSAT


def test_tseitin_shares_atom_variables():
    s = SatSolver()
    table = AtomTable(s.new_var)
    atom = rewrite_to_le(T.le(x, 0))
    f = to_nnf(T.and_(atom, T.or_(atom, atom)))
    tseitin(f, s, table)
    # One theory variable despite three syntactic occurrences.
    assert len(table.theory_vars()) == 1


def test_atom_table_round_trip():
    s = SatSolver()
    table = AtomTable(s.new_var)
    from repro.smt.linear import linearize

    expr = linearize(T.sub(x, T.num(3)))
    v = table.var_for(expr)
    assert table.var_for(expr) == v
    assert table.expr_for(v) == expr
    assert table.expr_for(999) is None
