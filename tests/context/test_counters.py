"""Unit tests for the counter abstraction."""

import pytest

from repro.context.counters import (
    OMEGA,
    ContextState,
    counter_dec,
    counter_inc,
)


def test_omega_is_singleton():
    import pickle

    assert pickle.loads(pickle.dumps(OMEGA)) is OMEGA


def test_increment_saturates_at_k():
    assert counter_inc(0, 2) == 1
    assert counter_inc(1, 2) == 2
    assert counter_inc(2, 2) is OMEGA
    assert counter_inc(OMEGA, 2) is OMEGA


def test_increment_k1():
    # k=1: 1+1 is already OMEGA (the paper's note: k+1 = omega).
    assert counter_inc(1, 1) is OMEGA


def test_decrement():
    assert counter_dec(2) == 1
    assert counter_dec(1) == 0
    assert counter_dec(OMEGA) is OMEGA  # omega - 1 = omega
    with pytest.raises(ValueError):
        counter_dec(0)


def test_initial_states():
    g = ContextState.initial_omega(3, 1)
    assert g.count(1) is OMEGA and g.count(0) == 0 and g.count(2) == 0
    g2 = ContextState.initial_exact(3, 0, 2)
    assert g2.count(0) == 2


def test_occupied():
    g = ContextState([0, 1, OMEGA])
    assert list(g.occupied()) == [1, 2]


def test_at_least_two():
    g = ContextState([0, 1, 2, OMEGA])
    assert not g.at_least_two(0)
    assert not g.at_least_two(1)
    assert g.at_least_two(2)
    assert g.at_least_two(3)


def test_move():
    g = ContextState([2, 0])
    g2 = g.move(0, 1, k=5)
    assert g2.counts == (1, 1)
    # Original unchanged (immutability).
    assert g.counts == (2, 0)


def test_move_from_omega_stays_omega():
    g = ContextState([OMEGA, 0])
    g2 = g.move(0, 1, k=1)
    assert g2.count(0) is OMEGA
    assert g2.count(1) == 1
    g3 = g2.move(0, 1, k=1)
    assert g3.count(1) is OMEGA  # 1+1 saturates at k=1


def test_hashable_value_semantics():
    a = ContextState([1, OMEGA])
    b = ContextState([1, OMEGA])
    assert a == b and hash(a) == hash(b)


def test_immutability():
    g = ContextState([1])
    with pytest.raises(AttributeError):
        g.counts = (2,)
