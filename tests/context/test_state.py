"""Unit tests for abstract program states and the abstract post."""

from repro.acfa.acfa import Acfa, AcfaEdge, empty_acfa
from repro.context.counters import OMEGA, ContextState
from repro.context.state import AbstractProgram, CtxMove, MainMove
from repro.lang import lower_source
from repro.predabs.abstractor import Abstractor
from repro.predabs.region import PredicateSet
from repro.smt import terms as T

SRC = """
global int g;
thread m {
  while (1) {
    atomic { assume(g == 0); g = 1; }
    g = 0;
  }
}
"""


def make_program(acfa=None, preds=(), k=1):
    cfa = lower_source(SRC)
    ab = Abstractor(PredicateSet(preds))
    return AbstractProgram(cfa, ab, acfa or empty_acfa(), k)


def ctx_acfa():
    g0, g1 = T.eq(T.var("g"), 0), T.eq(T.var("g"), 1)
    return Acfa(
        "ctx",
        q0=0,
        locations=[0, 1],
        label={0: (), 1: (g1,)},
        edges=[
            AcfaEdge(0, frozenset({"g"}), 1),
            AcfaEdge(1, frozenset({"g"}), 0),
        ],
    )


def test_initial_state_omega():
    p = make_program()
    s = p.initial()
    assert s.pc == p.cfa.q0
    assert s.context.count(p.acfa.q0) is OMEGA


def test_initial_state_exact():
    p = make_program(k=3)
    s = p.initial(omega_start=False)
    assert s.context.count(p.acfa.q0) == 3


def test_enabled_moves_without_context_edges():
    p = make_program()
    s = p.initial()
    moves = list(p.enabled_moves(s))
    assert all(isinstance(m, MainMove) for m in moves)
    assert len(moves) == 1  # single loop-entry edge


def test_enabled_moves_include_context():
    p = make_program(acfa=ctx_acfa())
    s = p.initial()
    kinds = {type(m) for m in p.enabled_moves(s)}
    assert kinds == {MainMove, CtxMove}


def test_atomic_main_excludes_context():
    preds = (T.eq(T.var("g"), 0),)
    p = make_program(acfa=ctx_acfa(), preds=preds)
    s = p.initial()
    # Drive main into the atomic section.
    (entry,) = [m for m in p.enabled_moves(s) if isinstance(m, MainMove)]
    s1 = p.post(s, entry)
    assert p.cfa.is_atomic(s1.pc)
    moves = list(p.enabled_moves(s1))
    assert all(isinstance(m, MainMove) for m in moves)


def test_post_main_tracks_predicates():
    g0 = T.eq(T.var("g"), 0)
    g1 = T.eq(T.var("g"), 1)
    p = make_program(preds=(g0, g1))
    s = p.initial()
    # g==0 initially.
    idx0 = p.abstractor.preds.index(g0)
    assert (idx0, True) in s.region.literals


def test_post_context_havoc_weakens():
    g0 = T.eq(T.var("g"), 0)
    p = make_program(acfa=ctx_acfa(), preds=(g0,))
    s = p.initial()
    (ctx_move,) = [
        m
        for m in p.enabled_moves(s)
        if isinstance(m, CtxMove) and m.edge.src == 0
    ]
    s1 = p.post(s, ctx_move)
    assert s1 is not None
    # g==0 forgotten; target label g==1 forces not (g==0).
    idx0 = p.abstractor.preds.index(g0)
    assert (idx0, False) in s1.region.literals
    assert s1.context.count(1) == 1


def test_post_context_respects_target_label_contradiction():
    # Context invariant of the *new* state includes the target label; a
    # main-edge assume contradicting it dies.
    g1 = T.eq(T.var("g"), 1)
    p = make_program(acfa=ctx_acfa(), preds=(T.eq(T.var("g"), 0), g1))
    s = p.initial()
    (ctx_move,) = [
        m
        for m in p.enabled_moves(s)
        if isinstance(m, CtxMove) and m.edge.src == 0
    ]
    s1 = p.post(s, ctx_move)
    # Main's atomic-entry edge then assume(g==0) must be pruned: a context
    # thread sits at location 1 labeled g==1.
    (entry,) = [m for m in p.enabled_moves(s1) if isinstance(m, MainMove)]
    s2 = p.post(s1, entry)
    assert s2 is not None
    (assume_move,) = [
        m for m in p.enabled_moves(s2) if isinstance(m, MainMove)
    ]
    s3 = p.post(s2, assume_move)
    assert s3 is None  # g==0 against the g==1 invariant


def test_race_state_main_vs_context():
    cfa = lower_source("global int x; thread m { while (1) { x = x + 1; } }")
    acfa = Acfa(
        "w",
        q0=0,
        locations=[0],
        label={0: ()},
        edges=[AcfaEdge(0, frozenset({"x"}), 0)],
    )
    ab = Abstractor(PredicateSet())
    p = AbstractProgram(cfa, ab, acfa, 1)
    s = p.initial()
    assert p.is_race_state(s, "x")


def test_race_needs_two_context_writers_when_main_idle():
    cfa = lower_source("global int x, y; thread m { y = 1; }")
    acfa = Acfa(
        "w",
        q0=0,
        locations=[0, 1],
        label={0: (), 1: ()},
        edges=[AcfaEdge(1, frozenset({"x"}), 1)],
    )
    ab = Abstractor(PredicateSet())
    p = AbstractProgram(cfa, ab, acfa, 2)
    # One writer at location 1: no race.
    s1 = type(p.initial())(
        p.cfa.q0, p.initial().region, ContextState([OMEGA, 1])
    )
    assert not p.is_race_state(s1, "x")
    # Two writers: race.
    s2 = type(p.initial())(
        p.cfa.q0, p.initial().region, ContextState([OMEGA, 2])
    )
    assert p.is_race_state(s2, "x")
    # OMEGA writers: race.
    s3 = type(p.initial())(
        p.cfa.q0, p.initial().region, ContextState([OMEGA, OMEGA])
    )
    assert p.is_race_state(s3, "x")


def test_no_race_when_atomic_occupied():
    cfa = lower_source(
        "global int x; thread m { while (1) { atomic { x = x + 1; } } }"
    )
    acfa = Acfa(
        "w",
        q0=0,
        locations=[0, 1],
        label={0: (), 1: ()},
        edges=[AcfaEdge(0, frozenset(), 1), AcfaEdge(1, frozenset({"x"}), 0)],
        atomic=[1],
    )
    ab = Abstractor(PredicateSet())
    p = AbstractProgram(cfa, ab, acfa, 1)
    s = type(p.initial())(
        p.cfa.q0, p.initial().region, ContextState([OMEGA, 1])
    )
    # Context thread at atomic location 1 -> no race even though it havocs x
    # and main may write x further on.
    assert not p.is_race_state(s, "x")
