"""End-to-end scenarios across the whole pipeline."""

import pytest

from repro import check_race, check_race_bounded, lower_source
from repro.baselines import lockset_analysis

DOUBLE_CHECKED = """
global int data, ready;
thread main {
  local int seen;
  while (1) {
    atomic { seen = ready; if (ready == 0) { ready = 1; } }
    if (seen == 0) {
      data = data + 1;
      ready = 0;
    }
  }
}
"""

HANDOFF = """
global int buf, full;
thread main {
  while (1) {
    if (*) {
      // producer: only writes when empty
      atomic { assume(full == 0); full = 1; }
      buf = buf + 1;
      full = 2;
    } else {
      // consumer: only reads when full
      atomic { assume(full == 2); full = 3; }
      buf = 0;
      full = 0;
    }
  }
}
"""

BROKEN_HANDOFF = """
global int buf, full;
thread main {
  while (1) {
    if (*) {
      atomic { assume(full == 0); full = 1; }
      buf = buf + 1;
      full = 2;
    } else {
      // BUG: consumes while the producer may still be writing
      atomic { assume(full == 1); full = 3; }
      buf = 0;
      full = 0;
    }
  }
}
"""


def test_double_checked_idiom_safe():
    result = check_race(DOUBLE_CHECKED, "data")
    assert result.safe


def test_handoff_protocol_safe():
    result = check_race(HANDOFF, "buf")
    assert result.safe


def test_broken_handoff_races():
    result = check_race(BROKEN_HANDOFF, "buf")
    assert not result.safe


def test_state_variable_also_safe():
    # The protecting variable itself: written inside atomic sections and at
    # guarded points only.
    result = check_race(HANDOFF, "full")
    assert result.safe


def test_lockset_false_positive_circ_proof_pair():
    cfa = lower_source(DOUBLE_CHECKED)
    assert lockset_analysis(cfa).warns_on("data")
    assert check_race(cfa, "data").safe


def test_every_written_global_checkable():
    from repro.races import racy_variables

    cfa = lower_source(DOUBLE_CHECKED)
    for var in sorted(racy_variables(cfa)):
        result = check_race(cfa, var)
        assert result.safe, var


def test_unbounded_data_still_verifiable():
    # data grows without bound; predicate abstraction handles it where the
    # explicit oracle cannot.
    result = check_race(DOUBLE_CHECKED, "data")
    assert result.safe
    bounded = check_race_bounded(
        DOUBLE_CHECKED, "data", n_threads=2, max_states=5_000
    )
    assert not bounded.complete  # the oracle gives up; CIRC does not


@pytest.mark.parametrize("n", [2, 3])
def test_bounded_oracle_agrees_on_finite_variant(n):
    src = DOUBLE_CHECKED.replace("data = data + 1;", "data = 1 - data;")
    assert check_race(src, "data").safe
    oracle = check_race_bounded(src, "data", n_threads=n)
    assert oracle.complete and not oracle.found
