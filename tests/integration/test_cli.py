"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

RACY = "global int x; thread t { while (1) { x = x + 1; } }"


@pytest.fixture
def fig1_file(tmp_path):
    f = tmp_path / "fig1.c"
    f.write_text(FIG1)
    return str(f)


@pytest.fixture
def racy_file(tmp_path):
    f = tmp_path / "racy.c"
    f.write_text(RACY)
    return str(f)


def test_check_safe(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out


def test_check_race_exit_code(racy_file, capsys):
    assert main(["check", racy_file, "--var", "x"]) == 1
    out = capsys.readouterr().out
    assert "RACE" in out


def test_check_all(fig1_file, capsys):
    assert main(["check", fig1_file, "--all"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out and "state: SAFE" in out


def test_check_verbose_shows_predicates(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x", "-v"]) == 0
    out = capsys.readouterr().out
    assert "predicate: old == state" in out


def test_check_omega_variant(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x", "--omega"]) == 0


def test_check_requires_var(fig1_file, capsys):
    assert main(["check", fig1_file]) == 2


def test_explore_finds_race(racy_file, capsys):
    assert main(["explore", racy_file, "--var", "x", "--threads", "2"]) == 1
    assert "FOUND race" in capsys.readouterr().out


def test_explore_budget(fig1_file, capsys):
    code = main(
        ["explore", fig1_file, "--var", "x", "--max-states", "100"]
    )
    assert code == 3  # inconclusive: unbounded counter


def test_baselines(fig1_file, capsys):
    assert main(["baselines", fig1_file, "--var", "x"]) == 0
    out = capsys.readouterr().out
    assert "lockset" in out and "WARNS" in out
    assert "StatelessInsufficient" in out


def test_cfa_text(fig1_file, capsys):
    assert main(["cfa", fig1_file]) == 0
    assert "CFA main" in capsys.readouterr().out


def test_cfa_dot(fig1_file, capsys):
    assert main(["cfa", fig1_file, "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_missing_file(capsys):
    assert main(["check", "/nonexistent.c", "--var", "x"]) == 2


def test_parse_error(tmp_path, capsys):
    f = tmp_path / "bad.c"
    f.write_text("thread { oops")
    assert main(["cfa", str(f)]) == 2


def test_simulate_finds_bug(racy_file, capsys):
    assert main(["simulate", racy_file, "--var", "x", "--runs", "10"]) == 1
    assert "hit a bug" in capsys.readouterr().out


def test_simulate_clean_program(fig1_file, capsys):
    code = main(
        ["simulate", fig1_file, "--var", "x", "--runs", "10", "--threads", "3"]
    )
    assert code == 0
    assert "proves nothing" in capsys.readouterr().out


def test_redundant_subcommand(tmp_path, capsys):
    f = tmp_path / "belt.c"
    f.write_text(
        "global int m, x;\n"
        "thread t { while (1) { lock(m); atomic { x = x + 1; } unlock(m); } }\n"
    )
    assert main(["redundant", str(f), "--var", "x"]) == 0
    out = capsys.readouterr().out
    assert "REDUNDANT" in out
