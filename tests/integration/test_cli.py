"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

RACY = "global int x; thread t { while (1) { x = x + 1; } }"

MIXED = """
global int dead, ro, p, c;
thread t {
  local int a;
  while (1) {
    a = ro;
    atomic { p = p + 1; }
    c = c + 1;
  }
}
"""


@pytest.fixture
def fig1_file(tmp_path):
    f = tmp_path / "fig1.c"
    f.write_text(FIG1)
    return str(f)


@pytest.fixture
def racy_file(tmp_path):
    f = tmp_path / "racy.c"
    f.write_text(RACY)
    return str(f)


@pytest.fixture
def mixed_file(tmp_path):
    f = tmp_path / "mixed.c"
    f.write_text(MIXED)
    return str(f)


@pytest.fixture
def locked_file(tmp_path):
    f = tmp_path / "locked.c"
    f.write_text(
        "global int m, x; "
        "thread t { while (1) { lock(m); x = x + 1; unlock(m); } }\n"
    )
    return str(f)


def test_check_safe(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out


def test_check_race_exit_code(racy_file, capsys):
    assert main(["check", racy_file, "--var", "x"]) == 1
    out = capsys.readouterr().out
    assert "RACE" in out


def test_check_all(fig1_file, capsys):
    assert main(["check", fig1_file, "--all"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out and "state: SAFE" in out


def test_check_verbose_shows_predicates(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x", "-v"]) == 0
    out = capsys.readouterr().out
    assert "predicate: old == state" in out


def test_check_omega_variant(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x", "--omega"]) == 0


def test_check_requires_var(fig1_file, capsys):
    assert main(["check", fig1_file]) == 2


def test_explore_finds_race(racy_file, capsys):
    assert main(["explore", racy_file, "--var", "x", "--threads", "2"]) == 1
    assert "FOUND race" in capsys.readouterr().out


def test_explore_budget(fig1_file, capsys):
    code = main(
        ["explore", fig1_file, "--var", "x", "--max-states", "100"]
    )
    assert code == 3  # inconclusive: unbounded counter


def test_baselines(fig1_file, capsys):
    # Exit-code parity with check/batch: the racer cannot decide the
    # Figure 1 idiom (phase 1 finds no monitor, phase 2 no witness), so
    # the reconciled verdict -- and therefore the exit code -- is
    # UNKNOWN, not a blanket 0.
    assert main(["baselines", fig1_file, "--var", "x"]) == 4
    out = capsys.readouterr().out
    assert "lockset" in out and "WARNS" in out
    assert "StatelessInsufficient" in out
    assert "racer:          UNKNOWN" in out


def test_cfa_text(fig1_file, capsys):
    assert main(["cfa", fig1_file]) == 0
    assert "CFA main" in capsys.readouterr().out


def test_cfa_text_shows_access_sets(fig1_file, capsys):
    assert main(["cfa", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "global access sets per location:" in out
    assert "writes={x}" in out
    assert "reads={state}" in out


def test_cfa_dot(fig1_file, capsys):
    assert main(["cfa", fig1_file, "--dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "access sets" not in out  # dot output stays pure Graphviz


def test_static_subcommand(mixed_file, capsys):
    assert main(["static", mixed_file]) == 0
    out = capsys.readouterr().out
    assert "dead" in out and "local" in out
    assert "read-shared" in out
    assert "protected" in out
    assert "must-check" in out
    assert "1/4 need CIRC" in out


def test_static_subcommand_json(mixed_file, capsys):
    import json

    assert main(["static", mixed_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdicts"]["dead"]["verdict"] == "local"
    assert payload["verdicts"]["ro"]["verdict"] == "read-shared"
    assert payload["verdicts"]["p"]["verdict"] == "protected"
    assert payload["verdicts"]["c"]["verdict"] == "must-check"
    assert payload["must_check"] == ["c"]


def test_static_single_variable(mixed_file, capsys):
    assert main(["static", mixed_file, "--var", "p"]) == 0
    out = capsys.readouterr().out
    assert "p" in out and "protected" in out
    assert "dead" not in out


def test_check_prefilter_prunes(mixed_file, capsys):
    # c genuinely races, so the exit code stays 1 -- pruning p must not
    # mask that.
    assert main(["check", mixed_file, "--all"]) == 1
    out = capsys.readouterr().out
    assert "p: SAFE  [static: protected" in out
    assert "c: RACE" in out  # CIRC still ran on c and found the bug


def test_check_no_prefilter_runs_circ_everywhere(mixed_file, capsys):
    assert main(["check", mixed_file, "--all", "--no-prefilter"]) == 1
    out = capsys.readouterr().out
    assert "static:" not in out
    assert "predicates" in out  # p went through CIRC this time
    assert "c: RACE" in out


def test_check_prefilter_identical_verdict_on_race(racy_file, capsys):
    assert main(["check", racy_file, "--var", "x"]) == 1
    assert "RACE" in capsys.readouterr().out


def test_missing_file(capsys):
    assert main(["check", "/nonexistent.c", "--var", "x"]) == 2


def test_parse_error(tmp_path, capsys):
    f = tmp_path / "bad.c"
    f.write_text("thread { oops")
    assert main(["cfa", str(f)]) == 2


def test_simulate_finds_bug(racy_file, capsys):
    assert main(["simulate", racy_file, "--var", "x", "--runs", "10"]) == 1
    assert "hit a bug" in capsys.readouterr().out


def test_simulate_clean_program(fig1_file, capsys):
    code = main(
        ["simulate", fig1_file, "--var", "x", "--runs", "10", "--threads", "3"]
    )
    assert code == 0
    assert "proves nothing" in capsys.readouterr().out


def test_redundant_subcommand(tmp_path, capsys):
    f = tmp_path / "belt.c"
    f.write_text(
        "global int m, x;\n"
        "thread t { while (1) { lock(m); atomic { x = x + 1; } unlock(m); } }\n"
    )
    assert main(["redundant", str(f), "--var", "x"]) == 0
    out = capsys.readouterr().out
    assert "REDUNDANT" in out


def test_check_budget_unknown_exit_code(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x", "--max-iterations", "1"]) == 4
    assert "x: UNKNOWN" in capsys.readouterr().out


def test_static_json_includes_shared_report(mixed_file, capsys):
    import json

    assert main(["static", mixed_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-race/report-v1"
    rows = {r["variable"]: r for r in payload["report"]}
    assert rows["p"]["verdict"] == "safe"
    assert rows["c"]["verdict"] == "unknown"
    assert all(r["source"] == "static" for r in payload["report"])
    assert set(rows["c"]) == {
        "model", "variable", "verdict", "source", "time_ms", "detail",
    }


def test_batch_subcommand(fig1_file, racy_file, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    code = main(
        ["batch", fig1_file, racy_file, "--var", "x", "--cache", cache,
         "--jobs", "1"]
    )
    assert code == 1  # racy.c races on x
    out = capsys.readouterr().out
    assert "fig1.c" in out and "racy.c" in out
    assert "race" in out and "safe" in out
    # Second run answers from the cache.
    assert main(
        ["batch", fig1_file, racy_file, "--var", "x", "--cache", cache,
         "--jobs", "1"]
    ) == 1
    out = capsys.readouterr().out
    assert "hit rate 100%" in out


def test_batch_json_shares_report_schema(fig1_file, tmp_path, capsys):
    import json

    code = main(
        ["batch", fig1_file, "--var", "x", "--json",
         "--cache", str(tmp_path / "cache"), "--jobs", "1"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-race/report-v1"
    (row,) = payload["rows"]
    assert set(row) == {
        "model", "variable", "verdict", "source", "time_ms", "detail",
    }
    assert row["verdict"] == "safe"
    assert payload["summary"]["queries"] == 1


def test_batch_budget_unknown_exit_code(fig1_file, tmp_path, capsys):
    code = main(
        ["batch", fig1_file, "--var", "x", "--no-cache", "--jobs", "1",
         "--no-prefilter", "--max-iterations", "1"]
    )
    assert code == 4
    assert "unknown" in capsys.readouterr().out


def test_batch_without_inputs_is_usage_error(capsys):
    assert main(["batch"]) == 2


def test_portfolio_safe_baseline_win(locked_file, capsys):
    assert main(["portfolio", locked_file, "--var", "x", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out
    assert "won by racer" in out
    assert "cancelled" in out  # a confident verdict killed the rest


def test_portfolio_race_exit_code(racy_file, capsys):
    assert main(["portfolio", racy_file, "--var", "x", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "x: RACE" in out and "won by racer" in out


def test_portfolio_circ_wins_figure1(fig1_file, capsys):
    assert main(["portfolio", fig1_file, "--var", "x", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out and "won by circ" in out


def test_portfolio_unknown_exit_code(fig1_file, capsys):
    code = main(
        ["portfolio", fig1_file, "--var", "x", "--no-cache",
         "--max-iterations", "1"]
    )
    assert code == 4
    assert "x: UNKNOWN" in capsys.readouterr().out


def test_portfolio_json_shares_report_schema(locked_file, capsys):
    import json

    assert main(
        ["portfolio", locked_file, "--var", "x", "--no-cache", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-race/report-v1"
    rows = payload["rows"]
    # Reconciled row first, then one row per portfolio member.
    assert rows[0]["source"] == "portfolio:racer"
    assert rows[0]["verdict"] == "safe"
    assert {r["source"] for r in rows[1:]} == {"racer", "absint", "circ"}
    for row in rows:
        assert set(row) == {
            "model", "variable", "verdict", "source", "time_ms", "detail",
        }


def test_check_portfolio_flag(fig1_file, capsys):
    assert main(["check", fig1_file, "--var", "x", "--portfolio"]) == 0
    out = capsys.readouterr().out
    assert "x: SAFE" in out
    assert "portfolio: won by circ" in out


def test_batch_portfolio_flag(fig1_file, racy_file, tmp_path, capsys):
    code = main(
        ["batch", fig1_file, racy_file, "--var", "x", "--portfolio",
         "--cache", str(tmp_path / "cache"), "--jobs", "1"]
    )
    assert code == 1  # racy.c races on x
    out = capsys.readouterr().out
    assert "portfolio:circ" in out  # fig1 decided by CIRC
    assert "portfolio:racer" in out  # racy decided by the racer


def test_exit_code_parity_across_frontends(
    racy_file, locked_file, tmp_path, capsys
):
    """Lock the verdict->exit-code mapping across every frontend: the
    same program must yield the same exit code from check, batch,
    portfolio, and baselines (0 safe, 1 race, 4 unknown)."""
    for path, expected in ((racy_file, 1), (locked_file, 0)):
        assert main(["check", path, "--var", "x"]) == expected
        assert main(
            ["batch", path, "--var", "x", "--no-cache", "--jobs", "1"]
        ) == expected
        assert main(["portfolio", path, "--var", "x", "--no-cache"]) == expected
        assert main(["baselines", path, "--var", "x"]) == expected
        capsys.readouterr()


def test_batch_events_jsonl(fig1_file, tmp_path, capsys):
    import json

    events = tmp_path / "events.jsonl"
    assert main(
        ["batch", fig1_file, "--var", "x", "--no-cache", "--jobs", "1",
         "--events", str(events)]
    ) == 0
    lines = [json.loads(ln) for ln in events.read_text().splitlines()]
    assert any(e["event"] == "batch_summary" for e in lines)
