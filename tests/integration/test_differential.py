"""Differential testing: CIRC vs the exhaustive explicit-state oracle.

Random finite-state programs are generated from a small structured grammar
(toggles, constant writes, guards, optional atomic protection).  For each,
the CIRC verdict for unboundedly many threads is compared against
exhaustive exploration with 2 and 3 threads:

* CIRC-unsafe verdicts carry replayed witnesses, so they are always
  genuine: the oracle must (with enough threads) agree;
* CIRC-safe verdicts cover every thread count, so the oracle must find
  no race at any bounded instance.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circ import CircError, circ
from repro.exec import MultiProgram, explore
from repro.lang import lower_source

# Statement templates over globals x (the race candidate) and s (a guard).
_PROTECTED_BODIES = [
    "atomic {{ x = 1 - x; }}",
    "atomic {{ if (s == 0) {{ x = 1; }} }}",
    "lock(m); x = 1 - x; unlock(m);",
    "atomic {{ assume(s == 0); s = 1; }} x = 1 - x; s = 0;",
]

_UNPROTECTED_BODIES = [
    "x = 1 - x;",
    "if (s == 0) {{ x = 1; }} else {{ x = 0; }}",
    "s = 1; x = s; s = 0;",
]

_FILLER = [
    "skip;",
    "atomic {{ s = 0; }}",
    "if (*) {{ skip; }}",
]


@st.composite
def programs(draw):
    protected = draw(st.booleans())
    body_pool = _PROTECTED_BODIES if protected else _UNPROTECTED_BODIES
    body = draw(st.sampled_from(body_pool))
    filler = draw(st.sampled_from(_FILLER))
    order = draw(st.booleans())
    stmts = [body, filler] if order else [filler, body]
    src = (
        "global int x, s, m;\n"
        "thread main {\n  while (1) {\n    "
        + "\n    ".join(s.format() for s in stmts)
        + "\n  }\n}\n"
    )
    return src


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(programs())
def test_circ_agrees_with_oracle(src):
    cfa = lower_source(src)
    try:
        verdict = circ(cfa, race_on="x", max_states=120_000)
    except CircError:
        pytest.skip("budget exhausted on this sample")
    for n in (2, 3):
        oracle = explore(
            MultiProgram.symmetric(cfa, n), race_on="x", max_states=150_000
        )
        if not oracle.complete:
            continue
        if verdict.safe:
            assert not oracle.found, f"CIRC said safe but {n} threads race:\n{src}"
        # CIRC-unsafe: the oracle may need more threads than n, so only the
        # safe direction is asserted per n...
    if not verdict.safe:
        # ...but the witness itself must replay at its own thread count.
        from repro.exec import replay

        mp = MultiProgram.symmetric(cfa, verdict.n_threads)
        ok, _ = replay(mp, verdict.steps, race_on="x")
        assert ok, f"unsafe witness failed replay:\n{src}"
