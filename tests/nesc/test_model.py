"""Unit tests for the nesC application model."""

import pytest

from repro.exec import MultiProgram, explore
from repro.lang.parser import parse_program
from repro.nesc.model import TASK_LOCK, Event, NescApp, Task
from repro.nesc.programs import BENCHMARKS, benchmark, benchmarks_for


def test_thread_source_parses():
    app = NescApp(
        name="a",
        globals=[("g", 0), ("h", 3)],
        events=[Event("e", "g = g + 1;")],
        tasks=[Task("t", "h = 0;")],
    )
    program = parse_program(app.thread_source())
    assert program.thread("app") is not None
    names = {g.name for g in program.globals}
    assert names == {"g", "h", TASK_LOCK}


def test_global_initializers_carried():
    app = NescApp(name="a", globals=[("g", 5)], events=[Event("e", "g = 0;")])
    cfa = app.cfa()
    assert cfa.global_init["g"] == 5


def test_event_enable_flag_guard():
    app = NescApp(
        name="a",
        globals=[("g", 0), ("en", 0)],
        events=[Event("e", "g = 1;", enable_flag="en")],
    )
    cfa = app.cfa()
    # en starts 0 and nothing sets it: g never written in any execution.
    mp = MultiProgram.symmetric(cfa, 1)
    result = explore(mp, max_states=10_000, race_on="g")
    assert result.complete and not result.found
    # And indeed no reachable state has g == 1.
    # (run a small manual exploration)
    seen_g = set()
    frontier = [mp.initial()]
    visited = {mp.initial()}
    while frontier:
        s = frontier.pop()
        seen_g.add(s.global_env()["g"])
        for _, _, nxt in mp.successors(s):
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    assert seen_g == {0}


def test_auto_disable_event_is_atomic_dispatch():
    app = NescApp(
        name="a",
        globals=[("g", 0), ("en", 1)],
        events=[Event("e", "g = 1;", enable_flag="en", auto_disable=True)],
    )
    src = app.thread_source()
    assert "atomic { assume(en == 1); en = 0; }" in src


def test_tasks_are_serialized():
    app = NescApp(
        name="a",
        globals=[("g", 0)],
        tasks=[Task("t", "g = g + 1; g = g - 1;")],
    )
    cfa = app.cfa()
    # Two threads: the task lock prevents a race on g despite the
    # non-atomic read-modify-write.
    mp = MultiProgram.symmetric(cfa, 2)
    result = explore(mp, race_on="g", max_states=100_000)
    assert result.complete and not result.found


def test_events_preempt_tasks():
    app = NescApp(
        name="a",
        globals=[("g", 0)],
        events=[Event("e", "g = 5;")],
        tasks=[Task("t", "g = g + 1;")],
    )
    cfa = app.cfa()
    mp = MultiProgram.symmetric(cfa, 2)
    # Event write races with task write.
    result = explore(mp, race_on="g", max_states=100_000)
    assert result.found


def test_access_table_classifies_contexts():
    app = NescApp(
        name="a",
        globals=[("g", 0), ("h", 0)],
        events=[Event("e", "atomic { g = 1; } h = 2;")],
        tasks=[Task("t", "g = 3;")],
    )
    rows = app.access_table()
    assert ("g", True, True, True) in rows  # write, atomic, event
    assert ("h", True, False, True) in rows  # write, non-atomic, event
    assert ("g", True, False, False) in rows  # write, non-atomic, task


def test_benchmark_lookup():
    b = benchmark("surge/rec_ptr")
    assert b.app_name == "surge"
    with pytest.raises(KeyError):
        benchmark("nope/nothing")


def test_benchmarks_for_groups():
    assert len(benchmarks_for("secureTosBase")) == 7
    assert len(benchmarks_for("surge")) == 4
    assert len(benchmarks_for("sense")) == 2


def test_all_benchmarks_compile():
    for b in BENCHMARKS:
        cfa = b.app.cfa()
        var = b.variable.replace("_buggy", "")
        assert var in cfa.globals, b.key
        assert any(cfa.may_write(q, var) for q in cfa.locations), b.key


def test_paper_reference_numbers_recorded():
    table1 = [b for b in BENCHMARKS if b.paper_preds is not None]
    assert len(table1) == 11  # the 11 rows of Table 1
    assert all(b.paper_time for b in table1)
