"""Unit tests for finite-state threads and counter programs (Appendix A)."""

import pytest

from repro.context.counters import OMEGA
from repro.lang import lower_source
from repro.parametric.finite import CounterProgram, FiniteThread

TOGGLE = "global int g; thread m { while (1) { g = 1 - g; } }"

MUTEX = """
global int lk;
thread main {
  while (1) {
    atomic { assume(lk == 0); lk = 1; }
    skip;
    lk = 0;
  }
}
"""


def toggle_thread():
    return FiniteThread.from_cfa(lower_source(TOGGLE), {"g": [0, 1]})


def test_from_cfa_rejects_locals():
    cfa = lower_source("global int g; thread m { local int a; a = g; }")
    with pytest.raises(ValueError):
        FiniteThread.from_cfa(cfa, {"g": [0, 1]})


def test_from_cfa_rejects_missing_domain():
    cfa = lower_source("global int g, h; thread m { g = h; }")
    with pytest.raises(ValueError):
        FiniteThread.from_cfa(cfa, {"g": [0, 1]})


def test_from_cfa_rejects_bad_initial():
    cfa = lower_source("global int g = 9; thread m { g = 0; }")
    with pytest.raises(ValueError):
        FiniteThread.from_cfa(cfa, {"g": [0, 1]})


def test_transitions_respect_domain():
    # g = g + 1 from g=1 leaves the domain {0,1}: transition dropped.
    cfa = lower_source("global int g; thread m { while (1) { g = g + 1; } }")
    ft = FiniteThread.from_cfa(cfa, {"g": [0, 1]})
    # From g=1 at the increment location there is no successor.
    inc_src = [
        e.src for e in cfa.edges if getattr(e.op, "lhs", None) == "g"
    ][0]
    assert ft.successors((("g", 1),), inc_src) == frozenset()


def test_toggle_transition_structure():
    ft = toggle_thread()
    # From the initial state the loop entry is an assume edge.
    succs = ft.successors(ft.initial_globals, ft.initial_pc)
    assert succs


def test_atomic_pcs_carried_over():
    cfa = lower_source(MUTEX)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    assert ft.atomic_pcs == cfa.atomic


def test_counter_program_initial_omega():
    ft = toggle_thread()
    cp = CounterProgram(ft, k=1)
    init = cp.initial()
    assert cp.count(init, ft.initial_pc) is OMEGA
    assert sum(1 for pc in cp.occupied_pcs(init)) == 1


def test_counter_program_successors_move_tokens():
    ft = toggle_thread()
    cp = CounterProgram(ft, k=2)
    init = cp.initial()
    succs = list(cp.successors(init))
    assert succs
    for s in succs:
        # Exactly one thread moved out of the initial pool (OMEGA persists).
        assert cp.count(s, ft.initial_pc) is OMEGA


def test_atomic_scheduling_in_counter_program():
    cfa = lower_source(MUTEX)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    cp = CounterProgram(ft, k=1)
    # Drive one thread into the atomic section.
    state = cp.initial()
    target = None
    for s in cp.successors(state):
        for pc in cp.occupied_pcs(s):
            if ft.is_atomic(pc) and not ft.is_atomic(ft.initial_pc):
                target = s
    assert target is not None
    # Only atomic-pc moves from here.
    for s2 in cp.successors(target):
        pass  # successors enumerate without error
    assert cp.is_atomic_state(target)


def test_access_maps_carried_over():
    cfa = lower_source(TOGGLE)
    ft = FiniteThread.from_cfa(cfa, {"g": [0, 1]})
    writers = {pc for pc in ft.pcs if ft.may_write(pc, "g")}
    accessors = {pc for pc in ft.pcs if ft.may_access(pc, "g")}
    assert writers and writers <= accessors
    for pc in ft.pcs:
        assert ft.writes[pc] == cfa.writes_at(pc)
        assert ft.accesses[pc] == cfa.accesses_at(pc)


def test_access_maps_default_empty():
    # Hand-built threads predating the access maps still construct.
    ft = FiniteThread(
        variables=("g",),
        pcs=frozenset({0}),
        initial_globals=(("g", 0),),
        initial_pc=0,
        transitions={},
        atomic_pcs=frozenset(),
    )
    assert not ft.may_write(0, "g")
    assert not ft.may_access(0, "g")


def test_counter_race_state_on_unprotected_toggle():
    ft = toggle_thread()
    cp = CounterProgram(ft, k=1)
    trace = cp.find_counterexample(lambda s: cp.is_race_state(s, "g"))
    assert trace is not None


def test_counter_race_state_respects_atomicity():
    cfa = lower_source(
        "global int g; thread m { while (1) { atomic { g = 1 - g; } } }"
    )
    ft = FiniteThread.from_cfa(cfa, {"g": [0, 1]})
    cp = CounterProgram(ft, k=1)
    trace = cp.find_counterexample(lambda s: cp.is_race_state(s, "g"))
    assert trace is None


def test_counter_race_needs_two_threads_at_the_access():
    # A same-pc self-race requires the pc's count to exceed one.
    from repro.parametric.finite import CounterState

    ft = FiniteThread(
        variables=("g",),
        pcs=frozenset({0, 1}),
        initial_globals=(("g", 0),),
        initial_pc=0,
        transitions={},
        atomic_pcs=frozenset(),
        writes={0: frozenset({"g"})},
        accesses={0: frozenset({"g"})},
    )
    cp = CounterProgram(ft, k=2)
    one = CounterState((("g", 0),), (1, 0))
    two = CounterState((("g", 0),), (2, 0))
    many = CounterState((("g", 0),), (OMEGA, 0))
    assert not cp.is_race_state(one, "g")
    assert cp.is_race_state(two, "g")
    assert cp.is_race_state(many, "g")


def test_find_counterexample_none_for_invariant():
    ft = toggle_thread()
    cp = CounterProgram(ft, k=1)
    # g stays within {0,1}: error 'g == 7' unreachable.
    trace = cp.find_counterexample(
        lambda s: dict(s.globals_)["g"] == 7
    )
    assert trace is None


def test_find_counterexample_shortest():
    ft = toggle_thread()
    cp = CounterProgram(ft, k=1)
    trace = cp.find_counterexample(
        lambda s: dict(s.globals_)["g"] == 1
    )
    assert trace is not None
    # The contracted loop toggles in a single step.
    assert len(trace) - 1 == 1
