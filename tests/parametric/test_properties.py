"""Property-based tests for the counter abstraction (Appendix A, Lemma 1).

Lemma 1 orders the abstractions: ``[[T^inf]] <= [[(T, k+1)]] <= [[(T, k)]]``.
Operationally: any error reachable in the finer abstraction is reachable in
the coarser one, so a safe verdict at bound k implies safety at k+1 and for
the concrete unbounded program.  Hypothesis generates small finite-state
threads and checks the chain, plus agreement between (T, k) for large k and
explicit-state exploration with few threads.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import MultiProgram
from repro.lang import lower_source
from repro.parametric import CounterProgram, FiniteThread

# Small structured programs over one bit-valued global.
_BODIES = [
    "g = 1 - g;",
    "atomic { g = 1 - g; }",
    "if (g == 0) { g = 1; }",
    "atomic { assume(g == 0); g = 1; } g = 0;",
    "assume(g == 1); g = 0;",
    "skip;",
]


@st.composite
def threads(draw):
    first = draw(st.sampled_from(_BODIES))
    second = draw(st.sampled_from(_BODIES))
    src = (
        "global int g;\nthread t {\n  while (1) {\n    "
        + first
        + "\n    "
        + second
        + "\n  }\n}\n"
    )
    cfa = lower_source(src)
    return FiniteThread.from_cfa(cfa, {"g": [0, 1]}), cfa


def _error_g1(state):
    return dict(state.globals_)["g"] == 1


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(threads(), st.integers(min_value=0, max_value=2))
def test_lemma1_monotone_in_k(tk, k):
    """If (T, k) is safe then (T, k+1) is safe (contrapositive of
    [[ (T,k+1) ]] <= [[ (T,k) ]])."""
    thread, _ = tk
    coarse = CounterProgram(thread, k).find_counterexample(_error_g1)
    fine = CounterProgram(thread, k + 1).find_counterexample(_error_g1)
    if coarse is None:
        assert fine is None


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(threads())
def test_counter_overapproximates_concrete(tk):
    """Any g==1 state reachable with 2 concrete threads is also reachable
    in (T, k) for k >= 2 ([[T^inf]] <= [[(T,k)]] restricted to 2 threads)."""
    thread, cfa = tk
    mp = MultiProgram.symmetric(cfa, 2)
    # Concrete search for g == 1.
    seen = {mp.initial()}
    frontier = [mp.initial()]
    concrete_hit = mp.initial().global_env()["g"] == 1
    while frontier and not concrete_hit:
        s = frontier.pop()
        for _, _, nxt in mp.successors(s):
            if nxt in seen:
                continue
            seen.add(nxt)
            if nxt.global_env()["g"] == 1:
                concrete_hit = True
                break
            frontier.append(nxt)
    abstract_hit = (
        CounterProgram(thread, 2).find_counterexample(_error_g1) is not None
    )
    if concrete_hit:
        assert abstract_hit


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(threads())
def test_short_counterexamples_are_concrete(tk):
    """Lemma 2 direction: a (T, k)-trace of length <= k maps to a concrete
    trace; we validate by checking the same error is concretely reachable
    with (length) threads."""
    thread, cfa = tk
    k = 4
    trace = CounterProgram(thread, k).find_counterexample(_error_g1)
    if trace is None or len(trace) - 1 > k:
        return
    n = max(2, len(trace) - 1)
    mp = MultiProgram.symmetric(cfa, n)
    seen = {mp.initial()}
    frontier = [mp.initial()]
    hit = mp.initial().global_env()["g"] == 1
    while frontier and not hit:
        s = frontier.pop()
        for _, _, nxt in mp.successors(s):
            if nxt in seen:
                continue
            seen.add(nxt)
            if nxt.global_env()["g"] == 1:
                hit = True
            frontier.append(nxt)
    assert hit
