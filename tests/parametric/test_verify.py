"""Unit tests for Algorithm 6 (counter-guided parameterized verification)."""

import pytest

from repro.lang import lower_source
from repro.parametric import (
    FiniteThread,
    ParametricSafe,
    ParametricUnsafe,
    mutual_exclusion_error,
    parameterized_verify,
    race_error,
)

MUTEX = """
global int lk;
thread main {
  while (1) {
    atomic { assume(lk == 0); lk = 1; }
    skip;
    lk = 0;
  }
}
"""

BROKEN_MUTEX = MUTEX.replace(
    "atomic { assume(lk == 0); lk = 1; }", "assume(lk == 0); lk = 1;"
)


def critical_pcs(cfa):
    return {e.dst for e in cfa.edges if str(e.op) == "lk := 1"}


def test_safe_mutex():
    cfa = lower_source(MUTEX)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    result = parameterized_verify(
        ft, mutual_exclusion_error(ft, critical_pcs(cfa))
    )
    assert isinstance(result, ParametricSafe)


def test_broken_mutex_has_genuine_witness():
    cfa = lower_source(BROKEN_MUTEX)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    result = parameterized_verify(
        ft, mutual_exclusion_error(ft, critical_pcs(cfa))
    )
    assert isinstance(result, ParametricUnsafe)
    # Genuineness criterion of Algorithm 6: trace length <= k.
    assert len(result.trace) - 1 <= result.k


def test_counter_grows_before_unsafe_verdict():
    cfa = lower_source(BROKEN_MUTEX)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    result = parameterized_verify(
        ft, mutual_exclusion_error(ft, critical_pcs(cfa)), k0=0
    )
    # The witness needs two distinct threads several steps in, so k=0
    # cannot certify it; the loop must have bumped k.
    assert result.k >= 2


def test_race_error_predicate():
    src = "global int x; thread m { while (1) { x = 1 - x; } }"
    cfa = lower_source(src)
    ft = FiniteThread.from_cfa(cfa, {"x": [0, 1]})
    writes = {q for q in cfa.locations if cfa.may_write(q, "x")}
    accesses = {q for q in cfa.locations if cfa.may_access(q, "x")}
    result = parameterized_verify(ft, race_error(ft, writes, accesses))
    assert isinstance(result, ParametricUnsafe)


def test_race_error_atomic_protected():
    src = "global int x; thread m { while (1) { atomic { x = 1 - x; } } }"
    cfa = lower_source(src)
    ft = FiniteThread.from_cfa(cfa, {"x": [0, 1]})
    writes = {q for q in cfa.locations if cfa.may_write(q, "x")}
    result = parameterized_verify(ft, race_error(ft, writes, writes))
    assert isinstance(result, ParametricSafe)


def test_agrees_with_circ_on_finite_mutex_protected_race():
    """Cross-check Appendix A against the CIRC main algorithm."""
    from repro.circ import circ

    src = """
    global int lk, x;
    thread main {
      while (1) {
        atomic { assume(lk == 0); lk = 1; }
        x = 1 - x;
        lk = 0;
      }
    }
    """
    cfa = lower_source(src)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1], "x": [0, 1]})
    writes = {q for q in cfa.locations if cfa.may_write(q, "x")}
    accesses = {q for q in cfa.locations if cfa.may_access(q, "x")}
    parametric = parameterized_verify(ft, race_error(ft, writes, accesses))
    circ_result = circ(cfa, race_on="x")
    assert parametric.safe == circ_result.safe == True  # noqa: E712


def test_max_k_guard():
    cfa = lower_source(BROKEN_MUTEX)
    ft = FiniteThread.from_cfa(cfa, {"lk": [0, 1]})
    with pytest.raises(RuntimeError):
        parameterized_verify(
            ft,
            lambda s: False or None or False,  # never an error...
            max_k=-1,  # ...but the k budget is exhausted immediately
        )
