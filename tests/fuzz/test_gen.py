"""Unit tests for the random program generator."""

from repro.fuzz.gen import (
    ALL_KINDS,
    GenConfig,
    generate,
    rename_variable,
    stmt_kinds,
)
from repro.lang.lower import lower_thread
from repro.lang.parser import parse_program
from repro.lang.unparse import unparse

SEED_RANGE = range(80)


def test_deterministic():
    a = generate(7)
    b = generate(7)
    assert a.source == b.source
    assert a.program == b.program


def test_different_seeds_differ():
    assert generate(1).source != generate(2).source


def test_every_program_is_well_formed():
    # Every thread of every sample lowers without error: the generator
    # is well-formed by construction, not by luck.
    for seed in SEED_RANGE:
        gp = generate(seed, GenConfig(n_threads=1 + seed % 2))
        for thread in gp.program.threads:
            cfa = lower_thread(gp.program, thread.name)
            assert gp.race_var in cfa.globals


def test_every_source_is_unparse_canonical():
    for seed in SEED_RANGE:
        gp = generate(seed)
        assert unparse(parse_program(gp.source)) == gp.source


def test_lowering_path_coverage():
    # A modest seed range exercises every statement/expression kind the
    # lowering pipeline implements (the tentpole's "every lowering path
    # by construction" requirement).
    covered = set()
    for seed in SEED_RANGE:
        gp = generate(seed, GenConfig(n_threads=1 + seed % 2))
        covered |= stmt_kinds(gp.program)
    assert covered == ALL_KINDS


def test_race_variable_always_present_and_written():
    for seed in SEED_RANGE:
        gp = generate(seed)
        cfa = lower_thread(gp.program, gp.thread)
        assert any(cfa.may_write(q, gp.race_var) for q in cfa.locations)


def test_config_gates_features():
    cfg = GenConfig(pointers=False, functions=False, locks=False, monitors=False)
    for seed in SEED_RANGE:
        kinds = stmt_kinds(generate(seed, cfg).program)
        assert "AddrOf" not in kinds and "Deref" not in kinds
        assert "Function" not in kinds
        assert "Lock" not in kinds and "Unlock" not in kinds


def test_rename_variable_round_trips():
    for seed in range(20):
        gp = generate(seed)
        renamed = rename_variable(gp.program, "s", "guard_var")
        src = unparse(renamed)
        assert "guard_var" in src
        reparsed = parse_program(src)
        assert unparse(reparsed) == src


def test_rename_variable_preserves_lowering():
    # Renaming a global is alpha-renaming: the renamed program still
    # lowers, with the new name in place of the old.
    for seed in range(20):
        gp = generate(seed)
        renamed = rename_variable(gp.program, "s", "guard_var")
        cfa = lower_thread(renamed, gp.thread)
        assert "guard_var" in cfa.globals
        assert "s" not in cfa.globals
