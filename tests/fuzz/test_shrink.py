"""Unit tests for the delta-debugging shrinker."""

from repro.fuzz.gen import generate
from repro.fuzz.oracle import oracle_check
from repro.fuzz.shrink import shrink
from repro.lang.lower import LowerError, lower_thread
from repro.lang.parser import parse_program
from repro.lang.unparse import unparse


def still_races(program) -> bool:
    try:
        return oracle_check(
            program, thread="t0", max_threads=2, max_states=20_000
        ).is_race
    except (LowerError, ValueError, KeyError):
        return False


def test_shrinks_to_minimal_racy_core():
    source = """
    global int x; global int s; global int unused;
    thread t0 {
      local int l = 3;
      s = 2;
      if (s == 2) { skip; } else { s = 0; }
      x = 1 - x;
      while (*) { s = 1 - s; }
    }
    thread t1 { s = 5; }
    """
    program = parse_program(source)
    assert still_races(program)
    small = shrink(program, still_races)
    assert still_races(small)
    # The unrelated thread, globals, and statements are all gone.
    assert len(small.threads) == 1
    assert {g.name for g in small.globals} == {"x"}
    text = unparse(small)
    assert "unused" not in text and "local" not in text
    # Minimal core: one racy statement.
    body = small.threads[0].body
    assert len(body.stmts) == 1


def test_result_is_parseable_source():
    program = parse_program(
        "global int x; thread t0 { while (*) { x = 1 - x; skip; } }"
    )
    small = shrink(program, still_races)
    reparsed = parse_program(unparse(small))
    assert unparse(reparsed) == unparse(small)
    lower_thread(reparsed, "t0")


def test_predicate_false_returns_canonical_original():
    program = parse_program("global int x; thread t0 { atomic { x = 1; } }")
    small = shrink(program, lambda p: False)
    assert unparse(small) == unparse(program)


def test_shrinks_generated_failures():
    # End-to-end on generator output: shrunk programs stay failing and
    # get (weakly) smaller.
    shrunk_any = False
    for seed in range(10):
        gp = generate(seed)
        if not still_races(gp.program):
            continue
        small = shrink(gp.program, still_races)
        assert still_races(small)
        assert len(unparse(small)) <= len(gp.source)
        shrunk_any = True
    assert shrunk_any


def test_exceptions_in_predicate_reject_candidate():
    program = parse_program(
        "global int x; global int s; thread t0 { s = 1; x = 1 - x; }"
    )

    def fragile(candidate) -> bool:
        # Raises whenever the candidate dropped the 's' global; the
        # shrinker must treat that as 'candidate rejected'.
        if "s" not in {g.name for g in candidate.globals}:
            raise RuntimeError("boom")
        return still_races(candidate)

    small = shrink(program, fragile)
    assert "s" in {g.name for g in small.globals}
    assert still_races(small)
