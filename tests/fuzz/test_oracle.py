"""Unit tests for the explicit-state oracle and its bound certificates."""

from repro.fuzz.oracle import BoundCertificate, infer_domains, oracle_check
from repro.lang.lower import lower_source
from repro.lang.parser import parse_program


def check(source: str, **kw):
    return oracle_check(parse_program(source), thread="t0", **kw)


def test_unprotected_toggle_races():
    v = check("global int x; thread t0 { while (*) { x = 1 - x; } }")
    assert v.is_race
    assert v.steps  # the witness replayed (oracle validates internally)


def test_atomic_toggle_is_safe_unbounded():
    v = check("global int x; thread t0 { while (*) { atomic { x = 1 - x; } } }")
    assert v.is_safe
    assert v.certificate.unbounded
    assert v.certificate.covers(10_000)


def test_monitor_idiom_is_safe():
    v = check(
        """
        global int x; global int f;
        thread t0 {
          while (*) {
            atomic { assume(f == 0); f = 1; }
            x = 1 - x;
            f = 0;
          }
        }
        """
    )
    assert v.is_safe
    assert v.certificate.unbounded


def test_guarded_write_still_races():
    # The guard read and the guarded write are not atomic together.
    v = check(
        """
        global int x; global int s;
        thread t0 { while (*) { if (s == 0) { x = 1; } else { x = 0; } } }
        """
    )
    assert v.is_race


def test_unbounded_values_hit_budget():
    # x grows without bound: no exploration bound completes and no
    # finite domain exists, so the oracle abstains rather than guesses.
    v = check(
        "global int x; thread t0 { while (*) { atomic { x = x + 1; } } }",
        max_states=5_000,
    )
    assert v.verdict == "budget"
    assert v.certificate is None


def test_bounded_certificate_covers_monotonically():
    cert = BoundCertificate(max_threads=3, max_states=1000)
    assert cert.covers(1) and cert.covers(3)
    assert not cert.covers(4)
    assert BoundCertificate(0, 0, unbounded=True).covers(4)


def test_local_variables_block_unbounded_certificate():
    # Locals are outside Appendix A; the oracle still answers, but only
    # with a bounded certificate.
    v = check(
        """
        global int x;
        thread t0 { local int l = 0; while (*) { atomic { x = l; } } }
        """
    )
    assert v.is_safe
    assert not v.certificate.unbounded
    assert v.certificate.max_threads >= 2


def test_infer_domains_closed_under_assignments():
    cfa = lower_source(
        "global int x; thread t0 { while (*) { x = 1 - x; } }"
    )
    domains = infer_domains(cfa)
    assert domains is not None
    assert domains["x"] == frozenset({0, 1})


def test_infer_domains_gives_up_on_unbounded():
    cfa = lower_source(
        "global int x; thread t0 { while (*) { x = x + 1; } }"
    )
    assert infer_domains(cfa) is None
