"""Unit tests for the differential runner and its disagreement taxonomy."""

from repro.engine.events import EventLog
from repro.fuzz.diff import (
    HARD_CLASSES,
    PATHS,
    Disagreement,
    PathResult,
    _classify,
    check_one,
    corpus_entry,
    parse_corpus_entry,
    run_fuzz,
)
from repro.fuzz.oracle import BoundCertificate, OracleVerdict
from repro.lang.lower import lower_source
from repro.lang.parser import parse_program

RACY = "global int x; thread t0 { while (*) { x = 1 - x; } }"
SAFE = "global int x; thread t0 { while (*) { atomic { x = 1 - x; } } }"
MONITOR = """
global int x; global int f;
thread t0 {
  while (*) {
    atomic { assume(f == 0); f = 1; }
    x = 1 - x;
    f = 0;
  }
}
"""


def path(name, verdict, **kw):
    return PathResult(path=name, verdict=verdict, time_ms=0.0, **kw)


def oracle_race(n=2):
    return OracleVerdict(verdict="race", n_threads=n, steps=((0, None),))


def oracle_safe(max_threads=3, unbounded=False):
    return OracleVerdict(
        verdict="safe",
        certificate=BoundCertificate(
            max_threads=max_threads, max_states=1000, unbounded=unbounded
        ),
    )


def classify(paths, oracle, source=RACY):
    cfa = lower_source(source, "t0")
    return _classify(cfa, "x", paths, oracle)


def test_safe_claim_against_oracle_race_is_unsoundness():
    ds = classify([path("lockset", "safe")], oracle_race())
    assert [d.classification for d in ds] == ["unsoundness"]
    assert ds[0].hard


def test_race_claim_against_oracle_safe_is_incompleteness():
    ds = classify([path("lockset", "race")], oracle_safe())
    assert [d.classification for d in ds] == ["incompleteness"]
    assert not ds[0].hard


def test_unknown_against_oracle_safe_is_incompleteness():
    ds = classify([path("circ", "unknown")], oracle_safe())
    assert [d.classification for d in ds] == ["incompleteness"]


def test_oracle_budget_logs_unchecked_verdicts():
    oracle = OracleVerdict(verdict="budget")
    ds = classify([path("circ", "safe"), path("flow", "race")], oracle)
    assert {d.classification for d in ds} == {"budget"}
    assert not any(d.hard for d in ds)


def test_crash_is_hard():
    ds = classify([path("circ", "crash", detail="ZeroDivisionError")], oracle_safe())
    assert ds[0].classification == "crash" and ds[0].hard


def test_forged_witness_is_hard():
    # A race verdict whose steps cannot replay: flagged as 'witness'
    # even though the program genuinely races.
    bogus = path("circ", "race", n_threads=2, steps=((99, None),))
    ds = classify([bogus], oracle_race())
    assert [d.classification for d in ds] == ["witness"]
    assert ds[0].hard


def test_agreement_produces_no_disagreements():
    ds = classify([path("circ", "safe"), path("flow", "safe")], oracle_safe())
    assert ds == []


def test_check_one_racy_program_all_paths_agree():
    outcome = check_one(parse_program(RACY))
    assert outcome.oracle.is_race
    assert not outcome.hard
    for p in outcome.paths:
        assert p.verdict == "race", (p.path, p.verdict, p.detail)


def test_check_one_atomic_program_all_paths_agree():
    outcome = check_one(parse_program(SAFE))
    assert outcome.oracle.is_safe
    assert not outcome.hard
    for p in outcome.paths:
        assert p.verdict == "safe", (p.path, p.verdict, p.detail)


def test_check_one_monitor_flags_baseline_incompleteness():
    # The paper's Figure 1 motivation: lockset-style checkers warn on
    # the flag-monitor idiom, CIRC proves it safe.
    outcome = check_one(parse_program(MONITOR))
    assert outcome.oracle.is_safe
    assert not outcome.hard
    logged = {
        (d.path, d.classification) for d in outcome.disagreements
    }
    assert ("lockset", "incompleteness") in logged
    by_path = {p.path: p.verdict for p in outcome.paths}
    assert by_path["circ"] == "safe"
    assert by_path["engine-warm"] == "safe"


def test_check_one_covers_all_paths():
    outcome = check_one(parse_program(RACY))
    assert tuple(p.path for p in outcome.paths) == PATHS


def test_run_fuzz_smoke_and_events():
    events = EventLog()
    report = run_fuzz(seed=0, iters=3, events=events)
    assert report.ok, report.hard
    assert len(report.rows) == 3 * len(PATHS)
    kinds = {e["event"] for e in events.events}
    assert {"fuzz_started", "fuzz_program", "fuzz_oracle", "fuzz_path",
            "fuzz_summary"} <= kinds
    # Telemetry rows follow the engine/events.py conventions.
    assert all("t" in e for e in events.events)


def test_corpus_entry_round_trip():
    d = Disagreement(
        path="lockset",
        classification="incompleteness",
        tool_verdict="race",
        oracle_verdict="safe",
        detail="expected false positive",
    )
    text = corpus_entry(42, d, RACY + "\n")
    meta = parse_corpus_entry(text)
    assert meta["path"] == "lockset"
    assert meta["classification"] == "incompleteness"
    assert meta["tool"] == "race" and meta["oracle"] == "safe"
    # The metadata header is comment-only: the file still parses.
    parse_program(text)


def test_hard_classes_are_the_documented_set():
    assert HARD_CLASSES == {"unsoundness", "witness", "oracle", "crash"}
