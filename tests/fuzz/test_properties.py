"""Hypothesis property tests over the fuzz generator's output.

Two subsystem-level invariants, checked on *generated* programs rather
than hand-picked fixtures:

* the parser and unparser are exact inverses on every generated source
  (the corpus and the shrinker both depend on this round-tripping);
* the content-addressed slice digest (``engine/digest.py``) is stable
  under alpha-renaming of variables outside the relevant set -- the
  property that makes cache hits across renamed-but-equivalent models
  sound -- and sensitive to renamings that change the slice.
"""

from dataclasses import replace

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.engine.digest import relevant_variables, slice_digest, slice_view
from repro.fuzz.gen import GenConfig, generate, rename_variable
from repro.lang import ast as A
from repro.lang.lower import lower_thread
from repro.lang.parser import parse_program
from repro.lang.unparse import unparse
from repro.smt import terms as T

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=100_000)


@settings(**SETTINGS)
@given(seeds, st.integers(min_value=1, max_value=3))
def test_parser_unparser_round_trip(seed, n_threads):
    gp = generate(seed, GenConfig(n_threads=n_threads))
    reparsed = parse_program(gp.source)
    assert unparse(reparsed) == gp.source
    # And the reparse is structurally the original modulo line numbers:
    # a second round trip is a fixpoint.
    assert unparse(parse_program(unparse(reparsed))) == gp.source


# Pointer programs are excluded from the digest properties: pointer
# elimination compiles address-of expressions to address *constants*
# assigned per variable, so renaming can legitimately shift them.
NO_PTR = GenConfig(pointers=False)


@settings(**SETTINGS)
@given(seeds)
def test_digest_stable_under_irrelevant_alpha_renaming(seed):
    gp = generate(seed, NO_PTR)
    cfa = lower_thread(gp.program, gp.thread)
    irrelevant = sorted(cfa.globals - relevant_variables(cfa, gp.race_var))
    assume(irrelevant)
    before = slice_digest(cfa, gp.race_var)
    renamed = rename_variable(gp.program, irrelevant[0], "zz_renamed")
    after = slice_digest(lower_thread(renamed, gp.thread), gp.race_var)
    assert after == before


@settings(**SETTINGS)
@given(seeds)
def test_digest_stable_under_injected_pad_renaming(seed):
    # Deterministic variant of the property: inject a fresh global that
    # is irrelevant by construction (written once, never read), then
    # rename it.  Applies to every seed, not just those that happen to
    # generate an irrelevant variable.
    gp = generate(seed, NO_PTR)
    base = lower_thread(gp.program, gp.thread)

    def with_pad(name: str) -> A.Program:
        thread = gp.program.thread(gp.thread)
        padded = replace(
            thread,
            body=replace(
                thread.body,
                stmts=(A.Assign(name, T.num(1)),) + thread.body.stmts,
            ),
        )
        return replace(
            gp.program,
            globals=gp.program.globals + (A.GlobalDecl(name, 0),),
            threads=tuple(
                padded if t.name == gp.thread else t
                for t in gp.program.threads
            ),
        )

    digest_a = slice_digest(lower_thread(with_pad("pad_a"), gp.thread), gp.race_var)
    digest_b = slice_digest(lower_thread(with_pad("pad_b"), gp.thread), gp.race_var)
    assert digest_a == digest_b
    # The pad edge renders as havoc but still changes the graph shape
    # relative to the unpadded program -- equality above is the claim,
    # not equality with the original digest.
    assert "pad_a" not in slice_view(
        lower_thread(with_pad("pad_a"), gp.thread), gp.race_var
    ).text


@settings(**SETTINGS)
@given(seeds)
def test_digest_sensitive_to_relevant_renaming(seed):
    # Renaming a variable *inside* the relevant set must change the
    # rendering (the slice mentions it by name).
    gp = generate(seed, NO_PTR)
    cfa = lower_thread(gp.program, gp.thread)
    relevant = relevant_variables(cfa, gp.race_var)
    candidates = sorted((relevant - {gp.race_var}) & cfa.globals)
    assume(candidates)
    view_before = slice_view(cfa, gp.race_var)
    assume(candidates[0] in view_before.text)
    renamed = rename_variable(gp.program, candidates[0], "zz_renamed")
    view_after = slice_view(lower_thread(renamed, gp.thread), gp.race_var)
    assert view_after.digest != view_before.digest
