"""Replay every committed corpus reproducer through all verdict paths.

Each ``tests/fuzz/corpus/*.minc`` file is a minimized program on which
some verdict path once disagreed with the oracle.  The committed corpus
must contain only *logged*-class disagreements (incompleteness, budget):
a hard-class reproducer means the checker is broken and must be fixed,
not committed.  Replaying asserts two things per file:

* no path disagrees with the oracle in a hard class today (agreement on
  everything that matters), and
* the recorded logged disagreement still reproduces -- the corpus stays
  an honest catalogue of known precision gaps, not a stale one.
"""

from pathlib import Path

import pytest

from repro.fuzz.diff import HARD_CLASSES, check_one, parse_corpus_entry
from repro.lang.parser import parse_program

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.minc"))


def test_corpus_is_populated():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_entry_is_logged_class_with_metadata(path):
    meta = parse_corpus_entry(path.read_text())
    assert {"path", "classification", "tool", "oracle"} <= meta.keys()
    assert meta["classification"] not in HARD_CLASSES


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_reproducer_replays_without_hard_disagreement(path):
    text = path.read_text()
    meta = parse_corpus_entry(text)
    outcome = check_one(parse_program(text))
    hard = [d for d in outcome.disagreements if d.hard]
    assert not hard, [(d.path, d.classification, d.detail) for d in hard]
    # Every path produced a verdict (all four checker paths plus the
    # two baselines ran to completion on the minimized program).
    assert all(p.verdict in {"race", "safe", "unknown"} for p in outcome.paths)
    # The recorded disagreement still reproduces.
    reproduced = {(d.path, d.classification) for d in outcome.disagreements}
    assert (meta["path"], meta["classification"]) in reproduced
