"""Wire-protocol unit tests: framing, validation, exit-code mapping."""

import pytest

from repro import cli
from repro.serve.protocol import (
    EXIT_OK,
    EXIT_RACE,
    EXIT_RETRYABLE,
    EXIT_UNKNOWN,
    EXIT_USAGE,
    ErrorCode,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    exit_code_for,
    validate_submit,
)


def test_frame_roundtrip():
    frame = {"op": "submit", "id": "r1", "items": [{"source": "x"}]}
    line = encode_frame(frame)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_frame(line) == frame


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError) as exc:
        decode_frame(b"not json\n")
    assert exc.value.code == ErrorCode.BAD_FRAME
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2]\n")


def test_exit_codes_agree_with_cli():
    # The wire contract repeats the CLI's constants literally; this is
    # the tripwire that keeps them from drifting apart.
    assert EXIT_OK == cli.EXIT_OK
    assert EXIT_RACE == cli.EXIT_RACE
    assert EXIT_USAGE == cli.EXIT_USAGE
    assert EXIT_RETRYABLE == cli.EXIT_BUDGET
    assert EXIT_UNKNOWN == cli.EXIT_UNKNOWN


def test_exit_code_for_verdict_priority():
    safe = {"verdict": "safe", "source": "circ"}
    race = {"verdict": "race", "source": "cache"}
    unknown = {"verdict": "unknown", "source": "budget"}
    assert exit_code_for([safe]) == EXIT_OK
    assert exit_code_for([safe, unknown]) == EXIT_UNKNOWN
    assert exit_code_for([safe, unknown, race]) == EXIT_RACE


def test_exit_code_for_counts_primary_rows_only():
    # A cancelled portfolio analysis's unknown must not shadow the
    # reconciled verdict row.
    rows = [
        {"verdict": "safe", "source": "portfolio:racer"},
        {"verdict": "unknown", "source": "absint"},
    ]
    assert exit_code_for(rows) == EXIT_OK


def test_error_frame_carries_exit_code():
    frame = error_frame(ErrorCode.RETRYABLE, "draining", request_id="r9")
    assert frame["exit_code"] == EXIT_RETRYABLE
    assert frame["id"] == "r9"
    assert error_frame(ErrorCode.PARSE_ERROR, "x")["exit_code"] == EXIT_USAGE


def test_validate_submit_normalizes():
    norm = validate_submit(
        {
            "id": "r1",
            "mode": "batch",
            "items": [{"source": "global int x;", "variables": ["x"]}],
            "options": {"k": 2},
        }
    )
    assert norm["mode"] == "batch"
    assert norm["items"][0]["model"] == "item0"
    assert norm["items"][0]["thread"] is None
    assert norm["stream"] is True


@pytest.mark.parametrize(
    "frame,fragment",
    [
        ({"items": [{"source": "x"}]}, "id"),
        ({"id": "r", "mode": "nope", "items": [{"source": "x"}]}, "mode"),
        ({"id": "r", "items": []}, "items"),
        ({"id": "r", "items": [{"model": "m"}]}, "source"),
        ({"id": "r", "items": [{"source": "x", "variables": "y"}]}, "variables"),
        (
            {"id": "r", "items": [{"source": "x"}], "options": {"jobs": 9}},
            "disallowed",
        ),
    ],
)
def test_validate_submit_rejects(frame, fragment):
    with pytest.raises(ProtocolError) as exc:
        validate_submit(frame)
    assert exc.value.code == ErrorCode.BAD_REQUEST
    assert fragment in exc.value.message
