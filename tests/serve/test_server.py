"""Daemon behavior: dedup, budgets, parity, drain, eviction.

No pytest-asyncio in the toolchain, so every test drives the server and
its clients inside one ``asyncio.run`` via :func:`with_server`.
"""

import asyncio

import pytest

from repro.engine import BatchItem, run_batch
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import ErrorCode
from repro.serve.server import RaceServer, ServeConfig

RACY = """global int y;
thread main {
  y = y + 1;
}
"""

BELT = """global int m, x;
thread t {
  while (1) {
    lock(m);
    atomic { x = x + 1; }
    unlock(m);
  }
}
"""


def with_server(tmp_path, client_fn, **cfg):
    """Start a daemon on a Unix socket, run ``client_fn``, drain."""

    async def go():
        sock = str(tmp_path / "serve.sock")
        config = ServeConfig(
            socket=sock,
            cache_dir=str(tmp_path / "cache"),
            workers=cfg.pop("workers", 2),
            **cfg,
        )
        server = RaceServer(config)
        await server.start()
        try:
            return await client_fn(server, sock)
        finally:
            await server.drain()

    return asyncio.run(go())


def test_verdicts_and_exit_codes(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            safe = await c.submit(
                [{"model": "fig1", "source": TEST_AND_SET_SOURCE, "variables": ["x"]}]
            )
            racy = await c.submit([{"model": "racy", "source": RACY}])
            return safe, racy

    safe, racy = with_server(tmp_path, scenario)
    assert safe["schema"] == "repro-race/report-v1"
    assert [r["verdict"] for r in safe["rows"]] == ["safe"]
    assert safe["exit_code"] == 0
    assert [r["verdict"] for r in racy["rows"]] == ["race"]
    assert racy["exit_code"] == 1


def test_verdict_parity_with_engine(tmp_path):
    """The daemon answers exactly what ``run_batch`` (the ``batch``
    subcommand's engine) answers for the same items."""
    items = [
        BatchItem(model="fig1", source=TEST_AND_SET_SOURCE, variables=("x",)),
        BatchItem(model="racy", source=RACY),
        BatchItem(model="belt", source=BELT),
    ]
    direct = run_batch(items, cache_dir=None, workers=1)
    expected = {
        (r.model, r.variable): r.verdict for r in direct.rows
    }

    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            return await c.submit(
                [
                    {
                        "model": i.model,
                        "source": i.source,
                        "variables": list(i.variables) if i.variables else None,
                    }
                    for i in items
                ],
                mode="batch",
            )

    result = with_server(tmp_path, scenario)
    got = {(r["model"], r["variable"]): r["verdict"] for r in result["rows"]}
    assert got == expected


def test_concurrent_identical_submissions_share_one_job(tmp_path):
    """Satellite 3: two clients submitting the same program attach to a
    single engine job and receive identical report-v1 rows."""

    async def scenario(server, sock):
        c1 = await ServeClient.connect(socket=sock)
        c2 = await ServeClient.connect(socket=sock)
        try:
            a, b = await asyncio.gather(
                c1.submit([{"model": "m", "source": RACY}]),
                c2.submit([{"model": "m", "source": RACY}]),
            )
            stats = await c1.stats()
            return a, b, stats
        finally:
            await c1.close()
            await c2.close()

    a, b, stats = with_server(tmp_path, scenario, workers=1)
    assert a["rows"] == b["rows"]
    assert a["exit_code"] == b["exit_code"] == 1
    # The engine ran exactly once for the shared digest.
    assert stats["jobs_run"] == 1
    assert stats["dedup_inflight"] == 1


def test_repeat_submission_hits_completed_map(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            first = await c.submit([{"model": "m", "source": RACY}])
            second = await c.submit([{"model": "m", "source": RACY}])
            stats = await c.stats()
            return first, second, stats

    first, second, stats = with_server(tmp_path, scenario)
    assert first["rows"][0]["verdict"] == second["rows"][0]["verdict"] == "race"
    assert second["rows"][0]["source"] == "cache"
    assert stats["jobs_run"] == 1
    assert stats["dedup_completed"] == 1


def test_solver_quota_yields_typed_unknown(tmp_path):
    """Satellite 3: an over-quota client gets typed UNKNOWN rows with
    the shared exit-code mapping (4), not a connection error."""

    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            first = await c.submit([{"model": "a", "source": RACY}])
            second = await c.submit([{"model": "b", "source": BELT}])
            stats = await c.stats()
            return first, second, stats

    first, second, stats = with_server(
        tmp_path, scenario, solver_quota_s=1e-6
    )
    # First job is admitted (nothing used yet) and burns the quota.
    assert first["exit_code"] == 1
    row = second["rows"][0]
    assert row["verdict"] == "unknown"
    assert row["source"] == "budget"
    assert "quota" in row["detail"]
    assert second["exit_code"] == 4
    assert stats["quota_unknowns"] >= 1


def test_static_rows_skip_the_engine(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            result = await c.submit(
                [{"model": "belt", "source": BELT, "variables": ["x"]}]
            )
            stats = await c.stats()
            return result, stats

    result, stats = with_server(tmp_path, scenario)
    sources = {r["source"] for r in result["rows"]}
    assert sources == {"static"}
    assert result["exit_code"] == 0
    assert stats["jobs_run"] == 0


def test_portfolio_mode_attribution(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            return await c.submit(
                [{"model": "racy", "source": RACY}], mode="portfolio"
            )

    result = with_server(tmp_path, scenario)
    primary = [
        r for r in result["rows"] if r["source"].startswith("portfolio:")
    ]
    assert primary and primary[0]["verdict"] == "race"
    assert result["exit_code"] == 1


def test_parse_error_frame(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            with pytest.raises(ServeError) as exc:
                await c.submit([{"model": "bad", "source": "int x = ;"}])
            return exc.value

    err = with_server(tmp_path, scenario)
    assert err.code == ErrorCode.PARSE_ERROR
    assert err.exit_code == 2


def test_bad_request_frame(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            with pytest.raises(ServeError) as exc:
                await c.submit(
                    [{"model": "m", "source": RACY}],
                    options={"workers": 64},
                )
            return exc.value

    err = with_server(tmp_path, scenario)
    assert err.code == ErrorCode.BAD_REQUEST
    assert "disallowed" in err.message


def test_draining_server_answers_retryable(tmp_path):
    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            server.draining = True
            with pytest.raises(ServeError) as exc:
                await c.submit([{"model": "m", "source": RACY}])
            server.draining = False  # let the helper drain cleanly
            return exc.value

    err = with_server(tmp_path, scenario)
    assert err.code == ErrorCode.RETRYABLE
    assert err.exit_code == 3


def test_drain_finishes_in_flight_work(tmp_path):
    """Graceful drain: a submission racing the drain either completes
    with its verdict or is refused RETRYABLE -- never hangs, never dies
    with a half-written response."""

    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            task = asyncio.ensure_future(
                c.submit([{"model": "m", "source": RACY}])
            )
            await asyncio.sleep(0)  # let the submit frame hit the server
            await server.drain()
            try:
                result = await task
                return result["rows"][0]["verdict"]
            except ServeError as exc:
                return exc.code

    outcome = with_server(tmp_path, scenario)
    assert outcome in ("race", ErrorCode.RETRYABLE)


def test_memory_ceiling_evicts_lru_context(tmp_path):
    """Distinct programs push the hot-context footprint over a tiny
    ceiling; the LRU context is evicted and counted."""
    programs = [
        ("p%d" % i, RACY.replace("y", "v%d" % i)) for i in range(3)
    ]

    async def scenario(server, sock):
        async with await ServeClient.connect(socket=sock) as c:
            for model, source in programs:
                await c.submit([{"model": model, "source": source}])
            return await c.stats()

    stats = with_server(tmp_path, scenario, memory_mb=0.3)
    assert stats["evictions"] >= 1
    assert stats["hot"]["hot_contexts"] <= 2


def test_hello_lowers_budgets_but_never_raises(tmp_path):
    async def scenario(server, sock):
        lowered = await ServeClient.connect(socket=sock, max_jobs=1)
        raised = await ServeClient.connect(socket=sock, max_jobs=99)
        try:
            return lowered.server_hello, raised.server_hello
        finally:
            await lowered.close()
            await raised.close()

    lowered, raised = with_server(tmp_path, scenario, max_client_jobs=4)
    assert lowered["max_jobs"] == 1
    assert raised["max_jobs"] == 4
