"""Unit tests for sp, wp, SSA and trace formulas."""

from repro.cfa.cfa import AssignOp, AssumeOp
from repro.cfa.ops import SsaBuilder, TraceStep, sp, trace_formula, wp
from repro.smt import terms as T
from repro.smt.solver import entails, is_sat

x, y = T.var("x"), T.var("y")


def test_sp_assume_conjoins():
    post = sp(T.eq(x, 0), AssumeOp(T.ge(y, 1)))
    assert entails(post, T.eq(x, 0))
    assert entails(post, T.ge(y, 1))


def test_sp_assign_constant():
    post = sp(T.eq(x, 0), AssignOp("x", T.num(5)))
    assert entails(post, T.eq(x, 5))
    assert not entails(post, T.eq(x, 0))


def test_sp_assign_self_reference():
    # sp(x == 3, x := x + 1) implies x == 4.
    post = sp(T.eq(x, 3), AssignOp("x", T.add(x, 1)))
    assert entails(post, T.eq(x, 4))


def test_sp_assign_preserves_other_vars():
    post = sp(T.eq(y, 7), AssignOp("x", T.num(1)))
    assert entails(post, T.eq(y, 7))


def test_sp_swap_chain():
    # x == a is preserved into y after y := x.
    post = sp(T.eq(x, 2), AssignOp("y", x))
    assert entails(post, T.eq(y, 2))


def test_wp_assign_substitutes():
    pre = wp(T.eq(x, 5), AssignOp("x", T.add(x, 1)))
    assert entails(T.eq(x, 4), pre)
    assert not is_sat(T.and_(pre, T.eq(x, 5)))


def test_wp_assume():
    pre = wp(T.eq(x, 1), AssumeOp(T.ge(x, 0)))
    assert entails(pre, T.ge(x, 0))


def test_sp_preserves_satisfiability():
    # sp of a satisfiable region under an assignment stays satisfiable,
    # and sp of false stays false.
    op = AssignOp("x", T.add(x, 2))
    assert is_sat(sp(T.eq(x, 3), op))
    assert not is_sat(sp(T.FALSE, op))


# -- SSA ---------------------------------------------------------------------


def test_ssa_globals_shared_across_threads():
    ssa = SsaBuilder({"g"})
    assert ssa.current(0, "g") == ssa.current(1, "g")
    ssa.bump(0, "g")
    assert ssa.current(1, "g") == "g$1"


def test_ssa_locals_per_thread():
    ssa = SsaBuilder({"g"})
    assert ssa.current(0, "l") != ssa.current(1, "l")
    ssa.bump(0, "l")
    assert ssa.current(0, "l").endswith("$1")
    assert ssa.current(1, "l").endswith("$0")


def test_ssa_unrename():
    ssa = SsaBuilder({"g"})
    assert SsaBuilder.unrename(ssa.bump(0, "g")) == "g"
    assert SsaBuilder.unrename(ssa.bump(2, "l")) == "l"


def test_ssa_unrename_term():
    t = T.eq(T.var("g$3"), T.var("t1$l$2"))
    back = SsaBuilder.unrename_term(t)
    assert T.free_vars(back) == {"g", "l"}


def test_trace_formula_write_read_ordering():
    steps = [
        TraceStep(0, AssignOp("g", T.num(1))),
        TraceStep(1, AssignOp("g", T.num(2))),
        TraceStep(0, AssumeOp(T.eq(T.var("g"), 2))),
    ]
    clauses, _ = trace_formula(steps, {"g"})
    assert is_sat(T.and_(*clauses))
    # Whereas asserting g == 1 at the end contradicts thread 1's write.
    steps_bad = steps[:2] + [TraceStep(0, AssumeOp(T.eq(T.var("g"), 1)))]
    clauses_bad, _ = trace_formula(steps_bad, {"g"})
    assert not is_sat(T.and_(*clauses_bad))


def test_trace_formula_locals_do_not_interfere():
    steps = [
        TraceStep(0, AssignOp("l", T.num(1))),
        TraceStep(1, AssignOp("l", T.num(2))),
        TraceStep(0, AssumeOp(T.eq(T.var("l"), 1))),
        TraceStep(1, AssumeOp(T.eq(T.var("l"), 2))),
    ]
    clauses, _ = trace_formula(steps, set())
    assert is_sat(T.and_(*clauses))
