"""Slice digest determinism and sensitivity (the cache's soundness base)."""

import os
import subprocess
import sys

from repro.engine.digest import (
    relevant_variables,
    shape_key,
    slice_digest,
    slice_view,
)
from repro.lang.lower import lower_source

TAS = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

# Same program plus a statement on a variable outside the slice of x:
# its edge renders as the canonical ``havoc`` token.
TAS_IRRELEVANT = """
global int x, state, counter;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
    counter = counter + 7;
  }
}
"""

# The irrelevant statement edited (different rhs, different name): the
# havoc normalization must make the digest for x identical.
TAS_IRRELEVANT_EDITED = TAS_IRRELEVANT.replace(
    "counter = counter + 7", "counter = counter - 90"
).replace("counter", "cnt")

# One token of the slice changed (x + 2 instead of x + 1).
TAS_MUTATED = TAS.replace("x = x + 1", "x = x + 2")

# Formatting-only changes: extra whitespace and a redundant block.
TAS_REFORMATTED = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
"""


def test_digest_stable_within_process():
    a = slice_digest(lower_source(TAS), "x")
    b = slice_digest(lower_source(TAS), "x")
    assert a == b


def test_digest_ignores_formatting():
    assert slice_digest(lower_source(TAS), "x") == slice_digest(
        lower_source(TAS_REFORMATTED), "x"
    )


def test_digest_ignores_edits_to_irrelevant_statements():
    """Rewriting a statement outside the slice of x (different
    expression, different variable name) keeps the digest for x: the
    edge renders as ``havoc`` either way."""
    a = lower_source(TAS_IRRELEVANT)
    b = lower_source(TAS_IRRELEVANT_EDITED)
    assert slice_digest(a, "x") == slice_digest(b, "x")
    # ... while the digest *for* the edited variable naturally moves.
    assert slice_digest(a, "counter") != slice_digest(b, "cnt")


def test_digest_ignores_other_threads():
    """Verification lowers one thread template; editing another thread
    of the same file never reaches the digest."""
    two = TAS.replace(
        "thread main {",
        "thread helper { while (1) { skip; } }\nthread main {",
    )
    assert slice_digest(lower_source(TAS, "main"), "x") == slice_digest(
        lower_source(two, "main"), "x"
    )


def test_digest_changes_on_one_token_slice_mutation():
    assert slice_digest(lower_source(TAS), "x") != slice_digest(
        lower_source(TAS_MUTATED), "x"
    )


def test_digest_distinguishes_variables():
    cfa = lower_source(TAS)
    assert slice_digest(cfa, "x") != slice_digest(cfa, "state")


def test_relevant_closure_contains_guard_variables():
    cfa = lower_source(TAS)
    rel = relevant_variables(cfa, "x")
    # state guards the write to x (via assume edges), old feeds the guard.
    assert {"x", "state", "old"} <= rel


def test_slice_view_renders_havoc_for_irrelevant_edges():
    view = slice_view(lower_source(TAS_IRRELEVANT), "x")
    assert "havoc" in view.text
    assert "counter" not in view.text


def test_shape_key_survives_control_flow_changes():
    """The warm-start shape keys only on the operations touching the
    variable, so the irrelevant extension shares the shape."""
    assert shape_key(lower_source(TAS), "x") == shape_key(
        lower_source(TAS_IRRELEVANT), "x"
    )
    assert shape_key(lower_source(TAS), "x") != shape_key(
        lower_source(TAS_MUTATED), "x"
    )


def test_digest_stable_across_hash_randomization():
    """The digest must be a pure function of the program text: fresh
    interpreters with different PYTHONHASHSEED values (different set/dict
    iteration orders) must all render the same canonical slice."""
    prog = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.engine.digest import slice_digest\n"
        "from repro.lang.lower import lower_source\n"
        f"src = {TAS!r}\n"
        "print(slice_digest(lower_source(src), 'x'))\n"
    )
    src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    digests = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        out = subprocess.run(
            [sys.executable, "-c", prog, src_root],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1
