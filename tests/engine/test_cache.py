"""Artifact cache behavior: hits, misses, corruption recovery."""

import json

from repro.circ.result import CircSafe, CircStats, CircUnsafe
from repro.acfa.acfa import empty_acfa
from repro.engine.artifacts import (
    result_from_obj,
    result_to_obj,
    term_from_obj,
    term_to_obj,
)
from repro.engine.cache import ArtifactCache
from repro.smt import terms as T


def safe_result(var="x", preds=()):
    return CircSafe(
        variable=var,
        predicates=tuple(preds),
        context=empty_acfa(),
        stats=CircStats(),
    )


PRED = T.Cmp("==", T.Var("state"), T.IntConst(1))


def test_hit_on_identical_digest(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("d1", safe_result(preds=(PRED,)), "fp")
    entry = cache.get("d1", "fp")
    assert entry is not None
    assert entry.result.safe
    assert entry.result.predicates == (PRED,)
    assert cache.stats() == {"hits": 1, "misses": 0, "corrupt": 0}


def test_miss_on_different_digest_or_options(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("d1", safe_result(), "fp")
    assert cache.get("d2", "fp") is None
    assert cache.get("d1", "other-fp") is None
    assert cache.stats()["misses"] == 2


def test_corrupted_entry_is_a_miss_and_heals(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("d1", safe_result(), "fp")
    (obj_file,) = (tmp_path / "objects").rglob("*.json")
    obj_file.write_text("{ this is not json")
    assert cache.get("d1", "fp") is None
    assert cache.stats()["corrupt"] == 1
    assert not obj_file.exists()  # quarantined
    # The slot heals on the next store.
    cache.put("d1", safe_result(), "fp")
    assert cache.get("d1", "fp") is not None


def test_checksum_mismatch_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("d1", safe_result(preds=(PRED,)), "fp")
    (obj_file,) = (tmp_path / "objects").rglob("*.json")
    payload = json.loads(obj_file.read_text())
    payload["result"]["predicates"] = []  # tamper without fixing checksum
    obj_file.write_text(json.dumps(payload))
    assert cache.get("d1", "fp") is None
    assert cache.stats()["corrupt"] == 1


def test_shape_index_seeds_predicates(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("d1", safe_result(preds=(PRED,)), "fp", shape="s1")
    assert cache.seed_predicates("s1", "fp") == (PRED,)
    assert cache.seed_predicates("s2", "fp") == ()
    assert cache.seed_predicates("s1", "other-fp") == ()


def test_corrupt_shape_entry_returns_no_seeds(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("d1", safe_result(preds=(PRED,)), "fp", shape="s1")
    (shape_file,) = (tmp_path / "shapes").rglob("*.json")
    shape_file.write_text("garbage")
    assert cache.seed_predicates("s1", "fp") == ()
    assert not shape_file.exists()


def test_unsafe_result_round_trips(tmp_path):
    cache = ArtifactCache(tmp_path)
    unsafe = CircUnsafe(
        variable="x",
        steps=[],
        n_threads=2,
        predicates=(),
        stats=CircStats(),
    )
    cache.put("d1", unsafe, "fp")
    entry = cache.get("d1", "fp")
    assert entry is not None
    assert not entry.result.safe
    assert entry.result.n_threads == 2


def test_term_serialization_round_trips():
    terms = [
        T.Var("x"),
        T.IntConst(-3),
        T.BoolConst(True),
        T.And((T.Cmp("<=", T.Var("x"), T.IntConst(0)), T.BoolConst(False))),
        T.Implies(
            T.Not(T.Cmp("==", T.Var("s"), T.IntConst(1))),
            T.Or((T.Var("p"), T.Var("q"))),
        ),
        T.Add((T.Mul(T.IntConst(2), T.Var("y")), T.Neg(T.Var("z")))),
    ]
    for t in terms:
        assert term_from_obj(term_to_obj(t)) == t


def test_result_serialization_round_trips():
    r = safe_result(preds=(PRED,))
    back = result_from_obj(result_to_obj(r))
    assert back.safe and back.predicates == (PRED,)
