"""End-to-end engine behavior: planning, caching, crash recovery."""

import json

import pytest

from repro.circ.circ import circ
from repro.engine import BatchItem, EventLog, run_batch, verify_one
from repro.lang.lower import lower_source

BELT = """
global int m, x;
thread t {
  while (1) {
    lock(m);
    atomic { x = x + 1; }
    unlock(m);
  }
}
"""

TAS = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

RACY = """
global int x;
thread t {
  while (1) { x = x + 1; }
}
"""

ITEMS = [
    BatchItem(model="belt", source=BELT, variables=("x",)),
    BatchItem(model="tas", source=TAS, variables=("x", "state")),
    BatchItem(model="racy", source=RACY, variables=("x",)),
]


def expected_verdicts():
    out = {}
    for item in ITEMS:
        cfa = lower_source(item.source, item.thread)
        for v in item.variables:
            result = circ(cfa, race_on=v)
            out[(item.model, v)] = "safe" if result.safe else "race"
    return out


def test_batch_matches_serial_circ(tmp_path):
    """Engine verdicts (static pruning + cache + pool) equal plain circ."""
    report = run_batch(ITEMS, cache_dir=str(tmp_path), workers=2)
    got = {(r.model, r.variable): r.verdict for r in report.rows}
    assert got == expected_verdicts()


def test_second_run_hits_cache(tmp_path):
    cold = run_batch(ITEMS, cache_dir=str(tmp_path), workers=1)
    warm = run_batch(ITEMS, cache_dir=str(tmp_path), workers=1)
    assert {(r.model, r.variable): r.verdict for r in warm.rows} == {
        (r.model, r.variable): r.verdict for r in cold.rows
    }
    assert warm.hit_rate >= 0.9
    assert all(
        r.source in ("cache", "static") for r in warm.rows
    ), [r.source for r in warm.rows]


def test_static_prune_discharges_protected_variable(tmp_path):
    report = run_batch(
        [BatchItem(model="belt", source=BELT, variables=("x",))],
        cache_dir=str(tmp_path),
    )
    (row,) = report.rows
    assert row.verdict == "safe" and row.source == "static"
    assert report.n_jobs == 0  # nothing was spawned


def test_no_prefilter_forces_jobs():
    report = run_batch(
        [BatchItem(model="belt", source=BELT, variables=("x",))],
        prefilter=False,
        workers=1,
    )
    (row,) = report.rows
    assert row.verdict == "safe" and row.source == "circ"


def test_identical_slices_dedup_to_one_job():
    """Two models whose slices for x coincide verify once."""
    report = run_batch(
        [
            BatchItem(model="a", source=TAS, variables=("x",)),
            BatchItem(model="b", source=TAS, variables=("x",)),
        ],
        workers=1,
    )
    assert report.n_jobs == 1
    assert report.n_deduped == 1
    assert [r.verdict for r in report.rows] == ["safe", "safe"]


def test_worker_killed_mid_job_recovers(tmp_path):
    """A worker dying (os._exit) must degrade to the serial fallback and
    still produce a full, correct verdict table."""
    events = EventLog()
    report = run_batch(
        [BatchItem(model="tas", source=TAS, variables=("x", "state"))],
        cache_dir=str(tmp_path),
        workers=2,
        events=events,
        _test_kill_first_attempt=True,
    )
    assert [r.verdict for r in report.rows] == ["safe", "safe"]
    assert events.of_kind(
        "worker_failed"
    ), "the killed workers must be observed and logged"
    serial = [
        e
        for e in events.of_kind("job_started")
        if e.get("mode") == "serial"
    ]
    assert serial, "the lost jobs must have been retried in-process"


def test_rows_keep_input_order():
    report = run_batch(ITEMS, workers=1)
    assert [(r.model, r.variable) for r in report.rows] == [
        (item.model, v) for item in ITEMS for v in item.variables
    ]


def test_budget_exhaustion_reports_unknown():
    report = run_batch(
        [BatchItem(model="tas", source=TAS, variables=("x",))],
        prefilter=False,
        workers=1,
        max_iterations=1,
    )
    (row,) = report.rows
    assert row.verdict == "unknown"
    assert "budget" in row.detail
    assert report.unknown == [row]


def test_unknown_is_not_cached_as_verdict(tmp_path):
    """A budget UNKNOWN must not poison the cache: a repeat query with
    the same budget retries instead of being served a cached give-up."""
    run_batch(
        [BatchItem(model="tas", source=TAS, variables=("x",))],
        cache_dir=str(tmp_path),
        prefilter=False,
        workers=1,
        max_iterations=1,
    )
    again = run_batch(
        [BatchItem(model="tas", source=TAS, variables=("x",))],
        cache_dir=str(tmp_path),
        prefilter=False,
        workers=1,
        max_iterations=1,
    )
    (row,) = again.rows
    assert row.source != "cache"  # the give-up was not served back
    # A retry with an adequate budget then verifies (and caches).
    ok = run_batch(
        [BatchItem(model="tas", source=TAS, variables=("x",))],
        cache_dir=str(tmp_path),
        prefilter=False,
        workers=1,
    )
    assert ok.rows[0].verdict == "safe"


def test_events_jsonl_written(tmp_path):
    path = tmp_path / "events.jsonl"
    run_batch(ITEMS, cache_dir=str(tmp_path / "c"), events=str(path))
    lines = [json.loads(ln) for ln in path.read_text().splitlines()]
    kinds = {e["event"] for e in lines}
    assert "batch_started" in kinds
    assert "job_planned" in kinds
    assert "batch_summary" in kinds
    assert all("t" in e for e in lines)


def test_verify_one_uses_cache(tmp_path):
    cfa = lower_source(TAS)
    events = EventLog()
    first = verify_one(cfa, "x", cache_dir=str(tmp_path), events=events)
    second = verify_one(cfa, "x", cache_dir=str(tmp_path), events=events)
    assert first.safe and second.safe
    assert events.of_kind("cache_hit")


def test_verify_one_budget_returns_unknown(tmp_path):
    cfa = lower_source(TAS)
    result = verify_one(cfa, "x", max_iterations=1)
    assert result.unknown


def test_unknown_variable_rejected():
    with pytest.raises(ValueError, match="not a global"):
        run_batch([BatchItem(model="m", source=TAS, variables=("nope",))])


def test_warm_start_seeds_reduce_iterations(tmp_path):
    """After caching a proof for one shape, a near-miss (same accesses
    to x, different surrounding control flow) warm-starts: it must still
    verify, and the warm source is recorded."""
    # An extra statement on an unrelated variable perturbs the slice
    # structure (digest miss) without touching any access to x (shape
    # hit).
    variant = TAS.replace(
        "global int x, state;", "global int x, state, counter;"
    ).replace(
        "if (old == 0) { x = x + 1; state = 0; }",
        "counter = counter + 1; if (old == 0) { x = x + 1; state = 0; }",
    )
    run_batch(
        [BatchItem(model="orig", source=TAS, variables=("x",))],
        cache_dir=str(tmp_path),
        workers=1,
    )
    events = EventLog()
    report = run_batch(
        [BatchItem(model="variant", source=variant, variables=("x",))],
        cache_dir=str(tmp_path),
        workers=1,
        events=events,
    )
    (row,) = report.rows
    assert row.verdict == "safe"
    assert events.of_kind("warm_start")
    assert row.source == "circ-warm"


def test_batch_portfolio_matches_circ(tmp_path):
    """--portfolio batches agree with CIRC-only verdicts across pool
    workers, and every row names the winning analysis."""
    report = run_batch(
        ITEMS,
        cache_dir=str(tmp_path),
        workers=2,
        prefilter=False,
        portfolio=True,
    )
    got = {(r.model, r.variable): r.verdict for r in report.rows}
    assert got == expected_verdicts()
    for row in report.rows:
        assert row.source.startswith("portfolio:")
        assert row.source != "portfolio:none"


def test_portfolio_and_circ_only_never_share_cache(tmp_path):
    """The ``portfolio`` flag is a salient cache-key option: a portfolio
    run must not serve a later CIRC-only query (or vice versa)."""
    items = [BatchItem(model="belt", source=BELT, variables=("x",))]
    run_batch(
        items, cache_dir=str(tmp_path), workers=1, prefilter=False,
        portfolio=True,
    )
    events = EventLog()
    report = run_batch(
        items, cache_dir=str(tmp_path), workers=1, prefilter=False,
        events=events,
    )
    assert not events.of_kind("cache_hit")
    (row,) = report.rows
    assert row.verdict == "safe" and row.source != "cache"


def test_portfolio_conflict_downgrades_to_unknown(tmp_path, monkeypatch):
    """A confident disagreement must not sink the batch and must not
    adopt either party's claim: the row is UNKNOWN and names the
    conflict."""
    import repro.portfolio.driver as driver

    def explode(*args, **kwargs):
        raise driver.PortfolioConflict("x", "racer=safe vs circ=race")

    monkeypatch.setattr(driver, "run_portfolio", explode)
    report = run_batch(
        [BatchItem(model="belt", source=BELT, variables=("x",))],
        cache_dir=str(tmp_path),
        workers=1,
        prefilter=False,
        portfolio=True,
    )
    (row,) = report.rows
    assert row.verdict == "unknown"
    assert "PORTFOLIO CONFLICT" in row.detail
