"""Multi-writer cache safety: two processes hammer one cache root.

The sharded engine's workers all publish into the same artifact cache.
Object/blob writes are content-addressed (concurrent writers store
equivalent payloads, last ``os.replace`` wins), but the shape index
aggregates predicates from *different* digests, so its update is a
locked read-merge-write.  These tests drive two real OS processes
against one root and assert the contracts: nothing torn (no quarantine
ever fires), everything readable, and the shape index holds predicates
from both writers.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.engine.cache import MAX_SHAPE_PREDICATES, ArtifactCache

WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.acfa.acfa import empty_acfa
from repro.circ.result import CircSafe, CircStats
from repro.engine.cache import ArtifactCache
from repro.smt import terms as T

root, tag, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = ArtifactCache(root)
for i in range(n):
    pred = T.Cmp("==", T.Var(f"w{{tag}}"), T.IntConst(i))
    result = CircSafe(
        variable="x",
        predicates=(pred,),
        context=empty_acfa(),
        stats=CircStats(),
    )
    cache.put(f"digest-{{tag}}-{{i}}", result, "fp", shape="shared-shape")
    cache.put_blob("absint", f"key-{{tag}}-{{i}}", {{"writer": tag, "i": i}})
"""

SRC = str(Path(__file__).resolve().parents[2] / "src")
N_PER_WRITER = 20


def run_writers(root):
    script = WRITER.format(src=SRC)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(root), str(tag), str(N_PER_WRITER)]
        )
        for tag in (0, 1)
    ]
    for p in procs:
        assert p.wait() == 0


def test_two_writers_no_torn_entries(tmp_path):
    run_writers(tmp_path)
    cache = ArtifactCache(tmp_path)
    # Every object both writers stored reads back cleanly.
    for tag in (0, 1):
        for i in range(N_PER_WRITER):
            entry = cache.get(f"digest-{tag}-{i}", "fp")
            assert entry is not None, (tag, i)
            assert entry.result.safe
            blob = cache.get_blob("absint", f"key-{tag}-{i}")
            assert blob == {"writer": tag, "i": i}
    # The checksum layer never quarantined anything: no torn writes.
    assert cache.stats()["corrupt"] == 0


def test_shape_index_accumulates_both_writers(tmp_path):
    """The flocked read-merge-write keeps predicates from BOTH writers
    in the shared shape slot (a blind overwrite would leave only the
    last writer's), capped at MAX_SHAPE_PREDICATES."""
    run_writers(tmp_path)
    cache = ArtifactCache(tmp_path)
    seeds = cache.seed_predicates("shared-shape", "fp")
    assert seeds, "the shape index must exist"
    assert len(seeds) <= MAX_SHAPE_PREDICATES
    (shape_file,) = (tmp_path / "shapes").rglob("*.json")
    text = shape_file.read_text()
    payload = json.loads(text)
    assert len(payload["predicates"]) == len(seeds)
    assert "w0" in text and "w1" in text, (
        "predicates from both writers must survive the concurrent merge"
    )
    assert cache.stats()["corrupt"] == 0
