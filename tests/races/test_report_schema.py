"""Golden test for the shared report schema (static, batch, portfolio)."""

import dataclasses
import json

from repro.engine import BatchItem, run_batch
from repro.lang.lower import lower_source
from repro.races.report import (
    REPORT_SCHEMA,
    ReportRow,
    render_rows_table,
    rows_from_batch,
    rows_from_baselines,
    rows_from_portfolio,
    rows_from_static,
    rows_to_payload,
)
from repro.static.classify import classify

BELT = """
global int m, x;
thread t {
  while (1) {
    lock(m);
    atomic { x = x + 1; }
    unlock(m);
  }
}
"""

#: The exact serialized form both subcommands must emit.  Changing the
#: schema is a breaking change for downstream consumers: update this
#: golden together with REPORT_SCHEMA.
GOLDEN = {
    "schema": "repro-race/report-v1",
    "rows": [
        {
            "model": "belt",
            "variable": "x",
            "verdict": "safe",
            "source": "static",
            "time_ms": 0.0,
            "detail": (
                "protected: every access holds atomic sections, "
                "monitor 'm'"
            ),
        }
    ],
}


def test_payload_matches_golden():
    report = classify(lower_source(BELT), ["x"])
    payload = rows_to_payload(rows_from_static(report, model="belt"))
    assert payload == GOLDEN


def test_payload_is_json_serializable_and_stable():
    report = classify(lower_source(BELT), ["x"])
    payload = rows_to_payload(rows_from_static(report, model="belt"))
    assert json.loads(json.dumps(payload)) == payload


def test_batch_rows_use_the_same_shape():
    batch = run_batch(
        [BatchItem(model="belt", source=BELT, variables=("x",))]
    )
    payload = rows_to_payload(rows_from_batch(batch))
    assert payload["schema"] == REPORT_SCHEMA
    (row,) = payload["rows"]
    assert set(row) == set(GOLDEN["rows"][0])
    assert row["verdict"] == "safe"
    assert row["source"] == "static"


def test_must_check_maps_to_unknown_verdict():
    src = "global int x; thread t { while (1) { x = x + 1; } }"
    report = classify(lower_source(src), ["x"])
    (row,) = rows_from_static(report, model="racy")
    assert row.verdict == "unknown"
    assert row.source == "static"
    assert row.detail.startswith("must-check")


LOCKED = (
    "global int m, x; "
    "thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
)

#: Golden for a portfolio run on the lock-disciplined counter: the racer
#: proves safety in phase 1 and cancels everyone else.  Latencies are
#: zeroed before comparison -- everything else must match exactly.
PORTFOLIO_GOLDEN = {
    "schema": "repro-race/report-v1",
    "rows": [
        {
            "model": "locked",
            "variable": "x",
            "verdict": "safe",
            "source": "portfolio:racer",
            "time_ms": 0.0,
            "detail": "shape locked/small",
        },
        {
            "model": "locked",
            "variable": "x",
            "verdict": "safe",
            "source": "racer",
            "time_ms": 0.0,
            "detail": (
                "every conflicting pair proved impossible (common m)"
            ),
        },
        {
            "model": "locked",
            "variable": "x",
            "verdict": "unknown",
            "source": "absint",
            "time_ms": 0.0,
            "detail": "cancelled by a confident verdict",
        },
        {
            "model": "locked",
            "variable": "x",
            "verdict": "unknown",
            "source": "circ",
            "time_ms": 0.0,
            "detail": "cancelled by a confident verdict",
        },
    ],
}


def test_portfolio_payload_matches_golden():
    from repro.portfolio import run_portfolio

    report = run_portfolio(lower_source(LOCKED), "x")
    rows = [
        dataclasses.replace(r, time_ms=0.0)
        for r in rows_from_portfolio(report, model="locked")
    ]
    assert rows_to_payload(rows) == PORTFOLIO_GOLDEN


def test_baseline_rows_use_the_same_shape():
    from repro.baselines.lockset import lockset_analysis
    from repro.portfolio import absint_check, racer_check

    cfa = lower_source(LOCKED)
    rows = rows_from_baselines(
        "locked",
        "x",
        racer=racer_check(cfa, "x"),
        absint=absint_check(cfa, "x"),
        lockset=lockset_analysis(cfa, ["x"]),
    )
    payload = rows_to_payload(rows)
    assert payload["schema"] == REPORT_SCHEMA
    assert {r["source"] for r in payload["rows"]} == {
        "racer", "absint", "lockset",
    }
    for row in payload["rows"]:
        assert set(row) == set(GOLDEN["rows"][0])
        assert row["verdict"] in ("safe", "race", "unknown")


def test_render_table_lists_every_row():
    rows = [
        ReportRow("m1", "x", "safe", "cache", 0.0),
        ReportRow("m2", "y", "race", "circ", 12.5),
    ]
    table = render_rows_table(rows)
    for needle in ("m1", "m2", "x", "y", "safe", "race", "cache", "circ"):
        assert needle in table
