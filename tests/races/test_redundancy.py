"""Tests for redundant-synchronization detection."""

import pytest

from repro.races.redundancy import find_redundant_sync

BELT_AND_SUSPENDERS = """
global int m, x;
thread t {
  while (1) {
    lock(m);
    atomic { x = x + 1; }
    unlock(m);
  }
}
"""

NECESSARY_ONLY = """
global int x;
thread t {
  while (1) {
    atomic { x = x + 1; }
  }
}
"""

TEST_AND_SET = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""


def by_kind(findings, kind):
    return [f for f in findings if f.site.kind == kind]


def test_double_protection_is_redundant_each_way():
    findings = find_redundant_sync(BELT_AND_SUSPENDERS, "x")
    # Either protection alone suffices: removing the atomic keeps the lock,
    # removing the lock keeps the atomic -- both redundant individually.
    (atomic_f,) = by_kind(findings, "atomic")
    (lock_f,) = by_kind(findings, "lock")
    assert atomic_f.redundant
    assert lock_f.redundant


def test_single_protection_is_necessary():
    findings = find_redundant_sync(NECESSARY_ONLY, "x")
    (atomic_f,) = by_kind(findings, "atomic")
    assert not atomic_f.redundant
    assert "race" in atomic_f.detail


def test_test_and_set_atomic_is_necessary():
    findings = find_redundant_sync(TEST_AND_SET, "x")
    (atomic_f,) = by_kind(findings, "atomic")
    assert not atomic_f.redundant


def test_racy_baseline_rejected():
    with pytest.raises(ValueError):
        find_redundant_sync(
            "global int x; thread t { while (1) { x = x + 1; } }", "x"
        )


def test_sites_render():
    findings = find_redundant_sync(BELT_AND_SUSPENDERS, "x")
    rendered = [str(f.site) for f in findings]
    assert any("atomic section" in s for s in rendered)
    assert any("lock discipline on 'm'" in s for s in rendered)


def test_prefilter_discharges_double_protection_statically():
    """Both removals leave x protected by the other construct, so the
    static pre-analysis settles them without a single CIRC run."""
    findings = find_redundant_sync(BELT_AND_SUSPENDERS, "x")
    assert all(f.redundant for f in findings)
    assert all("statically" in f.detail for f in findings)


def test_prefilter_agrees_with_full_verification():
    for source in (BELT_AND_SUSPENDERS, NECESSARY_ONLY, TEST_AND_SET):
        fast = find_redundant_sync(source, "x", use_prefilter=True)
        slow = find_redundant_sync(source, "x", use_prefilter=False)
        assert [(str(f.site), f.redundant) for f in fast] == [
            (str(f.site), f.redundant) for f in slow
        ]


def test_prefilter_still_catches_necessary_sync():
    findings = find_redundant_sync(NECESSARY_ONLY, "x", use_prefilter=True)
    (atomic_f,) = by_kind(findings, "atomic")
    assert not atomic_f.redundant  # removal leaves must-check -> CIRC ran


def test_engine_agrees_with_serial(tmp_path):
    """The batched engine audit reaches the same redundancy verdicts as
    the one-variant-at-a-time serial path."""
    for source in (BELT_AND_SUSPENDERS, NECESSARY_ONLY, TEST_AND_SET):
        serial = find_redundant_sync(source, "x")
        batched = find_redundant_sync(
            source,
            "x",
            engine=True,
            cache_dir=str(tmp_path / "cache"),
            workers=1,
        )
        assert [(str(f.site), f.redundant) for f in serial] == [
            (str(f.site), f.redundant) for f in batched
        ]


def test_engine_rejects_racy_baseline(tmp_path):
    with pytest.raises(ValueError):
        find_redundant_sync(
            "global int x; thread t { while (1) { x = x + 1; } }",
            "x",
            engine=True,
            workers=1,
        )


def test_engine_repeat_audit_hits_cache(tmp_path):
    """Re-auditing the same program answers every CIRC-decided variant
    from the artifact cache."""
    cache = str(tmp_path / "cache")
    first = find_redundant_sync(
        TEST_AND_SET, "x", engine=True, cache_dir=cache, workers=1
    )
    again = find_redundant_sync(
        TEST_AND_SET, "x", engine=True, cache_dir=cache, workers=1
    )
    assert [(str(f.site), f.redundant) for f in first] == [
        (str(f.site), f.redundant) for f in again
    ]
