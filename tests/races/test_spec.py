"""Unit tests for the high-level race-checking API."""

import pytest

from repro.lang import lower_source
from repro.races import (
    check_race,
    check_race_bounded,
    racy_variables,
    shared_variables,
)

SRC = """
global int x, state, ro;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + ro; state = 0; }
  }
}
"""


def test_shared_and_racy_variables():
    cfa = lower_source(SRC)
    assert shared_variables(cfa) == {"x", "state", "ro"}
    assert racy_variables(cfa) == {"x", "state"}  # ro is never written


def test_read_only_global_shared_but_not_racy():
    cfa = lower_source(
        "global int ro, x; thread t { while (1) { x = ro + 1; } }"
    )
    assert "ro" in shared_variables(cfa)
    assert "ro" not in racy_variables(cfa)


def test_guard_only_read_counts_as_shared():
    cfa = lower_source(
        "global int g, x; thread t { while (1) { if (g == 0) { x = 1; } } }"
    )
    assert "g" in shared_variables(cfa)
    assert "g" not in racy_variables(cfa)


def test_write_only_global_is_racy():
    """A variable that is only ever written can still race (write/write)."""
    cfa = lower_source("global int w; thread t { while (1) { w = 1; } }")
    assert shared_variables(cfa) == {"w"}
    assert racy_variables(cfa) == {"w"}


def test_unaccessed_global_is_neither():
    cfa = lower_source("global int dead, x; thread t { x = 1; }")
    assert "dead" not in shared_variables(cfa)
    assert "dead" not in racy_variables(cfa)


def test_function_local_shadowing_global_not_counted():
    """A function-scope local named like a global shadows it: accesses hit
    the renamed inlined copy, so the global is untouched."""
    src = """
    global int x, out;
    void bump() { local int x; x = 7; out = x; }
    thread t { while (1) { bump(); } }
    """
    cfa = lower_source(src)
    assert "x" not in shared_variables(cfa)
    assert "x" not in racy_variables(cfa)
    assert "out" in racy_variables(cfa)


def test_thread_level_shadowing_is_rejected():
    """At thread scope, redeclaring a global is a duplicate declaration."""
    with pytest.raises(ValueError):
        lower_source("global int x; thread t { local int x; x = 1; }")


def test_check_race_accepts_source_text():
    result = check_race(SRC, "x")
    assert result.safe


def test_check_race_accepts_cfa():
    cfa = lower_source(SRC)
    assert check_race(cfa, "x").safe


def test_check_race_unknown_variable():
    with pytest.raises(ValueError):
        check_race(SRC, "nope")


def test_check_race_forwards_options():
    result = check_race(SRC, "x", variant="omega", keep_history=True)
    assert result.safe
    assert result.stats.history


def test_check_race_bounded():
    result = check_race_bounded(SRC.replace("x + ro", "1 - x"), "x", n_threads=2)
    assert result.complete and not result.found


def test_check_race_bounded_finds_bug():
    bad = "global int x; thread t { while (1) { x = 1 - x; } }"
    result = check_race_bounded(bad, "x", n_threads=2)
    assert result.found


def test_bounded_unknown_variable():
    with pytest.raises(ValueError):
        check_race_bounded(SRC, "nope")


def test_multi_thread_program_selects_by_name():
    src = "global int g; thread a { g = 1; } thread b { skip; }"
    result = check_race(src, "g", thread="b")
    assert result.safe  # thread b never touches g


def test_check_race_prefilter_fast_path():
    from repro.static import StaticSafe

    result = check_race(
        "global int x; thread t { while (1) { atomic { x = x + 1; } } }",
        "x",
        prefilter=True,
    )
    assert result.safe and isinstance(result, StaticSafe)


def test_check_race_prefilter_forwards_circ_options():
    result = check_race(SRC, "x", prefilter=True, keep_history=True)
    assert result.safe
    assert result.stats.history  # x is must-check, so CIRC really ran
