"""Unit tests for the high-level race-checking API."""

import pytest

from repro.lang import lower_source
from repro.races import (
    check_race,
    check_race_bounded,
    racy_variables,
    shared_variables,
)

SRC = """
global int x, state, ro;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + ro; state = 0; }
  }
}
"""


def test_shared_and_racy_variables():
    cfa = lower_source(SRC)
    assert shared_variables(cfa) == {"x", "state", "ro"}
    assert racy_variables(cfa) == {"x", "state"}  # ro is never written


def test_check_race_accepts_source_text():
    result = check_race(SRC, "x")
    assert result.safe


def test_check_race_accepts_cfa():
    cfa = lower_source(SRC)
    assert check_race(cfa, "x").safe


def test_check_race_unknown_variable():
    with pytest.raises(ValueError):
        check_race(SRC, "nope")


def test_check_race_forwards_options():
    result = check_race(SRC, "x", variant="omega", keep_history=True)
    assert result.safe
    assert result.stats.history


def test_check_race_bounded():
    result = check_race_bounded(SRC.replace("x + ro", "1 - x"), "x", n_threads=2)
    assert result.complete and not result.found


def test_check_race_bounded_finds_bug():
    bad = "global int x; thread t { while (1) { x = 1 - x; } }"
    result = check_race_bounded(bad, "x", n_threads=2)
    assert result.found


def test_bounded_unknown_variable():
    with pytest.raises(ValueError):
        check_race_bounded(SRC, "nope")


def test_multi_thread_program_selects_by_name():
    src = "global int g; thread a { g = 1; } thread b { skip; }"
    result = check_race(src, "g", thread="b")
    assert result.safe  # thread b never touches g
