"""Tests for the audit-report module."""

from repro.lang import lower_source
from repro.races.report import audit, render_markdown

SAFE_SRC = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

# The first operation does not touch x, so a witness needs real steps.
RACY_SRC = "global int x, y; thread t { y = 1; while (1) { x = x + 1; } }"


def test_audit_safe_program():
    report = audit(lower_source(SAFE_SRC), name="fig1")
    assert {v.variable for v in report.variables} == {"x", "state"}
    assert not report.races
    assert len(report.proved) == 2
    # Both are lockset false positives discharged by CIRC.
    assert len(report.false_positives) == 2


def test_audit_racy_program():
    report = audit(lower_source(RACY_SRC), name="bad")
    entry = next(v for v in report.variables if v.variable == "x")
    assert entry.verdict == "race"
    assert entry.witness
    assert entry.n_threads >= 2


def test_audit_restricted_variables():
    report = audit(lower_source(SAFE_SRC), variables=["x"])
    assert [v.variable for v in report.variables] == ["x"]


def test_audit_only_flagged_skips_clean_variables():
    src = "global int m, x; thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
    report = audit(lower_source(src), only_flagged=True)
    x_entry = next(v for v in report.variables if v.variable == "x")
    assert x_entry.verdict == "safe"
    assert "skipped" in x_entry.detail


def test_render_markdown_structure():
    report = audit(lower_source(SAFE_SRC), name="fig1")
    md = render_markdown(report)
    assert md.startswith("# Race audit: fig1")
    assert "| `x` |" in md
    assert "**safe**" in md
    assert "old == state" in md


def test_render_markdown_race_witness():
    report = audit(lower_source(RACY_SRC), name="bad")
    md = render_markdown(report)
    assert "race witness" in md
    assert "```" in md
