"""Unit tests for regions and predicate sets."""

from repro.predabs.region import BOTTOM, TOP, PredicateSet, Region
from repro.smt import terms as T

P = PredicateSet([T.eq(T.var("x"), 0), T.ge(T.var("y"), 1)])


def test_predicate_set_dedup_and_order():
    p1 = T.eq(T.var("a"), 0)
    p2 = T.eq(T.var("b"), 0)
    ps = PredicateSet([p1, p2, p1])
    assert len(ps) == 2
    assert ps.index(p1) == 0 and ps.index(p2) == 1


def test_predicate_set_extended_keeps_indices():
    p1, p2, p3 = (T.eq(T.var(n), 0) for n in "abc")
    ps = PredicateSet([p1, p2])
    ps2 = ps.extended([p3, p1])
    assert len(ps2) == 3
    assert ps2.index(p1) == 0 and ps2.index(p3) == 2


def test_top_formula_is_true():
    assert TOP.formula(P) == T.TRUE
    assert not TOP.is_bottom()


def test_bottom_formula_is_false():
    assert BOTTOM.formula(P) == T.FALSE
    assert BOTTOM.is_bottom()


def test_region_formula_polarity():
    r = Region(frozenset({(0, True), (1, False)}))
    f = r.formula(P)
    assert T.evaluate(f, {"x": 0, "y": 0}) is True
    assert T.evaluate(f, {"x": 0, "y": 5}) is False
    assert T.evaluate(f, {"x": 1, "y": 0}) is False


def test_entailment_is_literal_containment():
    strong = Region(frozenset({(0, True), (1, True)}))
    weak = Region(frozenset({(0, True)}))
    assert strong.entails(weak)
    assert not weak.entails(strong)
    assert strong.entails(TOP)
    assert BOTTOM.entails(strong)
    assert not strong.entails(BOTTOM)


def test_meet():
    a = Region(frozenset({(0, True)}))
    b = Region(frozenset({(1, False)}))
    m = a.meet(b)
    assert m.literals == {(0, True), (1, False)}
    conflict = Region(frozenset({(0, False)}))
    assert a.meet(conflict).is_bottom()
    assert a.meet(BOTTOM).is_bottom()


def test_regions_are_hashable_values():
    a = Region(frozenset({(0, True)}))
    b = Region(frozenset({(0, True)}))
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1


def test_render():
    r = Region(frozenset({(0, True)}))
    assert "x == 0" in r.render(P)
    assert TOP.render(P) == "true"
    assert BOTTOM.render(P) == "false"
