"""Tests for the exact boolean abstraction mode."""

import pytest

from repro.cfa.cfa import AssignOp
from repro.predabs.abstractor import Abstractor
from repro.predabs.region import BooleanRegion, PredicateSet
from repro.smt import terms as T
from repro.smt.solver import equivalent

x, y = T.var("x"), T.var("y")
P = PredicateSet([T.ge(x, 0), T.ge(y, 0)])


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        Abstractor(P, mode="magic")


def test_boolean_abstraction_exact_on_disjunction():
    """x*y >= 0-style constraint: same-sign, inexpressible cartesianly."""
    ab_bool = Abstractor(P, mode="boolean")
    ab_cart = Abstractor(P, mode="cartesian")
    # (x >= 0 and y >= 0) or (x <= -1 and y <= -1)
    phi = T.or_(
        T.and_(T.ge(x, 0), T.ge(y, 0)),
        T.and_(T.le(x, -1), T.le(y, -1)),
    )
    r_bool = ab_bool.abstract([phi])
    r_cart = ab_cart.abstract([phi])
    # Cartesian loses everything (neither predicate is implied alone).
    assert r_cart.literals == frozenset()
    # Boolean captures the correlation exactly.
    assert isinstance(r_bool, BooleanRegion)
    assert len(r_bool.cubes) == 2
    assert equivalent(r_bool.formula(P), phi)


def test_boolean_bottom():
    ab = Abstractor(P, mode="boolean")
    assert ab.abstract([T.FALSE]).is_bottom()


def test_boolean_hull_matches_cartesian():
    """The boolean region's literal hull equals the cartesian result."""
    ab_bool = Abstractor(P, mode="boolean")
    ab_cart = Abstractor(P, mode="cartesian")
    phi = T.and_(T.ge(x, 3))
    r_bool = ab_bool.abstract([phi])
    r_cart = ab_cart.abstract([phi])
    assert r_bool.literals == r_cart.literals


def test_boolean_region_formula_polarity():
    r = BooleanRegion.from_cubes(
        [frozenset({(0, True), (1, False)})]
    )
    f = r.formula(P)
    assert T.evaluate(f, {"x": 1, "y": -1}) is True
    assert T.evaluate(f, {"x": 1, "y": 0}) is False


def test_boolean_post_preserves_correlation():
    """After y := x, the sign correlation survives in boolean mode."""
    ab = Abstractor(P, mode="boolean")
    r0 = ab.abstract([T.TRUE])
    r1 = ab.post_op(r0, AssignOp("y", x))
    # y >= 0 iff x >= 0: the cubes (T,T) and (F,F) only.
    assert isinstance(r1, BooleanRegion)
    polarities = {tuple(sorted(c)) for c in r1.cubes}
    assert ((0, True), (1, True)) in polarities
    assert ((0, False), (1, False)) in polarities
    assert ((0, True), (1, False)) not in polarities


def test_boolean_circ_end_to_end():
    from repro.circ import circ
    from repro.lang import lower_source

    src = "global int g; thread t { while (1) { atomic { g = 1 - g; } } }"
    r = circ(lower_source(src), race_on="g", abstraction="boolean")
    assert r.safe
