"""Unit tests for the Abs.P operator and abstract post."""

from repro.cfa.cfa import AssignOp, AssumeOp
from repro.predabs.abstractor import Abstractor
from repro.predabs.region import BOTTOM, TOP, PredicateSet
from repro.smt import terms as T

x, y, state, old = (T.var(n) for n in ("x", "y", "state", "old"))

P = PredicateSet([T.eq(state, 0), T.eq(state, 1), T.eq(old, 0)])
ST0 = P.index(T.eq(state, 0))
ST1 = P.index(T.eq(state, 1))
OLD0 = P.index(T.eq(old, 0))


def test_abstract_unsat_is_bottom():
    ab = Abstractor(P)
    assert ab.abstract([T.eq(state, 0), T.eq(state, 1)]).is_bottom()


def test_abstract_picks_implied_literals():
    ab = Abstractor(P)
    r = ab.abstract([T.eq(state, 0)])
    assert (ST0, True) in r.literals
    assert (ST1, False) in r.literals  # state==0 implies state != 1
    assert not any(idx == OLD0 for idx, _ in r.literals)


def test_abstract_true_gives_top():
    ab = Abstractor(P)
    assert ab.abstract([]) == TOP


def test_initial_region():
    ab = Abstractor(P)
    r = ab.initial_region({"state": 0, "old": 0}, ["state", "old", "x"])
    assert (ST0, True) in r.literals
    assert (ST1, False) in r.literals
    assert (OLD0, True) in r.literals


def test_initial_region_nonzero_init():
    ab = Abstractor(P)
    r = ab.initial_region({"state": 1}, ["state"])
    assert (ST1, True) in r.literals
    assert (ST0, False) in r.literals


def test_post_assign_tracks_value():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 0)])
    r1 = ab.post_op(r0, AssignOp("state", T.num(1)))
    assert (ST1, True) in r1.literals
    assert (ST0, False) in r1.literals


def test_post_assign_of_variable_copy():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 0)])
    # old := state under state==0 gives old==0.
    r1 = ab.post_op(r0, AssignOp("old", state))
    assert (OLD0, True) in r1.literals
    assert (ST0, True) in r1.literals  # state unchanged


def test_post_assume_blocks_contradiction():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 1)])
    r1 = ab.post_op(r0, AssumeOp(T.eq(state, 0)))
    assert r1.is_bottom()


def test_post_assume_refines():
    ab = Abstractor(P)
    r1 = ab.post_op(TOP, AssumeOp(T.eq(state, 0)))
    assert (ST0, True) in r1.literals


def test_post_with_context_invariant():
    ab = Abstractor(P)
    # Context invariant state==1 makes the assume state==0 infeasible.
    r1 = ab.post_op(TOP, AssumeOp(T.eq(state, 0)), ctx_inv=[T.eq(state, 1)])
    assert r1.is_bottom()


def test_post_havoc_forgets_havoced_variable():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 0), T.eq(old, 0)])
    r1 = ab.post_havoc(r0, {"state"}, target_label=[])
    # state facts gone, old facts survive.
    assert not any(idx in (ST0, ST1) for idx, _ in r1.literals)
    assert (OLD0, True) in r1.literals


def test_post_havoc_applies_target_label():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 0)])
    r1 = ab.post_havoc(r0, {"state"}, target_label=[T.eq(state, 1)])
    assert (ST1, True) in r1.literals


def test_post_havoc_contradicting_label_is_bottom():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 0)])
    # old is not havoced and the label contradicts a kept fact about state?
    # No: label replaces state. Contradiction must come from non-havoced
    # variables.
    r1 = ab.post_havoc(
        r0, set(), target_label=[T.eq(state, 1)]
    )
    assert r1.is_bottom()


def test_bottom_propagates():
    ab = Abstractor(P)
    assert ab.post_op(BOTTOM, AssignOp("state", T.num(1))).is_bottom()
    assert ab.post_havoc(BOTTOM, {"state"}, []).is_bottom()


def test_caching_coalesces_queries():
    ab = Abstractor(P)
    r0 = ab.abstract([T.eq(state, 0)])
    before = ab.query_count
    r1 = ab.abstract([T.eq(state, 0)])
    assert r0 == r1
    assert ab.query_count == before  # served from cache
