"""Unit tests for the stateless (thread-modular) context baseline."""

from repro.acfa.acfa import Acfa, AcfaEdge
from repro.baselines.threadmodular import (
    StatelessInsufficient,
    StatelessSafe,
    StatelessUnsafe,
    pointwise_collapse,
    thread_modular,
)
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as T


def mk_arg(labels, edges, atomic=()):
    return Acfa(
        name="g",
        q0=0,
        locations=range(len(labels)),
        label={i: tuple(l) for i, l in enumerate(labels)},
        edges=[AcfaEdge(s, frozenset(h), d) for s, h, d in edges],
        atomic=atomic,
    )


def test_pointwise_collapse_single_hub():
    g = mk_arg(
        [[T.eq(T.var("g"), 0)], [], []],
        [(0, {"g"}, 1), (1, set(), 2), (2, {"x"}, 0)],
    )
    a, mu = pointwise_collapse(g, frozenset())
    assert a.size == 1
    assert set(mu.values()) == {0}
    assert a.label[0] == ()
    # All havocs merge onto the self-loop.
    (loop,) = a.edges
    assert loop.havoc == {"g", "x"}


def test_pointwise_collapse_atomic_hub():
    g = mk_arg(
        [[], [], []],
        [(0, set(), 1), (1, {"x"}, 2), (2, set(), 0)],
        atomic=[1],
    )
    a, mu = pointwise_collapse(g, frozenset())
    assert a.size == 2
    assert a.is_atomic(1)
    assert mu[1] == 1 and mu[0] == 0 and mu[2] == 0
    # The atomic hub keeps the write.
    assert a.may_write(1, "x")


def test_pointwise_collapse_drops_locals():
    g = mk_arg([[], []], [(0, {"l", "x"}, 1)])
    a, _ = pointwise_collapse(g, frozenset({"l"}))
    (edge,) = a.edges
    assert edge.havoc == {"x"}


def test_stateless_insufficient_on_figure1():
    """The paper's Section 1 claim about [19]."""
    result = thread_modular(lower_source(TEST_AND_SET_SOURCE), "x")
    assert isinstance(result, StatelessInsufficient)


def test_stateless_handles_atomic_sections():
    src = "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    result = thread_modular(lower_source(src), "x")
    assert isinstance(result, StatelessSafe)
    assert len(result.predicates) == 0


def test_stateless_finds_genuine_races():
    src = "global int x; thread t { while (1) { x = x + 1; } }"
    result = thread_modular(lower_source(src), "x")
    assert isinstance(result, StatelessUnsafe)
    assert result.n_threads >= 2


def test_stateless_read_only_safe():
    src = "global int x, y; thread t { local int a; while (1) { a = x; y = a; } }"
    result = thread_modular(lower_source(src), "x")
    assert isinstance(result, StatelessSafe)


def test_circ_succeeds_where_stateless_fails():
    """The central comparison: same program, stateless fails, CIRC proves."""
    from repro.circ import circ

    cfa = lower_source(TEST_AND_SET_SOURCE)
    stateless = thread_modular(cfa, "x")
    stateful = circ(cfa, race_on="x")
    assert isinstance(stateless, StatelessInsufficient)
    assert stateful.safe
