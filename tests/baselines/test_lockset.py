"""Unit tests for the Eraser-style lockset baseline.

Also covers the phase-1 primitives the portfolio racer builds on:
:func:`may_escape` (which globals can be observed by another thread)
and :func:`must_locksets` (monitor-aware synchronization surely held).
"""

from repro.baselines.lockset import (
    ATOMIC_LOCK,
    lockset_analysis,
    may_escape,
    must_locksets,
)
from repro.circ.circ import circ
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE


def test_lock_protected_variable_passes():
    cfa = lower_source(
        "global int m, x; thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")
    assert "m" in report.candidate["x"]


def test_unprotected_variable_warns():
    cfa = lower_source("global int x; thread t { while (1) { x = x + 1; } }")
    report = lockset_analysis(cfa)
    assert report.warns_on("x")


def test_atomic_sections_count_as_a_lock():
    cfa = lower_source(
        "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")
    assert ATOMIC_LOCK in report.candidate["x"]


def test_partially_protected_warns():
    cfa = lower_source(
        """
        global int m, x;
        thread t {
          while (1) {
            lock(m); x = x + 1; unlock(m);
            x = 0;
          }
        }
        """
    )
    report = lockset_analysis(cfa)
    assert report.warns_on("x")


def test_two_locks_intersection():
    cfa = lower_source(
        """
        global int m1, m2, x;
        thread t {
          while (1) {
            lock(m1); lock(m2);
            x = x + 1;
            unlock(m2); unlock(m1);
            lock(m2);
            x = x + 2;
            unlock(m2);
          }
        }
        """
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")
    assert report.candidate["x"] == {"m2"}


def test_false_positive_on_figure1():
    """The paper's motivating claim: lockset tools flag Figure 1."""
    cfa = lower_source(TEST_AND_SET_SOURCE)
    report = lockset_analysis(cfa)
    assert report.warns_on("x")  # false positive; CIRC proves it safe


def test_read_only_variable_no_warning():
    cfa = lower_source(
        "global int x, y; thread t { local int a; while (1) { a = x; y = a; } }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")  # reads only, no write anywhere
    assert report.warns_on("y")


def test_lock_variable_itself_not_flagged():
    cfa = lower_source(
        "global int m, x; thread t { lock(m); x = 1; unlock(m); }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("m")


def test_restrict_to_variables():
    cfa = lower_source("global int x, y; thread t { x = 1; y = 2; }")
    report = lockset_analysis(cfa, variables=["x"])
    assert report.warns_on("x")
    assert not report.warns_on("y")


def test_may_escape_requires_a_reachable_access():
    cfa = lower_source(
        "global int x, unused; thread t { while (1) { x = x + 1; } }"
    )
    assert may_escape(cfa) == frozenset({"x"})


def test_may_escape_ignores_unreachable_accesses():
    # The write to y sits after an infinite loop: no thread can ever
    # observe it, so y must not count as escaped.
    cfa = lower_source(
        """
        global int x, y;
        thread t {
          while (1) { x = x + 1; }
          y = 1;
        }
        """
    )
    escaped = may_escape(cfa)
    assert "x" in escaped and "y" not in escaped


def test_must_locksets_are_monitor_aware():
    """A validated test-and-set flag counts as a held lock -- exactly
    what the tag-only Eraser dataflow misses."""
    cfa = lower_source(
        """
        global int s, x;
        thread t {
          while (1) {
            atomic { assume(s == 0); s = 1; }
            x = x + 1;
            s = 0;
          }
        }
        """
    )
    aware = must_locksets(cfa)
    blind = must_locksets(cfa, monitors=())
    x_sites = [q for q in cfa.locations if "x" in cfa.writes_at(q)]
    assert x_sites
    for q in x_sites:
        assert "s" in aware[q]
        assert "s" not in blind[q]


def test_figure1_lockset_warns_where_circ_proves_safe():
    """The ISSUE's required differential: on the Figure 1 test-and-set
    idiom the lockset discipline raises a (false) alarm while CIRC
    proves unbounded safety on the very same CFA."""
    cfa = lower_source(TEST_AND_SET_SOURCE)
    assert lockset_analysis(cfa).warns_on("x")
    assert circ(cfa, race_on="x").safe


def test_warnings_deterministically_sorted():
    """Regression: warnings come out sorted by variable and with sorted
    access sites regardless of the caller's iteration order."""
    cfa = lower_source(
        "global int c, a, b; thread t { while (1) { c = 1; a = 2; b = 3; } }"
    )
    for variables in (None, ["c", "a", "b"], {"b", "c", "a"}):
        report = lockset_analysis(cfa, variables=variables)
        names = [w.variable for w in report.warnings]
        assert names == sorted(names) == ["a", "b", "c"]
        for w in report.warnings:
            assert list(w.access_sites) == sorted(set(w.access_sites))
    # The candidate map iterates in sorted order too (stable CLI output).
    report = lockset_analysis(cfa, variables={"b", "c", "a"})
    assert list(report.candidate) == ["a", "b", "c"]
