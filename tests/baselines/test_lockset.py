"""Unit tests for the Eraser-style lockset baseline."""

import pytest

from repro.baselines.lockset import ATOMIC_LOCK, lockset_analysis
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE


def test_lock_protected_variable_passes():
    cfa = lower_source(
        "global int m, x; thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")
    assert "m" in report.candidate["x"]


def test_unprotected_variable_warns():
    cfa = lower_source("global int x; thread t { while (1) { x = x + 1; } }")
    report = lockset_analysis(cfa)
    assert report.warns_on("x")


def test_atomic_sections_count_as_a_lock():
    cfa = lower_source(
        "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")
    assert ATOMIC_LOCK in report.candidate["x"]


def test_partially_protected_warns():
    cfa = lower_source(
        """
        global int m, x;
        thread t {
          while (1) {
            lock(m); x = x + 1; unlock(m);
            x = 0;
          }
        }
        """
    )
    report = lockset_analysis(cfa)
    assert report.warns_on("x")


def test_two_locks_intersection():
    cfa = lower_source(
        """
        global int m1, m2, x;
        thread t {
          while (1) {
            lock(m1); lock(m2);
            x = x + 1;
            unlock(m2); unlock(m1);
            lock(m2);
            x = x + 2;
            unlock(m2);
          }
        }
        """
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")
    assert report.candidate["x"] == {"m2"}


def test_false_positive_on_figure1():
    """The paper's motivating claim: lockset tools flag Figure 1."""
    cfa = lower_source(TEST_AND_SET_SOURCE)
    report = lockset_analysis(cfa)
    assert report.warns_on("x")  # false positive; CIRC proves it safe


def test_read_only_variable_no_warning():
    cfa = lower_source(
        "global int x, y; thread t { local int a; while (1) { a = x; y = a; } }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("x")  # reads only, no write anywhere
    assert report.warns_on("y")


def test_lock_variable_itself_not_flagged():
    cfa = lower_source(
        "global int m, x; thread t { lock(m); x = 1; unlock(m); }"
    )
    report = lockset_analysis(cfa)
    assert not report.warns_on("m")


def test_restrict_to_variables():
    cfa = lower_source("global int x, y; thread t { x = 1; y = 2; }")
    report = lockset_analysis(cfa, variables=["x"])
    assert report.warns_on("x")
    assert not report.warns_on("y")
