"""Unit tests for the nesC-compiler-style flow baseline."""

from repro.baselines.flowcheck import flow_analysis
from repro.nesc.model import Event, NescApp, Task
from repro.nesc.programs import benchmark


def test_atomic_only_accesses_pass():
    app = NescApp(
        name="ok",
        globals=[("g", 0)],
        events=[Event("e", "atomic { g = g + 1; }")],
        tasks=[Task("t", "atomic { g = 0; }")],
    )
    report = flow_analysis(app)
    assert not report.warnings


def test_unprotected_event_access_warns():
    app = NescApp(
        name="bad",
        globals=[("g", 0)],
        events=[Event("e", "g = g + 1;")],
    )
    report = flow_analysis(app)
    assert report.warns_on("g")
    (w,) = report.warnings
    assert w.unprotected_in_event


def test_task_only_variables_pass():
    # Tasks never preempt each other: task-only variables are safe and the
    # flow check knows it (they are not interrupt-shared).
    app = NescApp(
        name="taskonly",
        globals=[("g", 0)],
        tasks=[Task("t", "g = g + 1;")],
    )
    report = flow_analysis(app)
    assert not report.warnings
    assert "g" not in report.interrupt_shared


def test_mixed_task_event_unprotected_task_side():
    app = NescApp(
        name="mixed",
        globals=[("g", 0)],
        events=[Event("e", "atomic { g = 1; }")],
        tasks=[Task("t", "g = 0;")],
    )
    report = flow_analysis(app)
    assert report.warns_on("g")
    (w,) = report.warnings
    assert w.unprotected_in_task and not w.unprotected_in_event


def test_read_only_shared_variable_passes():
    app = NescApp(
        name="ro",
        globals=[("g", 0), ("out", 0)],
        events=[Event("e", "atomic { out = g; }")],
        tasks=[Task("t", "atomic { out = g + 1; }")],
    )
    report = flow_analysis(app)
    assert not report.warns_on("g")


def test_accesses_through_functions_are_found():
    app = NescApp(
        name="fn",
        globals=[("g", 0)],
        functions="void bump() { g = g + 1; }",
        events=[Event("e", "bump();")],
    )
    report = flow_analysis(app)
    assert report.warns_on("g")


def test_paper_claim_flow_flags_the_state_variable_idiom():
    """Exactly the paper's story: the flow analysis (nesC compiler) warns
    on every state-variable-protected variable that CIRC proves safe."""
    for key in (
        "secureTosBase/gTxByteCnt",
        "secureTosBase/gRxHeadIndex",
        "surge/rec_ptr",
        "sense/tosPort",
    ):
        b = benchmark(key)
        var = b.variable.replace("_buggy", "")
        assert flow_analysis(b.app).warns_on(var), key


def test_paper_claim_flow_passes_trivially_safe():
    for key in ("secureTosBase/gTxProto", "secureTosBase/gRxTailIndex"):
        b = benchmark(key)
        assert not flow_analysis(b.app).warns_on(b.variable), key
