"""Tests for the infinity-check variant (Section 5)."""

from repro.circ import circ, omega_check
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE


def test_omega_variant_safe_agrees_with_circ():
    cfa = lower_source(TEST_AND_SET_SOURCE)
    assert circ(cfa, race_on="x", variant="omega").safe
    assert circ(cfa, race_on="x", variant="circ").safe


def test_omega_variant_finds_races():
    cfa = lower_source(
        "global int x; thread t { while (1) { x = x + 1; } }"
    )
    r = circ(cfa, race_on="x", variant="omega")
    assert not r.safe


def test_omega_variant_ctx_ctx_race_needs_counter_growth():
    """A race that needs two context threads: the exactly-k exploration
    with k=1 cannot exhibit ctx-ctx races, so either refinement or the
    closure check must raise k."""
    # Main never writes x; only the 'other' threads do, so two context
    # threads are required.  All threads are symmetric copies, so main
    # also writes -- make the write conditional on an unreachable-for-main
    # path?  Simplest: the plain unprotected counter again, but forced
    # through the omega variant with k=1; the witness needs 2 threads.
    cfa = lower_source(
        "global int x; thread t { while (1) { x = x + 1; } }"
    )
    r = circ(cfa, race_on="x", variant="omega", k=1)
    assert not r.safe
    assert r.n_threads >= 2


def test_omega_variant_atomic_only():
    cfa = lower_source(
        "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    )
    r = circ(cfa, race_on="x", variant="omega")
    assert r.safe


def test_omega_check_empty_context():
    from repro.acfa.acfa import empty_acfa
    from repro.circ.reach import reach_and_build
    from repro.context.state import AbstractProgram
    from repro.predabs.abstractor import Abstractor
    from repro.predabs.region import PredicateSet

    cfa = lower_source("global int g; thread t { g = 1; }")
    prog = AbstractProgram(cfa, Abstractor(PredicateSet()), empty_acfa(), 1)
    reach = reach_and_build(prog)
    assert omega_check(reach, empty_acfa(), cfa, 1)


def test_omega_and_circ_agree_across_suite():
    sources = [
        "global int m, x; thread t { while (1) { lock(m); x = 1 - x; unlock(m); } }",
        "global int x; thread t { local int a; while (1) { a = x; } }",
        "global int x, s; thread t { while (1) { atomic { assume(s == 0); s = 1; } x = x + 1; s = 0; } }",
    ]
    for src in sources:
        cfa = lower_source(src)
        a = circ(cfa, race_on="x", variant="circ").safe
        b = circ(cfa, race_on="x", variant="omega").safe
        assert a == b, src
