"""ArgStore support-based invalidation under the hash-consed term layer.

The store records, for every post memo entry, the free variables its key
formulas mention; subtree invalidation intersects those recorded sets
against each new predicate's support.  With interning, both sides come
from the per-node ``free_vars`` memo, so these tests pin the memoized
sets against from-scratch structural walks and check that invalidation
drops *exactly* the entries the old walk would have dropped -- in both
equality modes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circ.circ import CircBudgetExceeded, CircError, circ
from repro.fuzz.gen import GenConfig, generate
from repro.lang.lower import lower_thread
from repro.reach import ArgStore
from repro.smt import terms as T

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
seeds = st.integers(min_value=0, max_value=100_000)

BUDGET = dict(max_outer=6, max_inner=40, timeout_s=20.0)


def _run(cfa, race_on, **kwargs):
    try:
        return circ(cfa, race_on=race_on, **BUDGET, **kwargs)
    except CircBudgetExceeded as exc:
        return exc.result
    except CircError:
        return None


def _populated_store(seed):
    gp = generate(seed, GenConfig(pointers=False))
    cfa = lower_thread(gp.program, gp.thread)
    store = ArgStore()
    result = _run(cfa, gp.race_var, store=store)
    return store, gp, result


def _scratch_vars(term):
    """Structural free-variable walk, bypassing the per-node memo."""
    return frozenset(
        n.name for n in T.subterms(term) if isinstance(n, T.Var)
    )


def _scratch_region_vars(region, preds):
    out = set()
    for idx, _ in region.literals:
        out |= _scratch_vars(preds[idx])
    return out


def _oracle_supports(store):
    """Recompute every memo entry's support from its key, structurally.

    Region literal indices are stable across predicate-set extensions
    (the store enforces the prefix property), so the final abstractor's
    predicate set resolves every recorded region.
    """
    preds = store._abstractor.preds
    main = {}
    for (region, op), (_, entry_vars) in store._main_post.items():
        oracle = (
            _scratch_region_vars(region, preds) | op.reads() | op.writes()
        )
        main[(region, op)] = (entry_vars, frozenset(oracle))
    ctx = {}
    for key, (_, entry_vars) in store._ctx_post.items():
        region, src_label, havoc, dst_label = key
        oracle = _scratch_region_vars(region, preds)
        for t in src_label:
            oracle |= _scratch_vars(t)
        for t in dst_label:
            oracle |= _scratch_vars(t)
        ctx[key] = (entry_vars, frozenset(oracle))
    return main, ctx


@settings(**SETTINGS)
@given(seeds)
def test_recorded_supports_match_structural_walk(seed):
    store, _, _ = _populated_store(seed)
    if store._abstractor is None:
        return  # verdict fell out before any post was computed
    main, ctx = _oracle_supports(store)
    for recorded, oracle in list(main.values()) + list(ctx.values()):
        assert recorded == oracle


@settings(**SETTINGS)
@given(seeds)
def test_invalidation_drops_exactly_what_the_old_walk_would(seed):
    store, gp, _ = _populated_store(seed)
    if store._abstractor is None:
        return
    # One predicate over the race variable (guaranteed to exist in the
    # program) and one over a variable no generated program mentions.
    probes = [
        T.le(T.var(gp.race_var), T.num(1)),
        T.ge(T.var("zz_unseen"), T.num(0)),
    ]
    for probe in probes:
        support = _scratch_vars(probe)
        before_main = dict(store._main_post.items())
        before_ctx = dict(store._ctx_post.items())
        doomed_main = {
            k for k, (_, vs) in before_main.items() if vs & support
        }
        doomed_ctx = {
            k for k, (_, vs) in before_ctx.items() if vs & support
        }
        invalidated_before = store.counters["entries_invalidated"]
        store._invalidate_for_predicates([probe])
        assert set(store._main_post.keys()) == (
            set(before_main) - doomed_main
        )
        assert set(store._ctx_post.keys()) == (set(before_ctx) - doomed_ctx)
        assert store.counters["entries_invalidated"] == (
            invalidated_before + len(doomed_main) + len(doomed_ctx)
        )


def test_degenerate_predicate_forces_a_full_drop():
    store, _, _ = _populated_store(7)
    if store._abstractor is None or not len(store._main_post):
        store, _, _ = _populated_store(0)
    v = T.var("q")
    store._invalidate_for_predicates([T.eq(v, v)])  # valid: degenerate
    assert len(store._main_post) == 0
    assert len(store._ctx_post) == 0
    assert len(store._results) == 0


def test_supports_and_reuse_match_across_equality_modes():
    """The store must behave identically on the structural path: same
    observable result, same recorded supports, same reuse telemetry on a
    warm re-run."""
    for seed in (0, 7, 42):
        per_mode = {}
        for interning in (True, False):
            prev = T.set_interning(interning)
            try:
                gp = generate(seed, GenConfig(pointers=False))
                cfa = lower_thread(gp.program, gp.thread)
                store = ArgStore()
                first = _run(cfa, gp.race_var, store=store)
                second = _run(cfa, gp.race_var, store=store)
                supports = None
                if store._abstractor is not None:
                    main, ctx = _oracle_supports(store)
                    for recorded, oracle in list(main.values()) + list(
                        ctx.values()
                    ):
                        assert recorded == oracle
                    supports = sorted(
                        (
                            sorted(vs)
                            for vs, _ in list(main.values())
                            + list(ctx.values())
                        ),
                    )
                per_mode[interning] = (
                    None if first is None else type(first).__name__,
                    None if second is None else type(second).__name__,
                    None if second is None else second.stats.reuse,
                    supports,
                )
            finally:
                T.set_interning(prev)
        assert per_mode[True] == per_mode[False]
