"""Incremental vs. scratch CIRC must be observationally identical.

The incremental engine (persistent :class:`ArgStore` with subtree
invalidation and context-weakening reuse) is a pure acceleration layer:
on every program it must return the same verdict, the same discovered
predicates, and a stats-compatible exploration as a from-scratch run.
These properties drive both paths over randomly generated programs and
compare everything a caller can observe.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circ.circ import CircBudgetExceeded, CircError, circ
from repro.circ.result import CircSafe, CircUnsafe
from repro.fuzz.gen import GenConfig, generate
from repro.lang.lower import lower_thread
from repro.reach import ArgStore

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
seeds = st.integers(min_value=0, max_value=100_000)

BUDGET = dict(max_outer=6, max_inner=40, timeout_s=20.0)


def _run(cfa, race_on, **kwargs):
    try:
        return circ(cfa, race_on=race_on, **BUDGET, **kwargs)
    except CircBudgetExceeded as exc:
        return exc.result
    except CircError:
        return None


def _observables(result):
    obs = {
        "kind": type(result).__name__,
        "predicates": tuple(p.key() for p in result.predicates),
        "outer": result.stats.outer_iterations,
        "inner": result.stats.inner_iterations,
        "states": result.stats.abstract_states,
        "final_k": result.stats.final_k,
    }
    if isinstance(result, CircSafe):
        obs["acfa_size"] = result.context.size
    if isinstance(result, CircUnsafe):
        obs["steps"] = len(result.steps)
        obs["threads"] = result.n_threads
    return obs


@settings(**SETTINGS)
@given(seeds)
def test_incremental_matches_scratch(seed):
    gp = generate(seed, GenConfig(pointers=False))
    cfa = lower_thread(gp.program, gp.thread)
    scratch = _run(cfa, gp.race_var, incremental=False)
    incremental = _run(cfa, gp.race_var, incremental=True)
    if scratch is None or incremental is None:
        assert type(scratch) is type(incremental)
        return
    assert _observables(incremental) == _observables(scratch)
    # Only the incremental run carries reuse telemetry.
    assert scratch.stats.reuse is None
    if type(incremental).__name__ != "CircUnknown":
        assert incremental.stats.reuse is not None


@settings(**SETTINGS)
@given(seeds)
def test_frontier_strategies_never_contradict(seed):
    """A different worklist order surfaces a different abstract race
    first, so refinement mines different predicates and may diverge to
    UNKNOWN where BFS converges (or vice versa).  What frontiers must
    never do is *contradict* each other: both definite verdicts agree."""
    gp = generate(seed, GenConfig(pointers=False))
    cfa = lower_thread(gp.program, gp.thread)
    bfs = _run(cfa, gp.race_var, frontier="bfs")
    dfs = _run(cfa, gp.race_var, frontier="dfs")
    if bfs is None or dfs is None:
        return
    definite = (CircSafe, CircUnsafe)
    if isinstance(bfs, definite) and isinstance(dfs, definite):
        assert type(bfs).__name__ == type(dfs).__name__


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_shared_store_across_repeated_runs_is_stable(seed):
    """Re-verifying the same program against a warm store changes
    nothing observable and reports result-level reuse."""
    gp = generate(seed, GenConfig(pointers=False))
    cfa = lower_thread(gp.program, gp.thread)
    store = ArgStore()
    first = _run(cfa, gp.race_var, store=store)
    second = _run(cfa, gp.race_var, store=store)
    if first is None or second is None:
        return
    assert _observables(second) == _observables(first)
    if second.stats.reuse is not None:
        assert second.stats.reuse["result_hits"] > 0
