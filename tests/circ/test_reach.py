"""Unit tests for ReachAndBuild and the ARG builder."""

import pytest

from repro.acfa.acfa import Acfa, AcfaEdge, empty_acfa
from repro.circ.reach import (
    AbstractRaceFound,
    ArgBuilder,
    ReachBudgetExceeded,
    reach_and_build,
)
from repro.context.state import AbstractProgram, CtxMove
from repro.lang import lower_source
from repro.predabs.abstractor import Abstractor
from repro.predabs.region import PredicateSet, TOP
from repro.smt import terms as T

SEQ = "global int g; thread m { g = 1; g = 2; }"


def make(src, acfa=None, preds=(), k=1):
    cfa = lower_source(src)
    ab = Abstractor(PredicateSet(preds))
    return AbstractProgram(cfa, ab, acfa or empty_acfa(), k)


def test_sequential_reach_builds_line_arg():
    p = make(SEQ)
    r = reach_and_build(p)
    assert r.arg.size == 3
    assert r.states_explored == 3
    # Edges havoc the assigned variable.
    havocs = sorted(tuple(sorted(e.havoc)) for e in r.arg.edges)
    assert havocs == [("g",), ("g",)]


def test_arg_provenance_maps_to_cfa_edges():
    p = make(SEQ)
    r = reach_and_build(p)
    for (src, dst), edges in r.provenance.items():
        assert edges
        for e in edges:
            assert e.src in p.cfa.locations


def test_arg_pc_mapping():
    p = make(SEQ)
    r = reach_and_build(p)
    assert r.arg_pc[r.arg.q0] == p.cfa.q0


def test_race_raises_with_trace():
    src = "global int x; thread m { while (1) { x = x + 1; } }"
    acfa = Acfa(
        "w", 0, [0], {0: ()}, [AcfaEdge(0, frozenset({"x"}), 0)]
    )
    p = make(src, acfa=acfa)
    with pytest.raises(AbstractRaceFound) as exc:
        reach_and_build(p, race_on="x")
    assert exc.value.trace == []  # the initial state already races


def test_race_trace_records_moves():
    src = "global int x; thread m { x = 1; }"
    acfa = Acfa(
        "w",
        0,
        [0, 1],
        {0: (), 1: ()},
        [AcfaEdge(0, frozenset(), 1), AcfaEdge(1, frozenset({"x"}), 1)],
    )
    p = make(src, acfa=acfa)
    with pytest.raises(AbstractRaceFound) as exc:
        reach_and_build(p, race_on="x")
    assert len(exc.value.trace) >= 1
    assert any(isinstance(m, CtxMove) for m in exc.value.trace)


def test_budget_exceeded():
    src = "global int g; thread m { while (1) { g = g + 1; } }"
    # Unbounded data is fine (regions abstract it) but a tiny budget trips.
    acfa = Acfa(
        "w",
        0,
        [0, 1],
        {0: (), 1: ()},
        [AcfaEdge(0, frozenset(), 1), AcfaEdge(1, frozenset({"g"}), 0)],
    )
    p = make(src, acfa=acfa, preds=(T.eq(T.var("g"), 0),))
    with pytest.raises(ReachBudgetExceeded):
        reach_and_build(p, max_states=3)


def test_error_location_check():
    src = "global int g; thread m { g = 1; assert(g == 0); }"
    p = make(src, preds=(T.eq(T.var("g"), 0),))
    with pytest.raises(AbstractRaceFound):
        reach_and_build(p, check_errors=True)


def test_assert_holds_no_error():
    src = "global int g; thread m { g = 1; assert(g == 1); }"
    p = make(src, preds=(T.eq(T.var("g"), 1),))
    r = reach_and_build(p, check_errors=True)
    assert r.states_explored >= 2


def test_union_merges_context_connected_states():
    # A context that havocs g: the post-havoc thread state is unioned with
    # the source state into one ARG location.
    src = "global int g; thread m { g = 1; g = 2; }"
    acfa = Acfa(
        "w", 0, [0], {0: ()}, [AcfaEdge(0, frozenset({"g"}), 0)]
    )
    g1 = T.eq(T.var("g"), 1)
    p = make(src, acfa=acfa, preds=(g1,))
    r = reach_and_build(p)
    # Despite regions g==1 vs unknown-g, each pc maps to a single ARG
    # location because environment moves union them.
    assert r.arg.size == 3


def test_argbuilder_union_requires_same_pc():
    cfa = lower_source(SEQ)
    b = ArgBuilder(cfa, PredicateSet())
    a = b.find((0, TOP))
    c = b.find((1, TOP))
    with pytest.raises(AssertionError):
        b.union(a, c)


def test_argbuilder_find_is_stable():
    cfa = lower_source(SEQ)
    b = ArgBuilder(cfa, PredicateSet())
    ts = (0, TOP)
    assert b.find(ts) == b.find(ts)


def test_enabled_ctx_edges_collected():
    src = "global int g; thread m { g = 1; }"
    acfa = Acfa(
        "w",
        0,
        [0, 1],
        {0: (), 1: ()},
        [AcfaEdge(0, frozenset({"g"}), 1)],
    )
    p = make(src, acfa=acfa)
    r = reach_and_build(p)
    assert any(r.enabled_ctx_edges.values())
