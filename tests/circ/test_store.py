"""Unit tests for the incremental reachability framework: the ArgStore's
subtree invalidation and context-weakening reuse, the pluggable frontier
strategies, and the deadline contract of resumed explorations."""

import time

import pytest

from repro.acfa.acfa import Acfa, AcfaEdge, empty_acfa
from repro.cfa.cfa import AssignOp, AssumeOp
from repro.circ.circ import circ
from repro.context.state import AbstractProgram
from repro.predabs.abstractor import Abstractor
from repro.predabs.region import TOP, PredicateSet
from repro.reach import (
    ArgStore,
    BfsFrontier,
    DepthPriorityFrontier,
    DfsFrontier,
    ReachBudgetExceeded,
    acfa_signature,
    make_frontier,
    reach_and_build,
)
from repro.smt import terms as T

from .test_reach import SEQ, make  # reuse the program factory

G, H = T.var("g"), T.var("h")


def make_on(cfa, acfa=None, preds=(), k=1):
    """Like :func:`make` but over an existing CFA object -- the ArgStore
    keys its memos to one CFA identity, so cross-run reuse tests must
    not re-lower the source."""
    ab = Abstractor(PredicateSet(preds))
    return AbstractProgram(cfa, ab, acfa or empty_acfa(), k)


# ---------------------------------------------------------------------------
# Subtree invalidation: a memo entry survives refinement iff the new
# predicates' support is disjoint from the entry's formulas.
# ---------------------------------------------------------------------------


def test_post_entry_kept_iff_untouched_by_new_predicate():
    store = ArgStore()
    preds = PredicateSet([T.eq(G, T.num(0))])
    ab = store.abstractor_for(preds, "cartesian")
    op_g = AssignOp("g", T.add(G, T.num(1)))
    op_h = AssignOp("h", T.add(H, T.num(1)))
    store.post_main(ab, TOP, op_g)
    store.post_main(ab, TOP, op_h)
    assert store.counters["main_post_misses"] == 2

    # Refine with a predicate over h only: the g-entry's support ({g})
    # is disjoint, so it is kept; the h-entry is invalidated.
    extended = preds.extended([T.eq(H, T.num(0))])
    ab2 = store.abstractor_for(extended, "cartesian")
    assert ab2 is ab  # extended in place, not rebuilt
    assert store.counters["entries_invalidated"] == 1
    assert store.counters["entries_kept"] == 1

    store.post_main(ab2, TOP, op_g)  # untouched -> served from the memo
    assert store.counters["main_post_hits"] == 1
    store.post_main(ab2, TOP, op_h)  # touched -> recomputed
    assert store.counters["main_post_misses"] == 3


def test_kept_entries_stay_exact_after_extension():
    """A kept entry equals what a scratch abstractor over the extended
    predicate set computes."""
    store = ArgStore()
    preds = PredicateSet([T.eq(G, T.num(0))])
    ab = store.abstractor_for(preds, "cartesian")
    op_g = AssignOp("g", T.num(0))
    first = store.post_main(ab, TOP, op_g)
    assert first.literals  # g == 0 holds after the assignment

    extended = preds.extended([T.eq(H, T.num(7))])
    ab = store.abstractor_for(extended, "cartesian")
    kept = store.post_main(ab, TOP, op_g)
    scratch = Abstractor(extended).post_op(TOP, op_g)
    assert kept == scratch


def test_abstractor_extend_counts_kept_and_evicted():
    preds = PredicateSet([T.eq(G, T.num(0))])
    ab = Abstractor(preds)
    ab.abstract([T.eq(G, T.num(0))])
    ab.abstract([T.eq(H, T.num(5))])
    stats = ab.extend(preds.extended([T.eq(H, T.num(1))]))
    assert stats["cleared"] == 0
    assert stats["evicted"] >= 1  # the h-formula entry
    assert stats["kept"] >= 1  # the g-formula entry
    # The recomputed h entry now carries the new predicate's literal.
    region = ab.abstract([T.eq(H, T.num(5))])
    assert (1, False) in region.literals  # h == 5 refutes h == 1


def test_abstractor_extend_degenerate_predicate_clears_cache():
    preds = PredicateSet([T.eq(G, T.num(0))])
    ab = Abstractor(preds)
    ab.abstract([T.eq(G, T.num(0))])
    # 0 == 0 is valid: its negation is unsat, so every non-bottom entry
    # would gain a literal -- extend must drop the whole memo.
    stats = ab.extend(preds.extended([T.eq(T.num(0), T.num(0))]))
    assert stats["cleared"] == 1
    assert stats["kept"] == 0


def test_abstractor_extend_rejects_non_extension():
    ab = Abstractor(PredicateSet([T.eq(G, T.num(0))]))
    with pytest.raises(ValueError):
        ab.extend(PredicateSet([T.eq(H, T.num(0))]))


def test_abstractor_for_rebuilds_on_unrelated_predicates():
    store = ArgStore()
    a1 = store.abstractor_for(PredicateSet([T.eq(G, T.num(0))]), "cartesian")
    a2 = store.abstractor_for(PredicateSet([T.eq(H, T.num(0))]), "cartesian")
    assert a2 is not a1
    assert store.counters["abstractor_rebuilds"] == 2


def test_bottom_entries_survive_any_extension():
    preds = PredicateSet([T.eq(G, T.num(0))])
    ab = Abstractor(preds)
    bottom = ab.abstract([T.eq(G, T.num(1)), T.eq(G, T.num(2))])
    assert bottom.is_bottom()
    stats = ab.extend(preds.extended([T.eq(G, T.num(9))]))
    # The unsat entry mentions g (overlapping support) but stays: an
    # unsatisfiable conjunction is bottom under any predicate set.
    assert stats["kept"] >= 1


# ---------------------------------------------------------------------------
# Context-weakening reuse: label-keyed memos survive a weakened context,
# and identical runs are served whole.
# ---------------------------------------------------------------------------


def _ctx(label1, name="w"):
    return Acfa(
        name,
        0,
        [0, 1],
        {0: (), 1: tuple(label1)},
        [AcfaEdge(0, frozenset({"g"}), 1), AcfaEdge(1, frozenset({"g"}), 1)],
    )


def test_context_weakening_reuses_unchanged_label_moves():
    from repro.lang import lower_source

    store = ArgStore()
    cfa = lower_source(SEQ)
    preds = (T.eq(G, T.num(0)),)
    strong = _ctx([T.eq(G, T.num(0))])
    reach_and_build(make_on(cfa, acfa=strong, preds=preds), store=store)
    misses_before = store.counters["ctx_post_misses"]

    # Rerunning on the *same* context is served whole from the result
    # memo -- no exploration, no new post computations.
    reach_and_build(make_on(cfa, acfa=strong, preds=preds), store=store)
    assert store.counters["result_hits"] == 1
    assert store.counters["ctx_post_misses"] == misses_before

    # Weaken location 1's label to true: context moves are re-keyed at
    # the changed label (the boundary, recomputed as fresh misses), but
    # the main-thread posts are context-independent and fully reused.
    main_hits_before = store.counters["main_post_hits"]
    weak = _ctx([])
    reach_and_build(make_on(cfa, acfa=weak, preds=preds), store=store)
    assert store.counters["main_post_hits"] > main_hits_before
    assert store.counters["ctx_post_misses"] > misses_before


def test_store_serves_identical_run_without_exploring():
    from repro.lang import lower_source

    store = ArgStore()
    cfa = lower_source(SEQ)
    r1 = reach_and_build(make_on(cfa), store=store)
    r2 = reach_and_build(make_on(cfa), store=store)
    assert store.counters["result_hits"] == 1
    assert r2 is r1  # the memoized result object itself


def test_store_resets_when_bound_to_a_different_cfa():
    store = ArgStore()
    p = make(SEQ)
    reach_and_build(p, store=store)
    other = make("global int z; thread m { z = 3; }")
    reach_and_build(other, store=store)
    # No cross-program hits: the store reset on rebind.
    assert store.counters["result_hits"] == 0


def test_acfa_signature_distinguishes_labels():
    a = _ctx([T.eq(G, T.num(0))])
    b = _ctx([])
    assert acfa_signature(a) != acfa_signature(b)
    assert acfa_signature(a) == acfa_signature(_ctx([T.eq(G, T.num(0))]))


def test_race_results_replay_from_store():
    from repro.reach import AbstractRaceFound

    from repro.lang import lower_source

    store = ArgStore()
    cfa = lower_source("global int x; thread m { x = 1; }")
    acfa = Acfa(
        "w", 0, [0], {0: ()}, [AcfaEdge(0, frozenset({"x"}), 0)]
    )
    with pytest.raises(AbstractRaceFound) as first:
        reach_and_build(make_on(cfa, acfa=acfa), race_on="x", store=store)
    with pytest.raises(AbstractRaceFound) as second:
        reach_and_build(make_on(cfa, acfa=acfa), race_on="x", store=store)
    assert store.counters["result_hits"] == 1
    assert second.value.trace == first.value.trace
    assert second.value.state == first.value.state


# ---------------------------------------------------------------------------
# Frontier strategies
# ---------------------------------------------------------------------------


def test_frontier_orders():
    bfs, dfs, pri = BfsFrontier(), DfsFrontier(), DepthPriorityFrontier()
    for f in (bfs, dfs, pri):
        f.push("a", 0)
        f.push("b", 1)
        f.push("c", 1)
    assert [bfs.pop()[0] for _ in range(3)] == ["a", "b", "c"]
    assert [dfs.pop()[0] for _ in range(3)] == ["c", "b", "a"]
    # Deepest first, FIFO among equals.
    assert [pri.pop()[0] for _ in range(3)] == ["b", "c", "a"]


def test_make_frontier_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_frontier("best-first")
    with pytest.raises(ValueError):
        circ(
            make(SEQ).cfa, race_on="g", frontier="best-first"
        )


@pytest.mark.parametrize("strategy", ["bfs", "dfs", "depth"])
def test_all_frontiers_reach_the_same_arg(strategy):
    p = make(SEQ)
    r = reach_and_build(p, frontier=strategy)
    assert r.arg.size == 3
    assert r.states_explored == 3


def test_bfs_frontier_matches_historical_exploration():
    acfa = _ctx([])
    preds = (T.eq(G, T.num(1)),)
    a = reach_and_build(make(SEQ, acfa=acfa, preds=preds))
    b = reach_and_build(
        make(SEQ, acfa=acfa, preds=preds), store=ArgStore(), frontier="bfs"
    )
    assert a.states_explored == b.states_explored
    assert acfa_signature(a.arg) == acfa_signature(b.arg)


# ---------------------------------------------------------------------------
# Deadline contract on resumed/warm explorations
# ---------------------------------------------------------------------------


def test_expired_deadline_raises_even_with_warm_store():
    from repro.lang import lower_source

    store = ArgStore()
    cfa = lower_source(SEQ)
    reach_and_build(make_on(cfa), store=store)  # warm the result memo
    with pytest.raises(ReachBudgetExceeded):
        reach_and_build(
            make_on(cfa), store=store, deadline=time.perf_counter() - 1.0
        )
    # The warm entry is untouched and still answers within a live budget.
    r = reach_and_build(
        make_on(cfa), store=store, deadline=time.perf_counter() + 60.0
    )
    assert r.states_explored == 3
    assert store.counters["result_hits"] == 1


def test_deadline_checked_per_pop_with_store():
    src = "global int g; thread m { while (1) { g = g + 1; } }"
    acfa = Acfa(
        "w",
        0,
        [0, 1],
        {0: (), 1: ()},
        [AcfaEdge(0, frozenset(), 1), AcfaEdge(1, frozenset({"g"}), 0)],
    )
    p = make(src, acfa=acfa, preds=(T.eq(G, T.num(0)),))
    with pytest.raises(ReachBudgetExceeded):
        reach_and_build(
            p, store=ArgStore(), deadline=time.perf_counter() + 1e-6
        )


# ---------------------------------------------------------------------------
# circ-level wiring
# ---------------------------------------------------------------------------


def test_circ_attaches_reuse_stats_when_incremental():
    from repro.lang import lower_source

    cfa = lower_source(SEQ)
    inc = circ(cfa, race_on="g")
    assert inc.stats.reuse is not None
    assert inc.stats.store_digest
    scratch = circ(cfa, race_on="g", incremental=False)
    assert scratch.stats.reuse is None
    assert scratch.stats.store_digest is None
    assert inc.safe == scratch.safe


def test_circ_boolean_abstraction_bypasses_store():
    from repro.lang import lower_source

    cfa = lower_source(SEQ)
    result = circ(cfa, race_on="g", abstraction="boolean")
    assert result.stats.reuse is None


def test_circ_shared_store_across_calls():
    from repro.lang import lower_source

    cfa = lower_source(SEQ)
    store = ArgStore()
    a = circ(cfa, race_on="g", store=store)
    b = circ(cfa, race_on="g", store=store)
    assert a.safe == b.safe
    assert b.stats.reuse["result_hits"] > 0


def test_iteration_records_carry_unified_timing():
    from repro.lang import lower_source

    cfa = lower_source(SEQ)
    result = circ(cfa, race_on="g", keep_history=True)
    assert result.stats.history
    last = 0.0
    for rec in result.stats.history:
        assert rec.elapsed_s >= last
        last = rec.elapsed_s
    assert result.stats.elapsed_seconds >= last


def test_main_post_support_includes_assume_reads():
    store = ArgStore()
    preds = PredicateSet([T.eq(G, T.num(0))])
    ab = store.abstractor_for(preds, "cartesian")
    op = AssumeOp(T.le(H, T.num(3)))
    store.post_main(ab, TOP, op)
    extended = preds.extended([T.eq(H, T.num(0))])
    ab = store.abstractor_for(extended, "cartesian")
    assert store.counters["entries_invalidated"] == 1  # assume reads h
