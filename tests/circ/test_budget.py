"""Explicit resource budgets: CircBudgetExceeded and UNKNOWN verdicts."""

import pytest

from repro.circ import CircBudgetExceeded, circ
from repro.circ.result import CircUnknown
from repro.lang.lower import lower_source
from repro.races.spec import check_race

TAS = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""


def test_iteration_budget_raises_typed_error():
    cfa = lower_source(TAS)
    with pytest.raises(CircBudgetExceeded) as exc_info:
        circ(cfa, race_on="x", max_iterations=1)
    result = exc_info.value.result
    assert isinstance(result, CircUnknown)
    assert result.unknown and not result.safe
    assert "budget" in result.reason
    assert result.variable == "x"


def test_timeout_budget_raises_typed_error():
    cfa = lower_source(TAS)
    with pytest.raises(CircBudgetExceeded) as exc_info:
        circ(cfa, race_on="x", timeout_s=0.0)
    assert exc_info.value.result.unknown


def test_budget_carries_partial_stats():
    cfa = lower_source(TAS)
    with pytest.raises(CircBudgetExceeded) as exc_info:
        circ(cfa, race_on="x", max_iterations=2)
    stats = exc_info.value.result.stats
    assert stats.inner_iterations <= 2


def test_generous_budget_does_not_trigger():
    cfa = lower_source(TAS)
    result = circ(cfa, race_on="x", max_iterations=10_000, timeout_s=600.0)
    assert result.safe


def test_check_race_returns_unknown_instead_of_raising():
    result = check_race(TAS, "x", max_iterations=1)
    assert isinstance(result, CircUnknown)
    assert result.unknown


def test_check_race_engine_path_returns_unknown():
    result = check_race(TAS, "x", engine=True, max_iterations=1)
    assert isinstance(result, CircUnknown)


def test_inconclusive_is_a_circ_error_carrying_unknown():
    # Fuzzer-found (generator seed 55): when refinement stalls and the
    # bounded concrete fallback is inconclusive, circ() must surface a
    # typed CircError with an unwrappable CircUnknown -- never leak the
    # internal RefinementFailure (callers treated that as a crash).
    from repro.circ import CircError, CircInconclusive
    from repro.circ.result import CircStats

    unknown = CircUnknown(
        variable="x",
        reason="abstract race could not be realized or refuted",
        predicates=(),
        stats=CircStats(),
    )
    exc = CircInconclusive(unknown)
    assert isinstance(exc, CircError)
    assert exc.result is unknown
    assert "realized or refuted" in str(exc)


def test_check_race_unwraps_inconclusive(monkeypatch):
    from repro.circ import CircInconclusive
    from repro.circ.result import CircStats
    from repro.races import spec

    unknown = CircUnknown(
        variable="x", reason="stalled", predicates=(), stats=CircStats()
    )

    def stalling_circ(cfa, race_on=None, **kw):
        raise CircInconclusive(unknown)

    monkeypatch.setattr(spec, "circ", stalling_circ)
    result = check_race(TAS, "x")
    assert result is unknown
