"""Unit tests for the refinement procedure."""

import pytest

from repro.acfa.acfa import Acfa, AcfaEdge, empty_acfa
from repro.cfa.cfa import AssignOp, AssumeOp
from repro.circ.refine import (
    RealRace,
    Refinement,
    _assign_threads,
    _CounterTooLow,
    build_trace_formula,
    refine,
)
from repro.context.state import CtxMove
from repro.lang import lower_source
from repro.smt import terms as T
from repro.smt.solver import is_sat


def test_assign_threads_reuses_and_mints():
    acfa = Acfa(
        "a",
        0,
        [0, 1, 2],
        {0: (), 1: (), 2: ()},
        [
            AcfaEdge(0, frozenset(), 1),
            AcfaEdge(1, frozenset(), 2),
        ],
    )
    trace = [
        CtxMove(acfa.out(0)[0]),
        CtxMove(acfa.out(0)[0]),
        CtxMove(acfa.out(1)[0]),
    ]
    owner, moves_of, final, entry_of = _assign_threads(trace, acfa)
    assert owner == [1, 2, 1]
    assert final == {1: 2, 2: 1}
    assert entry_of == {1: 0, 2: 0}


def test_assign_threads_detects_low_counter():
    acfa = Acfa(
        "a",
        0,
        [0, 1, 2],
        {0: (), 1: (), 2: ()},
        [AcfaEdge(1, frozenset(), 2)],
    )
    # A move out of location 1 with no token there and 1 != q0.
    trace = [CtxMove(acfa.out(1)[0])]
    with pytest.raises(_CounterTooLow):
        _assign_threads(trace, acfa)


def test_trace_formula_initial_values():
    cfa = lower_source("global int g = 7; thread m { g = g + 1; }")
    edge = next(e for e in cfa.edges if isinstance(e.op, AssignOp))
    ct = build_trace_formula(cfa, [(0, edge)], n_threads=1)
    # g$0 == 7 pinned; g$1 == g$0 + 1.
    assert is_sat(T.and_(*ct.clauses))
    model_clauses = T.and_(*ct.clauses, T.eq(T.var("g$1"), 8))
    assert is_sat(model_clauses)
    assert not is_sat(T.and_(*ct.clauses, T.eq(T.var("g$1"), 9)))


def test_trace_formula_figure5_shape():
    """The paper's Figure 5 trace: two threads through the atomic block."""
    cfa = lower_source(
        """
        global int x, state;
        thread main {
          local int old;
          while (1) {
            atomic { old = state; if (state == 0) { state = 1; } }
            if (old == 0) { x = x + 1; state = 0; }
          }
        }
        """
    )

    def path_edges(branch_state0: bool):
        """Loop entry, old:=state, branch, [old==0]."""
        edges = []
        q = cfa.q0
        (entry,) = cfa.out(q)
        edges.append(entry)
        q = entry.dst
        (assign,) = cfa.out(q)
        edges.append(assign)
        q = assign.dst
        branches = cfa.out(q)
        pick = next(
            e
            for e in branches
            if isinstance(e.op, AssumeOp)
            and (
                (e.op.pred == T.eq(T.var("state"), 0)) == branch_state0
            )
        )
        edges.append(pick)
        q = pick.dst
        if branch_state0:
            (setst,) = cfa.out(q)
            edges.append(setst)
            q = setst.dst
        old0 = next(
            e
            for e in cfa.out(q)
            if isinstance(e.op, AssumeOp)
            and e.op.pred == T.eq(T.var("old"), 0)
        )
        edges.append(old0)
        return edges

    # Thread 1 takes the state==0 branch and stops before writing; thread 0
    # (main) then attempts the same path: infeasible, exactly Figure 5.
    t1 = [(1, e) for e in path_edges(True)]
    t0 = [(0, e) for e in path_edges(True)]
    ct = build_trace_formula(cfa, t1 + t0, n_threads=2)
    assert not is_sat(T.and_(*ct.clauses))
    # The feasible variant: thread 0 finishes its round (writes x and
    # resets state) before thread 1 starts.
    # (sequential composition around the loop is fine)


def test_refine_reports_real_race():
    cfa = lower_source("global int x; thread m { x = 1; }")
    # Build a matching fake prev_reach by running reach on the empty ctx.
    from repro.circ.reach import reach_and_build
    from repro.context.state import AbstractProgram
    from repro.predabs.abstractor import Abstractor
    from repro.predabs.region import PredicateSet
    from repro.acfa.collapse import collapse

    ab = Abstractor(PredicateSet())
    prog0 = AbstractProgram(cfa, ab, empty_acfa(), 1)
    reach0 = reach_and_build(prog0)
    ctx, mu = collapse(reach0.arg, cfa.locals)
    prog1 = AbstractProgram(cfa, ab, ctx, 1)
    from repro.circ.reach import AbstractRaceFound

    with pytest.raises(AbstractRaceFound) as exc:
        reach_and_build(prog1, race_on="x")
    out = refine(
        cfa,
        "x",
        exc.value.trace,
        exc.value.state,
        ctx,
        reach0,
        mu,
        1,
        [],
    )
    assert isinstance(out, RealRace)
    assert out.n_threads >= 2


def test_refine_counter_bump_on_low_counter():
    cfa = lower_source("global int x; thread m { x = 1; }")
    acfa = Acfa(
        "ctx",
        0,
        [0, 1, 2],
        {0: (), 1: (), 2: ()},
        [AcfaEdge(1, frozenset({"x"}), 2)],
    )
    trace = [CtxMove(acfa.out(1)[0])]
    from repro.context.counters import ContextState
    from repro.context.state import AbsState
    from repro.predabs.region import TOP

    fake_state = AbsState(cfa.q0, TOP, ContextState([0, 0, 1]))
    out = refine(cfa, "x", trace, fake_state, acfa, None, {}, 1, [])
    assert isinstance(out, Refinement)
    assert out.new_k == 2
