"""Tests for asymmetric thread sets (circ_multi)."""

import pytest

from repro.circ import MultiSafe, MultiUnsafe, circ_multi
from repro.exec import MultiProgram, explore
from repro.lang import lower_program, lower_source

HANDOFF = """
global int buf, full;
thread producer {
  while (1) {
    atomic { assume(full == 0); full = 1; }
    buf = buf + 1;
    full = 2;
  }
}
thread consumer {
  while (1) {
    atomic { assume(full == 2); full = 3; }
    buf = 0;
    full = 0;
  }
}
"""

BROKEN = HANDOFF.replace("assume(full == 2)", "assume(full == 1)")


def test_handoff_safe():
    r = circ_multi(lower_program(HANDOFF), race_on="buf")
    assert isinstance(r, MultiSafe)
    assert set(r.templates) == {"producer", "consumer"}
    assert set(r.contexts) == {"producer", "consumer"}


def test_handoff_flag_also_safe():
    r = circ_multi(lower_program(HANDOFF), race_on="full")
    assert r.safe


def test_broken_handoff_races_with_attribution():
    r = circ_multi(lower_program(BROKEN), race_on="buf")
    assert isinstance(r, MultiUnsafe)
    roles = set(r.template_of.values())
    assert roles == {"producer", "consumer"}


def test_witness_replays_concretely():
    cfas = lower_program(BROKEN)
    r = circ_multi(cfas, race_on="buf")
    assert not r.safe
    order = sorted(r.template_of)
    mp = MultiProgram([cfas[r.template_of[t]] for t in order])
    remap = {t: i for i, t in enumerate(order)}
    from repro.exec import replay

    ok, _ = replay(mp, [(remap[t], e) for t, e in r.steps], race_on="buf")
    assert ok


def test_single_template_degenerates_to_symmetric():
    from repro.circ import circ
    from repro.nesc.programs import TEST_AND_SET_SOURCE

    cfa = lower_source(TEST_AND_SET_SOURCE)
    multi = circ_multi({"main": cfa}, race_on="x")
    sym = circ(cfa, race_on="x")
    assert multi.safe == sym.safe == True  # noqa: E712


def test_reader_writer_asymmetry():
    src = """
    global int data, lk;
    thread writer {
      while (1) { lock(lk); data = data + 1; unlock(lk); }
    }
    thread reader {
      local int snap;
      while (1) { lock(lk); snap = data; unlock(lk); }
    }
    """
    r = circ_multi(lower_program(src), race_on="data")
    assert r.safe


def test_reader_writer_without_lock_races():
    src = """
    global int data;
    thread writer {
      while (1) { data = data + 1; }
    }
    thread reader {
      local int snap;
      while (1) { snap = data; }
    }
    """
    r = circ_multi(lower_program(src), race_on="data")
    assert not r.safe


def test_mismatched_globals_rejected():
    a = lower_source("global int g; thread a { g = 1; }")
    b = lower_source("global int h; thread b { h = 1; }")
    with pytest.raises(ValueError):
        circ_multi({"a": a, "b": b}, race_on="g")


def test_empty_templates_rejected():
    with pytest.raises(ValueError):
        circ_multi({}, race_on="x")


def test_agrees_with_bounded_oracle():
    """One producer + one consumer explicit-state vs the unbounded proof."""
    cfas = lower_program(HANDOFF)
    r = circ_multi(cfas, race_on="buf")
    assert r.safe
    mp = MultiProgram([cfas["producer"], cfas["consumer"]])
    # buf grows unboundedly -> bound the search; absence within the budget
    # is only a smoke check, the real guarantee is CIRC's.
    result = explore(mp, race_on="buf", max_states=30_000)
    assert not result.found
