"""Integration tests for the CIRC main loop on the paper's idioms."""

import pytest

from repro.circ import CircSafe, CircUnsafe, circ
from repro.exec import MultiProgram, replay
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as T


@pytest.fixture(scope="module")
def fig1_cfa():
    return lower_source(TEST_AND_SET_SOURCE)


def test_figure1_is_safe(fig1_cfa):
    r = circ(fig1_cfa, race_on="x")
    assert isinstance(r, CircSafe)
    # The paper's predicates (or equivalents) are discovered.
    rendered = {T.pretty(p) for p in r.predicates}
    assert "old == state" in rendered
    assert "state == 0" in rendered
    assert "old == 0" in rendered


def test_figure1_final_acfa_shape(fig1_cfa):
    r = circ(fig1_cfa, race_on="x")
    a = r.context
    # The inferred context writes x somewhere and tracks state through its
    # labels; the start location is unconstrained.
    assert any("x" in e.havoc for e in a.edges)
    assert a.label[a.q0] == ()
    st1_locs = [
        q
        for q in a.locations
        if any("state" in T.free_vars(lit) for lit in a.label[q])
    ]
    assert st1_locs, "some location must constrain state"


def test_figure1_omega_variant(fig1_cfa):
    r = circ(fig1_cfa, race_on="x", variant="omega")
    assert r.safe


def test_figure1_without_atomic_races():
    src = TEST_AND_SET_SOURCE.replace("atomic {", "{")
    r = circ(lower_source(src), race_on="x")
    assert isinstance(r, CircUnsafe)
    # The witness replays under the concrete semantics.
    program = MultiProgram.symmetric(lower_source(src), r.n_threads)
    ok, _ = replay(program, r.steps, race_on="x")
    assert ok


def test_unprotected_counter_races():
    r = circ(
        lower_source("global int x; thread m { while (1) { x = x + 1; } }"),
        race_on="x",
    )
    assert not r.safe
    assert r.n_threads >= 2


def test_lock_discipline_safe():
    src = """
    global int m, x;
    thread t { while (1) { lock(m); x = x + 1; unlock(m); } }
    """
    r = circ(lower_source(src), race_on="x")
    assert r.safe


def test_atomic_sections_safe_without_predicates():
    src = "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    r = circ(lower_source(src), race_on="x")
    assert r.safe
    assert len(r.predicates) == 0


def test_read_only_variable_is_safe():
    src = """
    global int x, y;
    thread t { local int tmp; while (1) { tmp = x; y = tmp; } }
    """
    r = circ(lower_source(src), race_on="x")
    assert r.safe


def test_read_write_race():
    src = """
    global int x;
    thread t { local int tmp; while (1) { tmp = x; x = tmp + 1; } }
    """
    r = circ(lower_source(src), race_on="x")
    assert not r.safe


def test_initial_predicates_accelerate(fig1_cfa):
    preds = [
        T.eq(T.var("old"), T.var("state")),
        T.eq(T.var("state"), 0),
        T.eq(T.var("old"), 0),
    ]
    r = circ(fig1_cfa, race_on="x", initial_predicates=preds)
    assert r.safe
    assert r.stats.outer_iterations == 1


def test_history_records_iterations(fig1_cfa):
    r = circ(fig1_cfa, race_on="x", keep_history=True)
    events = [rec.event for rec in r.stats.history]
    assert "reach" in events
    assert "converged" in events
    assert any(rec.event == "refine" for rec in r.stats.history)


def test_requires_a_question():
    cfa = lower_source("global int x; thread t { x = 1; }")
    with pytest.raises(ValueError):
        circ(cfa)


def test_assertion_checking_mode():
    src = """
    global int g;
    thread t {
      atomic { assume(g == 0); g = 1; }
      assert(g == 1);
      g = 0;
    }
    """
    r = circ(lower_source(src), check_errors=True)
    assert r.safe


def test_assertion_violation_found():
    src = """
    global int g;
    thread t {
      g = g + 1;
      assert(g == 1);
    }
    """
    # With two threads interleaving, g can be 2 at the assert.
    r = circ(lower_source(src), check_errors=True)
    assert not r.safe


def test_verdicts_agree_with_explicit_oracle():
    """Cross-check CIRC against exhaustive exploration on bounded programs."""
    from repro.exec import explore

    programs = [
        ("global int x; thread t { while (1) { atomic { x = 1 - x; } } }", None),
        ("global int x; thread t { while (1) { x = 1 - x; } }", None),
        (
            "global int m, x; thread t { while (1) { lock(m); x = 1 - x; unlock(m); } }",
            None,
        ),
    ]
    for src, _ in programs:
        cfa = lower_source(src)
        verdict = circ(cfa, race_on="x").safe
        oracle = not explore(
            MultiProgram.symmetric(cfa, 3), race_on="x"
        ).found
        # CIRC covers MORE threads than the oracle; a CIRC-safe verdict
        # must agree with any bounded instance, and a CIRC-unsafe verdict
        # is validated by replay, so on these small programs they coincide.
        assert verdict == oracle, src
