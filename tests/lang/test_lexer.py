"""Unit tests for the tokenizer."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


def test_empty_source():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind == "eof"


def test_keywords_vs_identifiers():
    assert kinds("while whilex") == [("kw", "while"), ("ident", "whilex")]


def test_numbers():
    assert kinds("123 0") == [("num", "123"), ("num", "0")]


def test_two_char_punct_wins():
    assert kinds("== = != <= < >= >") == [
        ("punct", "=="),
        ("punct", "="),
        ("punct", "!="),
        ("punct", "<="),
        ("punct", "<"),
        ("punct", ">="),
        ("punct", ">"),
    ]


def test_line_comment():
    assert kinds("x // comment here\ny") == [("ident", "x"), ("ident", "y")]


def test_block_comment_spanning_lines():
    toks = tokenize("a /* one\ntwo */ b")
    assert [(t.kind, t.text) for t in toks[:-1]] == [
        ("ident", "a"),
        ("ident", "b"),
    ]
    assert toks[1].line == 2


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_bad_character():
    with pytest.raises(LexError):
        tokenize("x = $;")


def test_line_and_column_tracking():
    toks = tokenize("ab\n  cd")
    assert toks[0].line == 1 and toks[0].col == 1
    assert toks[1].line == 2 and toks[1].col == 3


def test_underscore_identifiers():
    assert kinds("_x x_1 __a") == [
        ("ident", "_x"),
        ("ident", "x_1"),
        ("ident", "__a"),
    ]
