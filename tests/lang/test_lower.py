"""Unit tests for AST -> CFA lowering."""

import pytest

from repro.cfa.cfa import AssignOp, AssumeOp
from repro.lang.lower import LowerError, lower_program, lower_source
from repro.smt import terms as T

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
"""


def test_figure1_shape():
    cfa = lower_source(FIG1)
    assert cfa.q0 == 0
    assert not cfa.is_atomic(cfa.q0)
    # The atomic section spans the test-and-set (paper locations 2, 3, 4).
    assert len(cfa.atomic) == 3
    # Exactly the paper's seven locations.
    assert len(cfa.locations) == 7
    # x is written at exactly one location.
    writers = [q for q in cfa.locations if cfa.may_write(q, "x")]
    assert len(writers) == 1


def test_while_false_loop_pruned():
    cfa = lower_source("global int g; thread m { while (0) { g = 1; } }")
    # Body is unreachable: no location writes g.
    assert not any(cfa.may_write(q, "g") for q in cfa.locations)


def test_assign_and_locals():
    cfa = lower_source(
        "global int g; thread m { local int a = 2; g = a + 1; }"
    )
    assert "a" in cfa.locals and "g" in cfa.globals
    assigns = [e.op for e in cfa.edges if isinstance(e.op, AssignOp)]
    assert {op.lhs for op in assigns} == {"a", "g"}


def test_undeclared_variable_rejected():
    with pytest.raises(LowerError):
        lower_source("thread m { x = 1; }")


def test_duplicate_local_rejected():
    with pytest.raises(LowerError):
        lower_source("thread m { local int a; local int a; }")


def test_nested_nondet_rejected():
    with pytest.raises(LowerError):
        lower_source("global int x; thread m { if (* && x == 0) { skip; } }")


def test_if_without_else():
    cfa = lower_source(
        "global int g; thread m { if (g == 0) { g = 1; } g = 2; }"
    )
    # Branch structure: one assume g==0 edge, one negated edge.
    assumes = [e.op.pred for e in cfa.edges if isinstance(e.op, AssumeOp)]
    assert T.eq(T.var("g"), T.num(0)) in assumes


def test_nondet_if_gets_true_assumes():
    cfa = lower_source("global int g; thread m { if (*) { g = 1; } }")
    out0 = cfa.out(cfa.q0)
    preds = {e.op.pred for e in out0 if isinstance(e.op, AssumeOp)}
    assert preds == {T.TRUE}
    assert len(out0) == 2


def test_atomic_marks_interior_not_exit():
    cfa = lower_source(
        "global int g; thread m { atomic { g = 1; g = 2; } g = 3; }"
    )
    # Walk: q0 --true--> A(atomic) --g:=1--> B(atomic) --g:=2--> C(non-atomic)
    (entry_edge,) = cfa.out(cfa.q0)
    a = entry_edge.dst
    assert cfa.is_atomic(a)
    (e1,) = cfa.out(a)
    assert cfa.is_atomic(e1.dst)
    (e2,) = cfa.out(e1.dst)
    assert not cfa.is_atomic(e2.dst)


def test_start_location_never_atomic():
    cfa = lower_source("global int g; thread m { atomic { g = 1; } }")
    assert not cfa.is_atomic(cfa.q0)


def test_lock_unlock_desugaring():
    cfa = lower_source(
        "global int m, g; thread t { lock(m); g = 1; unlock(m); }"
    )
    acq = [e for e in cfa.edges if e.lock_info == ("acquire", "m")]
    rel = [e for e in cfa.edges if e.lock_info == ("release", "m")]
    assert len(acq) == 2  # assume + set
    assert len(rel) == 1
    assume_edge = next(e for e in acq if isinstance(e.op, AssumeOp))
    assert assume_edge.op.pred == T.eq(T.var("m"), T.num(0))
    # The middle of the test-and-set is atomic.
    assert cfa.is_atomic(assume_edge.dst)


def test_function_inlining_void():
    cfa = lower_source(
        """
        global int g;
        void bump() { g = g + 1; }
        thread m { bump(); bump(); }
        """
    )
    bumps = [
        e
        for e in cfa.edges
        if isinstance(e.op, AssignOp) and e.op.lhs == "g"
    ]
    assert len(bumps) == 2


def test_function_inlining_with_return_value():
    cfa = lower_source(
        """
        global int g;
        int read_g() { return g; }
        thread m { local int t; t = read_g(); g = t + 1; }
        """
    )
    t_assigns = [
        e
        for e in cfa.edges
        if isinstance(e.op, AssignOp) and e.op.lhs == "t"
    ]
    assert len(t_assigns) == 1
    assert t_assigns[0].op.rhs == T.var("g")


def test_function_params_are_renamed_per_site():
    cfa = lower_source(
        """
        global int g;
        void set(int v) { g = v; }
        thread m { set(1); set(2); }
        """
    )
    params = sorted(v for v in cfa.locals if v.startswith("v@"))
    assert len(params) == 2 and params[0] != params[1]


def test_recursion_rejected():
    with pytest.raises(LowerError):
        lower_source(
            """
            global int g;
            void f() { f(); }
            thread m { f(); }
            """
        )


def test_conditional_return_function():
    cfa = lower_source(
        """
        global int s;
        int try_get() {
          if (s == 0) { s = 1; return 1; }
          return 0;
        }
        thread m { local int ok; ok = try_get(); }
        """
    )
    ok_assigns = [
        e for e in cfa.edges if isinstance(e.op, AssignOp) and e.op.lhs == "ok"
    ]
    # Two return paths assign ok.
    assert len(ok_assigns) == 2


def test_assert_creates_error_location():
    cfa = lower_source("global int g; thread m { assert(g == 0); }")
    assert len(cfa.error_locations) == 1
    (err,) = cfa.error_locations
    assert cfa.out(err) == ()


def test_break_exits_loop():
    cfa = lower_source(
        "global int g; thread m { while (1) { g = 1; break; } g = 2; }"
    )
    # g=2 must be reachable (break escapes the infinite loop).
    targets = [
        e for e in cfa.edges if isinstance(e.op, AssignOp) and e.op.rhs == T.num(2)
    ]
    assert len(targets) == 1


def test_lower_program_multiple_threads():
    cfas = lower_program(
        "global int g; thread a { g = 1; } thread b { g = 2; }"
    )
    assert set(cfas) == {"a", "b"}


def test_contraction_removes_join_stutters():
    cfa = lower_source(
        "global int g; thread m { if (g == 0) { g = 1; } else { g = 2; } g = 3; }"
    )
    # No location should have a single always-true out-edge to an
    # equi-atomic location (those are contracted).
    for q in cfa.locations:
        outs = cfa.out(q)
        if len(outs) == 1 and isinstance(outs[0].op, AssumeOp):
            e = outs[0]
            if e.op.pred == T.TRUE and e.lock_info is None:
                # Only atomic-entry stutters survive contraction.
                assert not cfa.is_atomic(q) and cfa.is_atomic(e.dst)


def test_thread_return_is_terminal():
    cfa = lower_source("global int g; thread m { return; g = 1; }")
    assert not any(cfa.may_write(q, "g") for q in cfa.locations)
