"""Round-trip tests for the unparser: unparse . parse is a projection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.lang.unparse import unparse
from repro.nesc.programs import TEST_AND_SET_SOURCE

SAMPLES = [
    TEST_AND_SET_SOURCE,
    """
    global int x = 3, y = -2;
    global int *p;
    int get(int a) { if (a > 0) { return a; } return 0; }
    void put(int v) { x = v; }
    thread main {
      local int t;
      local int *q = &x;
      p = q;
      t = get(x + 1);
      put(t);
      *p = t;
      t = *q;
      while (t > 0) { t = t - 1; break; }
      atomic { assume(x >= 0); assert(x == x); }
      lock(y); unlock(y);
      if (*) { skip; } else { return; }
    }
    """,
    "global int g; thread a { g = 1; } thread b { g = 2; }",
    """
    global int s;
    thread m {
      while (s == 0 && (s < 5 || !(s != 2))) {
        s = s + 2 * 3 - 1;
      }
    }
    """,
]


def normal_form(source: str) -> str:
    return unparse(parse_program(source))


@pytest.mark.parametrize("source", SAMPLES, ids=range(len(SAMPLES)))
def test_unparse_parse_fixpoint(source):
    once = normal_form(source)
    twice = normal_form(once)
    assert once == twice


@pytest.mark.parametrize("source", SAMPLES[:2], ids=range(2))
def test_round_trip_preserves_lowering(source):
    """The re-parsed program lowers to a structurally identical CFA."""
    from repro.lang.lower import lower_thread

    p1 = parse_program(source)
    p2 = parse_program(unparse(p1))
    for t1, t2 in zip(p1.threads, p2.threads):
        c1 = lower_thread(p1, t1.name)
        c2 = lower_thread(p2, t2.name)
        assert len(c1.locations) == len(c2.locations)
        assert len(c1.edges) == len(c2.edges)
        assert c1.atomic == c2.atomic
        assert c1.globals == c2.globals


def test_round_trip_preserves_behavior():
    """Exhaustive exploration agrees on the original and round-tripped
    program (bounded-data variant)."""
    from repro.exec import MultiProgram, explore
    from repro.lang.lower import lower_source

    src = TEST_AND_SET_SOURCE.replace("x = x + 1;", "x = 1 - x;")
    round_tripped = normal_form(src)
    for n in (1, 2):
        a = explore(
            MultiProgram.symmetric(lower_source(src), n), race_on="x"
        )
        b = explore(
            MultiProgram.symmetric(lower_source(round_tripped), n),
            race_on="x",
        )
        assert a.found == b.found
        assert a.visited == b.visited


# -- randomized statement-level round trips -----------------------------------

_conds = st.sampled_from(
    ["x == 0", "x != y", "x < 3 && y > 0", "!(x >= 1) || y == 2", "*"]
)
_exprs = st.sampled_from(["0", "x", "x + 1", "y - x", "2 * x", "x + y + 3"])


@st.composite
def stmts(draw, depth=2):
    if depth == 0:
        choice = draw(st.sampled_from(["assign", "skip", "assume"]))
    else:
        choice = draw(
            st.sampled_from(
                ["assign", "skip", "assume", "if", "while", "atomic"]
            )
        )
    if choice == "assign":
        return f"{draw(st.sampled_from(['x', 'y']))} = {draw(_exprs)};"
    if choice == "skip":
        return "skip;"
    if choice == "assume":
        cond = draw(_conds)
        if cond == "*":
            cond = "x == x"
        return f"assume({cond});"
    inner = draw(stmts(depth=depth - 1))
    if choice == "if":
        return f"if ({draw(_conds)}) {{ {inner} }}"
    if choice == "while":
        return f"while ({draw(_conds)}) {{ {inner} }}"
    return f"atomic {{ {inner} }}"


@settings(max_examples=60, deadline=None)
@given(stmts())
def test_random_statement_round_trip(stmt):
    source = f"global int x, y; thread m {{ {stmt} }}"
    once = normal_form(source)
    assert normal_form(once) == once
