"""Unit tests for the parser."""

import pytest

from repro.lang import ast as A
from repro.lang.parser import ParseError, parse_cond, parse_expr, parse_program
from repro.smt import terms as T


def test_parse_expr_precedence():
    e = parse_expr("1 + 2 * x")
    assert T.evaluate(e, {"x": 10}) == 21


def test_parse_expr_unary_minus():
    e = parse_expr("-x + 3")
    assert T.evaluate(e, {"x": 1}) == 2


def test_parse_expr_parens():
    e = parse_expr("2 * (x + 1)")
    assert T.evaluate(e, {"x": 4}) == 10


def test_division_rejected():
    with pytest.raises(ParseError):
        parse_expr("x / 2")
    with pytest.raises(ParseError):
        parse_expr("x % 2")


def test_parse_cond_comparisons():
    c = parse_cond("x <= y + 1")
    assert isinstance(c, T.Cmp) and c.op == "<="


def test_parse_cond_boolean_structure():
    c = parse_cond("x == 0 && (y > 1 || !(z < 2))")
    assert isinstance(c, T.And)


def test_parse_cond_truthiness_desugar():
    c = parse_cond("x")
    assert c == T.ne(T.var("x"), T.num(0))
    c2 = parse_cond("x + 1")
    assert isinstance(c2, T.Cmp) and c2.op == "!="


def test_parse_cond_nondet():
    assert isinstance(parse_cond("*"), A.Nondet)
    assert isinstance(parse_cond("!*"), A.Nondet)


def test_global_declarations():
    p = parse_program("global int x, y = 5, z = -2;")
    assert [g.name for g in p.globals] == ["x", "y", "z"]
    assert [g.init for g in p.globals] == [0, 5, -2]


def test_thread_and_statements():
    p = parse_program(
        """
        global int g;
        thread main {
          local int a = 1;
          a = a + g;
          if (a == 0) { skip; } else { g = 2; }
          while (a > 0) { a = a - 1; break; }
          atomic { g = 0; }
          assume(g >= 0);
          assert(g == 0);
          lock(g); unlock(g);
          return;
        }
        """
    )
    t = p.thread("main")
    stmts = t.body.stmts
    assert isinstance(stmts[0], A.LocalDecl)
    assert isinstance(stmts[1], A.Assign)
    assert isinstance(stmts[2], A.If) and stmts[2].els is not None
    assert isinstance(stmts[3], A.While)
    assert isinstance(stmts[4], A.Atomic)
    assert isinstance(stmts[5], A.Assume)
    assert isinstance(stmts[6], A.Assert)
    assert isinstance(stmts[7], A.Lock)
    assert isinstance(stmts[8], A.Unlock)
    assert isinstance(stmts[9], A.Return)


def test_functions_and_calls():
    p = parse_program(
        """
        global int g;
        int get() { return g; }
        void set(int v) { g = v; }
        thread main {
          local int t;
          t = get();
          set(t + 1);
        }
        """
    )
    assert p.function("get").returns_value
    assert not p.function("set").returns_value
    assert p.function("set").params == ("v",)
    stmts = p.thread("main").body.stmts
    assert isinstance(stmts[1], A.AssignCall)
    assert isinstance(stmts[2], A.CallStmt)


def test_unknown_function_lookup():
    p = parse_program("thread main { skip; }")
    with pytest.raises(KeyError):
        p.function("nope")


def test_single_thread_default_lookup():
    p = parse_program("thread only { skip; }")
    assert p.thread().name == "only"


def test_multi_thread_requires_name():
    p = parse_program("thread a { skip; } thread b { skip; }")
    with pytest.raises(ValueError):
        p.thread()
    assert p.thread("b").name == "b"


@pytest.mark.parametrize(
    "bad",
    [
        "thread main { x; }",
        "thread main { if (x == 0) }",
        "thread main { x = ; }",
        "global int;",
        "thread main { lock(); }",
        "thread main { broken",
        "int f( { }",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(ParseError):
        parse_program(bad)


def test_nondet_if_condition():
    p = parse_program("thread main { if (*) { skip; } }")
    stmt = p.thread().body.stmts[0]
    assert isinstance(stmt.cond, A.Nondet)


def test_else_if_chain():
    p = parse_program(
        "thread m { if (*) { skip; } else if (*) { skip; } else { skip; } }"
    )
    outer = p.thread().body.stmts[0]
    assert isinstance(outer.els, A.If)
