"""Tests for the Section 5 pointer memory model."""

import pytest

from repro.circ import circ
from repro.exec import MultiProgram, explore
from repro.lang import lower_source
from repro.lang.parser import parse_program
from repro.lang.pointers import (
    PointerError,
    analyze_pointers,
    eliminate_pointers,
)


def test_points_to_direct():
    p = parse_program(
        """
        global int x, y;
        global int *p;
        thread m { p = &x; }
        """
    )
    info = analyze_pointers(p)
    assert info.pts["p"] == {"x"}
    assert info.escaped() == {"x"}


def test_points_to_flows_through_copies():
    p = parse_program(
        """
        global int x, y;
        global int *p, *q;
        thread m {
          p = &x;
          q = p;
          p = &y;
        }
        """
    )
    info = analyze_pointers(p)
    # Flow-insensitive inclusion: q inherits everything p may ever hold.
    assert info.pts["p"] == {"x", "y"}
    assert info.pts["q"] == {"x", "y"}


def test_points_to_local_pointers():
    p = parse_program(
        """
        global int x;
        thread m {
          local int *q = &x;
          local int v;
          v = *q;
        }
        """
    )
    info = analyze_pointers(p)
    assert info.pts["q"] == {"x"}


def test_may_alias():
    p = parse_program(
        """
        global int x, y;
        global int *p, *q;
        thread m { p = &x; q = &y; }
        """
    )
    info = analyze_pointers(p)
    assert info.may_alias("p", "x")
    assert not info.may_alias("p", "q")
    assert not info.may_alias("p", "y")
    assert info.may_alias("x", "x")


def test_null_assignment_allowed():
    p = parse_program(
        "global int x; global int *p; thread m { p = 0; p = &x; }"
    )
    info = analyze_pointers(p)
    assert info.pts["p"] == {"x"}


def test_pointer_arithmetic_rejected():
    p = parse_program(
        "global int x; global int *p; thread m { p = p + 1; }"
    )
    with pytest.raises(PointerError):
        analyze_pointers(p)


def test_multi_level_rejected():
    p = parse_program(
        "global int *p, *q; thread m { q = &p; }"
    )
    with pytest.raises(PointerError):
        analyze_pointers(p)


def test_deref_in_expression_rejected():
    with pytest.raises(PointerError):
        lower_source(
            "global int x; global int *p; thread m { p = &x; x = *p + 1; }"
        )


def test_elimination_produces_pointer_free_program():
    program = parse_program(
        """
        global int x, y;
        global int *p;
        thread m {
          local int t;
          p = &x;
          t = *p;
          *p = t + 1;
        }
        """
    )
    rewritten, info = eliminate_pointers(program)
    from repro.lang import ast as A

    for stmt in rewritten.threads[0].body.stmts:
        assert not isinstance(stmt, A.DerefAssign)
    assert all(not g.pointer for g in rewritten.globals)


def test_deref_write_executes_concretely():
    src = """
    global int x, y;
    global int *p;
    thread m {
      p = &y;
      *p = 7;
    }
    """
    cfa = lower_source(src)
    mp = MultiProgram.symmetric(cfa, 1)
    state = mp.initial()
    while True:
        succs = list(mp.successors(state))
        if not succs:
            break
        state = succs[0][2]
    env = state.global_env()
    assert env["y"] == 7 and env["x"] == 0


def test_deref_read_selects_target():
    src = """
    global int x = 3, y = 9;
    global int *p;
    thread m {
      local int v;
      if (*) { p = &x; } else { p = &y; }
      v = *p;
      assert(v == 3 || v == 9);
    }
    """
    r = circ(lower_source(src), check_errors=True)
    assert r.safe


def test_race_through_alias_detected():
    src = """
    global int x;
    global int *p;
    thread m {
      while (1) { p = &x; *p = 1; }
    }
    """
    r = circ(lower_source(src), race_on="x")
    assert not r.safe


def test_no_race_when_aliases_disjoint():
    # Each thread copy writes through p, but p only ever points to x, and
    # the write is lock protected.
    src = """
    global int x, m;
    global int *p;
    thread t {
      local int tmp;
      while (1) {
        p = &x;
        lock(m);
        tmp = *p;
        *p = tmp + 1;
        unlock(m);
      }
    }
    """
    r = circ(lower_source(src), race_on="x")
    assert r.safe


def test_null_only_pointer_blocks():
    # p stays null: the deref has no targets and blocks (no crash model).
    src = """
    global int x;
    global int *p;
    thread m { *p = 1; x = 2; }
    """
    cfa = lower_source(src)
    mp = MultiProgram.symmetric(cfa, 1)
    result = explore(mp, race_on="x", max_states=1000)
    assert result.complete and not result.found
    # x=2 is unreachable past the blocking deref.
    assert not any(
        mp.initial().global_env()["x"] == 2 for _ in range(1)
    )
