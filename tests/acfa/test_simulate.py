"""Unit tests for CheckSim (simulation between ACFAs)."""

from repro.acfa.acfa import Acfa, AcfaEdge, empty_acfa
from repro.acfa.simulate import label_entails, simulates, simulation_relation
from repro.smt import terms as T

st0 = T.eq(T.var("state"), 0)
st_ge0 = T.ge(T.var("state"), 0)
st1 = T.eq(T.var("state"), 1)


def mk(labels, edges, atomic=(), q0=0):
    return Acfa(
        name="t",
        q0=q0,
        locations=range(len(labels)),
        label={i: tuple(l) for i, l in enumerate(labels)},
        edges=[AcfaEdge(s, frozenset(h), d) for s, h, d in edges],
        atomic=atomic,
    )


def test_label_entails_basic():
    assert label_entails([st0], [st_ge0])
    assert not label_entails([st_ge0], [st0])
    assert label_entails([st0], [])
    assert label_entails([T.FALSE], [st0])


def test_identity_simulation():
    a = mk([[], [st0]], [(0, {"x"}, 1), (1, set(), 0)])
    assert simulates(a, a)


def test_weaker_labels_simulate():
    # A visible ({x}) move makes the label comparison unavoidable (a silent
    # move could be matched by stuttering).
    concrete = mk([[], [st0]], [(0, {"x"}, 1)])
    abstract_ = mk([[], [st_ge0]], [(0, {"x"}, 1)])
    assert simulates(concrete, abstract_)
    assert not simulates(abstract_, concrete)


def test_larger_havoc_simulates():
    concrete = mk([[], []], [(0, {"x"}, 1)])
    abstract_ = mk([[], []], [(0, {"x", "y"}, 1)])
    assert simulates(concrete, abstract_)
    assert not simulates(abstract_, concrete)


def test_missing_edge_breaks_simulation():
    concrete = mk([[], []], [(0, {"x"}, 1)])
    abstract_ = mk([[], []], [])
    assert not simulates(concrete, abstract_)


def test_silent_stutter_matching():
    # A silent (empty-havoc) concrete edge between locations that map to
    # the same abstract location is matched by staying put.
    concrete = mk([[], [], []], [(0, set(), 1), (1, {"x"}, 2)])
    abstract_ = mk([[], []], [(0, {"x"}, 1)])
    assert simulates(concrete, abstract_)


def test_atomicity_must_match():
    # Visible moves into an atomic location cannot be matched by a
    # non-atomic one (and vice versa).
    concrete = mk([[], []], [(0, {"x"}, 1)], atomic=[1])
    abstract_ = mk([[], []], [(0, {"x"}, 1)])
    assert not simulates(concrete, abstract_)
    assert not simulates(abstract_, concrete)


def test_silent_move_to_atomic_hidden_by_stutter():
    # A silent move is invisible: the simulator may ignore it entirely,
    # even when the target's atomic flag differs.
    concrete = mk([[], []], [(0, set(), 1)])
    abstract_ = mk([[], []], [(0, set(), 1)], atomic=[1])
    assert simulates(concrete, abstract_)


def test_empty_acfa_simulates_nothing_with_moves():
    concrete = mk([[], []], [(0, {"x"}, 1)])
    assert not simulates(concrete, empty_acfa())
    # But a moveless ACFA is simulated by anything with a compatible start.
    assert simulates(empty_acfa(), concrete)


def test_cycle_simulation():
    concrete = mk(
        [[], [st0], [st1]],
        [(0, set(), 1), (1, {"state"}, 2), (2, {"state", "x"}, 0)],
    )
    # Coarser: one location with a self-loop havocing everything.
    abstract_ = mk([[]], [(0, {"state", "x"}, 0)])
    assert simulates(concrete, abstract_)


def test_simulation_relation_content():
    concrete = mk([[st0]], [])
    abstract_ = mk([[st_ge0]], [])
    rel = simulation_relation(concrete, abstract_)
    assert (0, 0) in rel
