"""Unit tests for Collapse (weak bisimulation minimization)."""

from repro.acfa.acfa import Acfa, AcfaEdge
from repro.acfa.collapse import collapse, project_acfa
from repro.acfa.simulate import simulates
from repro.smt import terms as T

st0 = T.eq(T.var("state"), 0)
st1 = T.eq(T.var("state"), 1)
old0 = T.eq(T.var("old"), 0)

LOCALS = frozenset({"old"})


def mk(labels, edges, atomic=(), q0=0):
    return Acfa(
        name="g",
        q0=q0,
        locations=range(len(labels)),
        label={i: tuple(l) for i, l in enumerate(labels)},
        edges=[AcfaEdge(s, frozenset(h), d) for s, h, d in edges],
        atomic=atomic,
    )


def test_project_drops_local_literals_and_havocs():
    g = mk([[st0, old0], []], [(0, {"old", "x"}, 1)])
    p = project_acfa(g, LOCALS)
    assert p.label[0] == (st0,)
    assert p.edges[0].havoc == {"x"}


def test_quotient_simulates_original():
    g = mk(
        [[old0], [old0, st0], [st1], []],
        [(0, {"old"}, 1), (1, set(), 2), (2, {"x"}, 3), (3, set(), 0)],
    )
    a, mu = collapse(g, LOCALS)
    assert simulates(project_acfa(g, LOCALS), a)
    assert set(mu) == set(g.locations)
    assert a.q0 == mu[g.q0]


def test_silent_chains_collapse():
    # Three equi-labeled locations connected by silent edges merge.
    g = mk([[], [], [], [st1]], [(0, set(), 1), (1, set(), 2), (2, {"x"}, 3)])
    a, mu = collapse(g, frozenset())
    assert mu[0] == mu[1] == mu[2]
    assert mu[3] != mu[0]
    assert a.size == 2


def test_local_only_differences_collapse():
    # Labels differing only on locals merge after projection.
    g = mk([[old0], [T.ne(T.var("old"), 0)], [st1]], [(0, {"x"}, 2), (1, {"x"}, 2)])
    a, mu = collapse(g, LOCALS)
    assert mu[0] == mu[1]


def test_atomic_flag_is_an_observable():
    g = mk([[], [], []], [(0, set(), 1), (0, set(), 2)], atomic=[1])
    a, mu = collapse(g, frozenset())
    assert mu[1] != mu[2]
    assert a.is_atomic(mu[1])
    assert not a.is_atomic(mu[2])


def test_global_label_is_an_observable():
    g = mk([[], [st0], [st1]], [(0, set(), 1), (0, set(), 2)])
    a, mu = collapse(g, frozenset())
    assert mu[1] != mu[2]


def test_havoc_subsumption_merges_figure2_style_block():
    # Two atomic locations: one can exit silently or with {state}; the other
    # only with {state}.  Havoc subsumption treats the silent exit as
    # covered, merging them (the paper's A1 merges all three atomic
    # locations of G1).
    g = mk(
        [[], [], [], []],
        [
            (0, set(), 1),
            (1, set(), 3),  # skip exit
            (1, {"state"}, 3),  # havoc exit
            (2, {"state"}, 3),
        ],
        atomic=[1, 2],
    )
    # Location 2 unreachable from 0 but still part of the graph.
    a, mu = collapse(g, frozenset())
    assert mu[1] == mu[2]


def test_start_label_weakened_to_true():
    g = mk([[st0], [st1]], [(0, {"state"}, 1), (1, {"state"}, 0)])
    a, mu = collapse(g, frozenset())
    assert a.label[a.q0] == ()


def test_silent_self_loops_dropped():
    g = mk([[], []], [(0, set(), 0), (0, {"x"}, 1)])
    a, mu = collapse(g, frozenset())
    for e in a.edges:
        assert not (e.src == e.dst and not e.havoc)


def test_mu_is_total_and_onto():
    g = mk([[], [st0], [st1]], [(0, set(), 1), (1, {"state"}, 2)])
    a, mu = collapse(g, frozenset())
    assert set(mu.keys()) == set(g.locations)
    assert set(mu.values()) == set(a.locations)
