"""Unit tests for the ACFA structure."""

import pytest

from repro.acfa.acfa import Acfa, AcfaEdge, empty_acfa
from repro.smt import terms as T

st0 = T.eq(T.var("state"), 0)
st1 = T.eq(T.var("state"), 1)


def simple_acfa():
    return Acfa(
        name="a",
        q0=0,
        locations=[0, 1, 2],
        label={0: (), 1: (st0,), 2: (st1,)},
        edges=[
            AcfaEdge(0, frozenset(), 1),
            AcfaEdge(1, frozenset({"state"}), 2),
            AcfaEdge(2, frozenset({"x", "state"}), 0),
        ],
        atomic=[1],
    )


def test_empty_acfa_shape():
    a = empty_acfa()
    assert a.is_empty()
    assert a.size == 1
    assert a.label[a.q0] == ()
    assert a.out(a.q0) == ()


def test_parallel_edges_merge_by_union():
    a = Acfa(
        name="m",
        q0=0,
        locations=[0, 1],
        label={},
        edges=[
            AcfaEdge(0, frozenset({"x"}), 1),
            AcfaEdge(0, frozenset({"y"}), 1),
        ],
    )
    assert len(a.edges) == 1
    assert a.edges[0].havoc == {"x", "y"}


def test_out_edges():
    a = simple_acfa()
    assert [e.dst for e in a.out(0)] == [1]
    assert a.out(1)[0].havoc == {"state"}


def test_may_write():
    a = simple_acfa()
    assert a.may_write(1, "state")
    assert not a.may_write(1, "x")
    assert a.may_write(2, "x") and a.may_write(2, "state")
    assert not a.may_write(0, "x")


def test_atomic_start_rejected():
    with pytest.raises(ValueError):
        Acfa("bad", 0, [0], {0: ()}, [], atomic=[0])


def test_unknown_edge_location_rejected():
    with pytest.raises(ValueError):
        Acfa("bad", 0, [0], {0: ()}, [AcfaEdge(0, frozenset(), 7)])


def test_str_rendering_mentions_labels():
    s = str(simple_acfa())
    assert "state == 0" in s and "{state}" in s


def test_dot_rendering():
    dot = simple_acfa().to_dot()
    assert dot.startswith("digraph") and "n0 -> n1" in dot
