"""Property-based tests: Collapse always yields a simulating quotient.

These are the invariants the assume-guarantee argument rests on; hypothesis
searches for small ACFAs that break them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acfa.acfa import Acfa, AcfaEdge
from repro.acfa.collapse import collapse, project_acfa
from repro.acfa.simulate import simulates
from repro.smt import terms as T

_LABEL_POOL = [
    (),
    (T.eq(T.var("g"), 0),),
    (T.eq(T.var("g"), 1),),
    (T.ge(T.var("g"), 1),),
    (T.eq(T.var("l"), 0),),  # a 'local' literal, projected away
]

_HAVOC_POOL = [
    frozenset(),
    frozenset({"g"}),
    frozenset({"l"}),
    frozenset({"g", "h"}),
]

LOCALS = frozenset({"l"})


@st.composite
def acfas(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    labels = {
        i: draw(st.sampled_from(_LABEL_POOL)) for i in range(n)
    }
    n_edges = draw(st.integers(min_value=0, max_value=8))
    edges = []
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        havoc = draw(st.sampled_from(_HAVOC_POOL))
        edges.append(AcfaEdge(src, havoc, dst))
    atomic = draw(
        st.sets(st.integers(min_value=1, max_value=n - 1), max_size=n)
        if n > 1
        else st.just(set())
    )
    return Acfa(
        name="h",
        q0=0,
        locations=range(n),
        label=labels,
        edges=edges,
        atomic=atomic,
    )


@settings(max_examples=80, deadline=None)
@given(acfas())
def test_quotient_simulates_projection(graph):
    quotient, mu = collapse(graph, LOCALS)
    projected = project_acfa(graph, LOCALS)
    assert simulates(projected, quotient)


@settings(max_examples=80, deadline=None)
@given(acfas())
def test_mu_maps_into_quotient(graph):
    quotient, mu = collapse(graph, LOCALS)
    assert set(mu.keys()) == set(graph.locations)
    assert set(mu.values()) <= set(quotient.locations)
    assert quotient.q0 == mu[graph.q0]


@settings(max_examples=80, deadline=None)
@given(acfas())
def test_quotient_never_grows(graph):
    quotient, _ = collapse(graph, LOCALS)
    assert quotient.size <= graph.size


@settings(max_examples=80, deadline=None)
@given(acfas())
def test_quotient_start_label_true(graph):
    quotient, _ = collapse(graph, LOCALS)
    assert quotient.label[quotient.q0] == ()


@settings(max_examples=50, deadline=None)
@given(acfas())
def test_simulation_is_reflexive(graph):
    assert simulates(graph, graph)


@settings(max_examples=40, deadline=None)
@given(acfas(), acfas(), acfas())
def test_simulation_is_transitive(a, b, c):
    # If a <= b and b <= c then a <= c.
    if simulates(a, b) and simulates(b, c):
        assert simulates(a, c)


@settings(max_examples=60, deadline=None)
@given(acfas())
def test_collapse_monotone_under_iteration(graph):
    # Not strictly idempotent: the first collapse weakens the start label
    # to true, which can unlock further merges.  But re-collapsing never
    # grows the quotient and still simulates it.
    q1, _ = collapse(graph, LOCALS)
    q2, _ = collapse(q1, LOCALS)
    assert q2.size <= q1.size
    assert simulates(project_acfa(q1, LOCALS), q2)
