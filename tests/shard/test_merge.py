"""Shard-report merging: golden byte-identity, dedup, conflicts."""

import json

import pytest

from repro.engine import run_batch
from repro.races.report import REPORT_SCHEMA, rows_from_batch, rows_to_payload
from repro.shard.merge import (
    ShardConflict,
    canonical_row,
    merge_payloads,
    render_merged,
)
from tests.engine.test_engine import ITEMS


def payload_of(report):
    return rows_to_payload(rows_from_batch(report))


def row(model="m", variable="x", verdict="safe", source="circ", detail=""):
    return {
        "model": model,
        "variable": variable,
        "verdict": verdict,
        "source": source,
        "time_ms": 12.5,
        "detail": detail,
    }


def wrap(*rows):
    return {"schema": REPORT_SCHEMA, "rows": list(rows)}


# -- canonicalization ---------------------------------------------------------


def test_canonical_row_erases_execution_accidents():
    assert canonical_row(row(source="cache"))["source"] == "circ"
    assert canonical_row(row(source="circ-warm"))["source"] == "circ"
    assert canonical_row(row())["time_ms"] == 0.0
    # Verdict-bearing fields survive untouched.
    c = canonical_row(row(verdict="race", detail="witness"))
    assert c["verdict"] == "race" and c["detail"] == "witness"


def test_merge_rejects_foreign_schema():
    with pytest.raises(ValueError, match="schema"):
        merge_payloads([{"schema": "something-else", "rows": []}])


# -- golden: shard unions reproduce the unsharded report ----------------------


@pytest.fixture(scope="module")
def full_payload():
    return payload_of(run_batch(ITEMS, cache_dir=None, workers=1))


@pytest.mark.parametrize("shards", [2, 4])
def test_dry_run_union_is_byte_identical(shards, full_payload):
    """N dry-run invocations merge byte-identically to the unsharded
    report passed through the same identity-merge."""
    parts = [
        payload_of(
            run_batch(
                ITEMS,
                cache_dir=None,
                workers=1,
                shards=shards,
                shard_id=i,
            )
        )
        for i in range(shards)
    ]
    assert render_merged(merge_payloads(parts)) == render_merged(
        merge_payloads([full_payload])
    )


def test_overlapping_shards_dedup(full_payload):
    """A job that ran in several shards (post-steal duplicate, or the
    static rows every shard replicates) collapses to one row: merging
    the full payload with itself is the identity."""
    once = render_merged(merge_payloads([full_payload]))
    thrice = render_merged(
        merge_payloads([full_payload, full_payload, full_payload])
    )
    assert once == thrice


def test_merged_payload_is_stable_json(full_payload):
    """The canonical serialization round-trips and is sorted."""
    text = render_merged(merge_payloads([full_payload]))
    back = json.loads(text)
    assert back["schema"] == REPORT_SCHEMA
    keys = [
        (r["model"], r["variable"], r["source"], r["verdict"], r["detail"])
        for r in back["rows"]
    ]
    assert keys == sorted(keys)


# -- reconciliation semantics -------------------------------------------------


def test_confident_row_supersedes_unknown():
    merged = merge_payloads(
        [
            wrap(row(verdict="unknown", detail="budget exhausted")),
            wrap(row(verdict="safe")),
        ]
    )
    (r,) = merged["rows"]
    assert r["verdict"] == "safe"
    assert merged["summary"]["unknown"] == 0


def test_secondary_unknown_never_shadows_decided_query():
    """A portfolio side-row (non-primary source) reporting unknown must
    not drag a decided query's summary back to unknown."""
    merged = merge_payloads(
        [
            wrap(
                row(verdict="safe", source="portfolio:racer"),
                row(verdict="unknown", source="absint", detail="cancelled"),
            )
        ]
    )
    assert merged["summary"] == {
        "queries": 1,
        "races": 0,
        "unknown": 0,
        "static": 0,
    }


def test_confident_disagreement_is_a_hard_error():
    with pytest.raises(ShardConflict, match="disagree"):
        merge_payloads(
            [wrap(row(verdict="safe")), wrap(row(verdict="race"))]
        )


def test_conflict_detected_across_sources_too():
    """safe-from-static vs race-from-circ is just as impossible."""
    with pytest.raises(ShardConflict):
        merge_payloads(
            [
                wrap(row(verdict="safe", source="static")),
                wrap(row(verdict="race", source="circ")),
            ]
        )


def test_summary_counts_per_query():
    merged = merge_payloads(
        [
            wrap(
                row(model="a", verdict="race"),
                row(model="b", verdict="safe", source="static"),
                row(model="c", verdict="unknown"),
            )
        ]
    )
    assert merged["summary"] == {
        "queries": 3,
        "races": 1,
        "unknown": 1,
        "static": 1,
    }


# -- the merge-reports CLI ----------------------------------------------------


def test_merge_reports_cli_round_trip(tmp_path, capsys, full_payload):
    from repro.cli import main

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(full_payload))
    b.write_text(json.dumps(full_payload))
    # ITEMS contains one racy model, so exit parity says 1.
    assert main(["merge-reports", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert json.loads(out)["schema"] == REPORT_SCHEMA
    assert out.strip() == render_merged(merge_payloads([full_payload]))


def test_merge_reports_cli_conflict_exits_2(tmp_path):
    from repro.cli import main

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(wrap(row(verdict="safe"))))
    b.write_text(json.dumps(wrap(row(verdict="race"))))
    assert main(["merge-reports", str(a), str(b)]) == 2


def test_merge_reports_cli_writes_out_file(tmp_path):
    from repro.cli import main

    a = tmp_path / "a.json"
    out = tmp_path / "merged.json"
    a.write_text(json.dumps(wrap(row(verdict="safe"))))
    assert main(["merge-reports", str(a), "-o", str(out)]) == 0
    assert json.loads(out.read_text())["summary"]["races"] == 0
