"""The work-stealing coordinator: equivalence, stealing, crash retry."""

from repro.engine import EventLog, run_batch
from repro.engine.cache import ArtifactCache
from repro.engine.planner import options_fingerprint
from repro.shard.coordinator import _Buckets
from tests.engine.test_engine import ITEMS, expected_verdicts
from tests.shard.test_partition import make_jobs


# -- the steal queue, deterministically ---------------------------------------


def test_home_buckets_round_robin():
    b = _Buckets(make_jobs(12), shards=4, workers=2)
    assert b.home_buckets(0) == [0, 2]
    assert b.home_buckets(1) == [1, 3]


def test_take_prefers_home_then_steals_from_largest():
    jobs = make_jobs(30)
    b = _Buckets(jobs, shards=4, workers=2)
    # Drain worker 0's home buckets completely.
    while True:
        item = b.take(0)
        assert item is not None
        job, bucket, stolen = item
        if stolen:
            break
        assert bucket in (0, 2)
    # The first steal targets the fullest foreign bucket at that moment.
    sizes = {i: len(q) for i, q in enumerate(b.queues)}
    assert bucket in (1, 3)
    assert sizes[bucket] <= max(len(b.queues[1]), len(b.queues[3])) + 1
    assert b.steals == 1


def test_steal_takes_tail_owner_takes_head():
    b = _Buckets(make_jobs(16), shards=2, workers=2)
    # Empty worker 1's home bucket so its next take must be a steal.
    b.queues[1].clear()
    assert len(b.queues[0]) >= 2
    head = b.queues[0][0]
    tail = b.queues[0][-1]
    thief_job, bucket, stole = b.take(1)
    assert stole and bucket == 0 and thief_job is tail
    owner_job, _, owner_stole = b.take(0)
    assert not owner_stole and owner_job is head


def test_drain_empties_every_bucket():
    b = _Buckets(make_jobs(10), shards=3, workers=2)
    b.take(0)
    leftover = b.drain()
    assert len(leftover) == 9
    assert b.take(0) is None and b.take(1) is None


def test_requeue_goes_to_bucket_front():
    b = _Buckets(make_jobs(8), shards=2, workers=1)
    job, bucket, _ = b.take(0)
    b.requeue(job, bucket)
    again, bucket2, _ = b.take(0)
    assert again is job and bucket2 == bucket


# -- end-to-end through run_batch ---------------------------------------------


def test_sharded_run_matches_serial_circ(tmp_path):
    """The coordinator is a pure accelerator: verdicts equal plain circ,
    and the shard telemetry records the topology."""
    events = EventLog()
    report = run_batch(
        ITEMS, cache_dir=str(tmp_path), shard_workers=2, events=events
    )
    got = {(r.model, r.variable): r.verdict for r in report.rows}
    assert got == expected_verdicts()
    (planned,) = events.of_kind("shard_planned")
    assert planned["workers"] >= 1
    assert sum(planned["buckets"]) == planned["jobs"]
    assert events.of_kind("worker_spawned")
    (summary,) = events.of_kind("shard_summary")
    assert summary["retries"] == 0


def test_single_worker_forces_steals_nowhere_but_completes(tmp_path):
    """shards=1, workers=2: one home bucket, so any job worker 1 ever
    gets is necessarily a steal; completion must hold regardless."""
    events = EventLog()
    report = run_batch(
        ITEMS,
        cache_dir=str(tmp_path),
        shard_workers=2,
        shards=1,
        events=events,
    )
    got = {(r.model, r.variable): r.verdict for r in report.rows}
    assert got == expected_verdicts()
    for e in events.of_kind("shard_steal"):
        assert e["thief"] == 1  # bucket 0 is homed to worker 0


def test_dry_run_validates_arguments(tmp_path):
    import pytest

    with pytest.raises(ValueError, match="shard_id requires shards"):
        run_batch(ITEMS, shard_id=0)
    with pytest.raises(ValueError, match="mutually exclusive"):
        run_batch(ITEMS, shards=2, shard_id=0, shard_workers=2)
    with pytest.raises(ValueError, match="shard_id"):
        run_batch(ITEMS, shards=2, shard_id=5)


# -- crash retry: the property test -------------------------------------------


def digest_verdicts(report, cache_dir):
    """The artifact-cache view of a run: digest -> cached verdict."""
    cache = ArtifactCache(cache_dir)
    out = {}
    for r in report.rows:
        if not r.digest:
            continue  # static rows never touch the cache
        entry = cache.get(r.digest, options_fingerprint({}))
        if entry is not None:
            out[r.digest] = "safe" if entry.result.safe else "race"
    return out


def test_killed_workers_leave_no_trace(tmp_path):
    """Kill every worker once mid-bucket: the merged verdicts AND the
    artifact-cache state must match an uninterrupted run, with no
    quarantined (torn) entries anywhere."""
    events = EventLog()
    killed = run_batch(
        ITEMS,
        cache_dir=str(tmp_path / "killed"),
        shard_workers=2,
        events=events,
        _test_kill_first_attempt=True,
    )
    clean = run_batch(
        ITEMS, cache_dir=str(tmp_path / "clean"), shard_workers=2
    )

    assert {(r.model, r.variable): r.verdict for r in killed.rows} == {
        (r.model, r.variable): r.verdict for r in clean.rows
    }
    # Every job's first attempt died and was retried as if fresh.
    assert events.of_kind("worker_crashed")
    assert len(events.of_kind("job_retry")) == len(
        events.of_kind("worker_crashed")
    )
    # The artifact caches agree digest-by-digest, and neither run left
    # a torn write for the checksum layer to quarantine.
    kv = digest_verdicts(killed, str(tmp_path / "killed"))
    cv = digest_verdicts(clean, str(tmp_path / "clean"))
    assert kv == cv and kv  # same verdicts, and the cache is populated
    assert ArtifactCache(str(tmp_path / "killed")).stats()["corrupt"] == 0


def test_exhausted_retries_fall_back_to_serial(tmp_path, monkeypatch):
    """If a job keeps killing workers past the retry budget, the
    coordinator's serial pass still completes the verdict table."""
    import repro.shard.coordinator as coord

    monkeypatch.setattr(coord, "MAX_JOB_RETRIES", 0)
    events = EventLog()
    report = run_batch(
        ITEMS,
        cache_dir=str(tmp_path),
        shard_workers=2,
        events=events,
        _test_kill_first_attempt=True,
    )
    got = {(r.model, r.variable): r.verdict for r in report.rows}
    assert got == expected_verdicts()
    serial = [
        e
        for e in events.of_kind("job_started")
        if e.get("mode") == "serial"
    ]
    assert serial, "over-budget jobs must run in the serial pass"


# -- wire-contract tripwires --------------------------------------------------


def test_primary_prefixes_agree_with_serve_protocol():
    """The serve protocol keeps a literal mirror of the primary-source
    contract; the shard merge consumes the races.report original.  They
    must never drift apart."""
    from repro.races.report import PRIMARY_SOURCE_PREFIXES as reported
    from repro.serve.protocol import PRIMARY_SOURCE_PREFIXES as served

    assert reported == served


def test_cli_rejects_jobs_with_workers(tmp_path):
    from repro.cli import main

    prog = tmp_path / "p.c"
    prog.write_text("global int x;\nthread t { while (1) { x = 1; } }\n")
    assert (
        main(
            [
                "batch",
                str(prog),
                "--jobs",
                "2",
                "--workers",
                "2",
                "--no-cache",
            ]
        )
        == 2
    )
