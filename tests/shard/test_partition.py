"""Digest partitioning: determinism, coverage, range checks."""

import hashlib

import pytest

from repro.engine.planner import Job
from repro.shard.partition import bucket_of, filter_shard, partition_jobs


def make_jobs(n):
    jobs = []
    for i in range(n):
        digest = hashlib.sha256(f"slice-{i}".encode()).hexdigest()
        jobs.append(
            Job(
                job_id=i,
                source="",
                thread=None,
                variable="x",
                digest=digest,
                shape=f"s{i}",
                options={},
            )
        )
    return jobs


def test_bucket_of_deterministic_and_in_range():
    digest = hashlib.sha256(b"anything").hexdigest()
    for shards in (1, 2, 4, 7):
        b = bucket_of(digest, shards)
        assert b == bucket_of(digest, shards)  # pure function
        assert 0 <= b < shards


def test_bucket_of_rejects_bad_shard_count():
    with pytest.raises(ValueError, match="shards"):
        bucket_of("ff", 0)


def test_partition_covers_every_job_exactly_once():
    jobs = make_jobs(40)
    for shards in (1, 2, 4, 9):
        buckets = partition_jobs(jobs, shards)
        assert len(buckets) == shards
        flat = [j for b in buckets for j in b]
        assert sorted(j.job_id for j in flat) == list(range(40))
        # Every job sits in the bucket its digest names.
        for b, bucket in enumerate(buckets):
            assert all(bucket_of(j.digest, shards) == b for j in bucket)


def test_partition_spreads_over_buckets():
    """SHA-256 digests mod N should not degenerate to one bucket."""
    buckets = partition_jobs(make_jobs(64), 4)
    assert sum(1 for b in buckets if b) >= 3


def test_filter_shard_is_consistent_with_partition():
    jobs = make_jobs(25)
    shards = 4
    buckets = partition_jobs(jobs, shards)
    for i in range(shards):
        owned, foreign = filter_shard(jobs, shards, i)
        assert owned == buckets[i]
        assert len(owned) + len(foreign) == len(jobs)
        assert not set(j.job_id for j in owned) & set(
            j.job_id for j in foreign
        )


def test_filter_shard_union_is_a_partition():
    """The N dry-run invocations together own every job exactly once."""
    jobs = make_jobs(33)
    seen = []
    for i in range(5):
        owned, _ = filter_shard(jobs, 5, i)
        seen.extend(j.job_id for j in owned)
    assert sorted(seen) == list(range(33))


def test_filter_shard_validates_shard_id():
    jobs = make_jobs(3)
    with pytest.raises(ValueError, match="shard_id"):
        filter_shard(jobs, 2, 2)
    with pytest.raises(ValueError, match="shard_id"):
        filter_shard(jobs, 2, -1)
