"""Unit tests for monitor inference, held-lock sets, and dominators."""

from repro.baselines.lockset import ATOMIC_LOCK
from repro.lang import lower_source
from repro.static import (
    dominators,
    held_locks,
    infer_monitors,
    protecting_acquisition,
    reachable_locations,
)

LOCKED = """
global int m, x;
thread t { while (1) { lock(m); x = x + 1; unlock(m); } }
"""

TEST_AND_SET = """
global int s, x;
thread t {
  while (1) {
    atomic { assume(s == 0); s = 1; }
    x = x + 1;
    s = 0;
  }
}
"""

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""


def _monitor(cfa, name):
    for m in infer_monitors(cfa):
        if m.variable == name:
            return m
    return None


def test_tagged_lock_is_a_monitor():
    cfa = lower_source(LOCKED)
    m = _monitor(cfa, "m")
    assert m is not None and m.kind == "lock"
    # The x-incrementing location must-holds the mutex.
    x_sites = [q for q in cfa.locations if "x" in cfa.writes_at(q)]
    assert x_sites and all(m.holds_at(q) for q in x_sites)


def test_unconditional_test_and_set_is_a_monitor():
    cfa = lower_source(TEST_AND_SET)
    m = _monitor(cfa, "s")
    assert m is not None and m.kind == "test-and-set"
    x_sites = [q for q in cfa.locations if "x" in cfa.writes_at(q)]
    assert x_sites and all(m.holds_at(q) for q in x_sites)
    assert m.acquire_sites and m.release_sites


def test_conditional_test_and_set_is_not_a_monitor():
    """Figure 1's idiom: holding is only known through the local ``old``,
    so location-based inference must refuse it (CIRC's job)."""
    cfa = lower_source(FIG1)
    assert _monitor(cfa, "state") is None


def test_unguarded_set_disqualifies():
    cfa = lower_source("global int s; thread t { while (1) { s = 1; s = 0; } }")
    assert _monitor(cfa, "s") is None


def test_release_without_holding_disqualifies():
    cfa = lower_source(
        """
        global int s, x;
        thread t {
          while (1) {
            if (*) { s = 0; }
            atomic { assume(s == 0); s = 1; }
            x = x + 1;
            s = 0;
          }
        }
        """
    )
    assert _monitor(cfa, "s") is None


def test_nonzero_initial_value_disqualifies():
    cfa = lower_source(
        """
        global int s = 1, x;
        thread t {
          while (1) {
            atomic { assume(s == 0); s = 1; }
            x = x + 1;
            s = 0;
          }
        }
        """
    )
    assert _monitor(cfa, "s") is None


def test_holder_may_update_its_own_flag():
    """Multi-valued state machines: s := 2 while holding stays a monitor."""
    cfa = lower_source(
        """
        global int s, x;
        thread t {
          while (1) {
            atomic { assume(s == 0); s = 1; }
            s = 2;
            x = x + 1;
            s = 0;
          }
        }
        """
    )
    assert _monitor(cfa, "s") is not None


def test_held_locks_include_atomic_pseudo_lock():
    cfa = lower_source(
        "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    )
    held = held_locks(cfa)
    x_sites = [q for q in cfa.locations if "x" in cfa.writes_at(q)]
    assert x_sites and all(ATOMIC_LOCK in held[q] for q in x_sites)


def test_dominators_linear_chain():
    cfa = lower_source("global int x; thread t { x = 1; x = 2; }")
    dom = dominators(cfa)
    assert dom[cfa.q0] == {cfa.q0}
    for q in reachable_locations(cfa):
        assert cfa.q0 in dom[q]


def test_dominators_diamond_join():
    cfa = lower_source(
        """
        global int x, y;
        thread t {
          if (*) { x = 1; } else { x = 2; }
          y = 1;
        }
        """
    )
    dom = dominators(cfa)
    branch_srcs = {
        q for q in cfa.locations if "x" in cfa.writes_at(q)
    }
    join = [q for q in cfa.locations if "y" in cfa.writes_at(q)]
    assert join
    # Neither branch arm dominates the join.
    assert not (branch_srcs & dom[join[0]])


def test_protecting_acquisition_names_the_acquire_site():
    cfa = lower_source(LOCKED)
    m = _monitor(cfa, "m")
    x_site = next(q for q in cfa.locations if "x" in cfa.writes_at(q))
    acq = protecting_acquisition(cfa, m, x_site)
    assert acq in m.acquire_sites
