"""The prefilter driver: identical verdicts, strictly less CIRC work."""

import pytest

from repro.circ.result import CircSafe, CircUnsafe
from repro.lang import lower_source
from repro.nesc import BENCHMARKS
from repro.races import check_race
from repro.static import StaticSafe, Verdict, prefilter_check

ATOMIC_ONLY = "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
RACY = "global int x; thread t { while (1) { x = x + 1; } }"
READ_ONLY = (
    "global int ro, x; thread t { local int a; while (1) { a = ro; x = a; } }"
)

#: Rows excluded from the sweep: slow, or CIRC-undecided without tuning.
_SLOW = {"sense/tosPort"}


def test_protected_variable_skips_circ():
    result = check_race(ATOMIC_ONLY, "x", prefilter=True)
    assert isinstance(result, StaticSafe)
    assert result.safe
    assert result.static_verdict is Verdict.PROTECTED
    assert result.predicates == ()
    assert "statically" in str(result)


def test_read_only_variable_skips_circ():
    result = check_race(READ_ONLY, "ro", prefilter=True)
    assert isinstance(result, StaticSafe)
    assert result.static_verdict is Verdict.READ_SHARED
    # The unfiltered path agrees, the hard way.
    assert check_race(READ_ONLY, "ro", prefilter=False).safe


def test_must_check_variable_still_runs_circ():
    result = check_race(ATOMIC_ONLY.replace("atomic { x = x + 1; }", "x = x + 1;"), "x", prefilter=True)
    assert isinstance(result, CircUnsafe)
    assert not result.safe


def test_race_verdict_identical_with_and_without_prefilter():
    with_f = check_race(RACY, "x", prefilter=True)
    without = check_race(RACY, "x", prefilter=False)
    assert with_f.safe == without.safe is False
    assert with_f.n_threads == without.n_threads


def test_safe_verdict_identical_on_unprunable_variable():
    from repro.nesc.programs import TEST_AND_SET_SOURCE

    with_f = check_race(TEST_AND_SET_SOURCE, "x", prefilter=True)
    without = check_race(TEST_AND_SET_SOURCE, "x", prefilter=False)
    assert with_f.safe and without.safe
    # Not pruned: the proof really came from CIRC, predicates and all.
    assert not isinstance(with_f, StaticSafe)
    assert with_f.predicates


def test_prefilter_check_shares_a_report():
    from repro.static import classify

    cfa = lower_source(ATOMIC_ONLY)
    report = classify(cfa)
    result = prefilter_check(cfa, "x", report=report)
    assert isinstance(result, StaticSafe)


@pytest.mark.parametrize(
    "bench_case",
    [b for b in BENCHMARKS if b.key not in _SLOW],
    ids=lambda b: b.key,
)
def test_benchmark_verdicts_identical_under_prefilter(bench_case):
    """The acceptance bar: on the Table 1 models the prefiltered pipeline
    returns exactly the verdicts of the unfiltered one, pruning the
    trivially-protected rows."""
    cfa = bench_case.app.cfa()
    var = bench_case.variable.replace("_buggy", "")
    result = check_race(cfa, var, prefilter=True, max_states=500_000)
    assert result.safe == bench_case.expect_safe
    if bench_case.key in (
        "secureTosBase/gTxProto",
        "secureTosBase/gRxTailIndex",
    ):
        assert isinstance(result, StaticSafe), "trivially-safe rows prune"
    else:
        assert not isinstance(result, StaticSafe)


def test_prefilter_prunes_strictly_more_than_nothing():
    """Across the benchmark models the prefilter removes at least the two
    trivially-protected variables from CIRC's worklist."""
    from repro.races.spec import racy_variables
    from repro.static import classify

    pruned_total = 0
    candidates_total = 0
    for b in BENCHMARKS:
        report = classify(b.app.cfa())
        racy = racy_variables(b.app.cfa())
        candidates_total += len(racy)
        pruned_total += len(set(report.pruned) & racy)
    assert 0 < pruned_total < candidates_total


def test_static_safe_result_quacks_like_circ_safe():
    result = check_race(ATOMIC_ONLY, "x", prefilter=True)
    assert isinstance(result, CircSafe)
    assert result.context.size >= 1
    assert result.stats.elapsed_seconds >= 0
