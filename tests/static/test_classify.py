"""Unit tests for the verdict lattice.

Every verdict class gets a positive example (a program classified as it)
and a negative example (a near-identical program that is not), per the
acceptance bar of the static pipeline: verdicts must be earned, not
pattern-matched.
"""

import pytest

from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE, benchmark
from repro.static import Verdict, classify


def verdict_of(source: str, var: str) -> Verdict:
    cfa = lower_source(source)
    return classify(cfa).verdict(var).verdict


# -- local ------------------------------------------------------------------


def test_local_positive_unaccessed_global():
    src = "global int dead, x; thread t { x = 1; }"
    assert verdict_of(src, "dead") is Verdict.LOCAL


def test_local_positive_unreachable_access():
    src = """
    global int d, x;
    thread t { while (1) { x = 1; } d = 1; }
    """
    # The loop never exits, so the access to d is unreachable and pruned
    # by the frontend; d is dead to the template.
    assert verdict_of(src, "d") is Verdict.LOCAL


def test_local_negative_any_access():
    src = "global int d; thread t { local int a; a = d; }"
    assert verdict_of(src, "d") is not Verdict.LOCAL


# -- read-shared ------------------------------------------------------------


def test_read_shared_positive():
    src = "global int ro, x; thread t { while (1) { x = ro; } }"
    assert verdict_of(src, "ro") is Verdict.READ_SHARED


def test_read_shared_guard_only_reads():
    src = "global int ro, x; thread t { while (1) { if (ro == 0) { x = 1; } } }"
    assert verdict_of(src, "ro") is Verdict.READ_SHARED


def test_read_shared_negative_written_once():
    src = "global int ro, x; thread t { while (1) { x = ro; ro = 1; } }"
    assert verdict_of(src, "ro") is not Verdict.READ_SHARED


# -- protected --------------------------------------------------------------


def test_protected_positive_atomic_only():
    src = "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    assert verdict_of(src, "x") is Verdict.PROTECTED


def test_protected_positive_lock_discipline():
    src = """
    global int m, x;
    thread t { while (1) { lock(m); x = x + 1; unlock(m); } }
    """
    assert verdict_of(src, "x") is Verdict.PROTECTED


def test_protected_positive_task_lock_flag():
    """The nesC scheduler flag idiom: unconditional atomic test-and-set."""
    cfa = benchmark("secureTosBase/gRxTailIndex").app.cfa()
    report = classify(cfa)
    assert report.verdict("gRxTailIndex").verdict is Verdict.PROTECTED
    assert report.verdict("__taskLock").verdict is Verdict.PROTECTED


def test_protected_negative_one_access_escapes_the_atomic():
    src = """
    global int x;
    thread t { while (1) { atomic { x = x + 1; } x = 0; } }
    """
    assert verdict_of(src, "x") is Verdict.MUST_CHECK


def test_protected_negative_partial_lock_discipline():
    src = """
    global int m, x;
    thread t { while (1) { lock(m); x = x + 1; unlock(m); x = 0; } }
    """
    assert verdict_of(src, "x") is Verdict.MUST_CHECK


# -- must-check -------------------------------------------------------------


def test_must_check_positive_bare_counter():
    src = "global int x; thread t { while (1) { x = x + 1; } }"
    assert verdict_of(src, "x") is Verdict.MUST_CHECK


def test_must_check_positive_figure1_idiom():
    """The paper's motivating example must NOT be pruned: its safety
    argument is data-dependent, exactly what CIRC exists for."""
    cfa = lower_source(TEST_AND_SET_SOURCE)
    report = classify(cfa)
    assert report.verdict("x").verdict is Verdict.MUST_CHECK
    assert report.verdict("state").verdict is Verdict.MUST_CHECK


def test_must_check_negative_protected_is_prunable():
    src = "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    cfa = lower_source(src)
    vv = classify(cfa).verdict("x")
    assert vv.verdict is not Verdict.MUST_CHECK
    assert vv.prunable and not vv.racing_pairs


# -- report machinery -------------------------------------------------------


def test_report_partitions_and_counts():
    src = """
    global int dead, ro, p, c;
    thread t {
      local int a;
      while (1) {
        a = ro;
        atomic { p = p + 1; }
        c = c + 1;
      }
    }
    """
    report = classify(lower_source(src))
    assert report.must_check == ("c",)
    assert report.pruned == ("dead", "p", "ro")
    assert report.counts() == {
        "local": 1,
        "read-shared": 1,
        "protected": 1,
        "must-check": 1,
    }
    text = str(report)
    assert "summary:" in text and "1/4 need CIRC" in text


def test_classify_subset_of_variables():
    src = "global int x, y; thread t { x = 1; }"
    report = classify(lower_source(src), ["y"])
    assert set(report.verdicts) == {"y"}


def test_classify_rejects_unknown_variable():
    with pytest.raises(ValueError):
        classify(lower_source("global int x; thread t { x = 1; }"), ["nope"])
