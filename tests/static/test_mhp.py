"""Unit tests for the may-happen-in-parallel analysis."""

from repro.cfa.cfa import CFA, AssignOp, Edge
from repro.lang import lower_source
from repro.smt import terms as T
from repro.static import mhp_analysis


def test_two_atomic_locations_never_co_enabled():
    cfa = lower_source(
        """
        global int x, y;
        thread t {
          while (1) {
            atomic { x = x + 1; }
            atomic { y = y + 1; }
          }
        }
        """
    )
    mhp = mhp_analysis(cfa)
    a = sorted(cfa.atomic)
    assert len(a) >= 2
    assert not mhp.co_enabled(a[0], a[1])
    assert not mhp.co_enabled(a[0], a[0])


def test_atomic_plain_pair_co_enabled_but_not_a_race_pair():
    cfa = lower_source(
        """
        global int x;
        thread t {
          while (1) {
            atomic { x = x + 1; }
            x = x + 2;
          }
        }
        """
    )
    mhp = mhp_analysis(cfa)
    atomic_site = next(
        q for q in cfa.atomic if "x" in cfa.writes_at(q)
    )
    plain_site = next(
        q
        for q in cfa.locations - cfa.atomic
        if "x" in cfa.writes_at(q)
    )
    # One thread can sit at a plain location while another is atomic...
    assert mhp.co_enabled(atomic_site, plain_site)
    # ...but a race state requires nobody atomic.
    assert not mhp.race_pair(atomic_site, plain_site)
    assert mhp.race_pair(plain_site, plain_site)


def test_common_monitor_kills_the_pair():
    cfa = lower_source(
        """
        global int m, x, y;
        thread t {
          while (1) {
            lock(m);
            x = x + 1;
            y = y + 1;
            unlock(m);
          }
        }
        """
    )
    mhp = mhp_analysis(cfa)
    x_site = next(q for q in cfa.locations if "x" in cfa.writes_at(q))
    y_site = next(q for q in cfa.locations if "y" in cfa.writes_at(q))
    assert not mhp.co_enabled(x_site, y_site)
    assert "m" in mhp.excluded_by(x_site, y_site)


def test_unreachable_location_excluded():
    cfa = CFA(
        name="t",
        q0=0,
        locations=[0, 1, 2, 3],
        edges=[
            Edge(0, AssignOp("x", T.num(1)), 1),
            Edge(2, AssignOp("x", T.num(2)), 3),  # unreachable island
        ],
        globals_=["x"],
    )
    mhp = mhp_analysis(cfa)
    assert not mhp.co_enabled(0, 2)
    assert mhp.co_enabled(0, 0)


def test_conflicting_pairs_on_a_plain_counter():
    cfa = lower_source("global int x; thread t { while (1) { x = x + 1; } }")
    mhp = mhp_analysis(cfa)
    pairs = list(mhp.conflicting_pairs(cfa, "x"))
    assert pairs, "an unprotected write must survive as a racing pair"
    assert all(q1 <= q2 for q1, q2 in pairs)


def test_conflicting_pairs_need_a_write():
    cfa = lower_source(
        "global int x; thread t { local int a; while (1) { a = x; } }"
    )
    mhp = mhp_analysis(cfa)
    assert list(mhp.conflicting_pairs(cfa, "x")) == []


def test_read_write_pair_conflicts():
    cfa = lower_source(
        """
        global int x;
        thread t {
          local int a;
          while (1) { if (*) { a = x; } else { x = 1; } }
        }
        """
    )
    mhp = mhp_analysis(cfa)
    pairs = list(mhp.conflicting_pairs(cfa, "x"))
    assert pairs


def test_assume_guard_reads_count_as_accesses():
    cfa = lower_source(
        """
        global int x;
        thread t {
          while (1) { if (x == 0) { x = 1; } }
        }
        """
    )
    mhp = mhp_analysis(cfa)
    assert list(mhp.conflicting_pairs(cfa, "x"))
