"""Tests for the portfolio driver: cancellation, reconciliation, parity."""

import pytest

from repro.circ.circ import CircBudgetExceeded, CircInconclusive, circ
from repro.circ.result import CircSafe, CircUnsafe, CircUnknown
from repro.engine.cache import ArtifactCache
from repro.engine.events import EventLog
from repro.exec.interp import MultiProgram, replay
from repro.lang.lower import lower_source
from repro.portfolio.driver import (
    AnalysisOutcome,
    PortfolioConflict,
    _reconcile,
    run_portfolio,
)
from repro.portfolio.winrate import WinRateBook

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

RACY = "global int x; thread t { while (1) { x = x + 1; } }"

ATOMIC = "global int x; thread t0 { while (*) { atomic { x = 1 - x; } } }"

LOCKED = (
    "global int m, x; "
    "thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
)

CORPUS = [("fig1", FIG1), ("racy", RACY), ("atomic", ATOMIC), ("locked", LOCKED)]

BUDGET = {"max_outer": 25, "max_inner": 25}


def _circ_only(source):
    try:
        return circ(lower_source(source), race_on="x", **BUDGET)
    except (CircBudgetExceeded, CircInconclusive) as exc:
        return exc.result


def test_baseline_win_cancels_circ():
    report = run_portfolio(lower_source(LOCKED), "x", **BUDGET)
    assert report.verdict == "safe"
    assert report.winner in ("racer", "absint")
    assert "circ" in report.cancelled


def test_circ_decides_what_baselines_cannot():
    report = run_portfolio(lower_source(FIG1), "x", **BUDGET)
    assert report.verdict == "safe"
    assert report.winner == "circ"
    racer = report.outcome("racer")
    assert racer is not None and racer.verdict == "unknown"


def test_race_verdict_carries_replaying_witness():
    report = run_portfolio(lower_source(RACY), "x", **BUDGET)
    assert report.verdict == "race"
    program = MultiProgram.symmetric(
        lower_source(RACY), max(2, report.n_threads)
    )
    ok, _ = replay(program, list(report.witness), race_on="x")
    assert ok


def test_reconciliation_portfolio_never_disagrees_with_circ_only():
    # The acceptance criterion: across the corpus, with cancellation off
    # (maximal disagreement surface) and on, a confident portfolio
    # verdict must match what a CIRC-only run concludes.
    for name, source in CORPUS:
        expected = _circ_only(source)
        for cancel in (False, True):
            report = run_portfolio(
                lower_source(source), "x", cancel=cancel, **BUDGET
            )
            if report.verdict == "unknown":
                continue  # abstention is never a disagreement
            if isinstance(expected, CircUnknown):
                continue  # circ abstained; nothing to compare against
            expected_verdict = (
                "safe" if isinstance(expected, CircSafe) else "race"
            )
            assert report.verdict == expected_verdict, (
                f"{name}: portfolio={report.verdict} (cancel={cancel}) "
                f"vs circ-only={expected_verdict}"
            )


def test_no_cancel_runs_every_analysis():
    report = run_portfolio(lower_source(RACY), "x", cancel=False, **BUDGET)
    assert not report.cancelled
    assert {o.analysis for o in report.outcomes} == {
        "racer",
        "absint",
        "circ",
    }


def test_conflicting_confident_verdicts_are_a_hard_error():
    safe = AnalysisOutcome(analysis="racer", verdict="safe", time_ms=1.0)
    race = AnalysisOutcome(analysis="circ", verdict="race", time_ms=1.0)
    with pytest.raises(PortfolioConflict):
        _reconcile("x", [safe, race])


def test_unknown_never_conflicts():
    safe = AnalysisOutcome(analysis="racer", verdict="safe", time_ms=1.0)
    unk = AnalysisOutcome(analysis="circ", verdict="unknown", time_ms=1.0)
    verdict, winner = _reconcile("x", [safe, unk])
    assert verdict == "safe" and winner == "racer"


def test_cancelled_outcome_is_never_confident():
    ghost = AnalysisOutcome(
        analysis="circ", verdict="cancelled", time_ms=0.0, cancelled=True
    )
    assert not ghost.confident
    verdict, winner = _reconcile("x", [ghost])
    assert verdict == "unknown" and winner == ""


def test_to_circ_result_synthesis():
    safe = run_portfolio(lower_source(LOCKED), "x", **BUDGET).to_circ_result()
    assert isinstance(safe, CircSafe) and safe.safe
    race = run_portfolio(lower_source(RACY), "x", **BUDGET).to_circ_result()
    assert isinstance(race, CircUnsafe) and not race.safe
    assert race.n_threads >= 2


def test_parallel_mode_two_way_cancellation():
    report = run_portfolio(
        lower_source(LOCKED), "x", source=LOCKED, parallel=True, **BUDGET
    )
    assert report.verdict == "safe"
    # A confident baseline verdict kills the CIRC process (unless CIRC
    # happened to answer first, in which case nothing was lost).
    assert report.winner in ("racer", "absint", "circ")
    report = run_portfolio(
        lower_source(FIG1), "x", source=FIG1, parallel=True, **BUDGET
    )
    assert report.verdict == "safe"
    assert report.winner == "circ"


def test_winrate_learning_reorders_schedule(tmp_path):
    book = WinRateBook(tmp_path / "winrates.json")
    for _ in range(3):
        run_portfolio(
            lower_source(FIG1), "x", winrates=book, **BUDGET
        )
    # On the atomic/small shape CIRC keeps winning, so it moves ahead
    # of the baselines that keep abstaining.
    order = book.order("atomic/small")
    assert order[0] == "circ"
    # And the book survives a reload.
    reloaded = WinRateBook(tmp_path / "winrates.json")
    assert reloaded.order("atomic/small")[0] == "circ"


def test_events_emitted(tmp_path):
    events_path = tmp_path / "events.jsonl"
    events = EventLog(str(events_path))
    run_portfolio(lower_source(LOCKED), "x", events=events, **BUDGET)
    events.close()
    import json

    names = [
        json.loads(line)["event"]
        for line in events_path.read_text().splitlines()
    ]
    assert "portfolio_started" in names
    assert "portfolio_verdict" in names
    assert "portfolio_cancelled" in names


def test_absint_warm_reuse_through_driver(tmp_path):
    cache = ArtifactCache(tmp_path)
    # Force absint to actually run by disabling cancellation.
    run_portfolio(lower_source(ATOMIC), "x", cancel=False, cache=cache, **BUDGET)
    report = run_portfolio(
        lower_source(ATOMIC), "x", cancel=False, cache=cache, **BUDGET
    )
    absint = report.outcome("absint")
    assert absint is not None
    assert "[cached]" in absint.detail
