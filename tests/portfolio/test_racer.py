"""Tests for the RacerF-style two-phase detector."""

from repro.exec.interp import MultiProgram, replay
from repro.lang.lower import lower_source
from repro.portfolio.racer import racer_check

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic { old = state; if (state == 0) { state = 1; } }
    if (old == 0) { x = x + 1; state = 0; }
  }
}
"""

RACY = "global int x; thread t { while (1) { x = x + 1; } }"

LOCKED = (
    "global int m, x; "
    "thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
)

ATOMIC = "global int x; thread t0 { while (*) { atomic { x = 1 - x; } } }"

READ_ONLY = "global int x; thread t { local int a; while (1) { a = x; } }"


def test_racy_program_gets_witnessed_race():
    cfa = lower_source(RACY)
    r = racer_check(cfa, "x")
    assert r.verdict == "race"
    assert r.n_threads >= 2
    # The witness must replay: forged evidence is never reported.
    program = MultiProgram.symmetric(cfa, r.n_threads)
    ok, _ = replay(program, list(r.witness), race_on="x")
    assert ok


def test_lock_disciplined_program_proved_safe_in_phase1():
    cfa = lower_source(LOCKED)
    r = racer_check(cfa, "x")
    assert r.verdict == "safe"
    assert r.phase2_ms == 0.0  # phase 2 never ran
    proved = [p for p in r.pairs if p.status == "proved"]
    assert proved and all("mutual exclusion" in p.reason for p in proved)


def test_atomic_program_proved_safe():
    r = racer_check(lower_source(ATOMIC), "x")
    assert r.verdict == "safe"
    assert all(p.status == "proved" for p in r.pairs)


def test_read_only_variable_is_safe():
    r = racer_check(lower_source(READ_ONLY), "x")
    assert r.verdict == "safe"
    assert not r.undecided_pairs


def test_figure1_is_undecided_not_alarmed():
    # The Figure 1 test-and-set idiom defeats lockset-style reasoning;
    # the racer must neither warn (phase 2 finds no real witness) nor
    # claim safety (phase 1 cannot prove the monitor): the honest answer
    # is an explicit hand-off to CIRC.
    r = racer_check(lower_source(FIG1), "x")
    assert r.verdict == "unknown"
    assert r.undecided_pairs
    assert not r.witness


def test_every_pair_carries_a_status():
    r = racer_check(lower_source(RACY), "x")
    assert r.pairs
    assert all(
        p.status in ("proved", "witnessed", "undecided") for p in r.pairs
    )
    witnessed = [p for p in r.pairs if p.status == "witnessed"]
    assert witnessed
    for p in witnessed:
        program = MultiProgram.symmetric(lower_source(RACY), p.n_threads)
        ok, _ = replay(program, list(p.witness), race_on="x")
        assert ok


def test_cancellation_yields_unknown():
    r = racer_check(lower_source(FIG1), "x", should_stop=lambda: True)
    assert r.verdict == "unknown"
    assert r.cancelled


def test_phase1_proof_reasons_name_the_kill_rule():
    r = racer_check(lower_source(ATOMIC), "x")
    reasons = {p.reason for p in r.pairs if p.status == "proved"}
    assert any("atomic" in reason for reason in reasons)


def test_safe_claims_are_unbounded_strength():
    # Phase-1 safety must not depend on the phase-2 thread bound: the
    # same verdict holds under a tiny budget because the proof is a
    # static kill-rule argument, not a bounded search.
    r = racer_check(
        lower_source(LOCKED), "x", max_threads=2, max_states=10
    )
    assert r.verdict == "safe"
