"""Tests for the digest-keyed abstract-interpretation pass."""

from repro.engine.cache import ArtifactCache
from repro.engine.events import EventLog
from repro.lang.lower import lower_source
from repro.portfolio.absint import Interval, TOP, absint_check

ATOMIC = "global int x; thread t0 { while (*) { atomic { x = 1 - x; } } }"

RACY = "global int x; thread t { while (1) { x = x + 1; } }"

LOCKED = (
    "global int m, x; "
    "thread t { while (1) { lock(m); x = x + 1; unlock(m); } }"
)

# The write to x sits behind a branch the interval domain proves dead:
# a is always 0, so `a == 1` is definitely false.  Graph-level MHP keeps
# the pair; semantic reachability refutes it.
VALUE_GUARDED = """
global int x;
thread t {
  local int a;
  while (1) {
    a = 0;
    if (a == 1) { x = x + 1; }
  }
}
"""


def test_interval_algebra():
    a = Interval(0, 5)
    b = Interval(3, 10)
    assert a.join(b) == Interval(0, 10)
    assert 4 in a and 9 not in a
    assert a.widen(b) == Interval(0, None)
    assert TOP.join(a) == TOP


def test_atomic_program_refuted():
    r = absint_check(lower_source(ATOMIC), "x")
    assert r.verdict == "safe"
    assert not r.pairs_surviving


def test_locked_program_refuted():
    r = absint_check(lower_source(LOCKED), "x")
    assert r.verdict == "safe"


def test_racy_program_stays_unknown_never_race():
    # The abstraction is one-sided: it can refute, never witness.
    r = absint_check(lower_source(RACY), "x")
    assert r.verdict == "unknown"


def test_semantic_reachability_beats_graph_mhp():
    r = absint_check(lower_source(VALUE_GUARDED), "x")
    assert r.verdict == "safe"
    assert not r.pairs_surviving


def test_digest_cache_warm_hit(tmp_path):
    cache = ArtifactCache(tmp_path)
    events = EventLog()
    cold = absint_check(lower_source(ATOMIC), "x", cache=cache, events=events)
    warm = absint_check(lower_source(ATOMIC), "x", cache=cache, events=events)
    assert not cold.cached and warm.cached
    assert cold.verdict == warm.verdict == "safe"
    assert cold.digest == warm.digest


def test_cache_hit_survives_alpha_renaming(tmp_path):
    # The slice digest is stable under renaming outside the slice, so a
    # renamed thread serves the same summary.
    cache = ArtifactCache(tmp_path)
    absint_check(lower_source(ATOMIC), "x", cache=cache)
    renamed = absint_check(
        lower_source(ATOMIC.replace("t0", "worker")), "x", cache=cache
    )
    assert renamed.cached


def test_corrupt_blob_recomputes(tmp_path):
    cache = ArtifactCache(tmp_path)
    absint_check(lower_source(ATOMIC), "x", cache=cache)
    # Scribble over every stored blob; the checksum must catch it and
    # the pass must recompute rather than trust the payload.
    blobs = list((tmp_path / "absint").rglob("*.json"))
    assert blobs
    for blob in blobs:
        blob.write_text('{"nonsense": true}')
    r = absint_check(lower_source(ATOMIC), "x", cache=cache)
    assert r.verdict == "safe"
    assert not r.cached
