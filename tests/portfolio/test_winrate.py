"""Tests for the per-shape win-rate book."""

from repro.lang.lower import lower_source
from repro.portfolio.winrate import DEFAULT_ORDER, WinRateBook, shape_class


def test_shape_class_buckets():
    locked = lower_source(
        "global int m, x; thread t { lock(m); x = 1; unlock(m); }"
    )
    atomic = lower_source("global int x; thread t { atomic { x = 1; } }")
    bare = lower_source("global int x; thread t { x = 1; }")
    assert shape_class(locked, "x") == "locked/small"
    assert shape_class(atomic, "x") == "atomic/small"
    assert shape_class(bare, "x") == "bare/small"


def test_unseen_shape_uses_default_order():
    book = WinRateBook()
    assert book.order("bare/small") == DEFAULT_ORDER


def test_wins_reorder_and_rates_accumulate():
    book = WinRateBook()
    for _ in range(4):
        book.record("bare/small", "circ", won=True, time_ms=50.0)
        book.record("bare/small", "racer", won=False, time_ms=1.0)
    assert book.win_rate("bare/small", "circ") == 1.0
    assert book.win_rate("bare/small", "racer") == 0.0
    assert book.order("bare/small")[0] == "circ"
    # Other shapes are unaffected.
    assert book.order("locked/small") == DEFAULT_ORDER


def test_ties_break_by_latency():
    book = WinRateBook()
    book.record("s", "circ", won=True, time_ms=100.0)
    book.record("s", "racer", won=True, time_ms=1.0)
    assert book.order("s") == ("racer", "circ", "absint")


def test_persistence_roundtrip(tmp_path):
    path = tmp_path / "book.json"
    book = WinRateBook(path)
    book.record("bare/small", "racer", won=True, time_ms=2.0)
    book.save()
    reloaded = WinRateBook(path)
    assert reloaded.win_rate("bare/small", "racer") == 1.0


def test_corrupt_book_relearns_from_scratch(tmp_path):
    path = tmp_path / "book.json"
    path.write_text("{not json")
    book = WinRateBook(path)
    assert book.order("bare/small") == DEFAULT_ORDER
    book.record("bare/small", "racer", won=True, time_ms=1.0)
    book.save()
    assert WinRateBook(path).win_rate("bare/small", "racer") == 1.0


def test_concurrent_books_merge_instead_of_overwriting(tmp_path):
    """Two processes holding the same book file both save: the second
    save must merge its deltas into what the first wrote, not clobber
    it (the read-merge-write discipline the serve daemon relies on)."""
    path = tmp_path / "book.json"
    a = WinRateBook(path)
    b = WinRateBook(path)
    a.record("bare/small", "racer", won=True, time_ms=1.0)
    b.record("bare/small", "circ", won=True, time_ms=2.0)
    a.save()
    b.save()  # must not lose a's racer win
    merged = WinRateBook(path)
    assert merged.win_rate("bare/small", "racer") == 1.0
    assert merged.win_rate("bare/small", "circ") == 1.0


def test_save_is_delta_based_not_cumulative(tmp_path):
    """Saving twice must not double-count: deltas are consumed by the
    save that writes them."""
    path = tmp_path / "book.json"
    book = WinRateBook(path)
    book.record("s", "racer", won=True, time_ms=1.0)
    book.save()
    book.save()
    reloaded = WinRateBook(path)
    cell = reloaded.counts["s"]["racer"]
    assert cell["wins"] == 1 and cell["runs"] == 1
