"""Unit tests for the explicit-state interpreter and explorer."""

import pytest

from repro.exec import MultiProgram, explore, replay
from repro.lang import lower_source

FIG1 = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
"""

UNPROTECTED = """
global int x;
thread main {
  while (1) {
    x = x + 1;
  }
}
"""

LOCKED = """
global int m, x;
thread main {
  while (1) {
    lock(m);
    x = 1 - x;
    unlock(m);
  }
}
"""

# Bounded-data variant of FIG1 for exhaustive-oracle tests (the real
# program's counter grows without bound; the toggle keeps the same
# access and synchronization pattern with a finite state space).
FIG1_BOUNDED = FIG1.replace("x = x + 1;", "x = 1 - x;")


def test_initial_state_zeros():
    cfa = lower_source(FIG1)
    p = MultiProgram.symmetric(cfa, 2)
    s = p.initial()
    assert s.global_env() == {"x": 0, "state": 0}
    assert all(pc == cfa.q0 for pc, _ in s.threads)


def test_initial_state_respects_global_init():
    cfa = lower_source("global int g = 7; thread m { g = g + 1; }")
    p = MultiProgram.symmetric(cfa, 1)
    assert p.initial().global_env() == {"g": 7}


def test_single_thread_progress():
    cfa = lower_source("global int g; thread m { g = 1; g = 2; }")
    p = MultiProgram.symmetric(cfa, 1)
    s = p.initial()
    seen_values = {s.global_env()["g"]}
    for _ in range(2):
        succs = list(p.successors(s))
        assert len(succs) == 1
        s = succs[0][2]
        seen_values.add(s.global_env()["g"])
    assert seen_values == {0, 1, 2}
    assert list(p.successors(s)) == []


def test_assume_blocks():
    cfa = lower_source("global int g; thread m { assume(g == 1); g = 2; }")
    p = MultiProgram.symmetric(cfa, 1)
    assert list(p.successors(p.initial())) == []


def test_atomic_scheduling_excludes_others():
    cfa = lower_source(
        "global int g; thread m { atomic { g = g + 1; g = g + 1; } }"
    )
    p = MultiProgram.symmetric(cfa, 2)
    s = p.initial()
    # Step thread 0 into the atomic block.
    (thread, edge, s1) = next(
        (t, e, n) for t, e, n in p.successors(s) if t == 0
    )
    assert p.atomic_thread(s1) == 0
    # Now only thread 0 is schedulable.
    assert p.schedulable(s1) == [0]
    assert all(t == 0 for t, _, _ in p.successors(s1))


def test_race_detected_in_unprotected_counter():
    cfa = lower_source(UNPROTECTED)
    p = MultiProgram.symmetric(cfa, 2)
    result = explore(p, race_on="x", max_states=10_000)
    assert result.found
    ok, _ = replay(p, result.witness.steps, race_on="x")
    assert ok


def test_no_race_with_lock():
    cfa = lower_source(LOCKED)
    p = MultiProgram.symmetric(cfa, 2)
    result = explore(p, race_on="x", max_states=50_000)
    assert result.complete and not result.found


def test_figure1_is_race_free_for_two_threads():
    cfa = lower_source(FIG1_BOUNDED)
    p = MultiProgram.symmetric(cfa, 2)
    result = explore(p, race_on="x", max_states=100_000)
    assert result.complete
    assert not result.found


def test_figure1_is_race_free_for_three_threads():
    cfa = lower_source(FIG1_BOUNDED)
    p = MultiProgram.symmetric(cfa, 3)
    result = explore(p, race_on="x", max_states=200_000)
    assert result.complete
    assert not result.found


def test_figure1_without_atomic_has_race():
    source = FIG1_BOUNDED.replace("atomic {", "{")
    cfa = lower_source(source)
    p = MultiProgram.symmetric(cfa, 2)
    result = explore(p, race_on="x", max_states=100_000)
    assert result.found
    ok, _ = replay(p, result.witness.steps, race_on="x")
    assert ok


def test_assert_failure_reached():
    cfa = lower_source(
        "global int g; thread m { g = 1; assert(g == 0); }"
    )
    p = MultiProgram.symmetric(cfa, 1)
    result = explore(p, check_errors=True)
    assert result.found


def test_assert_success_not_flagged():
    cfa = lower_source(
        "global int g; thread m { g = 1; assert(g == 1); }"
    )
    p = MultiProgram.symmetric(cfa, 1)
    result = explore(p, check_errors=True)
    assert result.complete and not result.found


def test_replay_rejects_bogus_traces():
    cfa = lower_source("global int g; thread m { assume(g == 1); }")
    p = MultiProgram.symmetric(cfa, 1)
    edge = cfa.out(cfa.q0)[0]
    ok, _ = replay(p, [(0, edge)])
    assert not ok


def test_budget_exhaustion_reports_incomplete():
    cfa = lower_source("global int g; thread m { while (1) { g = g + 1; } }")
    p = MultiProgram.symmetric(cfa, 1)
    result = explore(p, race_on="g", max_states=50)
    assert not result.complete


def test_witness_is_shortest():
    cfa = lower_source(UNPROTECTED)
    p = MultiProgram.symmetric(cfa, 2)
    result = explore(p, race_on="x")
    # Both threads just need to reach the increment location: the loop-head
    # assume for each thread.
    assert len(result.witness.steps) <= 4


def test_mismatched_globals_rejected():
    a = lower_source("global int g; thread m { g = 1; }")
    b = lower_source("global int h; thread m { h = 1; }")
    with pytest.raises(ValueError):
        MultiProgram([a, b])


def test_deadline_exhaustion_reports_incomplete():
    # A deadline in the past stops the exploration immediately; like the
    # state budget, truncation is reported as incomplete, never as a
    # (vacuous) safety claim.
    cfa = lower_source("global int g; thread m { while (1) { g = g + 1; } }")
    p = MultiProgram.symmetric(cfa, 1)
    result = explore(p, race_on="g", deadline=0.0)
    assert not result.complete
    assert result.witness is None
