"""Tests for the random-schedule simulator."""

from repro.exec import MultiProgram, replay, simulate
from repro.lang import lower_source


def test_finds_obvious_race():
    cfa = lower_source("global int x; thread t { while (1) { x = x + 1; } }")
    mp = MultiProgram.symmetric(cfa, 2)
    result = simulate(mp, race_on="x", runs=20, seed=1)
    assert result.found
    # Simulator witnesses are genuine by construction: they replay.
    ok, _ = replay(mp, result.witness.steps, race_on="x")
    assert ok


def test_respects_protection():
    cfa = lower_source(
        "global int x; thread t { while (1) { atomic { x = x + 1; } } }"
    )
    mp = MultiProgram.symmetric(cfa, 3)
    result = simulate(mp, race_on="x", runs=30, max_steps=300, seed=2)
    assert not result.found
    assert result.steps_total > 0


def test_detects_assertion_failures():
    cfa = lower_source("global int g; thread t { g = g + 1; assert(g == 1); }")
    mp = MultiProgram.symmetric(cfa, 2)
    result = simulate(mp, check_errors=True, runs=200, seed=3)
    assert result.found


def test_counts_deadlocks():
    cfa = lower_source("global int g; thread t { assume(g == 1); }")
    mp = MultiProgram.symmetric(cfa, 1)
    result = simulate(mp, race_on="g", runs=5, seed=4)
    assert not result.found
    assert result.deadlocks == 5


def test_terminated_runs_are_not_deadlocks():
    # Straight-line program: every thread runs off the end of its CFA.
    cfa = lower_source("global int g; thread t { g = 1; }")
    mp = MultiProgram.symmetric(cfa, 2)
    result = simulate(mp, runs=5, max_steps=50, seed=4)
    assert not result.found
    assert result.deadlocks == 0
    assert result.terminations == 5


def test_blocked_acquire_is_a_deadlock():
    # The flag starts raised, so the monitor acquire's assume is never
    # enabled: every thread still has an out-edge but none can move --
    # a deadlock, not a termination.
    cfa = lower_source(
        "global int f = 1; thread t { atomic { assume(f == 0); f = 1; } }"
    )
    mp = MultiProgram.symmetric(cfa, 2)
    result = simulate(mp, race_on="f", runs=4, max_steps=50, seed=5)
    assert not result.found
    assert result.terminations == 0
    assert result.deadlocks == 4


def test_deterministic_under_seed():
    cfa = lower_source("global int x; thread t { while (1) { x = 1 - x; } }")
    mp = MultiProgram.symmetric(cfa, 2)
    a = simulate(mp, race_on="x", runs=3, seed=7)
    b = simulate(mp, race_on="x", runs=3, seed=7)
    assert a.found == b.found and a.steps_total == b.steps_total
