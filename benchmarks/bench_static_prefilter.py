"""Static pre-analysis as a CIRC accelerator on the nesC models.

Two measurements per application model:

* the verdict-class census -- how many shared variables the static
  pre-analysis settles per lattice class (local / read-shared /
  protected / must-check), i.e. how much of CIRC's worklist it prunes;
* wall-clock for ``check_race`` with and without the prefilter on the
  Table 1 variables, confirming the pruned rows collapse to
  near-instant static proofs while the must-check rows pay only the
  (cheap) classification on top of the unchanged CIRC run.

Emit machine-readable results the same way as the sibling scripts:

    PYTHONPATH=src python -m pytest benchmarks/bench_static_prefilter.py \
        --benchmark-json=prefilter.json
"""

import time

import pytest

from repro.nesc import BENCHMARKS
from repro.races import check_race
from repro.static import Verdict, classify

#: The slow rows are skipped unless --full-table1 is given.
_SLOW = {"sense/tosPort"}

_ROWS = [b for b in BENCHMARKS if b.paper_preds is not None]
_APPS = list({b.app.name: b.app for b in _ROWS}.values())
_CENSUS: dict = {}
_TIMES: dict = {}


@pytest.mark.parametrize("app", _APPS, ids=lambda a: a.name)
def test_verdict_census(benchmark, app):
    """Classify every shared variable of one application model."""
    cfa = app.cfa()
    report = benchmark.pedantic(lambda: classify(cfa), rounds=1, iterations=1)
    counts = report.counts()
    _CENSUS[app.name] = counts
    for verdict in Verdict:
        benchmark.extra_info[verdict.value] = counts.get(verdict, 0)
    benchmark.extra_info["pruned"] = len(report.pruned)
    benchmark.extra_info["must_check"] = len(report.must_check)
    # The trivially-safe models are fully discharged statically; the
    # data-dependent idioms (test-and-set, conditional locking) keep at
    # least their race variable on CIRC's plate.
    if app.name in ("gTxProto", "gRxTailIndex"):
        assert not report.must_check, f"{app.name}: should prune everything"
    else:
        assert report.must_check, f"{app.name}: nothing left for CIRC?"


@pytest.mark.parametrize("mode", ["prefilter", "no-prefilter"])
@pytest.mark.parametrize("bench_case", _ROWS, ids=lambda b: b.key)
def test_check_race_wall_clock(benchmark, bench_case, mode, full_table1):
    if bench_case.key in _SLOW and not full_table1:
        pytest.skip("slow row; pass --full-table1 to include")
    cfa = bench_case.app.cfa()
    var = bench_case.variable.replace("_buggy", "")
    use_prefilter = mode == "prefilter"

    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: check_race(
            cfa, var, prefilter=use_prefilter, max_states=500_000
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start
    assert result.safe == bench_case.expect_safe
    pruned = type(result).__name__ == "StaticSafe"
    _TIMES[(bench_case.key, mode)] = (elapsed, pruned)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["statically_pruned"] = pruned
    if not use_prefilter:
        assert not pruned


def test_prefilter_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    if not _CENSUS or not _TIMES:
        pytest.skip("no rows were run")
    print("\n=== Static prefilter: verdict census per model ===")
    print(f"{'app':16s} " + " ".join(f"{v.value:>12s}" for v in Verdict))
    for name, counts in _CENSUS.items():
        print(
            f"{name:16s} "
            + " ".join(f"{counts.get(v, 0):12d}" for v in Verdict)
        )

    print("\n=== check_race wall-clock, with vs without prefilter ===")
    print(f"{'app/variable':34s} {'with':>9s} {'without':>9s}  pruned")
    for b in _ROWS:
        with_t = _TIMES.get((b.key, "prefilter"))
        without_t = _TIMES.get((b.key, "no-prefilter"))
        if with_t is None or without_t is None:
            continue
        print(
            f"{b.key:34s} {with_t[0]:8.3f}s {without_t[0]:8.3f}s"
            f"  {'yes' if with_t[1] else 'no'}"
        )
        if with_t[1]:
            # A pruned row skips CIRC entirely; it must not be slower
            # than the full run by more than the classification noise.
            assert with_t[0] <= without_t[0] + 0.1
