"""Figure 1: the test-and-set program, its CFA, and the inferred ACFA.

Regenerates the paper's running example end to end: lowering the thread of
Figure 1(a) into the CFA of Figure 1(b) (same seven locations, three atomic),
then running CIRC to infer the context ACFA of Figure 1(c) -- locations
labeled by the value of ``state``, havoc edges ``{state}`` and
``{x, state}`` -- and the predicate set the paper reports
(old = state, old = 0, state = 0, state = 1).
"""

from repro.circ import circ
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as T


def test_fig1_cfa_shape(benchmark):
    """Figure 1(b): seven locations, atomic test-and-set block."""
    cfa = benchmark(lower_source, TEST_AND_SET_SOURCE)
    assert len(cfa.locations) == 7
    assert len(cfa.atomic) == 3
    assert not cfa.is_atomic(cfa.q0)
    writers = [q for q in cfa.locations if cfa.may_write(q, "x")]
    assert len(writers) == 1
    print("\n--- Figure 1(b): CFA ---")
    print(cfa)


def test_fig1_circ_proof(benchmark):
    """Figure 1(c): CIRC proves race freedom and infers the ACFA."""
    cfa = lower_source(TEST_AND_SET_SOURCE)
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on="x"), rounds=1, iterations=1
    )
    assert result.safe

    rendered = {T.pretty(p) for p in result.predicates}
    # The paper's predicates (Section 2 iterations 2 and 4).
    assert {"old == state", "old == 0", "state == 0"} <= rendered

    acfa = result.context
    # Figure 1(c) structure: the start location is unconstrained, some
    # location pins state = 1 while x is written, and the x-writing edge
    # exists.
    assert acfa.label[acfa.q0] == ()
    assert any("x" in e.havoc for e in acfa.edges)
    state1 = T.eq(T.var("state"), 1)
    assert any(state1 in acfa.label[q] for q in acfa.locations)
    print("\n--- Figure 1(c): inferred context ACFA ---")
    print(acfa)
    print("predicates:", sorted(rendered))

    benchmark.extra_info["predicates"] = len(result.predicates)
    benchmark.extra_info["acfa_size"] = acfa.size
    benchmark.extra_info["paper"] = "4 predicates (P4), ACFA as Figure 1(c)"
