"""Section 1 claim: stateless context models are insufficient.

"In [19], we addressed these issues as follows: (a) we chose as context
model a relation R on the global variables ... Experiments showed that this
stateless context model lacks the precision required to prove the safety
of programs such as the ones described earlier."

For each safe benchmark idiom, this bench runs the stateless
(thread-modular, [19]-style) checker and CIRC, and reproduces the paper's
dichotomy: the state-variable / split-phase idioms defeat the stateless
model but are proved by context inference; trivially protected variables
are handled by both.
"""

import pytest

from repro.baselines.threadmodular import (
    StatelessInsufficient,
    StatelessSafe,
    thread_modular,
)
from repro.circ import circ
from repro.lang import lower_source
from repro.nesc import benchmark as nesc_benchmark
from repro.nesc.programs import TEST_AND_SET_SOURCE

_RESULTS: dict = {}

# (name, cfa factory, variable, does the stateless model suffice?)
CASES = [
    ("fig1", lambda: lower_source(TEST_AND_SET_SOURCE), "x", False),
    (
        "gTxByteCnt",
        lambda: nesc_benchmark("secureTosBase/gTxByteCnt").app.cfa(),
        "gTxByteCnt",
        False,
    ),
    (
        "rec_ptr",
        lambda: nesc_benchmark("surge/rec_ptr").app.cfa(),
        "rec_ptr",
        False,
    ),
    (
        "gTxProto",
        lambda: nesc_benchmark("secureTosBase/gTxProto").app.cfa(),
        "gTxProto",
        True,
    ),
]


@pytest.mark.parametrize(
    "name,make,var,stateless_ok", CASES, ids=[c[0] for c in CASES]
)
def test_stateless_vs_circ(benchmark, name, make, var, stateless_ok):
    cfa = make()

    def run():
        return thread_modular(cfa, var), circ(cfa, race_on=var)

    stateless, stateful = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stateful.safe, "CIRC must prove every row"
    if stateless_ok:
        assert isinstance(stateless, StatelessSafe)
    else:
        assert isinstance(stateless, StatelessInsufficient), (
            f"{name}: the stateless model should fail on this idiom"
        )
    _RESULTS[name] = (type(stateless).__name__, "SAFE")
    benchmark.extra_info["stateless"] = type(stateless).__name__
    benchmark.extra_info["circ"] = "safe"


def test_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    if not _RESULTS:
        pytest.skip("no rows")
    print("\n=== stateless ([19]) vs context inference (CIRC) ===")
    for name, (stateless, stateful) in _RESULTS.items():
        print(f"{name:12s} stateless: {stateless:22s} CIRC: {stateful}")
