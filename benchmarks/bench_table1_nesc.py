"""Table 1: CIRC on the nesC application models.

Regenerates the paper's experimental table -- for each application/variable
pair, the number of discovered predicates, the size of the final context
ACFA, and the verification time -- on the synthetic re-creations of the
TinyOS synchronization idioms (see repro.nesc.programs for the
substitution rationale).  Absolute times are machine- and
substrate-dependent; the comparison targets are the verdicts and the
relative ordering (trivially-safe variables near-instant and
predicate-free; the multi-valued state machine and the combined
interrupt/state protocol the largest and slowest).
"""

import pytest

from repro.circ import circ
from repro.nesc import BENCHMARKS

_TABLE1 = [b for b in BENCHMARKS if b.paper_preds is not None]
_RESULTS: dict = {}

#: The slow rows are skipped unless --full-table1 is given.
_SLOW = {"sense/tosPort"}


@pytest.mark.parametrize("bench_case", _TABLE1, ids=lambda b: b.key)
def test_table1_row(benchmark, bench_case, full_table1, request):
    if bench_case.key in _SLOW and not full_table1:
        pytest.skip("slow row; pass --full-table1 to include")
    cfa = bench_case.app.cfa()
    var = bench_case.variable.replace("_buggy", "")

    result = benchmark.pedantic(
        lambda: circ(cfa, race_on=var, max_states=500_000),
        rounds=1,
        iterations=1,
    )
    assert result.safe == bench_case.expect_safe
    _RESULTS[bench_case.key] = (
        len(result.predicates),
        result.context.size if result.safe else 0,
        result.stats.elapsed_seconds,
    )
    benchmark.extra_info["predicates"] = len(result.predicates)
    benchmark.extra_info["acfa"] = result.context.size if result.safe else 0
    benchmark.extra_info["paper_preds"] = bench_case.paper_preds
    benchmark.extra_info["paper_acfa"] = bench_case.paper_acfa
    benchmark.extra_info["paper_time"] = bench_case.paper_time


def test_table1_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    """Print the regenerated table next to the paper's numbers."""
    if not _RESULTS:
        pytest.skip("no rows were run")
    print("\n=== Table 1 (reproduction vs paper) ===")
    header = (
        f"{'app/variable':34s} {'preds':>5s} {'ACFA':>5s} {'time':>8s}"
        f"   | {'paper':>5s} {'ACFA':>5s} {'time':>8s}"
    )
    print(header)
    for b in _TABLE1:
        if b.key not in _RESULTS:
            continue
        preds, acfa, secs = _RESULTS[b.key]
        print(
            f"{b.key:34s} {preds:5d} {acfa:5d} {secs:7.1f}s"
            f"   | {b.paper_preds:5d} {b.paper_acfa:5d} {b.paper_time:>8s}"
        )

    # Shape assertions (who is big/small), mirroring the paper's table.
    def row(key):
        return _RESULTS.get(key)

    trivial = [row("secureTosBase/gTxProto"), row("secureTosBase/gRxTailIndex")]
    heavy = [row("secureTosBase/gRxHeadIndex")]
    for t in trivial:
        if t is None:
            continue
        for h in heavy:
            if h is None:
                continue
            assert t[0] <= h[0], "trivial rows need fewer predicates"
            assert t[2] <= h[2], "trivial rows are faster"
    gtxproto = row("secureTosBase/gTxProto")
    if gtxproto:
        assert gtxproto[0] == 0, "atomic-only variable needs no predicates"
