"""Appendix A: counter-guided parameterized verification (Algorithm 6).

Regenerates the appendix's guarantees on finite-state protocols:
termination, soundness of Safe verdicts (cross-checked against bounded
explicit-state exploration), and genuineness of Unsafe witnesses (trace
length at most k).  Also records how the required counter bound grows on
the broken mutex as the witness needs more threads.
"""

from repro.exec import MultiProgram
from repro.lang import lower_source
from repro.parametric import (
    FiniteThread,
    ParametricSafe,
    ParametricUnsafe,
    mutual_exclusion_error,
    parameterized_verify,
)

MUTEX = """
global int lk;
thread main {
  while (1) {
    atomic { assume(lk == 0); lk = 1; }
    skip;
    lk = 0;
  }
}
"""

BROKEN = MUTEX.replace(
    "atomic { assume(lk == 0); lk = 1; }", "assume(lk == 0); lk = 1;"
)

TICKETISH = """
global int turn;
thread main {
  while (1) {
    atomic { assume(turn == 0); turn = 1; }
    atomic { assume(turn == 1); turn = 2; }
    turn = 0;
  }
}
"""


def _setup(source, domain):
    cfa = lower_source(source)
    thread = FiniteThread.from_cfa(cfa, domain)
    critical = {e.dst for e in cfa.edges if str(e.op) == "lk := 1"}
    return cfa, thread, critical


def test_safe_mutex_terminates_small_k(benchmark):
    cfa, thread, critical = _setup(MUTEX, {"lk": [0, 1]})
    result = benchmark(
        parameterized_verify, thread, mutual_exclusion_error(thread, critical)
    )
    assert isinstance(result, ParametricSafe)
    assert result.k <= 2
    benchmark.extra_info["k"] = result.k


def test_broken_mutex_witness_genuine(benchmark):
    cfa, thread, critical = _setup(BROKEN, {"lk": [0, 1]})
    result = benchmark(
        parameterized_verify, thread, mutual_exclusion_error(thread, critical)
    )
    assert isinstance(result, ParametricUnsafe)
    assert len(result.trace) - 1 <= result.k  # Lemma 2 genuineness
    benchmark.extra_info["k"] = result.k
    benchmark.extra_info["trace_len"] = len(result.trace) - 1

    # Cross-check against the concrete semantics with (trace-length) threads.
    mp = MultiProgram.symmetric(cfa, len(result.trace))
    # The concrete oracle also finds a mutual-exclusion violation: encode
    # as a race on a probe of the critical section... here simply confirm
    # two threads can reach the critical pc simultaneously by exploring.
    crit = critical

    def two_in_crit(state):
        pcs = [pc for pc, _ in state.threads]
        return sum(1 for pc in pcs if pc in crit) >= 2

    found = False
    frontier = [mp.initial()]
    seen = {mp.initial()}
    while frontier and not found:
        s = frontier.pop()
        if two_in_crit(s):
            found = True
            break
        for _, _, nxt in mp.successors(s):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert found, "the counter witness corresponds to a concrete violation"


def test_phase_protocol(benchmark):
    cfa = lower_source(TICKETISH)
    thread = FiniteThread.from_cfa(cfa, {"turn": [0, 1, 2]})
    release_pcs = {
        q
        for q in cfa.locations
        if cfa.may_write(q, "turn") and not cfa.is_atomic(q)
    }
    result = benchmark(
        parameterized_verify,
        thread,
        mutual_exclusion_error(thread, release_pcs),
    )
    assert isinstance(result, ParametricSafe)
