"""Shared fixtures for the benchmark harness."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-table1",
        action="store_true",
        default=False,
        help="run every Table 1 row (including the slow sense/tosPort)",
    )


@pytest.fixture(scope="session")
def full_table1(request):
    return request.config.getoption("--full-table1")
