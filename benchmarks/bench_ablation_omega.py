"""Section 5 claim: the infinity-check variant vs plain CIRC.

The paper: "We have found that in practice, infinity-CIRC is considerably
faster than CIRC."  Plain CIRC explores the abstract program with an
OMEGA-counted context from the start; infinity-CIRC runs reachability with
exactly k context threads and discharges the unbounded case with the
per-location closure check.  This bench times both variants on the
test-and-set example and two nesC models and checks that the verdicts
agree (both are sound; speed is workload-dependent in our substrate, so
the reproduction reports the ratio instead of asserting a direction).
"""

import pytest

from repro.circ import circ
from repro.lang import lower_source
from repro.nesc import benchmark as nesc_benchmark
from repro.nesc.programs import TEST_AND_SET_SOURCE

CASES = [
    ("fig1", lambda: (lower_source(TEST_AND_SET_SOURCE), "x")),
    (
        "gTxByteCnt",
        lambda: (nesc_benchmark("secureTosBase/gTxByteCnt").app.cfa(), "gTxByteCnt"),
    ),
    (
        "gRxHeadIndex",
        lambda: (nesc_benchmark("secureTosBase/gRxHeadIndex").app.cfa(), "gRxHeadIndex"),
    ),
]

_TIMES: dict = {}


@pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("variant", ["circ", "omega"])
def test_variant(benchmark, name, make, variant):
    cfa, var = make()
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on=var, variant=variant),
        rounds=1,
        iterations=1,
    )
    assert result.safe
    _TIMES[(name, variant)] = result.stats.elapsed_seconds
    benchmark.extra_info["abstract_states"] = result.stats.abstract_states
    benchmark.extra_info["k"] = result.stats.final_k


def test_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    if not _TIMES:
        pytest.skip("no variant runs")
    print("\n=== CIRC vs infinity-CIRC ===")
    for name, _ in CASES:
        t_circ = _TIMES.get((name, "circ"))
        t_omega = _TIMES.get((name, "omega"))
        if t_circ is None or t_omega is None:
            continue
        ratio = t_circ / t_omega if t_omega else float("inf")
        print(
            f"{name:15s} circ {t_circ:6.2f}s   omega {t_omega:6.2f}s   "
            f"speedup x{ratio:.2f}"
        )
