"""Figures 2-4: the per-iteration ARGs and minimized ACFAs of Section 2.

The paper walks CIRC through the test-and-set example:

* **Figure 2** -- iteration 1: the ARG G1 of the predicate-free sequential
  exploration (all labels true) and its minimization A1, which collapses
  the atomic block into a single abstract location;
* **Figure 3** -- iteration 3: after the first refinement (predicates about
  ``old``), the only path to the x-write is feasible per thread;
* **Figure 4** -- iteration 5: after the second refinement the ARG vertices
  carry the values of ``state``.

This bench re-runs CIRC with history capture and regenerates each
snapshot, checking the structural properties the paper highlights.
"""

from repro.acfa.collapse import collapse
from repro.circ import circ
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as T


def run_with_history():
    cfa = lower_source(TEST_AND_SET_SOURCE)
    return cfa, circ(cfa, race_on="x", keep_history=True)


def test_fig2_iteration1_arg_and_minimization(benchmark):
    """G1 has one location per CFA point labeled true; A1 merges the
    atomic block (the paper: locations I/II* /III with {state} and
    {x, state} havocs)."""
    cfa = lower_source(TEST_AND_SET_SOURCE)

    def first_reach():
        from repro.acfa.acfa import empty_acfa
        from repro.circ.reach import reach_and_build
        from repro.context.state import AbstractProgram
        from repro.predabs.abstractor import Abstractor
        from repro.predabs.region import PredicateSet

        prog = AbstractProgram(cfa, Abstractor(PredicateSet()), empty_acfa(), 1)
        return reach_and_build(prog, race_on="x")

    reach = benchmark(first_reach)
    g1 = reach.arg
    assert g1.size == len(cfa.locations)  # one location per CFA point
    assert all(label == () for label in g1.label.values())  # 'just true'

    a1, _ = collapse(g1, cfa.locals)
    print("\n--- Figure 2(a): ARG G1 ---")
    print(g1)
    print("--- Figure 2(b): minimized A1 ---")
    print(a1)
    # The atomic block collapses: A1 is strictly smaller than G1 and has a
    # single atomic location.
    assert a1.size < g1.size
    assert sum(1 for q in a1.locations if a1.is_atomic(q)) == 1
    # The x write survives minimization.
    assert any("x" in e.havoc for e in a1.edges)
    benchmark.extra_info["G1"] = g1.size
    benchmark.extra_info["A1"] = a1.size


def test_fig3_fig4_refinement_progression(benchmark):
    """The history shows the paper's progression: a refinement discovering
    the old-predicates, a later one discovering the state values, and a
    final converged ARG whose labels track state (Figure 4)."""
    cfa, result = benchmark.pedantic(run_with_history, rounds=1, iterations=1)
    assert result.safe

    refinements = [
        rec for rec in result.stats.history if rec.event == "refine"
    ]
    assert refinements, "at least one refinement must occur"
    mined = {
        T.pretty(p) for rec in refinements for p in rec.new_predicates
    }
    # Iteration 2's predicates (about old) and iteration 4's (about state).
    assert "old == state" in mined
    assert "old == 0" in mined
    assert "state == 0" in mined

    print("\n--- refinement progression (Figures 2-4) ---")
    for rec in result.stats.history:
        line = f"outer {rec.outer} inner {rec.inner}: {rec.event}"
        if rec.new_predicates:
            line += "  +" + ", ".join(
                T.pretty(p) for p in rec.new_predicates
            )
        if rec.arg is not None:
            line += f"  (ARG size {rec.arg.size})"
        print(line)

    converged = [r for r in result.stats.history if r.event == "converged"]
    assert converged
    g_final = converged[-1].arg
    # Figure 4: the final ARG's vertices contain the values of state.
    state_labeled = [
        q
        for q in g_final.locations
        if any("state" in T.free_vars(lit) for lit in g_final.label[q])
    ]
    assert state_labeled, "final ARG must track state values"
    print("--- Figure 4 analogue: final ARG G5 ---")
    print(g_final)
