"""Section 1/6 claim: CIRC proves absence of races where previous
checkers give false positives.

For every *safe* benchmark variable, runs the two baselines (Eraser-style
lockset discipline, nesC-compiler flow analysis) and CIRC, and checks the
paper's claim: the state-variable / split-phase / conditional-locking
idioms are flagged by at least one baseline yet proved race-free by CIRC;
the trivially protected variables are clean everywhere; and on the buggy
variants CIRC agrees with the ground truth instead of over-warning.

The second half measures the **analysis portfolio**: per-analysis
latency, win rates, cross-cancellation savings (cancel-on vs cancel-off
wall clock), and the headline claim that on statically-easy programs the
portfolio beats a CIRC-only run while never changing a verdict.

Standalone run (writes ``BENCH_portfolio.json``)::

    PYTHONPATH=src python benchmarks/bench_baseline_comparison.py

Under pytest the same portfolio measurements gate CI::

    PYTHONPATH=src python -m pytest benchmarks/bench_baseline_comparison.py -q
"""

import json
import time

import pytest

from repro.baselines import flow_analysis, lockset_analysis
from repro.circ import circ
from repro.circ.circ import CircBudgetExceeded, CircInconclusive
from repro.circ.result import CircSafe, CircUnsafe
from repro.lang import lower_source
from repro.nesc import BENCHMARKS
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.portfolio import WinRateBook, run_portfolio, shape_class

_SLOW = {"sense/tosPort"}


def test_figure1_false_positive_matrix(benchmark):
    """The motivating example: lockset warns, CIRC proves."""
    cfa = lower_source(TEST_AND_SET_SOURCE)

    def run():
        return lockset_analysis(cfa), circ(cfa, race_on="x")

    lockset, verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lockset.warns_on("x"), "lockset must false-positive (paper claim)"
    assert verdict.safe, "CIRC must prove the idiom safe"


@pytest.mark.parametrize(
    "bench_case",
    [b for b in BENCHMARKS if b.expect_safe],
    ids=lambda b: b.key,
)
def test_false_positive_comparison(benchmark, bench_case, full_table1):
    if bench_case.key in _SLOW and not full_table1:
        pytest.skip("slow row; pass --full-table1 to include")
    var = bench_case.variable.replace("_buggy", "")
    cfa = bench_case.app.cfa()

    flow = flow_analysis(bench_case.app)
    lockset = lockset_analysis(cfa)
    baseline_warns = flow.warns_on(var) or lockset.warns_on(var)

    result = benchmark.pedantic(
        lambda: circ(cfa, race_on=var, max_states=500_000),
        rounds=1,
        iterations=1,
    )
    assert result.safe, "ground truth: these models are race-free"
    benchmark.extra_info["flow_warns"] = flow.warns_on(var)
    benchmark.extra_info["lockset_warns"] = lockset.warns_on(var)
    benchmark.extra_info["circ"] = "safe"

    if bench_case.paper_preds not in (0, None):
        # Non-trivial idioms: the paper's false-positive claim.
        assert baseline_warns, (
            f"{bench_case.key}: baselines should flag this idiom "
            "(it is why the variable was annotated norace)"
        )


@pytest.mark.parametrize(
    "bench_case",
    [b for b in BENCHMARKS if not b.expect_safe],
    ids=lambda b: b.key,
)
def test_true_positive_agreement(benchmark, bench_case):
    """On genuinely racy variants everyone warns, but only CIRC produces a
    concrete interleaved witness."""
    var = bench_case.variable.replace("_buggy", "")
    cfa = bench_case.app.cfa()
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on=var, max_states=500_000),
        rounds=1,
        iterations=1,
    )
    assert not result.safe
    assert result.steps, "witness trace expected"
    assert flow_analysis(bench_case.app).warns_on(var)


# -- portfolio measurements ----------------------------------------------------

#: Portfolio workload.  ``easy`` marks the statically-easy subset: a
#: phase-1 kill rule or the interval domain decides these without ever
#: paying for context inference, which is where cross-cancellation must
#: show a wall-clock win.  Figure 1 is the hard row CIRC alone decides.
_PORTFOLIO_WORKLOAD = (
    (
        "locked-counter",
        "global int m, x; "
        "thread t { while (1) { lock(m); x = x + 1; unlock(m); } }",
        "x",
        True,
    ),
    (
        "atomic-toggle",
        "global int x; thread t0 { while (*) { atomic { x = 1 - x; } } }",
        "x",
        True,
    ),
    (
        "bare-racy-counter",
        "global int x; thread t { while (1) { x = x + 1; } }",
        "x",
        True,
    ),
    (
        "value-guarded-write",
        """
        global int x;
        thread t {
          local int a;
          while (1) { a = 0; if (a == 1) { x = x + 1; } }
        }
        """,
        "x",
        True,
    ),
    ("fig1-test-and-set", TEST_AND_SET_SOURCE, "x", False),
)

_PORTFOLIO_BUDGET = dict(max_outer=40, max_inner=40)


def _circ_only(cfa, var):
    try:
        return circ(cfa, race_on=var, **_PORTFOLIO_BUDGET)
    except (CircBudgetExceeded, CircInconclusive) as exc:
        return exc.result


def _verdict_of(result):
    if isinstance(result, CircSafe):
        return "safe"
    if isinstance(result, CircUnsafe):
        return "race"
    return "unknown"


def run_portfolio_bench(repeats: int = 2) -> dict:
    """Measure the portfolio against CIRC-only over the workload.

    Every item runs three ways -- CIRC alone, portfolio with
    cross-cancellation, portfolio with cancellation disabled -- and the
    verdicts of all three must agree wherever both sides are confident
    (the reconciliation soundness claim, measured rather than assumed).
    """
    items = {}
    wins: dict[str, dict[str, int]] = {}
    cancel_on_total = cancel_off_total = learned_total = 0.0
    easy_portfolio_ms = easy_circ_ms = 0.0

    # Warm a win-rate book over the whole workload first: the learned
    # pass below measures the deployed configuration, where the book has
    # already seen this workload shape and schedules the historical
    # winner first (e.g. CIRC ahead of the racer's bounded search on the
    # test-and-set shape).
    book = WinRateBook()
    for name, source, var, easy in _PORTFOLIO_WORKLOAD:
        run_portfolio(
            lower_source(source), var, winrates=book, **_PORTFOLIO_BUDGET
        )

    for name, source, var, easy in _PORTFOLIO_WORKLOAD:
        cfa = lower_source(source)

        circ_ms = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            circ_result = _circ_only(cfa, var)
            circ_ms = min(circ_ms, (time.perf_counter() - t0) * 1000.0)

        on_ms = off_ms = learned_ms = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            report = run_portfolio(cfa, var, **_PORTFOLIO_BUDGET)
            on_ms = min(on_ms, (time.perf_counter() - t0) * 1000.0)
            t0 = time.perf_counter()
            report_off = run_portfolio(
                cfa, var, cancel=False, **_PORTFOLIO_BUDGET
            )
            off_ms = min(off_ms, (time.perf_counter() - t0) * 1000.0)
            t0 = time.perf_counter()
            report_learned = run_portfolio(
                cfa, var, winrates=book, **_PORTFOLIO_BUDGET
            )
            learned_ms = min(
                learned_ms, (time.perf_counter() - t0) * 1000.0
            )

        # Verdict equivalence: the acceptance criterion of the portfolio.
        circ_verdict = _verdict_of(circ_result)
        for which, got in (
            ("cancel-on", report),
            ("cancel-off", report_off),
            ("learned", report_learned),
        ):
            if got.verdict != "unknown" and circ_verdict != "unknown":
                assert got.verdict == circ_verdict, (
                    f"{name} ({which}): portfolio={got.verdict} "
                    f"vs circ-only={circ_verdict}"
                )

        cancel_on_total += on_ms
        cancel_off_total += off_ms
        learned_total += learned_ms
        if easy:
            easy_portfolio_ms += on_ms
            easy_circ_ms += circ_ms

        for outcome in report_off.outcomes:
            tally = wins.setdefault(
                outcome.analysis, {"wins": 0, "runs": 0}
            )
            tally["runs"] += 1
            if outcome.analysis == report_off.winner:
                tally["wins"] += 1

        items[name] = {
            "verdict": report.verdict,
            "winner": report.winner,
            "shape": shape_class(cfa, var),
            "statically_easy": easy,
            "portfolio_ms": round(on_ms, 3),
            "portfolio_no_cancel_ms": round(off_ms, 3),
            "portfolio_learned_ms": round(learned_ms, 3),
            "learned_winner": report_learned.winner,
            "circ_only_ms": round(circ_ms, 3),
            "cancelled": sorted(report.cancelled),
            "per_analysis_ms": {
                o.analysis: round(o.time_ms, 3)
                for o in report_off.outcomes
            },
        }

    return {
        "items": items,
        "win_rates": {
            a: {
                **t,
                "rate": round(t["wins"] / t["runs"], 3) if t["runs"] else 0.0,
            }
            for a, t in sorted(wins.items())
        },
        "cancellation": {
            "cancel_on_total_ms": round(cancel_on_total, 3),
            "cancel_off_total_ms": round(cancel_off_total, 3),
            # The deployed configuration: learned scheduling order plus
            # cross-cancellation, against running every analysis to
            # completion in the default order.
            "learned_total_ms": round(learned_total, 3),
            "savings_pct": round(
                100.0 * (1.0 - learned_total / max(cancel_off_total, 1e-9)),
                1,
            ),
        },
        "easy_subset": {
            "portfolio_ms": round(easy_portfolio_ms, 3),
            "circ_only_ms": round(easy_circ_ms, 3),
            "speedup": round(
                easy_circ_ms / max(easy_portfolio_ms, 1e-9), 3
            ),
        },
    }


def test_portfolio_verdict_equivalence_and_easy_subset_win():
    """CI gate: run_portfolio_bench's internal asserts check verdict
    equivalence; on top of that the statically-easy subset must show a
    wall-clock win and cancellation must not cost time overall."""
    data = run_portfolio_bench(repeats=1)
    assert data["easy_subset"]["speedup"] > 1.0, data["easy_subset"]
    # Figure 1 is decided by CIRC, the easy rows by the baselines.
    assert data["items"]["fig1-test-and-set"]["winner"] == "circ"
    assert data["items"]["fig1-test-and-set"]["verdict"] == "safe"
    assert data["items"]["bare-racy-counter"]["verdict"] == "race"
    for name, row in data["items"].items():
        if row["statically_easy"]:
            assert row["winner"] in ("racer", "absint"), (name, row)
    # The learned schedule plus cancellation beats running everything.
    c = data["cancellation"]
    assert c["learned_total_ms"] < c["cancel_off_total_ms"], c


# -- standalone entry point ----------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="portfolio vs CIRC-only benchmark"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_portfolio.json")
    args = parser.parse_args(argv)

    data = run_portfolio_bench(repeats=args.repeats)

    for name, row in data["items"].items():
        print(
            f"{name:24s} {row['verdict']:7s} won by {row['winner']:6s} "
            f"portfolio {row['portfolio_ms']:8.1f}ms  "
            f"learned {row['portfolio_learned_ms']:8.1f}ms  "
            f"circ-only {row['circ_only_ms']:8.1f}ms"
        )
    c = data["cancellation"]
    print(
        f"cross-cancellation: learned order {c['learned_total_ms']:.1f}ms "
        f"vs {c['cancel_off_total_ms']:.1f}ms uncancelled "
        f"({c['savings_pct']:.0f}% saved)"
    )
    e = data["easy_subset"]
    print(
        f"statically-easy subset: {e['portfolio_ms']:.1f}ms vs "
        f"{e['circ_only_ms']:.1f}ms circ-only ({e['speedup']:.1f}x)"
    )

    payload = {"benchmark": "portfolio", **data}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if e["speedup"] <= 1.0:
        print("FAIL: no wall-clock win on the statically-easy subset")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
