"""Section 1/6 claim: CIRC proves absence of races where previous
checkers give false positives.

For every *safe* benchmark variable, runs the two baselines (Eraser-style
lockset discipline, nesC-compiler flow analysis) and CIRC, and checks the
paper's claim: the state-variable / split-phase / conditional-locking
idioms are flagged by at least one baseline yet proved race-free by CIRC;
the trivially protected variables are clean everywhere; and on the buggy
variants CIRC agrees with the ground truth instead of over-warning.
"""

import pytest

from repro.baselines import flow_analysis, lockset_analysis
from repro.circ import circ
from repro.lang import lower_source
from repro.nesc import BENCHMARKS
from repro.nesc.programs import TEST_AND_SET_SOURCE

_SLOW = {"sense/tosPort"}


def test_figure1_false_positive_matrix(benchmark):
    """The motivating example: lockset warns, CIRC proves."""
    cfa = lower_source(TEST_AND_SET_SOURCE)

    def run():
        return lockset_analysis(cfa), circ(cfa, race_on="x")

    lockset, verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lockset.warns_on("x"), "lockset must false-positive (paper claim)"
    assert verdict.safe, "CIRC must prove the idiom safe"


@pytest.mark.parametrize(
    "bench_case",
    [b for b in BENCHMARKS if b.expect_safe],
    ids=lambda b: b.key,
)
def test_false_positive_comparison(benchmark, bench_case, full_table1):
    if bench_case.key in _SLOW and not full_table1:
        pytest.skip("slow row; pass --full-table1 to include")
    var = bench_case.variable.replace("_buggy", "")
    cfa = bench_case.app.cfa()

    flow = flow_analysis(bench_case.app)
    lockset = lockset_analysis(cfa)
    baseline_warns = flow.warns_on(var) or lockset.warns_on(var)

    result = benchmark.pedantic(
        lambda: circ(cfa, race_on=var, max_states=500_000),
        rounds=1,
        iterations=1,
    )
    assert result.safe, "ground truth: these models are race-free"
    benchmark.extra_info["flow_warns"] = flow.warns_on(var)
    benchmark.extra_info["lockset_warns"] = lockset.warns_on(var)
    benchmark.extra_info["circ"] = "safe"

    if bench_case.paper_preds not in (0, None):
        # Non-trivial idioms: the paper's false-positive claim.
        assert baseline_warns, (
            f"{bench_case.key}: baselines should flag this idiom "
            "(it is why the variable was annotated norace)"
        )


@pytest.mark.parametrize(
    "bench_case",
    [b for b in BENCHMARKS if not b.expect_safe],
    ids=lambda b: b.key,
)
def test_true_positive_agreement(benchmark, bench_case):
    """On genuinely racy variants everyone warns, but only CIRC produces a
    concrete interleaved witness."""
    var = bench_case.variable.replace("_buggy", "")
    cfa = bench_case.app.cfa()
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on=var, max_states=500_000),
        rounds=1,
        iterations=1,
    )
    assert not result.safe
    assert result.steps, "witness trace expected"
    assert flow_analysis(bench_case.app).warns_on(var)
