"""Incremental CIRC (persistent ArgStore) vs. from-scratch exploration.

The workload is the Fig 2-4 test-and-set query plus a refinement-heavy
slice of the fuzzer corpus (seeds picked for high outer/inner iteration
counts, i.e. many predicate-refinement restarts).  Two modes run the
whole workload twice each:

* **scratch** -- ``incremental=False``: every ``circ()`` call explores
  from nothing.  The second pass models re-verification after an edit
  elsewhere in a batch: only the global SMT cache is warm;
* **incremental** -- ``incremental=True`` with one persistent
  :class:`~repro.reach.ArgStore` per item shared across both passes.
  Pass one pays the same exploration cost and fills the store's post,
  omega and result memos; pass two is the re-verification the store
  exists for, answering from retained subtrees.

SMT acceleration state (the shared query cache and the incremental
solver session) is reset before each mode so neither inherits the
other's warmth -- the measured delta is the ArgStore's alone.

Every mode must produce identical verdicts on every item: the store is
a pure accelerator (the differential fuzzer referees the same claim at
scale).  The CI gate is ``speedup_reverify``: the warm incremental pass
may never be slower than the scratch re-verification pass.

Standalone run (writes ``BENCH_incremental.json``)::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]

Under pytest the same measurements run on the quick workload::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py -q
"""

import json
import time

from repro.circ.circ import CircBudgetExceeded, circ
from repro.fuzz.gen import GenConfig, generate
from repro.lang import lower_source
from repro.lang.lower import lower_thread
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.reach import ArgStore
from repro.smt.qcache import SAT_CACHE
from repro.smt.session import reset_default_session

#: Fuzzer seeds whose programs need several refinement restarts (3 outer /
#: 6-7 inner iterations each) -- the regime subtree reuse targets.
_REFINEMENT_HEAVY = (40, 32, 43, 45, 13, 34)

_BUDGET = dict(max_outer=6, max_inner=40, timeout_s=60.0)


def workload_items(quick: bool = False) -> list[tuple[str, object, str]]:
    """(name, cfa, race variable) triples run by every mode."""
    items = [("fig2to4/x", lower_source(TEST_AND_SET_SOURCE), "x")]
    seeds = _REFINEMENT_HEAVY[:2] if quick else _REFINEMENT_HEAVY
    for seed in seeds:
        gp = generate(seed, GenConfig(pointers=False))
        items.append(
            (f"fuzz/{seed}", lower_thread(gp.program, gp.thread), gp.race_var)
        )
    return items


def run_pass(items, incremental: bool, stores=None) -> dict[str, str]:
    """One pass over the workload; returns verdict kind per item."""
    verdicts = {}
    for i, (name, cfa, var) in enumerate(items):
        kwargs = dict(_BUDGET, incremental=incremental)
        if stores is not None:
            kwargs["store"] = stores[i]
        try:
            result = circ(cfa, race_on=var, **kwargs)
        except CircBudgetExceeded as exc:
            result = exc.result
        verdicts[name] = type(result).__name__
    return verdicts


def _reset_acceleration() -> None:
    SAT_CACHE.clear()
    reset_default_session()


def run_modes(items, repeats: int = 2) -> dict:
    """scratch / incremental two-pass timings (best of ``repeats``)."""
    scratch_cold = scratch_reverify = float("inf")
    for _ in range(repeats):
        _reset_acceleration()
        t0 = time.perf_counter()
        verdicts_scratch = run_pass(items, incremental=False)
        scratch_cold = min(scratch_cold, time.perf_counter() - t0)
        t0 = time.perf_counter()
        verdicts_scratch2 = run_pass(items, incremental=False)
        scratch_reverify = min(scratch_reverify, time.perf_counter() - t0)

    incr_cold = incr_warm = float("inf")
    reuse_totals: dict[str, int] = {}
    for _ in range(repeats):
        _reset_acceleration()
        stores = [ArgStore() for _ in items]
        t0 = time.perf_counter()
        verdicts_cold = run_pass(items, incremental=True, stores=stores)
        incr_cold = min(incr_cold, time.perf_counter() - t0)
        t0 = time.perf_counter()
        verdicts_warm = run_pass(items, incremental=True, stores=stores)
        incr_warm = min(incr_warm, time.perf_counter() - t0)
        reuse_totals = {}
        for s in stores:
            for key, value in s.reuse_stats().items():
                reuse_totals[key] = reuse_totals.get(key, 0) + value

    assert (
        verdicts_scratch
        == verdicts_scratch2
        == verdicts_cold
        == verdicts_warm
    ), (
        "incremental exploration changed a verdict: "
        f"{verdicts_scratch} / {verdicts_cold} / {verdicts_warm}"
    )
    return {
        "timings_s": {
            "scratch_cold": round(scratch_cold, 4),
            "scratch_reverify": round(scratch_reverify, 4),
            "incremental_cold": round(incr_cold, 4),
            "incremental_warm": round(incr_warm, 4),
        },
        "speedup_reverify": round(
            scratch_reverify / max(incr_warm, 1e-9), 3
        ),
        "speedup_two_pass": round(
            (scratch_cold + scratch_reverify)
            / max(incr_cold + incr_warm, 1e-9),
            3,
        ),
        "verdicts": verdicts_warm,
        "reuse": {k: v for k, v in sorted(reuse_totals.items())},
    }


# -- pytest entry point (quick workload) --------------------------------------


def test_incremental_never_slower_and_verdicts_stable():
    items = workload_items(quick=True)
    data = run_modes(items)
    assert data["verdicts"]["fig2to4/x"] == "CircSafe"
    # CI gate: the warm incremental pass beats scratch re-verification.
    assert data["speedup_reverify"] >= 1.0, data["timings_s"]
    # The warm pass is answered from the store, not re-explored.
    assert data["reuse"]["result_hits"] > 0, data["reuse"]


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fig 2-4 + two fuzz items (CI smoke); default runs six",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    items = workload_items(quick=args.quick)
    print(f"{len(items)} CIRC queries per pass, {args.repeats} repeat(s)")
    data = run_modes(items, repeats=args.repeats)

    t = data["timings_s"]
    print(
        f"scratch   cold {t['scratch_cold']:8.3f}s   "
        f"reverify {t['scratch_reverify']:8.3f}s"
    )
    print(
        f"increment cold {t['incremental_cold']:8.3f}s   "
        f"warm     {t['incremental_warm']:8.3f}s"
    )
    print(
        f"re-verification speedup: {data['speedup_reverify']:.2f}x, "
        f"two-pass total: {data['speedup_two_pass']:.2f}x"
    )
    r = data["reuse"]
    print(
        f"reuse: {r.get('result_hits', 0)} whole-run hits, "
        f"{r.get('main_post_hits', 0)} main-post hits, "
        f"{r.get('ctx_post_hits', 0)} context-post hits, "
        f"{r.get('entries_kept', 0)} entries kept / "
        f"{r.get('entries_invalidated', 0)} invalidated on refinement"
    )

    payload = {"benchmark": "incremental", "quick": args.quick, **data}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    if data["speedup_reverify"] < 1.5:
        print("FAIL: incremental re-verification under the 1.5x bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
