"""Figure 5: abstract trace, concrete interleaving, and trace formula.

The paper's Figure 5 shows the three columns of iteration 4's
counterexample analysis for the test-and-set program: the abstract trace
(one context thread's moves then the main thread's), its concretization as
an interleaved sequence of CFA operations, and the SSA trace formula whose
unsatisfiability yields the predicates state = 0 and state = 1.

This bench rebuilds exactly that interleaving -- both threads take the
feasible path through the atomic block up to the x write -- shows the TF,
proves it unsatisfiable, and mines the paper's predicates from it.
"""

from repro.cfa.cfa import AssumeOp
from repro.circ.refine import build_trace_formula, _mine_wp_atoms, _useful_predicates
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as T
from repro.smt.interpolate import sequence_interpolants
from repro.smt.solver import is_sat


def acquisition_path(cfa):
    """1 -> 2 -> 3 -> 4 -> 5 -> 6 in the paper's numbering: loop entry,
    old := state, [state == 0], state := 1, [old == 0]."""
    edges = []
    q = cfa.q0
    (entry,) = cfa.out(q)
    edges.append(entry)
    q = entry.dst
    (assign,) = cfa.out(q)
    edges.append(assign)
    q = assign.dst
    take = next(
        e
        for e in cfa.out(q)
        if isinstance(e.op, AssumeOp) and e.op.pred == T.eq(T.var("state"), 0)
    )
    edges.append(take)
    q = take.dst
    (setst,) = cfa.out(q)
    edges.append(setst)
    q = setst.dst
    old0 = next(
        e
        for e in cfa.out(q)
        if isinstance(e.op, AssumeOp) and e.op.pred == T.eq(T.var("old"), 0)
    )
    edges.append(old0)
    return edges


def build_figure5(cfa):
    path = acquisition_path(cfa)
    steps = [(1, e) for e in path] + [(0, e) for e in path]
    return build_trace_formula(cfa, steps, n_threads=2)


def test_fig5_trace_formula(benchmark):
    cfa = lower_source(TEST_AND_SET_SOURCE)
    ct = benchmark(build_figure5, cfa)

    print("\n--- Figure 5: abstract trace / interleaving / trace formula ---")
    n_init = len(ct.groups[0])
    for (tid, edge), clause in zip(ct.steps, ct.clauses[n_init:]):
        print(f"  T{tid}: {str(edge.op):22s} | {T.pretty(clause)}")

    # The composed trace is infeasible: the first thread set state to 1, so
    # the second cannot take [state == 0].
    assert not is_sat(T.and_(*ct.clauses))

    # Per-thread prefixes alone are feasible.
    t1_only = [c for (tid, _), c in zip(ct.steps, ct.clauses[n_init:]) if tid == 1]
    assert is_sat(T.and_(*(ct.clauses[:n_init] + t1_only)))

    # The paper's refinement mines state = 0 and state = 1 from this TF.
    mined = _useful_predicates(_mine_wp_atoms(ct), existing=[])
    rendered = {T.pretty(p) for p in mined}
    assert "state == 0" in rendered
    print("mined predicates:", sorted(rendered))

    # The interpolation strategy also refutes the trace; the cuts around
    # the second thread's [state == 0] carry the state-value facts.
    itps = sequence_interpolants(ct.groups)
    assert itps is not None
    interesting = [T.pretty(i) for i in itps if i != T.TRUE]
    assert interesting, "late cuts must constrain state"
    print("non-trivial interpolants:", interesting[:4])
