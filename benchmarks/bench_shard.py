"""Serial vs sharded engine on a fuzz-generated corpus.

Measures one serial run (``workers=1``) against one sharded run
(4 work-stealing worker processes over 8 digest buckets) on an enlarged
corpus of generated programs, then gates on two criteria:

* **verdict equivalence** -- always enforced: the sharded coordinator is
  a pure accelerator and every (model, variable) verdict must equal the
  serial run's (the merged canonical payloads must be byte-identical);
* **speedup** -- scaled to the machine, because sharding CPU-bound
  verification cannot beat serial on a single core: >= 2.5x with 4+
  CPUs (the CI gate), >= 1.2x with 2-3 CPUs, and no wall gate on one
  CPU (recorded honestly in the payload as ``wall_gate: "skipped"``).

Standalone run (writes ``BENCH_shard.json``)::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick] [--out F]

Under pytest a small corpus checks equivalence only (CI's benchmark
smoke runs with ``--benchmark-disable`` and must stay fast)::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -q
"""

import json
import os
import time

from repro.engine import BatchItem, run_batch
from repro.fuzz.gen import GenConfig, generate
from repro.races.report import rows_from_batch, rows_to_payload
from repro.shard.merge import merge_payloads, render_merged

#: Race candidate every generated program exercises (see repro.fuzz.gen).
RACE_VAR = "x"

SHARDS = 8
WORKERS = 4


def corpus_items(n: int, first_seed: int = 1000) -> list[BatchItem]:
    """``n`` generated programs as batch items (pointer-free: the digest
    machinery slices pointer programs conservatively, which makes rows
    expensive without adding sharding signal)."""
    cfg = GenConfig(pointers=False)
    items = []
    for seed in range(first_seed, first_seed + n):
        gp = generate(seed, cfg)
        items.append(
            BatchItem(
                model=f"fuzz{seed}",
                source=gp.source,
                thread="t0",
                variables=(RACE_VAR,),
            )
        )
    return items


def canonical(report) -> str:
    return render_merged(
        merge_payloads([rows_to_payload(rows_from_batch(report))])
    )


def run_pair(items, cache_root: str) -> dict:
    """One serial and one sharded run on fresh cache dirs."""
    t0 = time.perf_counter()
    serial = run_batch(
        items, cache_dir=os.path.join(cache_root, "serial"), workers=1
    )
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_batch(
        items,
        cache_dir=os.path.join(cache_root, "sharded"),
        shards=SHARDS,
        shard_workers=WORKERS,
    )
    sharded_s = time.perf_counter() - t0

    return {
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / max(sharded_s, 1e-9),
        "identical": canonical(serial) == canonical(sharded),
        "serial": serial,
        "sharded": sharded,
    }


def wall_gate(cpus: int) -> tuple[float | None, str]:
    """The machine-scaled speedup floor (None = no wall gate)."""
    if cpus >= 4:
        return 2.5, ">=2.5x on 4+ cpus"
    if cpus >= 2:
        return 1.2, ">=1.2x on 2-3 cpus"
    return None, "skipped (1 cpu: CPU-bound sharding cannot beat serial)"


# -- pytest entry point (equivalence only, small corpus) ----------------------


def test_sharded_verdicts_equal_serial(tmp_path):
    out = run_pair(corpus_items(6), str(tmp_path))
    assert out["identical"], "sharded run diverged from serial"


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke); default is the enlarged corpus",
    )
    parser.add_argument("--out", default="BENCH_shard.json")
    args = parser.parse_args(argv)

    n = 12 if args.quick else 48
    items = corpus_items(n)
    cpus = os.cpu_count() or 1
    print(
        f"{len(items)} generated programs; {cpus} cpu(s); "
        f"serial vs {WORKERS} workers over {SHARDS} shards ..."
    )

    with tempfile.TemporaryDirectory(prefix="bench-shard-") as root:
        out = run_pair(items, root)

    floor, gate_desc = wall_gate(cpus)
    print(
        f"serial  {out['serial_s']:7.2f}s\n"
        f"sharded {out['sharded_s']:7.2f}s  "
        f"(speedup {out['speedup']:.2f}x, gate: {gate_desc})"
    )
    assert out["identical"], "sharded verdicts diverged from serial"
    if floor is not None:
        assert out["speedup"] >= floor, (
            f"speedup {out['speedup']:.2f}x below the {floor}x floor "
            f"for {cpus} cpus"
        )

    serial = out["serial"]
    payload = {
        "benchmark": "shard",
        "corpus": n,
        "cpus": cpus,
        "shards": SHARDS,
        "workers": WORKERS,
        "serial_wall_s": round(out["serial_s"], 3),
        "sharded_wall_s": round(out["sharded_s"], 3),
        "speedup": round(out["speedup"], 3),
        "wall_gate": gate_desc if floor is None else f"{floor}x (passed)",
        "verdicts_identical": True,
        "verdicts": {
            f"{r.model}/{r.variable}": r.verdict for r in serial.rows
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
