"""The general algorithm: asymmetric thread sets (Section 2.3).

"In general, our algorithm requires that each of the threads be running
one of finitely many pieces of code."  This bench exercises circ_multi on
producer/consumer compositions: unboundedly many copies of each template,
one inferred context ACFA per template, and the circular assume-guarantee
argument closed over their disjoint union.
"""

import pytest

from repro.circ import MultiSafe, MultiUnsafe, circ_multi
from repro.lang import lower_program

HANDOFF = """
global int buf, full;
thread producer {
  while (1) {
    atomic { assume(full == 0); full = 1; }
    buf = buf + 1;
    full = 2;
  }
}
thread consumer {
  while (1) {
    atomic { assume(full == 2); full = 3; }
    buf = 0;
    full = 0;
  }
}
"""

READER_WRITER = """
global int data, lk;
thread writer {
  while (1) { lock(lk); data = data + 1; unlock(lk); }
}
thread reader {
  local int snap;
  while (1) { lock(lk); snap = data; unlock(lk); }
}
"""

CASES = [
    ("handoff/buf", HANDOFF, "buf", True),
    ("handoff/full", HANDOFF, "full", True),
    (
        "handoff-broken/buf",
        HANDOFF.replace("assume(full == 2)", "assume(full == 1)"),
        "buf",
        False,
    ),
    ("reader-writer/data", READER_WRITER, "data", True),
    (
        "reader-writer-nolock/data",
        READER_WRITER.replace("unlock(lk); ", "").replace("lock(lk); ", ""),
        "data",
        False,
    ),
]


@pytest.mark.parametrize(
    "name,src,var,expect_safe", CASES, ids=[c[0] for c in CASES]
)
def test_multi_template(benchmark, name, src, var, expect_safe):
    cfas = lower_program(src)
    result = benchmark.pedantic(
        lambda: circ_multi(cfas, race_on=var), rounds=1, iterations=1
    )
    assert result.safe == expect_safe
    if isinstance(result, MultiSafe):
        benchmark.extra_info["contexts"] = {
            n: c.size for n, c in result.contexts.items()
        }
    else:
        assert isinstance(result, MultiUnsafe)
        benchmark.extra_info["templates_in_witness"] = sorted(
            set(result.template_of.values())
        )
