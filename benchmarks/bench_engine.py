"""The verification engine on the Table 1 nesC models.

Three measurements over the same query set:

* **cold** -- fresh cache, one worker: every must-check row pays a full
  CIRC run, and the artifact cache is populated;
* **warm** -- same cache, second run: every row must answer from the
  content-addressed cache (hit rate >= 90%) in a fraction of the cold
  wall-clock;
* **parallel** -- fresh cache, one worker per CPU: the pool overlaps
  independent rows, so wall-clock drops below the cold serial run on
  multi-core machines (asserted only loosely: CI machines vary).

Every engine verdict is checked against a plain serial ``circ`` run of
the same query -- the cache and the pool are pure accelerators and must
never change an answer.

Standalone run (writes ``BENCH_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--full-table1]

Under pytest the same measurements run on the fast subset::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

import json
import os
import time

from repro.circ import circ
from repro.engine import BatchItem, run_batch
from repro.nesc import BENCHMARKS

#: The slow rows are skipped unless --full-table1 is given.
_SLOW = {"sense/tosPort"}


def table1_items(full: bool = False) -> list[BatchItem]:
    rows = [b for b in BENCHMARKS if full or b.key not in _SLOW]
    return [
        BatchItem(
            model=b.key,
            source=b.app.thread_source(),
            variables=(b.variable.replace("_buggy", ""),),
        )
        for b in rows
    ]


def serial_verdicts(items: list[BatchItem]) -> dict:
    """Ground truth: plain circ per query, no engine anywhere."""
    out = {}
    for item in items:
        for v in item.variables:
            from repro.lang.lower import lower_source

            result = circ(lower_source(item.source, item.thread), race_on=v)
            out[(item.model, v)] = "safe" if result.safe else "race"
    return out


def run_modes(items: list[BatchItem], cache_dir: str) -> dict:
    """Cold, warm, and parallel engine runs over one query set."""
    t0 = time.perf_counter()
    cold = run_batch(items, cache_dir=cache_dir, workers=1)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_batch(items, cache_dir=cache_dir, workers=1)
    warm_s = time.perf_counter() - t0

    par_dir = cache_dir + "-par"
    t0 = time.perf_counter()
    par = run_batch(
        items, cache_dir=par_dir, workers=os.cpu_count() or 2
    )
    par_s = time.perf_counter() - t0

    def rows(report):
        return {
            (r.model, r.variable): {
                "verdict": r.verdict,
                "source": r.source,
                "time_ms": round(r.time_ms, 3),
            }
            for r in report.rows
        }

    return {
        "cold": {
            "wall_s": round(cold_s, 3),
            "hit_rate": cold.hit_rate,
            "rows": rows(cold),
            "report": cold,
        },
        "warm": {
            "wall_s": round(warm_s, 3),
            "hit_rate": warm.hit_rate,
            "rows": rows(warm),
            "report": warm,
        },
        "parallel": {
            "wall_s": round(par_s, 3),
            "hit_rate": par.hit_rate,
            "rows": rows(par),
            "report": par,
        },
    }


def check_equivalence(modes: dict, truth: dict) -> None:
    """Engine runs must reproduce the serial circ verdicts exactly."""
    for mode, data in modes.items():
        got = {k: v["verdict"] for k, v in data["rows"].items()}
        assert got == truth, f"{mode} run diverged from serial circ: " + str(
            {k: (got[k], truth[k]) for k in truth if got[k] != truth[k]}
        )


# -- pytest entry points (fast subset) ----------------------------------------


def test_engine_matches_serial_and_caches(tmp_path, full_table1):
    items = table1_items(full=full_table1)
    truth = serial_verdicts(items)
    modes = run_modes(items, str(tmp_path / "cache"))
    check_equivalence(modes, truth)
    warm = modes["warm"]
    assert warm["hit_rate"] >= 0.9, warm["hit_rate"]
    assert warm["wall_s"] <= modes["cold"]["wall_s"]
    assert all(
        v["source"] in ("cache", "static") for v in warm["rows"].values()
    )


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full-table1", action="store_true")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    items = table1_items(full=args.full_table1)
    print(f"{len(items)} Table 1 queries; computing serial ground truth ...")
    t0 = time.perf_counter()
    truth = serial_verdicts(items)
    serial_s = time.perf_counter() - t0
    print(f"serial circ: {serial_s:.1f}s")

    with tempfile.TemporaryDirectory(prefix="bench-engine-") as cache_dir:
        modes = run_modes(items, os.path.join(cache_dir, "cache"))
    check_equivalence(modes, truth)

    for mode in ("cold", "warm", "parallel"):
        d = modes[mode]
        print(
            f"{mode:9s} wall {d['wall_s']:7.2f}s  "
            f"hit rate {d['hit_rate']:.0%}"
        )
    speedup = modes["cold"]["wall_s"] / max(modes["warm"]["wall_s"], 1e-9)
    print(f"warm speedup over cold: {speedup:.0f}x")

    payload = {
        "benchmark": "engine",
        "queries": len(items),
        "full_table1": args.full_table1,
        "serial_wall_s": round(serial_s, 3),
        "modes": {
            mode: {k: v for k, v in d.items() if k != "report"}
            for mode, d in modes.items()
        },
        "verdicts_match_serial": True,
    }
    # JSON keys must be strings.
    for d in payload["modes"].values():
        d["rows"] = {f"{m}/{v}": row for (m, v), row in d["rows"].items()}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
