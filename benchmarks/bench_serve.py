"""Warm daemon vs sequential CLI on the Figure 2-4 workload.

The measurement the serve subsystem exists for: N verification requests
answered by N sequential ``repro-race batch`` invocations (each a fresh
process paying interpreter start, imports, lowering, and cold in-memory
caches) versus the same N requests submitted to **one** long-lived
daemon whose ArgStore contexts, SMT query cache, and completed-job map
stay hot across requests.

The workload is the paper's Section 2 program (Figures 2-4 walk CIRC
through test-and-set) plus mini-C companions, with the second half of
the requests repeating the first half -- the repeat pattern a service
actually sees.  The daemon answers the repeated half from its hot
completed-job map without re-entering the engine, so the speedup there
is the headline number (asserted >= 5x standalone).

Both sides must return identical verdicts; the benchmark refuses to
write a report otherwise.  The daemon's dedup and eviction counters are
captured from its ``stats`` frame into the report (the daemon runs with
a deliberately small ``--memory-mb`` so context eviction actually
exercises under the workload).

Standalone run (writes ``BENCH_serve.json``)::

    PYTHONPATH=src python benchmarks/bench_serve.py

Under pytest a smaller workload checks verdict parity and that the warm
daemon beats the CLI at all (CI machines vary too much for 5x there)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.nesc.programs import TEST_AND_SET_SOURCE

SRC = str(Path(__file__).resolve().parent.parent / "src")

RACY = """global int y;
thread main {
  y = y + 1;
}
"""

BELT = """global int m, x;
thread t {
  while (1) {
    lock(m);
    atomic { x = x + 1; }
    unlock(m);
  }
}
"""


def unique_workload(n_variants: int = 2) -> list[dict]:
    """The distinct programs; requests = this list + a repeat of it."""
    items = [
        {"model": "fig2-4-tas", "source": TEST_AND_SET_SOURCE, "variable": "x"},
        {"model": "racy", "source": RACY, "variable": "y"},
        {"model": "belt", "source": BELT, "variable": "x"},
    ]
    # Renamed copies of the Figure 2-4 program: distinct slice digests,
    # same verification structure (they populate distinct hot contexts,
    # which is what pushes the daemon over its memory ceiling).
    for i in range(n_variants):
        items.append(
            {
                "model": f"fig2-4-v{i}",
                "source": TEST_AND_SET_SOURCE.replace("x", f"x{i}").replace(
                    "state", f"s{i}"
                ),
                "variable": f"x{i}",
            }
        )
    return items


def _write_files(items, directory: Path) -> None:
    for item in items:
        path = directory / f"{item['model']}.c"
        path.write_text(item["source"])
        item["file"] = str(path)


def run_cli_sequential(requests, cache_dir: str):
    """One ``repro-race batch`` subprocess per request; returns
    (per-request wall seconds, verdict map)."""
    env = dict(os.environ, PYTHONPATH=SRC)
    walls, verdicts = [], {}
    for item in requests:
        t0 = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "batch",
                item["file"],
                "--var",
                item["variable"],
                "--cache",
                cache_dir,
                "--json",
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        walls.append(time.perf_counter() - t0)
        assert proc.returncode in (0, 1), proc.stderr
        payload = json.loads(proc.stdout)
        for row in payload["rows"]:
            verdicts[(item["model"], row["variable"])] = row["verdict"]
    return walls, verdicts


def start_daemon(socket_path: str, cache_dir: str, memory_mb: float):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--cache",
            cache_dir,
            "--workers",
            "2",
            "--memory-mb",
            str(memory_mb),
        ],
        stderr=subprocess.PIPE,
        env=env,
    )
    deadline = time.time() + 30
    while not os.path.exists(socket_path):
        if proc.poll() is not None or time.time() > deadline:
            raise RuntimeError("daemon failed to start")
        time.sleep(0.05)
    return proc


def run_daemon_submissions(requests, socket_path: str):
    """One connection+submission per request (mirrors the CLI's cost
    model minus process startup); returns (walls, verdicts, stats)."""
    from repro.serve.client import ServeClient, submit_sync

    walls, verdicts = [], {}
    for item in requests:
        t0 = time.perf_counter()
        result = submit_sync(
            [
                {
                    "model": item["model"],
                    "source": item["source"],
                    "variables": [item["variable"]],
                }
            ],
            socket=socket_path,
        )
        walls.append(time.perf_counter() - t0)
        for row in result["rows"]:
            verdicts[(item["model"], row["variable"])] = row["verdict"]

    async def grab_stats():
        async with await ServeClient.connect(socket=socket_path) as c:
            return await c.stats()

    return walls, verdicts, asyncio.run(grab_stats())


def stop_daemon(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    return proc.wait(timeout=30)


def run_comparison(tmp: Path, n_variants: int = 2):
    unique = unique_workload(n_variants)
    _write_files(unique, tmp)
    requests = unique + unique  # second half repeats the first
    half = len(unique)

    cli_walls, cli_verdicts = run_cli_sequential(
        requests, str(tmp / "cli-cache")
    )
    daemon = start_daemon(
        str(tmp / "serve.sock"), str(tmp / "serve-cache"), memory_mb=1.0
    )
    try:
        srv_walls, srv_verdicts, stats = run_daemon_submissions(
            requests, str(tmp / "serve.sock")
        )
    finally:
        exit_code = stop_daemon(daemon)

    assert srv_verdicts == cli_verdicts, (
        f"daemon verdicts diverge from CLI: {srv_verdicts} != {cli_verdicts}"
    )
    assert exit_code == 0, f"daemon did not drain cleanly (exit {exit_code})"
    return {
        "requests": len(requests),
        "unique_programs": half,
        "cli_wall_s": round(sum(cli_walls), 3),
        "cli_repeated_wall_s": round(sum(cli_walls[half:]), 3),
        "daemon_wall_s": round(sum(srv_walls), 3),
        "daemon_repeated_wall_s": round(sum(srv_walls[half:]), 3),
        "speedup_total": round(sum(cli_walls) / max(sum(srv_walls), 1e-9), 2),
        "speedup_repeated": round(
            sum(cli_walls[half:]) / max(sum(srv_walls[half:]), 1e-9), 2
        ),
        "verdicts_match_cli": True,
        "daemon_exit_code": exit_code,
        "telemetry": {
            "jobs_run": stats["jobs_run"],
            "dedup_inflight": stats["dedup_inflight"],
            "dedup_completed": stats["dedup_completed"],
            "evictions": stats["evictions"],
            "hot_contexts": stats["hot"]["hot_contexts"],
            "qcache": stats["hot"]["qcache"],
        },
        "verdicts": {f"{m}/{v}": verdict for (m, v), verdict in sorted(srv_verdicts.items())},
    }


def test_daemon_parity_and_warm_speedup(tmp_path):
    data = run_comparison(tmp_path, n_variants=0)
    assert data["verdicts_match_cli"]
    assert data["daemon_exit_code"] == 0
    # The repeated half answers from the hot completed-job map; even on
    # a noisy CI box that beats per-request process startup.
    assert data["speedup_repeated"] > 1.0
    # Repeats never re-enter the engine.
    assert data["telemetry"]["dedup_completed"] >= 1


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--variants",
        type=int,
        default=2,
        metavar="N",
        help="renamed Figure 2-4 copies in the unique half (default: 2)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        data = run_comparison(Path(tmp), n_variants=args.variants)

    print(
        f"{data['requests']} requests over {data['unique_programs']} programs\n"
        f"cli sequential: {data['cli_wall_s']:7.2f}s "
        f"(repeated half {data['cli_repeated_wall_s']:.2f}s)\n"
        f"warm daemon:    {data['daemon_wall_s']:7.2f}s "
        f"(repeated half {data['daemon_repeated_wall_s']:.2f}s)\n"
        f"speedup: {data['speedup_total']:.1f}x total, "
        f"{data['speedup_repeated']:.1f}x on the repeated half\n"
        f"telemetry: {json.dumps(data['telemetry'])}"
    )
    assert data["speedup_repeated"] >= 5.0, (
        f"warm daemon must beat sequential CLI >=5x on repeats "
        f"(got {data['speedup_repeated']:.1f}x)"
    )
    payload = {"benchmark": "serve", **data}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
