"""The incremental SMT acceleration layer on the Fig 2-4 iteration workload.

Three measurements over the same CIRC runs (test-and-set with history
capture, plus the fast Table 1 rows unless ``--quick``):

* **nocache** -- the shared query cache disabled and the incremental
  session dropped before the run: every query pays encoding and theory
  work (the pre-acceleration baseline);
* **cold** -- caches cleared, acceleration on: first run populates the
  canonical-key cache and the live session;
* **warm** -- the same run again: queries answer from the cache and the
  session's retained encodings/lemmas.

Every mode must produce identical verdicts -- the cache and the session
are pure accelerators.  The warm/cold ratio is the CI gate: a cached
re-run may never be slower than the run that filled the cache.

Standalone run (writes ``BENCH_smt.json``)::

    PYTHONPATH=src python benchmarks/bench_smt.py [--quick]

Under pytest the same measurements run on the quick workload::

    PYTHONPATH=src python -m pytest benchmarks/bench_smt.py -q
"""

import json
import time

from repro.circ import circ
from repro.lang import lower_source
from repro.nesc import BENCHMARKS
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt.profile import PROFILER
from repro.smt.qcache import SAT_CACHE
from repro.smt.session import default_session, reset_default_session

#: Skipped outside --full runs (dominates wall-clock, adds no coverage).
_SLOW = {"sense/tosPort"}


def workload_items(quick: bool = False) -> list[tuple[str, object, str]]:
    """(name, cfa, race variable) triples run by every mode."""
    items = [
        ("fig2to4/x", lower_source(TEST_AND_SET_SOURCE), "x"),
    ]
    if not quick:
        for b in BENCHMARKS:
            if b.key in _SLOW:
                continue
            items.append(
                (b.key, b.app.cfa(), b.variable.replace("_buggy", ""))
            )
    return items


def run_workload(items) -> dict[str, bool]:
    """One pass over every query; returns verdict-safe per item."""
    verdicts = {}
    for name, cfa, var in items:
        keep = name.startswith("fig2to4")
        result = circ(cfa, race_on=var, keep_history=keep)
        verdicts[name] = bool(result.safe)
    return verdicts


def _reset_acceleration() -> None:
    SAT_CACHE.clear()
    reset_default_session()


def run_modes(items, repeats: int = 3) -> dict:
    """nocache / cold / warm timings (best of ``repeats``) + stats."""
    # nocache: acceleration off entirely.
    nocache_s = float("inf")
    SAT_CACHE.enabled = False
    try:
        for _ in range(repeats):
            _reset_acceleration()
            t0 = time.perf_counter()
            verdicts_nocache = run_workload(items)
            nocache_s = min(nocache_s, time.perf_counter() - t0)
    finally:
        SAT_CACHE.enabled = True

    # cold: acceleration on, but every repeat starts from empty state.
    cold_s = float("inf")
    for _ in range(repeats):
        _reset_acceleration()
        t0 = time.perf_counter()
        verdicts_cold = run_workload(items)
        cold_s = min(cold_s, time.perf_counter() - t0)

    # warm: re-run on the state the last cold repeat left behind.
    PROFILER.reset()
    warm_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        verdicts_warm = run_workload(items)
        warm_s = min(warm_s, time.perf_counter() - t0)

    assert verdicts_nocache == verdicts_cold == verdicts_warm, (
        "acceleration changed a verdict: "
        f"{verdicts_nocache} / {verdicts_cold} / {verdicts_warm}"
    )
    return {
        "timings_s": {
            "nocache": round(nocache_s, 4),
            "cold": round(cold_s, 4),
            "warm": round(warm_s, 4),
        },
        "speedup_warm_vs_cold": round(cold_s / max(warm_s, 1e-9), 3),
        "speedup_warm_vs_nocache": round(
            nocache_s / max(warm_s, 1e-9), 3
        ),
        "verdicts": verdicts_warm,
        "cache_stats": SAT_CACHE.stats(),
        "session_stats": default_session().stats.to_obj(),
        "profile_warm": PROFILER.snapshot(),
    }


# -- pytest entry point (quick workload) --------------------------------------


def test_warm_runs_never_slower_and_verdicts_stable():
    items = workload_items(quick=True)
    data = run_modes(items)
    assert data["verdicts"]["fig2to4/x"] is True  # test-and-set is safe
    assert data["speedup_warm_vs_cold"] >= 1.0, data["timings_s"]
    # Warm runs answer overwhelmingly from the cache.
    stats = data["cache_stats"]
    assert stats["hits"] > stats["misses"], stats


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fig 2-4 workload only (CI smoke); default adds Table 1",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_smt.json")
    args = parser.parse_args(argv)

    items = workload_items(quick=args.quick)
    print(f"{len(items)} CIRC queries per mode, {args.repeats} repeat(s)")
    data = run_modes(items, repeats=args.repeats)

    t = data["timings_s"]
    print(
        f"nocache {t['nocache']:8.3f}s   cold {t['cold']:8.3f}s   "
        f"warm {t['warm']:8.3f}s"
    )
    print(
        f"warm speedup: {data['speedup_warm_vs_cold']:.2f}x over cold, "
        f"{data['speedup_warm_vs_nocache']:.2f}x over no acceleration"
    )
    cs = data["cache_stats"]
    print(
        f"cache: {cs['hits']} hits / {cs['misses']} misses, "
        f"size {cs['size']}, {cs['evictions']} evictions"
    )

    payload = {"benchmark": "smt", "quick": args.quick, **data}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    if data["speedup_warm_vs_cold"] < 1.0:
        print("FAIL: cached re-run slower than the cold run")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
