"""The incremental SMT acceleration layer on the Fig 2-4 iteration workload.

Three measurements over the same CIRC runs (test-and-set with history
capture, plus the fast Table 1 rows unless ``--quick``):

* **nocache** -- the shared query cache disabled and the incremental
  session dropped before the run: every query pays encoding and theory
  work (the pre-acceleration baseline);
* **cold** -- caches cleared, acceleration on: first run populates the
  canonical-key cache and the live session;
* **warm** -- the same run again: queries answer from the cache and the
  session's retained encodings/lemmas.

Every mode must produce identical verdicts -- the cache and the session
are pure accelerators.  The warm/cold ratio is the CI gate: a cached
re-run may never be slower than the run that filled the cache.

Standalone run (writes ``BENCH_smt.json``)::

    PYTHONPATH=src python benchmarks/bench_smt.py [--quick]

Under pytest the same measurements run on the quick workload::

    PYTHONPATH=src python -m pytest benchmarks/bench_smt.py -q
"""

import json
import time

from repro.circ import circ
from repro.lang import lower_source
from repro.nesc import BENCHMARKS
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as terms_mod
from repro.smt.profile import PROFILER
from repro.smt.qcache import SAT_CACHE
from repro.smt.session import default_session, reset_default_session

#: Skipped outside --full runs (dominates wall-clock, adds no coverage).
_SLOW = {"sense/tosPort"}


def workload_items(quick: bool = False) -> list[tuple[str, object, str]]:
    """(name, cfa, race variable) triples run by every mode."""
    items = [
        ("fig2to4/x", lower_source(TEST_AND_SET_SOURCE), "x"),
    ]
    if not quick:
        for b in BENCHMARKS:
            if b.key in _SLOW:
                continue
            items.append(
                (b.key, b.app.cfa(), b.variable.replace("_buggy", ""))
            )
    return items


def run_workload(items) -> dict[str, bool]:
    """One pass over every query; returns verdict-safe per item."""
    verdicts = {}
    for name, cfa, var in items:
        keep = name.startswith("fig2to4")
        result = circ(cfa, race_on=var, keep_history=keep)
        verdicts[name] = bool(result.safe)
    return verdicts


def _reset_acceleration() -> None:
    SAT_CACHE.clear()
    reset_default_session()


def run_modes(items, repeats: int = 3) -> dict:
    """nocache / cold / warm timings (best of ``repeats``) + stats."""
    # nocache: acceleration off entirely.
    nocache_s = float("inf")
    SAT_CACHE.enabled = False
    try:
        for _ in range(repeats):
            _reset_acceleration()
            t0 = time.perf_counter()
            verdicts_nocache = run_workload(items)
            nocache_s = min(nocache_s, time.perf_counter() - t0)
    finally:
        SAT_CACHE.enabled = True

    # cold: acceleration on, but every repeat starts from empty state.
    cold_s = float("inf")
    for _ in range(repeats):
        _reset_acceleration()
        t0 = time.perf_counter()
        verdicts_cold = run_workload(items)
        cold_s = min(cold_s, time.perf_counter() - t0)

    # warm: re-run on the state the last cold repeat left behind.
    PROFILER.reset()
    warm_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        verdicts_warm = run_workload(items)
        warm_s = min(warm_s, time.perf_counter() - t0)

    assert verdicts_nocache == verdicts_cold == verdicts_warm, (
        "acceleration changed a verdict: "
        f"{verdicts_nocache} / {verdicts_cold} / {verdicts_warm}"
    )
    return {
        "timings_s": {
            "nocache": round(nocache_s, 4),
            "cold": round(cold_s, 4),
            "warm": round(warm_s, 4),
        },
        "speedup_warm_vs_cold": round(cold_s / max(warm_s, 1e-9), 3),
        "speedup_warm_vs_nocache": round(
            nocache_s / max(warm_s, 1e-9), 3
        ),
        "verdicts": verdicts_warm,
        "cache_stats": SAT_CACHE.stats(),
        "session_stats": default_session().stats.to_obj(),
        "profile_warm": PROFILER.snapshot(),
    }


def _clear_term_keyed_memos() -> None:
    """Drop every memo keyed by Term objects, for honest per-mode colds.

    Structural equality lets terms built in one mode hit memo entries
    populated in the other (equal keys, equal hashes), which would let
    the structural run coast on work the interned run paid for.
    """
    from repro.smt import cnf, linear, qcache, simplify

    qcache._literal_memo.clear()
    qcache._term_memo.clear()
    qcache._alias_memo.clear()
    cnf._NNF_MEMO.clear()
    linear._LINEARIZE_MEMO.clear()
    simplify._FOLD_MEMO.clear()


def run_hashcons_axis(items, repeats: int = 3) -> dict:
    """Cold/warm timings with the intern table on vs. off.

    Both modes run the same workload objects; hash-consing is a pure
    accelerator, so verdicts and solver query counts must be identical
    and the interned warm run must not be slower than the structural one.
    """
    axis: dict = {}
    for label, enabled in (("on", True), ("off", False)):
        prev = terms_mod.set_interning(enabled)
        try:
            cold_s = float("inf")
            for _ in range(repeats):
                _reset_acceleration()
                terms_mod.clear_intern_table()
                _clear_term_keyed_memos()
                t0 = time.perf_counter()
                verdicts = run_workload(items)
                cold_s = min(cold_s, time.perf_counter() - t0)
            PROFILER.reset()
            warm_s = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                verdicts_warm = run_workload(items)
                warm_s = min(warm_s, time.perf_counter() - t0)
            assert verdicts == verdicts_warm, (verdicts, verdicts_warm)
            totals = PROFILER.totals()
            axis[label] = {
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "verdicts": verdicts,
                "profile_queries": {
                    stage: st["queries"]
                    for stage, st in sorted(PROFILER.snapshot().items())
                },
                "queries_total": totals["queries"],
            }
        finally:
            terms_mod.set_interning(prev)
    _reset_acceleration()
    terms_mod.clear_intern_table()
    axis["speedup_warm_on_vs_off"] = round(
        axis["off"]["warm_s"] / max(axis["on"]["warm_s"], 1e-9), 3
    )
    return axis


# -- pytest entry point (quick workload) --------------------------------------


def test_warm_runs_never_slower_and_verdicts_stable():
    items = workload_items(quick=True)
    data = run_modes(items)
    assert data["verdicts"]["fig2to4/x"] is True  # test-and-set is safe
    assert data["speedup_warm_vs_cold"] >= 1.0, data["timings_s"]
    # Warm runs answer overwhelmingly from the cache.
    stats = data["cache_stats"]
    assert stats["hits"] > stats["misses"], stats


def test_hashcons_axis_equivalent_and_not_slower():
    """The CI gate for the hash-consed term layer: interning must not
    change a verdict, must issue exactly the same solver queries stage
    by stage (predicate abstraction included), and its warm run must be
    at least as fast as the structural-equality path's."""
    axis = run_hashcons_axis(workload_items(quick=True))
    assert axis["on"]["verdicts"] == axis["off"]["verdicts"]
    assert axis["on"]["profile_queries"] == axis["off"]["profile_queries"]
    assert axis["on"]["queries_total"] == axis["off"]["queries_total"]
    # >= 1.0 in expectation; 0.9 absorbs timer noise on the sub-100ms
    # quick workload without letting a real slowdown through.
    assert axis["speedup_warm_on_vs_off"] >= 0.9, axis


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fig 2-4 workload only (CI smoke); default adds Table 1",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_smt.json")
    parser.add_argument(
        "--min-baseline-speedup",
        type=float,
        default=0.5,
        help="fail if warm wall-clock regresses below this speedup over "
        "the committed baseline file; >= 1.0 is expected on the machine "
        "that produced the baseline, and the loose default absorbs "
        "machine-to-machine variance while still catching a layer that "
        "genuinely regressed (same-run gates stay strict)",
    )
    args = parser.parse_args(argv)

    # The committed baseline, read before this run overwrites it.
    baseline = None
    try:
        with open(args.out) as fh:
            prior = json.load(fh)
        if prior.get("quick") == args.quick:
            baseline = prior
    except (OSError, ValueError):
        pass

    items = workload_items(quick=args.quick)
    print(f"{len(items)} CIRC queries per mode, {args.repeats} repeat(s)")
    data = run_modes(items, repeats=args.repeats)
    axis = run_hashcons_axis(items, repeats=args.repeats)
    data["hashcons"] = axis

    t = data["timings_s"]
    print(
        f"nocache {t['nocache']:8.3f}s   cold {t['cold']:8.3f}s   "
        f"warm {t['warm']:8.3f}s"
    )
    print(
        f"warm speedup: {data['speedup_warm_vs_cold']:.2f}x over cold, "
        f"{data['speedup_warm_vs_nocache']:.2f}x over no acceleration"
    )
    cs = data["cache_stats"]
    print(
        f"cache: {cs['hits']} hits / {cs['misses']} misses, "
        f"size {cs['size']}, {cs['evictions']} evictions"
    )
    print(
        f"hashcons: warm on {axis['on']['warm_s']:.3f}s / "
        f"off {axis['off']['warm_s']:.3f}s "
        f"({axis['speedup_warm_on_vs_off']:.2f}x)"
    )

    if baseline is not None:
        base_warm = baseline.get("timings_s", {}).get("warm")
        if base_warm:
            data["baseline_warm_s"] = base_warm
            data["speedup_warm_vs_baseline"] = round(
                base_warm / max(t["warm"], 1e-9), 3
            )
            print(
                f"vs committed baseline: warm {base_warm:.3f}s -> "
                f"{t['warm']:.3f}s "
                f"({data['speedup_warm_vs_baseline']:.2f}x)"
            )

    payload = {"benchmark": "smt", "quick": args.quick, **data}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    failed = False
    if data["speedup_warm_vs_cold"] < 1.0:
        print("FAIL: cached re-run slower than the cold run")
        failed = True
    if axis["on"]["verdicts"] != axis["off"]["verdicts"]:
        print("FAIL: hash-consing changed a verdict")
        failed = True
    if axis["on"]["profile_queries"] != axis["off"]["profile_queries"]:
        print("FAIL: hash-consing changed the per-stage query counts")
        failed = True
    if axis["speedup_warm_on_vs_off"] < 0.9:
        print("FAIL: interned warm run slower than the structural path")
        failed = True
    if baseline is not None:
        if data.get("verdicts") != baseline.get("verdicts"):
            print("FAIL: verdicts differ from the committed baseline")
            failed = True
        ratio = data.get("speedup_warm_vs_baseline")
        if ratio is not None and ratio < args.min_baseline_speedup:
            print(
                f"FAIL: warm run regressed vs committed baseline "
                f"({ratio:.2f}x < {args.min_baseline_speedup:.2f}x)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
