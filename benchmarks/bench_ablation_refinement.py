"""Ablations on the design choices DESIGN.md calls out.

1. **Predicate mining strategy**: weakest-precondition atoms (classic
   BLAST, our default) vs Farkas interpolants at every trace cut (the
   'Abstractions from proofs' strategy).  Both must converge on the
   running example; the predicate counts differ.
2. **Counter parameter sensitivity**: starting k above 1 must not change
   verdicts, only (possibly) work.
3. **Initial predicates**: seeding the final predicate set removes all
   refinement iterations (a pure check, as in Section 4.2's Algorithm
   Check).
"""

import pytest

from repro.circ import circ
from repro.lang import lower_source
from repro.nesc.programs import TEST_AND_SET_SOURCE
from repro.smt import terms as T

_STATS: dict = {}


@pytest.mark.parametrize("strategy", ["wp-atoms", "interpolants"])
def test_mining_strategy(benchmark, strategy):
    cfa = lower_source(TEST_AND_SET_SOURCE)
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on="x", strategy=strategy),
        rounds=1,
        iterations=1,
    )
    assert result.safe
    _STATS[strategy] = (
        len(result.predicates),
        result.stats.outer_iterations,
        result.stats.elapsed_seconds,
    )
    benchmark.extra_info["predicates"] = len(result.predicates)
    benchmark.extra_info["outer_iterations"] = result.stats.outer_iterations


@pytest.mark.parametrize("mode", ["cartesian", "boolean"])
def test_abstraction_domain(benchmark, mode):
    """Cartesian (BLAST default) vs the paper's exact boolean Abs.P."""
    cfa = lower_source(TEST_AND_SET_SOURCE)
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on="x", abstraction=mode),
        rounds=1,
        iterations=1,
    )
    assert result.safe
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["predicates"] = len(result.predicates)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_counter_start_sensitivity(benchmark, k):
    cfa = lower_source(TEST_AND_SET_SOURCE)
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on="x", k=k), rounds=1, iterations=1
    )
    assert result.safe
    benchmark.extra_info["k"] = k
    benchmark.extra_info["abstract_states"] = result.stats.abstract_states


def test_seeded_predicates_need_no_refinement(benchmark):
    cfa = lower_source(TEST_AND_SET_SOURCE)
    seeds = [
        T.eq(T.var("old"), T.var("state")),
        T.eq(T.var("old"), 0),
        T.eq(T.var("state"), 0),
        T.eq(T.var("state"), 1),
    ]
    result = benchmark.pedantic(
        lambda: circ(cfa, race_on="x", initial_predicates=seeds),
        rounds=1,
        iterations=1,
    )
    assert result.safe
    assert result.stats.outer_iterations == 1  # no refinement round


def test_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    if len(_STATS) < 2:
        pytest.skip("strategy runs missing")
    print("\n=== refinement-strategy ablation (fig1) ===")
    for strategy, (preds, outers, secs) in _STATS.items():
        print(
            f"{strategy:14s} predicates={preds:2d} "
            f"outer_iterations={outers} time={secs:.2f}s"
        )
