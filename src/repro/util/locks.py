"""Advisory file locking and atomic publication for multi-writer stores.

Every on-disk store that more than one process may mutate -- the
artifact cache's shape index, the SMT query cache's persistent warm
tier, the portfolio's win-rate book -- follows the same two-part
discipline, factored here so the implementations cannot drift:

* **atomic publication**: content is written to a temp file in the
  destination directory and published with ``os.replace``, so a reader
  (or a crash) can never observe a torn write;
* **advisory ``flock`` on mutation**: read-merge-write cycles hold an
  exclusive lock on a sibling ``.lock`` file, so two concurrent writers
  serialize their merges and neither clobbers the other's delta.

Locks are *advisory*: they only coordinate writers that opt in, which
is exactly the fleet's contract (every writer is this codebase).  On
platforms without ``fcntl`` the lock degrades to a no-op and writers
fall back to atomic last-writer-wins -- merges may lose a delta there,
but torn writes remain impossible.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

try:  # advisory file locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = ["file_lock", "atomic_write_text"]


@contextmanager
def file_lock(path: str | os.PathLike):
    """Hold an exclusive advisory ``flock`` on ``path`` (created empty
    if absent).  Yields the open lock handle, or ``None`` where
    ``fcntl`` is unavailable and the lock degrades to a no-op."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield None
        return
    fh = open(path, "a")
    try:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield fh
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
    finally:
        fh.close()


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Publish ``text`` at ``path`` atomically (temp file + replace).

    The temp file gets a unique name, so even unserialized concurrent
    writers can never interleave bytes -- the last ``os.replace`` wins
    with a complete payload.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
