"""Portfolio race analysis: fast witness-producing detectors racing CIRC.

Three analyses of complementary strength run against one query:

* :mod:`repro.portfolio.racer` -- a RacerF-style two-phase static
  detector: may-escape / must-lockset / MHP pruning, then per-pair
  refinement that emits either a replayable interleaving witness or a
  per-pair impossibility proof, never a bare warning;
* :mod:`repro.portfolio.absint` -- a digest-keyed abstract-interpretation
  pass (interval + lock domain) whose semantic reachability refutes
  conflicting pairs the graph-level MHP cannot, cached in the artifact
  store for warm reuse;
* CIRC itself -- the only analysis that can decide *every* instance.

:mod:`repro.portfolio.driver` schedules them with cross-cancellation
(a confident verdict kills the still-running analyses), reconciles
verdicts (any confident disagreement is a hard error), and feeds
per-analysis win rates back into the scheduling order through
:mod:`repro.portfolio.winrate`.
"""

from .absint import AbsintReport, absint_check
from .driver import (
    AnalysisOutcome,
    PortfolioConflict,
    PortfolioReport,
    run_portfolio,
)
from .racer import PairStatus, RacerReport, racer_check
from .winrate import WinRateBook, shape_class

__all__ = [
    "AbsintReport",
    "absint_check",
    "AnalysisOutcome",
    "PortfolioConflict",
    "PortfolioReport",
    "run_portfolio",
    "PairStatus",
    "RacerReport",
    "racer_check",
    "WinRateBook",
    "shape_class",
]
