"""The portfolio driver: baselines race CIRC with cross-cancellation.

One query, several analyses of complementary strength (see the package
docstring), one verdict.  The driver enforces three contracts:

* **Cross-cancellation** -- the first *confident* verdict (a safety
  proof or a replayed race witness) cancels every analysis still
  running: a baseline win kills the CIRC job, and a CIRC result stops
  the racer's witness search mid-flight (``parallel=True`` runs CIRC in
  a separate process so the cancellation is genuinely two-way).
* **Reconciliation** -- confident verdicts may only agree.  Two
  confident analyses disagreeing, or a race verdict whose witness fails
  interpreter replay, raises :class:`PortfolioConflict`: one of the
  analyses is unsound, and serving either answer would be a lie.  An
  ``unknown`` never conflicts with anything -- abstention is not a
  claim.
* **Win-rate learning** -- every outcome is recorded in the
  :class:`~repro.portfolio.winrate.WinRateBook` per workload shape and
  emitted to the JSONL telemetry, and the book's learned order decides
  which analysis runs first next time.

Why cancellation preserves the CIRC-only verdict: a baseline is only
allowed to cancel CIRC on a *confident* verdict, confident safety claims
are sound for unboundedly many threads (racer phase-1 kill rules,
interval/lock refutation), and confident race claims carry a witness the
explicit-state interpreter replayed.  Either way the verdict CIRC would
have computed is the same one the baseline already proved -- see
docs/ALGORITHM.md section 12 for the full argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..acfa.acfa import empty_acfa
from ..cfa.cfa import CFA, Edge
from ..circ.circ import CircBudgetExceeded, CircError, CircInconclusive, circ
from ..circ.result import (
    CircResult,
    CircSafe,
    CircStats,
    CircUnknown,
    CircUnsafe,
)
from ..engine.cache import ArtifactCache
from ..engine.events import EventLog
from ..exec.interp import MultiProgram, replay
from ..lang.lower import lower_source
from .absint import absint_check
from .racer import racer_check
from .winrate import DEFAULT_ORDER, WinRateBook, shape_class

__all__ = [
    "AnalysisOutcome",
    "PortfolioConflict",
    "PortfolioReport",
    "run_portfolio",
]

#: Verdicts strong enough to cancel the rest of the portfolio.
_CONFIDENT = ("safe", "race")


class PortfolioConflict(RuntimeError):
    """Two confident analyses disagreed (or a witness failed replay).

    This is a *hard error*, never a verdict: it means one of the
    portfolio's analyses is unsound on this input, and the only honest
    response is to refuse to answer and surface the evidence.
    """

    def __init__(self, variable: str, detail: str, outcomes=()):
        super().__init__(
            f"portfolio verdict conflict on {variable!r}: {detail}"
        )
        self.variable = variable
        self.detail = detail
        self.outcomes = tuple(outcomes)


@dataclass
class AnalysisOutcome:
    """One analysis's contribution to a portfolio run."""

    analysis: str  # 'racer' | 'absint' | 'circ'
    verdict: str  # 'safe' | 'race' | 'unknown' | 'cancelled'
    time_ms: float
    detail: str = ""
    n_threads: int = 0
    witness: tuple[tuple[int, Edge], ...] = ()
    cancelled: bool = False
    #: The raw verifier result, populated only for the ``circ`` analysis
    #: (so ``to_circ_result`` can pass it through untouched).
    result: Optional[CircResult] = None

    @property
    def confident(self) -> bool:
        return not self.cancelled and self.verdict in _CONFIDENT


@dataclass
class PortfolioReport:
    """The reconciled outcome of one portfolio run."""

    variable: str
    verdict: str  # 'safe' | 'race' | 'unknown'
    winner: str  # analysis name, or '' when nothing was confident
    shape: str
    outcomes: list[AnalysisOutcome] = field(default_factory=list)
    total_ms: float = 0.0

    @property
    def cancelled(self) -> tuple[str, ...]:
        return tuple(
            o.analysis for o in self.outcomes if o.cancelled
        )

    @property
    def witness(self) -> tuple[tuple[int, Edge], ...]:
        for o in self.outcomes:
            if o.analysis == self.winner and o.verdict == "race":
                return o.witness
        return ()

    @property
    def n_threads(self) -> int:
        for o in self.outcomes:
            if o.analysis == self.winner and o.verdict == "race":
                return o.n_threads
        return 0

    def outcome(self, analysis: str) -> Optional[AnalysisOutcome]:
        for o in self.outcomes:
            if o.analysis == analysis:
                return o
        return None

    def to_circ_result(self) -> CircResult:
        """The portfolio verdict in the engine's result vocabulary.

        Baseline proofs become an (honest) empty-context ``CircSafe``,
        witnesses a ``CircUnsafe`` carrying the replayed interleaving;
        when CIRC itself won, its own result passes through untouched.
        """
        win = self.outcome(self.winner) if self.winner else None
        if win is not None and win.analysis == "circ" and win.result is not None:
            return win.result
        stats = CircStats(elapsed_seconds=self.total_ms / 1000.0)
        if self.verdict == "safe":
            return CircSafe(
                variable=self.variable,
                predicates=(),
                context=empty_acfa(),
                stats=stats,
            )
        if self.verdict == "race":
            return CircUnsafe(
                variable=self.variable,
                steps=list(self.witness),
                n_threads=self.n_threads,
                predicates=(),
                stats=stats,
            )
        detail = "; ".join(
            f"{o.analysis}: {o.detail or o.verdict}" for o in self.outcomes
        )
        return CircUnknown(
            variable=self.variable,
            reason=f"no analysis was confident ({detail})",
            predicates=(),
            stats=stats,
        )


def _validate_witness(
    cfa: CFA, variable: str, outcome: AnalysisOutcome
) -> None:
    """Replay a race verdict's witness; a failure is a hard conflict.

    An *empty* trace is a legitimate witness (the initial state can
    already be a race state); :func:`repro.exec.interp.replay` still
    validates it, because the race-state check applies to the final --
    here initial -- state.
    """
    if outcome.verdict != "race":
        return
    program = MultiProgram.symmetric(cfa, max(2, outcome.n_threads))
    ok, _ = replay(program, list(outcome.witness), race_on=variable)
    if not ok:
        raise PortfolioConflict(
            variable,
            f"{outcome.analysis} witness does not replay in the interpreter",
            [outcome],
        )


def _reconcile(
    variable: str, outcomes: list[AnalysisOutcome]
) -> tuple[str, str]:
    """Derive (verdict, winner); raise on any confident disagreement."""
    confident = [o for o in outcomes if o.confident]
    verdicts = {o.verdict for o in confident}
    if len(verdicts) > 1:
        detail = ", ".join(
            f"{o.analysis}={o.verdict}" for o in confident
        )
        raise PortfolioConflict(variable, detail, outcomes)
    if confident:
        return confident[0].verdict, confident[0].analysis
    return "unknown", ""


def _run_circ(cfa: CFA, variable: str, circ_options: dict) -> CircResult:
    try:
        return circ(cfa, race_on=variable, **circ_options)
    except (CircBudgetExceeded, CircInconclusive) as exc:
        return exc.result
    except CircError as exc:
        return CircUnknown(
            variable=variable,
            reason=str(exc),
            predicates=(),
            stats=CircStats(),
        )


def _circ_outcome(result: CircResult, time_ms: float) -> AnalysisOutcome:
    if result.unknown:
        return AnalysisOutcome(
            analysis="circ",
            verdict="unknown",
            time_ms=time_ms,
            detail=result.reason,
        )
    if result.safe:
        out = AnalysisOutcome(
            analysis="circ",
            verdict="safe",
            time_ms=time_ms,
            detail=f"{len(result.predicates)} predicates",
        )
    else:
        out = AnalysisOutcome(
            analysis="circ",
            verdict="race",
            time_ms=time_ms,
            detail=f"witness with {result.n_threads} threads",
            n_threads=result.n_threads,
            witness=tuple(result.steps),
        )
    out.result = result
    return out


def _circ_worker(payload: dict, queue) -> None:
    """Subprocess entry for ``parallel=True``: run CIRC, ship the result.

    Results travel as the JSON-ready artifact objects of
    :mod:`repro.engine.artifacts` -- same transport discipline as the
    batch scheduler's workers.
    """
    from ..engine.artifacts import result_to_obj

    start = time.perf_counter()
    try:
        cfa = lower_source(payload["source"], payload.get("thread"))
        result = _run_circ(cfa, payload["variable"], payload["options"])
    except Exception as exc:  # the parent must always get an answer
        result = CircUnknown(
            variable=payload["variable"],
            reason=f"worker error: {type(exc).__name__}: {exc}",
            predicates=(),
            stats=CircStats(),
        )
    queue.put(
        {
            "result": result_to_obj(result),
            "elapsed_ms": (time.perf_counter() - start) * 1000.0,
        }
    )


def run_portfolio(
    cfa: CFA,
    variable: str,
    source: str | None = None,
    thread: str | None = None,
    analyses: tuple[str, ...] = DEFAULT_ORDER,
    cancel: bool = True,
    parallel: bool = False,
    cache: ArtifactCache | None = None,
    events: EventLog | None = None,
    winrates: WinRateBook | None = None,
    racer_max_threads: int = 3,
    racer_max_states: int = 20_000,
    **circ_options,
) -> PortfolioReport:
    """Race the portfolio's analyses on one (template, variable) query.

    ``cancel=False`` runs every analysis to completion (the
    reconciliation test uses this to force maximal disagreement
    surface); ``parallel=True`` additionally runs CIRC in a separate
    process so a baseline verdict can kill it mid-run and vice versa
    (requires ``source``, since a CFA does not cross the process
    boundary).  Keyword options are forwarded to :func:`repro.circ.circ`.
    """
    events = events or EventLog()
    start = time.perf_counter()
    shape = shape_class(cfa, variable)
    order = (
        winrates.order(shape, analyses) if winrates is not None else analyses
    )
    events.emit(
        "portfolio_started",
        variable=variable,
        shape=shape,
        order=list(order),
        parallel=bool(parallel and source),
    )
    outcomes: list[AnalysisOutcome] = []

    if parallel and source is not None and "circ" in order:
        _run_parallel(
            cfa, variable, source, thread, order, cancel,
            racer_max_threads, racer_max_states, circ_options,
            cache, events, outcomes,
        )
    else:
        _run_serial(
            cfa, variable, order, cancel,
            racer_max_threads, racer_max_states, circ_options,
            cache, events, outcomes,
        )

    for outcome in outcomes:
        if outcome.confident:
            _validate_witness(cfa, variable, outcome)
    verdict, winner = _reconcile(variable, outcomes)
    total_ms = (time.perf_counter() - start) * 1000.0
    report = PortfolioReport(
        variable=variable,
        verdict=verdict,
        winner=winner,
        shape=shape,
        outcomes=outcomes,
        total_ms=total_ms,
    )
    if winrates is not None:
        for o in outcomes:
            if not o.cancelled:
                winrates.record(
                    shape, o.analysis, o.analysis == winner, o.time_ms
                )
        winrates.save()
        events.emit(
            "portfolio_winrates",
            shape=shape,
            book=winrates.to_obj()["shapes"].get(shape, {}),
        )
    events.emit(
        "portfolio_verdict",
        variable=variable,
        verdict=verdict,
        winner=winner,
        cancelled=list(report.cancelled),
        total_ms=round(total_ms, 3),
    )
    return report


def _baseline_outcome(
    name: str,
    cfa: CFA,
    variable: str,
    racer_max_threads: int,
    racer_max_states: int,
    cache: ArtifactCache | None,
    events: EventLog,
    should_stop=None,
) -> AnalysisOutcome:
    start = time.perf_counter()
    if name == "racer":
        r = racer_check(
            cfa,
            variable,
            max_threads=racer_max_threads,
            max_states=racer_max_states,
            should_stop=should_stop,
        )
        return AnalysisOutcome(
            analysis="racer",
            verdict="unknown" if r.cancelled else r.verdict,
            time_ms=(time.perf_counter() - start) * 1000.0,
            detail=r.reason,
            n_threads=r.n_threads,
            witness=r.witness,
            cancelled=r.cancelled,
        )
    if name == "absint":
        a = absint_check(cfa, variable, cache=cache, events=events)
        return AnalysisOutcome(
            analysis="absint",
            verdict=a.verdict,
            time_ms=(time.perf_counter() - start) * 1000.0,
            detail=a.reason + (" [cached]" if a.cached else ""),
        )
    raise ValueError(f"unknown analysis {name!r}")


def _run_serial(
    cfa, variable, order, cancel,
    racer_max_threads, racer_max_states, circ_options,
    cache, events, outcomes,
) -> None:
    decided = False
    for name in order:
        if decided and cancel:
            outcomes.append(
                AnalysisOutcome(
                    analysis=name,
                    verdict="cancelled",
                    time_ms=0.0,
                    detail="cancelled by a confident verdict",
                    cancelled=True,
                )
            )
            events.emit(
                "portfolio_cancelled", variable=variable, analysis=name
            )
            continue
        events.emit(
            "portfolio_analysis_started", variable=variable, analysis=name
        )
        if name == "circ":
            start = time.perf_counter()
            result = _run_circ(cfa, variable, dict(circ_options))
            outcome = _circ_outcome(
                result, (time.perf_counter() - start) * 1000.0
            )
        else:
            outcome = _baseline_outcome(
                name, cfa, variable,
                racer_max_threads, racer_max_states, cache, events,
            )
        outcomes.append(outcome)
        events.emit(
            "portfolio_analysis_finished",
            variable=variable,
            analysis=name,
            verdict=outcome.verdict,
            ms=round(outcome.time_ms, 3),
        )
        if outcome.confident:
            decided = True


def _run_parallel(
    cfa, variable, source, thread, order, cancel,
    racer_max_threads, racer_max_states, circ_options,
    cache, events, outcomes,
) -> None:
    """Run CIRC in a subprocess, the baselines here; cancellation is two-way."""
    import multiprocessing as mp

    ctx = mp.get_context()
    queue = ctx.Queue()
    payload = {
        "source": source,
        "thread": thread,
        "variable": variable,
        "options": dict(circ_options),
    }
    proc = ctx.Process(target=_circ_worker, args=(payload, queue))
    circ_start = time.perf_counter()
    proc.start()
    events.emit(
        "portfolio_analysis_started", variable=variable, analysis="circ",
        mode="process",
    )

    def circ_answered() -> bool:
        return not queue.empty()

    decided = False
    for name in order:
        if name == "circ":
            continue
        if (decided or circ_answered()) and cancel:
            outcomes.append(
                AnalysisOutcome(
                    analysis=name, verdict="cancelled", time_ms=0.0,
                    detail="cancelled by a confident verdict",
                    cancelled=True,
                )
            )
            events.emit(
                "portfolio_cancelled", variable=variable, analysis=name
            )
            continue
        outcome = _baseline_outcome(
            name, cfa, variable,
            racer_max_threads, racer_max_states, cache, events,
            should_stop=circ_answered if cancel else None,
        )
        outcomes.append(outcome)
        events.emit(
            "portfolio_analysis_finished",
            variable=variable, analysis=name,
            verdict=outcome.verdict, ms=round(outcome.time_ms, 3),
        )
        if outcome.confident:
            decided = True

    if decided and cancel and not circ_answered():
        proc.terminate()
        proc.join()
        outcomes.append(
            AnalysisOutcome(
                analysis="circ", verdict="cancelled", time_ms=0.0,
                detail="CIRC job killed by a confident baseline verdict",
                cancelled=True,
            )
        )
        events.emit(
            "portfolio_cancelled", variable=variable, analysis="circ"
        )
        return

    from ..engine.artifacts import result_from_obj

    timeout = circ_options.get("timeout_s")
    budget = (timeout + 30.0) if timeout else 600.0
    try:
        record = queue.get(timeout=budget)
        result = result_from_obj(record["result"])
        elapsed_ms = record["elapsed_ms"]
    except Exception:
        proc.terminate()
        result = CircUnknown(
            variable=variable,
            reason="CIRC worker produced no result within the budget",
            predicates=(),
            stats=CircStats(),
        )
        elapsed_ms = (time.perf_counter() - circ_start) * 1000.0
    proc.join()
    outcome = _circ_outcome(result, elapsed_ms)
    outcomes.append(outcome)
    events.emit(
        "portfolio_analysis_finished",
        variable=variable, analysis="circ",
        verdict=outcome.verdict, ms=round(outcome.time_ms, 3),
    )
