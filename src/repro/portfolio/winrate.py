"""Per-analysis win-rate accounting, keyed by workload shape class.

The portfolio's latency story depends on scheduling the analysis most
likely to decide a query *first*: every later analysis is wasted work
once cross-cancellation fires.  The right order differs by workload --
lock-disciplined templates fall to the racer's phase 1 instantly,
value-guarded ones need the interval domain, data-dependent protocols
need CIRC -- so wins are counted per *shape class*, a coarse bucketing
of the query (synchronization style x template size), not globally.

The book is deliberately tiny and JSON-backed: it lives under the
artifact cache root, survives across runs, and its counters are also
emitted into the JSONL telemetry (``portfolio_winrates`` events) so the
engine's planner -- or a human reading the log -- can see which analysis
earns its slot per workload shape.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..cfa.cfa import CFA

__all__ = ["WinRateBook", "shape_class", "DEFAULT_ORDER"]

#: Static cost order: cheapest analysis first until the book learns better.
DEFAULT_ORDER = ("racer", "absint", "circ")


def shape_class(cfa: CFA, variable: str) -> str:
    """A coarse workload-shape bucket for one (template, variable) query.

    Intentionally lossy: the book needs enough traffic per bucket to
    learn from, so the key only captures what plausibly changes the
    winner -- how the template synchronizes and how big it is.
    """
    if any(e.lock_info for e in cfa.edges):
        sync = "locked"
    elif cfa.atomic:
        sync = "atomic"
    else:
        sync = "bare"
    size = "small" if len(cfa.locations) <= 16 else "large"
    return f"{sync}/{size}"


class WinRateBook:
    """Win/run/latency counters per (shape class, analysis).

    A *win* is a confident verdict (a proof or a replayed witness) that
    decided the query; *runs* counts every completed, non-cancelled
    attempt.  ``order`` ranks analyses for a shape by observed win rate
    (ties broken by mean latency, then by the static cost order), so an
    unseen shape starts at :data:`DEFAULT_ORDER` and the book only
    reorders once it has evidence.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = Path(path) if path is not None else None
        self.counts: dict[str, dict[str, dict[str, float]]] = {}
        if self.path is not None and self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
                if isinstance(raw, dict):
                    self.counts = raw.get("shapes", {})
            except (OSError, ValueError):
                self.counts = {}  # a corrupt book relearns from scratch

    def record(
        self, shape: str, analysis: str, won: bool, time_ms: float
    ) -> None:
        cell = self.counts.setdefault(shape, {}).setdefault(
            analysis, {"wins": 0, "runs": 0, "total_ms": 0.0}
        )
        cell["runs"] += 1
        cell["wins"] += 1 if won else 0
        cell["total_ms"] += time_ms

    def win_rate(self, shape: str, analysis: str) -> float:
        cell = self.counts.get(shape, {}).get(analysis)
        if not cell or not cell["runs"]:
            return 0.0
        return cell["wins"] / cell["runs"]

    def order(
        self, shape: str, analyses: tuple[str, ...] = DEFAULT_ORDER
    ) -> tuple[str, ...]:
        """Schedule order for a shape: highest win rate first."""
        base = {name: i for i, name in enumerate(DEFAULT_ORDER)}

        def rank(name: str) -> tuple:
            cell = self.counts.get(shape, {}).get(name)
            if not cell or not cell["runs"]:
                return (0.0, 0.0, base.get(name, len(base)))
            rate = cell["wins"] / cell["runs"]
            mean_ms = cell["total_ms"] / cell["runs"]
            return (-rate, mean_ms, base.get(name, len(base)))

        return tuple(sorted(analyses, key=rank))

    def to_obj(self) -> dict:
        return {"shapes": self.counts}

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.to_obj(), indent=1, sort_keys=True))
        os.replace(tmp, self.path)
