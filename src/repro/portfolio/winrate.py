"""Per-analysis win-rate accounting, keyed by workload shape class.

The portfolio's latency story depends on scheduling the analysis most
likely to decide a query *first*: every later analysis is wasted work
once cross-cancellation fires.  The right order differs by workload --
lock-disciplined templates fall to the racer's phase 1 instantly,
value-guarded ones need the interval domain, data-dependent protocols
need CIRC -- so wins are counted per *shape class*, a coarse bucketing
of the query (synchronization style x template size), not globally.

The book is deliberately tiny and JSON-backed: it lives under the
artifact cache root, survives across runs, and its counters are also
emitted into the JSONL telemetry (``portfolio_winrates`` events) so the
engine's planner -- or a human reading the log -- can see which analysis
earns its slot per workload shape.

Concurrent writers -- daemon worker threads, parallel batch workers --
share one book file.  A naive load/mutate/save cycle is last-writer-wins
and silently drops every other writer's counts, so :meth:`save` is a
*read-merge-write*: it tracks the deltas recorded since the last save,
re-reads the file under an advisory lock, folds the deltas into whatever
other writers persisted meanwhile, and replaces the file atomically.
Win counts are therefore never lost, only delayed.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from ..cfa.cfa import CFA
from ..util.locks import atomic_write_text, file_lock

__all__ = ["WinRateBook", "shape_class", "DEFAULT_ORDER"]

#: Static cost order: cheapest analysis first until the book learns better.
DEFAULT_ORDER = ("racer", "absint", "circ")


def shape_class(cfa: CFA, variable: str) -> str:
    """A coarse workload-shape bucket for one (template, variable) query.

    Intentionally lossy: the book needs enough traffic per bucket to
    learn from, so the key only captures what plausibly changes the
    winner -- how the template synchronizes and how big it is.
    """
    if any(e.lock_info for e in cfa.edges):
        sync = "locked"
    elif cfa.atomic:
        sync = "atomic"
    else:
        sync = "bare"
    size = "small" if len(cfa.locations) <= 16 else "large"
    return f"{sync}/{size}"


class WinRateBook:
    """Win/run/latency counters per (shape class, analysis).

    A *win* is a confident verdict (a proof or a replayed witness) that
    decided the query; *runs* counts every completed, non-cancelled
    attempt.  ``order`` ranks analyses for a shape by observed win rate
    (ties broken by mean latency, then by the static cost order), so an
    unseen shape starts at :data:`DEFAULT_ORDER` and the book only
    reorders once it has evidence.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = Path(path) if path is not None else None
        self.counts: dict[str, dict[str, dict[str, float]]] = {}
        # Deltas recorded since the last successful save; save() merges
        # them into the on-disk counts instead of overwriting the file.
        self._pending: dict[str, dict[str, dict[str, float]]] = {}
        self._mutex = threading.Lock()
        if self.path is not None and self.path.exists():
            self.counts = self._read_counts(self.path)

    @staticmethod
    def _read_counts(path: Path) -> dict:
        try:
            raw = json.loads(path.read_text())
            if isinstance(raw, dict):
                shapes = raw.get("shapes", {})
                if isinstance(shapes, dict):
                    return shapes
        except (OSError, ValueError):
            pass  # a corrupt book relearns from scratch
        return {}

    @staticmethod
    def _cell(
        table: dict, shape: str, analysis: str
    ) -> dict[str, float]:
        return table.setdefault(shape, {}).setdefault(
            analysis, {"wins": 0, "runs": 0, "total_ms": 0.0}
        )

    def record(
        self, shape: str, analysis: str, won: bool, time_ms: float
    ) -> None:
        with self._mutex:
            for table in (self.counts, self._pending):
                cell = self._cell(table, shape, analysis)
                cell["runs"] += 1
                cell["wins"] += 1 if won else 0
                cell["total_ms"] += time_ms

    def win_rate(self, shape: str, analysis: str) -> float:
        cell = self.counts.get(shape, {}).get(analysis)
        if not cell or not cell["runs"]:
            return 0.0
        return cell["wins"] / cell["runs"]

    def order(
        self, shape: str, analyses: tuple[str, ...] = DEFAULT_ORDER
    ) -> tuple[str, ...]:
        """Schedule order for a shape: highest win rate first."""
        base = {name: i for i, name in enumerate(DEFAULT_ORDER)}

        def rank(name: str) -> tuple:
            cell = self.counts.get(shape, {}).get(name)
            if not cell or not cell["runs"]:
                return (0.0, 0.0, base.get(name, len(base)))
            rate = cell["wins"] / cell["runs"]
            mean_ms = cell["total_ms"] / cell["runs"]
            return (-rate, mean_ms, base.get(name, len(base)))

        return tuple(sorted(analyses, key=rank))

    def to_obj(self) -> dict:
        return {"shapes": self.counts}

    def save(self) -> None:
        """Merge the deltas since the last save into the book file.

        Holds an advisory ``flock`` on a sibling ``.lock`` file for the
        read-merge-write cycle, so two processes saving concurrently
        serialize and neither clobbers the other's counts.  Platforms
        without ``fcntl`` skip the lock but keep the merge, which still
        beats blind overwriting.
        """
        if self.path is None:
            return
        with self._mutex:
            pending = self._pending
            self._pending = {}
        try:
            with file_lock(self.path.with_suffix(".lock")):
                merged = (
                    self._read_counts(self.path)
                    if self.path.exists()
                    else {}
                )
                for shape, analyses in pending.items():
                    for analysis, delta in analyses.items():
                        cell = self._cell(merged, shape, analysis)
                        cell["runs"] += delta["runs"]
                        cell["wins"] += delta["wins"]
                        cell["total_ms"] += delta["total_ms"]
                with self._mutex:
                    self.counts = merged
                atomic_write_text(
                    self.path,
                    json.dumps(
                        {"shapes": merged}, indent=1, sort_keys=True
                    ),
                )
        except OSError:
            # Persistence is an accelerator; put the deltas back so a
            # later save can still merge them.
            with self._mutex:
                for shape, analyses in pending.items():
                    for analysis, delta in analyses.items():
                        cell = self._cell(self._pending, shape, analysis)
                        cell["runs"] += delta["runs"]
                        cell["wins"] += delta["wins"]
                        cell["total_ms"] += delta["total_ms"]
