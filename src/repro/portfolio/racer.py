"""RacerF-style two-phase static race detection with concrete witnesses.

Phase 1 (cheap, whole-template) computes the three classic pruning
facts -- may-escape sets, monitor-aware must-locksets, and the MHP
relation of :mod:`repro.static.mhp` -- and records a *per-pair proof*
for every conflicting access pair one of the kill rules refutes
(unreachable site, atomic exclusion, common monitor).

Phase 2 (per surviving pair) searches bounded symmetric interleavings
for a concrete schedule that co-locates the pair in a race state.  Every
hit is replayed through the explicit-state interpreter before it is
believed; a witness that fails replay is discarded, never reported.

The verdict discipline is the point of the exercise -- never a bare
warning:

* ``race``   -- some pair has a **replayed** interleaving witness;
* ``safe``   -- *every* conflicting pair carries a phase-1 proof (this
  is the same sound, unbounded-thread-count argument the static
  classifier makes: no conflicting pair, no race state);
* ``unknown`` -- some pair survived phase 1 but the bounded search found
  no witness.  The pair is explicitly *undecided*, and the caller (the
  portfolio driver) hands it to CIRC rather than alarming a human.

Safety claims are therefore exactly as strong as CIRC's (unbounded), and
race claims carry evidence the interpreter accepts -- which is what lets
the portfolio driver cancel a CIRC run on either verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..baselines.lockset import ATOMIC_LOCK, may_escape, must_locksets
from ..cfa.cfa import CFA, Edge
from ..exec.interp import ConcreteState, MultiProgram, replay
from ..static.mhp import MhpReport, mhp_analysis
from ..static.protect import Monitor, infer_monitors

__all__ = ["PairStatus", "RacerReport", "racer_check"]


@dataclass(frozen=True)
class PairStatus:
    """What phase 1 or phase 2 established about one conflicting pair.

    ``status`` is ``proved`` (phase-1 kill rule, ``reason`` names it),
    ``witnessed`` (``witness`` replays in the interpreter), or
    ``undecided`` (survived phase 1, no witness within the budget).
    """

    pair: tuple[int, int]
    status: str  # 'proved' | 'witnessed' | 'undecided'
    reason: str = ""
    witness: tuple[tuple[int, Edge], ...] = ()
    n_threads: int = 0


@dataclass
class RacerReport:
    """The two-phase detector's answer for one (template, variable) query."""

    variable: str
    verdict: str  # 'safe' | 'race' | 'unknown'
    reason: str
    pairs: tuple[PairStatus, ...]
    #: The replayed witness backing a ``race`` verdict (else empty).
    witness: tuple[tuple[int, Edge], ...] = ()
    n_threads: int = 0
    phase1_ms: float = 0.0
    phase2_ms: float = 0.0
    states_explored: int = 0
    #: True when a cancellation callback stopped phase 2 early.
    cancelled: bool = False

    @property
    def undecided_pairs(self) -> tuple[PairStatus, ...]:
        return tuple(p for p in self.pairs if p.status == "undecided")


def _pair_proof(mhp: MhpReport, q1: int, q2: int) -> str:
    """Name the phase-1 kill rule that refutes co-occupation of a pair."""
    if q1 not in mhp.reachable or q2 not in mhp.reachable:
        return "unreachable access site"
    if q1 in mhp.atomic or q2 in mhp.atomic:
        return "atomic exclusion (no race state has an atomic occupant)"
    common = sorted(mhp.excluded_by(q1, q2))
    if common:
        names = ", ".join(
            "atomic sections" if m == ATOMIC_LOCK else f"monitor {m!r}"
            for m in common
        )
        return f"mutual exclusion via {names}"
    return "excluded by MHP"


def _candidate_pairs(
    cfa: CFA, mhp: MhpReport, variable: str
) -> list[tuple[int, int]]:
    """Every unordered access pair with a write, *before* kill rules.

    Phase 1 owes each of these either a proof or a hand-off to phase 2;
    reachability is judged by the MHP report, so sites follow the same
    definition as :meth:`MhpReport.conflicting_pairs` except that killed
    pairs are kept (to be proved) rather than dropped.
    """
    sites = sorted(
        q for q in cfa.locations if variable in cfa.accesses_at(q)
    )
    writes = {q for q in sites if variable in cfa.writes_at(q)}
    pairs = []
    for i, q1 in enumerate(sites):
        for q2 in sites[i:]:
            if q1 in writes or q2 in writes:
                pairs.append((q1, q2))
    return pairs


def _pair_hit(
    program: MultiProgram,
    state: ConcreteState,
    pair: tuple[int, int],
) -> bool:
    """Is ``state`` a race state in which two threads occupy ``pair``?

    The pair came from the conflicting-pair enumeration, so the
    access/write side conditions hold structurally; what remains is
    co-occupation by distinct threads with no atomic occupant.
    """
    if program.atomic_thread(state) is not None:
        return False
    q1, q2 = pair
    holders1 = [i for i, (pc, _) in enumerate(state.threads) if pc == q1]
    holders2 = [i for i, (pc, _) in enumerate(state.threads) if pc == q2]
    for i in holders1:
        for j in holders2:
            if i != j:
                return True
    return False


def _search_witnesses(
    cfa: CFA,
    variable: str,
    targets: list[tuple[int, int]],
    n_threads: int,
    max_states: int,
    should_stop: Optional[Callable[[], bool]],
) -> tuple[dict[tuple[int, int], tuple[tuple[int, Edge], ...]], int, bool]:
    """One BFS over ``n_threads`` symmetric copies, watching every target.

    Returns (witnesses found, states visited, stopped-early).  Unlike
    :func:`repro.exec.interp.explore` the search does not stop at the
    first bad state: it keeps going until every target pair has a
    witness or the budget runs out, so one pass serves all pairs.
    """
    program = MultiProgram.symmetric(cfa, n_threads)
    init = program.initial()
    parent: dict[ConcreteState, tuple[ConcreteState, int, Edge] | None] = {
        init: None
    }
    found: dict[tuple[int, int], tuple[tuple[int, Edge], ...]] = {}
    remaining = set(targets)

    def trace_to(state: ConcreteState) -> tuple[tuple[int, Edge], ...]:
        steps: list[tuple[int, Edge]] = []
        cur = state
        while parent[cur] is not None:
            prev, thread, edge = parent[cur]
            steps.append((thread, edge))
            cur = prev
        steps.reverse()
        return tuple(steps)

    def note(state: ConcreteState) -> None:
        if not program.is_race_state(state, variable):
            return
        for pair in list(remaining):
            if _pair_hit(program, state, pair):
                found[pair] = trace_to(state)
                remaining.discard(pair)

    note(init)
    frontier = [init]
    visited = 1
    stopped = False
    while frontier and remaining:
        if should_stop is not None and should_stop():
            stopped = True
            break
        next_frontier: list[ConcreteState] = []
        for state in frontier:
            for thread, edge, nxt in program.successors(state):
                if nxt in parent:
                    continue
                parent[nxt] = (state, thread, edge)
                visited += 1
                note(nxt)
                if not remaining or visited >= max_states:
                    return found, visited, stopped
                next_frontier.append(nxt)
        frontier = next_frontier
    return found, visited, stopped


def racer_check(
    cfa: CFA,
    variable: str,
    max_threads: int = 3,
    max_states: int = 20_000,
    monitors: tuple[Monitor, ...] | None = None,
    mhp: MhpReport | None = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> RacerReport:
    """Run both phases for one shared variable.

    ``should_stop`` is polled between exploration rounds so the
    portfolio driver can cancel a search once another analysis has
    produced a confident verdict; a cancelled report is always
    ``unknown`` and flagged ``cancelled``.
    """
    start = time.perf_counter()
    if monitors is None:
        monitors = infer_monitors(cfa)
    if mhp is None:
        mhp = mhp_analysis(cfa, monitors)

    # Phase 1: escape + locksets + MHP, with a proof per killed pair.
    escaped = may_escape(cfa)
    locks = must_locksets(cfa, monitors)
    if variable not in escaped:
        phase1_ms = (time.perf_counter() - start) * 1000.0
        return RacerReport(
            variable=variable,
            verdict="safe",
            reason="does not escape: no reachable access site",
            pairs=(),
            phase1_ms=phase1_ms,
        )
    candidates = _candidate_pairs(cfa, mhp, variable)
    surviving = set(mhp.conflicting_pairs(cfa, variable))
    statuses: list[PairStatus] = []
    for pair in candidates:
        if pair not in surviving:
            statuses.append(
                PairStatus(
                    pair=pair,
                    status="proved",
                    reason=_pair_proof(mhp, *pair),
                )
            )
    phase1_ms = (time.perf_counter() - start) * 1000.0
    if not candidates:
        return RacerReport(
            variable=variable,
            verdict="safe",
            reason="no write at any access pair (read-only or unwritten)",
            pairs=tuple(statuses),
            phase1_ms=phase1_ms,
        )
    if not surviving:
        held = sorted(
            frozenset.intersection(
                *(locks[q] for pair in candidates for q in pair)
            )
        )
        what = (
            "common " + ", ".join(held) if held else "pairwise exclusion"
        )
        return RacerReport(
            variable=variable,
            verdict="safe",
            reason=f"every conflicting pair proved impossible ({what})",
            pairs=tuple(statuses),
            phase1_ms=phase1_ms,
        )

    # Phase 2: pair-targeted bounded witness search, smallest bound first.
    p2_start = time.perf_counter()
    pending = sorted(surviving)
    witnesses: dict[tuple[int, int], tuple[tuple[int, Edge], ...]] = {}
    thread_count: dict[tuple[int, int], int] = {}
    states_total = 0
    stopped = False
    for n in range(2, max_threads + 1):
        if not pending or stopped:
            break
        found, visited, stopped = _search_witnesses(
            cfa, variable, pending, n, max_states, should_stop
        )
        states_total += visited
        for pair, steps in found.items():
            program = MultiProgram.symmetric(cfa, n)
            ok, _ = replay(program, list(steps), race_on=variable)
            if not ok:
                continue  # forged evidence is worse than none: drop it
            witnesses[pair] = steps
            thread_count[pair] = n
        pending = [p for p in pending if p not in witnesses]

    for pair in sorted(surviving):
        if pair in witnesses:
            statuses.append(
                PairStatus(
                    pair=pair,
                    status="witnessed",
                    reason="interleaving replayed in the interpreter",
                    witness=witnesses[pair],
                    n_threads=thread_count[pair],
                )
            )
        else:
            statuses.append(
                PairStatus(
                    pair=pair,
                    status="undecided",
                    reason=(
                        "cancelled before a verdict"
                        if stopped
                        else f"no witness within {max_threads} threads / "
                        f"{max_states} states"
                    ),
                )
            )
    statuses.sort(key=lambda s: s.pair)
    phase2_ms = (time.perf_counter() - p2_start) * 1000.0

    if witnesses:
        best = min(witnesses, key=lambda p: len(witnesses[p]))
        return RacerReport(
            variable=variable,
            verdict="race",
            reason=f"pair {best} has a replayed interleaving witness",
            pairs=tuple(statuses),
            witness=witnesses[best],
            n_threads=thread_count[best],
            phase1_ms=phase1_ms,
            phase2_ms=phase2_ms,
            states_explored=states_total,
        )
    return RacerReport(
        variable=variable,
        verdict="unknown",
        reason=(
            f"{len(pending)} pair(s) undecided: survived phase 1, "
            "no bounded witness"
        ),
        pairs=tuple(statuses),
        phase1_ms=phase1_ms,
        phase2_ms=phase2_ms,
        states_explored=states_total,
        cancelled=stopped,
    )
