"""Digest-keyed abstract interpretation over the CFA: intervals + locks.

A thread-modular interval analysis in the style of the digest-driven
abstract interpretation line of work: each location gets an interval
environment for the variables in scope, computed as a two-level fixpoint.

* The **inner** fixpoint is a standard intra-thread worklist analysis:
  assignments evaluate their right-hand side in interval arithmetic,
  assumes refine the environment from comparison atoms (and prune the
  branch outright when the guard is definitely false), and per-location
  widening after a few joins guarantees termination on unbounded
  counters.
* The **outer** fixpoint accounts for *interference*: every reachable
  write to a global contributes its abstract value to a global
  interference summary, which is re-joined into the environment at every
  non-atomic location (while a thread occupies an atomic location no
  other thread is scheduled, so atomic regions are interference-free --
  the same scheduling rule that powers the MHP atomic kill).  The
  summary is widened between rounds, so the outer loop terminates too.

The **lock domain** rides along unchanged from the must-lockset
analysis: per-location must-held monitors (including the atomic
pseudo-lock) refute pairs exactly as in MHP.

The verdict is deliberately one-sided: ``safe`` when every conflicting
access pair is refuted -- by *semantic* unreachability (interval-bottom
locations the graph-level MHP cannot see) or by the lock domain -- and
``unknown`` otherwise.  The abstraction over-approximates reachability,
so ``safe`` is sound for every thread count; the analysis never claims a
race, because an abstract race state proves nothing concrete.

Results are keyed by the slice digest of :mod:`repro.engine.digest` and
stored as blobs in the artifact cache: a warm run answers from disk
without touching the fixpoint, and the digest guarantees the cached
summary was computed on a byte-identical relevant slice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

from ..cfa.cfa import CFA, AssignOp, AssumeOp
from ..engine.cache import ArtifactCache
from ..engine.digest import slice_digest
from ..engine.events import EventLog
from ..smt import terms as T
from ..static.mhp import MhpReport
from ..static.protect import Monitor, held_locks, infer_monitors

__all__ = ["Interval", "AbsintReport", "absint_check", "ABSINT_SCHEMA"]

#: Bump when the summary format or the transfer functions change; keyed
#: into every cache blob so stale summaries can never be replayed.
ABSINT_SCHEMA = "absint-v1"

#: Widen a location after this many joins changed its environment.
_WIDEN_AFTER = 4
#: Outer interference rounds before widening the summary, and the hard
#: round cap after which the summary is forced to top (always sound).
_OUTER_WIDEN_AFTER = 3
_OUTER_MAX_ROUNDS = 8


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval; ``None`` means infinity."""

    lo: int | None
    hi: int | None

    def __contains__(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: drop any bound the newer value moved."""
        lo = self.lo
        if lo is not None and (newer.lo is None or newer.lo < lo):
            lo = None
        hi = self.hi
        if hi is not None and (newer.hi is None or newer.hi > hi):
            hi = None
        return Interval(lo, hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)

#: An abstract environment: variable -> interval.  ``None`` stands for
#: bottom (the location is semantically unreachable).
Env = dict[str, Interval]


def _point(value: int) -> Interval:
    return Interval(value, value)


def _env_join(a: Env, b: Env) -> Env:
    out = {}
    for var in set(a) | set(b):
        out[var] = a.get(var, TOP).join(b.get(var, TOP))
    return out


def _eval(term: T.Term, env: Env) -> Interval:
    """Interval evaluation; anything unrecognized is soundly TOP."""
    if isinstance(term, T.IntConst):
        return _point(term.value)
    if isinstance(term, T.Var):
        return env.get(term.name, TOP)
    if isinstance(term, T.Neg):
        a = _eval(term.arg, env)
        hi = None if a.lo is None else -a.lo
        lo = None if a.hi is None else -a.hi
        return Interval(lo, hi)
    if isinstance(term, T.Add):
        lo, hi = 0, 0
        for arg in term.args:
            a = _eval(arg, env)
            lo = None if lo is None or a.lo is None else lo + a.lo
            hi = None if hi is None or a.hi is None else hi + a.hi
        return Interval(lo, hi)
    if isinstance(term, T.Sub):
        a = _eval(term.lhs, env)
        b = _eval(term.rhs, env)
        lo = None if a.lo is None or b.hi is None else a.lo - b.hi
        hi = None if a.hi is None or b.lo is None else a.hi - b.lo
        return Interval(lo, hi)
    if isinstance(term, T.Mul):
        a = _eval(term.lhs, env)
        b = _eval(term.rhs, env)
        if None in (a.lo, a.hi, b.lo, b.hi):
            return TOP
        products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return Interval(min(products), max(products))
    return TOP


def _definitely_false(pred: T.Term, env: Env) -> bool:
    """Can ``pred`` be refuted over the intervals?  (Sound one-sided.)"""
    if isinstance(pred, T.BoolConst):
        return not pred.value
    if isinstance(pred, T.And):
        return any(_definitely_false(a, env) for a in pred.args)
    if isinstance(pred, T.Or):
        return all(_definitely_false(a, env) for a in pred.args)
    if isinstance(pred, T.Not):
        return _definitely_true(pred.arg, env)
    if isinstance(pred, T.Cmp):
        a = _eval(pred.lhs, env)
        b = _eval(pred.rhs, env)
        if pred.op == "==":
            return _disjoint(a, b)
        if pred.op == "!=":
            return (
                a.lo is not None
                and a.lo == a.hi == b.lo == b.hi
            )
        if pred.op == "<":  # false iff a >= b always
            return a.lo is not None and b.hi is not None and a.lo >= b.hi
        if pred.op == "<=":
            return a.lo is not None and b.hi is not None and a.lo > b.hi
        if pred.op == ">":
            return a.hi is not None and b.lo is not None and a.hi <= b.lo
        if pred.op == ">=":
            return a.hi is not None and b.lo is not None and a.hi < b.lo
    return False


def _definitely_true(pred: T.Term, env: Env) -> bool:
    if isinstance(pred, T.BoolConst):
        return pred.value
    if isinstance(pred, T.And):
        return all(_definitely_true(a, env) for a in pred.args)
    if isinstance(pred, T.Or):
        return any(_definitely_true(a, env) for a in pred.args)
    if isinstance(pred, T.Not):
        return _definitely_false(pred.arg, env)
    if isinstance(pred, T.Cmp):
        a = _eval(pred.lhs, env)
        b = _eval(pred.rhs, env)
        if pred.op == "==":
            return (
                a.lo is not None
                and a.lo == a.hi == b.lo == b.hi
            )
        if pred.op == "!=":
            return _disjoint(a, b)
        if pred.op == "<":
            return a.hi is not None and b.lo is not None and a.hi < b.lo
        if pred.op == "<=":
            return a.hi is not None and b.lo is not None and a.hi <= b.lo
        if pred.op == ">":
            return a.lo is not None and b.hi is not None and a.lo > b.hi
        if pred.op == ">=":
            return a.lo is not None and b.hi is not None and a.lo >= b.hi
    return False


def _disjoint(a: Interval, b: Interval) -> bool:
    if a.hi is not None and b.lo is not None and a.hi < b.lo:
        return True
    if b.hi is not None and a.lo is not None and b.hi < a.lo:
        return True
    return False


def _refine(pred: T.Term, env: Env) -> Optional[Env]:
    """Environment after assuming ``pred``; None when definitely false.

    Only comparison atoms with a variable on one side tighten bounds;
    everything else passes the environment through unchanged (sound:
    dropping a constraint only loses precision).
    """
    if _definitely_false(pred, env):
        return None
    out = dict(env)
    if isinstance(pred, T.And):
        for arg in pred.args:
            refined = _refine(arg, out)
            if refined is None:
                return None
            out = refined
        return out
    if isinstance(pred, T.Or):
        branches = [
            r for r in (_refine(a, env) for a in pred.args) if r is not None
        ]
        if not branches:
            return None
        joined = branches[0]
        for b in branches[1:]:
            joined = _env_join(joined, b)
        return joined
    if isinstance(pred, T.Not) and isinstance(pred.arg, T.Cmp):
        inner = pred.arg
        return _refine(
            T.Cmp(T.CMP_NEGATION[inner.op], inner.lhs, inner.rhs), out
        )
    if isinstance(pred, T.Cmp):
        for var_side, other, op in (
            (pred.lhs, pred.rhs, pred.op),
            (pred.rhs, pred.lhs, T.CMP_SWAP[pred.op]),
        ):
            if not isinstance(var_side, T.Var):
                continue
            name = var_side.name
            bound = _eval(other, env)
            cur = out.get(name, TOP)
            out[name] = _tighten(cur, op, bound)
    return out


def _tighten(cur: Interval, op: str, bound: Interval) -> Interval:
    lo, hi = cur.lo, cur.hi
    if op == "==":
        if bound.lo is not None:
            lo = bound.lo if lo is None else max(lo, bound.lo)
        if bound.hi is not None:
            hi = bound.hi if hi is None else min(hi, bound.hi)
    elif op in ("<", "<="):
        limit = bound.hi
        if limit is not None:
            limit = limit - 1 if op == "<" else limit
            hi = limit if hi is None else min(hi, limit)
    elif op in (">", ">="):
        limit = bound.lo
        if limit is not None:
            limit = limit + 1 if op == ">" else limit
            lo = limit if lo is None else max(lo, limit)
    return Interval(lo, hi)


@dataclass
class AbsintReport:
    """The abstract-interpretation verdict for one (template, variable).

    ``reachable`` is the set of *semantically* reachable locations (those
    whose interval environment is not bottom); ``intervals`` maps each of
    them to its post-fixpoint environment; ``locks`` is the unchanged
    must-lockset domain.
    """

    variable: str
    verdict: str  # 'safe' | 'unknown'
    reason: str
    reachable: frozenset[int]
    intervals: dict[int, dict[str, Interval]]
    locks: dict[int, frozenset[str]]
    pairs_refuted: tuple[tuple[int, int], ...] = ()
    pairs_surviving: tuple[tuple[int, int], ...] = ()
    time_ms: float = 0.0
    cached: bool = False
    digest: str = ""


def _fixpoint(
    cfa: CFA, interference: Mapping[str, Interval]
) -> dict[int, Optional[Env]]:
    """One intra-thread interval pass under a fixed interference summary."""
    init: Env = {v: _point(cfa.global_init.get(v, 0)) for v in cfa.globals}
    init.update({v: _point(0) for v in cfa.locals})

    def disturb(q: int, env: Env) -> Env:
        if cfa.is_atomic(q) or not interference:
            return env
        out = dict(env)
        for g, iv in interference.items():
            out[g] = out.get(g, TOP).join(iv)
        return out

    facts: dict[int, Optional[Env]] = {q: None for q in cfa.locations}
    facts[cfa.q0] = disturb(cfa.q0, init)
    joins: dict[int, int] = {}
    worklist = [cfa.q0]
    while worklist:
        q = worklist.pop()
        env = facts[q]
        if env is None:
            continue
        for e in cfa.out(q):
            op = e.op
            if isinstance(op, AssumeOp):
                post = _refine(op.pred, env)
                if post is None:
                    continue
            elif isinstance(op, AssignOp):
                post = dict(env)
                post[op.lhs] = _eval(op.rhs, env)
            else:  # pragma: no cover - the CFA has no other op kinds
                post = dict(env)
            post = disturb(e.dst, post)
            cur = facts[e.dst]
            if cur is None:
                facts[e.dst] = post
                worklist.append(e.dst)
                continue
            joined = _env_join(cur, post)
            if joined == cur:
                continue
            joins[e.dst] = joins.get(e.dst, 0) + 1
            if joins[e.dst] > _WIDEN_AFTER:
                joined = {
                    v: cur.get(v, TOP).widen(iv)
                    for v, iv in joined.items()
                }
            facts[e.dst] = joined
            worklist.append(e.dst)
    return facts


def _interference_of(
    cfa: CFA, facts: dict[int, Optional[Env]]
) -> dict[str, Interval]:
    """The written-value summary: what another thread may do to a global."""
    summary: dict[str, Interval] = {}
    for e in cfa.edges:
        op = e.op
        if not isinstance(op, AssignOp) or op.lhs not in cfa.globals:
            continue
        env = facts.get(e.src)
        if env is None:
            continue  # the write site is itself unreachable
        value = _eval(op.rhs, env)
        prev = summary.get(op.lhs)
        summary[op.lhs] = value if prev is None else prev.join(value)
    return summary


def _summary_leq(
    a: Mapping[str, Interval], b: Mapping[str, Interval]
) -> bool:
    for g, iv in a.items():
        cur = b.get(g)
        if cur is None:
            return False
        if iv.join(cur) != cur:
            return False
    return True


def _analyze(cfa: CFA) -> tuple[dict[int, Optional[Env]], int]:
    """The outer interference fixpoint; returns (facts, rounds)."""
    interference: dict[str, Interval] = {}
    rounds = 0
    while True:
        rounds += 1
        facts = _fixpoint(cfa, interference)
        new = _interference_of(cfa, facts)
        if _summary_leq(new, interference):
            return facts, rounds
        merged = dict(interference)
        for g, iv in new.items():
            prev = merged.get(g)
            grown = iv if prev is None else prev.join(iv)
            if rounds > _OUTER_WIDEN_AFTER and prev is not None:
                grown = prev.widen(grown)
            merged[g] = grown
        if rounds >= _OUTER_MAX_ROUNDS:
            # Force stabilization: top out every written global.
            merged = {g: TOP for g in merged}
            return _fixpoint(cfa, merged), rounds + 1
        interference = merged


def _verdict(
    cfa: CFA,
    variable: str,
    facts: dict[int, Optional[Env]],
    monitors: tuple[Monitor, ...],
    locks: dict[int, frozenset[str]],
) -> tuple[str, str, tuple, tuple, frozenset[int]]:
    """Refute conflicting pairs with semantic reachability + locks.

    Reuses the MHP kill machinery verbatim, but with graph reachability
    replaced by non-bottom interval environments -- a strict refinement,
    since the abstract semantics over-approximates every interleaving.
    """
    reachable = frozenset(q for q, env in facts.items() if env is not None)
    mhp = MhpReport(
        cfa_name=cfa.name,
        reachable=reachable,
        atomic=cfa.atomic,
        held=locks,
        monitors=monitors,
    )
    sites = sorted(q for q in reachable if variable in cfa.accesses_at(q))
    writes = [q for q in sites if variable in cfa.writes_at(q)]
    if not sites:
        return "safe", "no semantically reachable access site", (), (), reachable
    if not writes:
        return "safe", "no semantically reachable write site", (), (), reachable
    refuted = []
    surviving = []
    all_sites = sorted(
        q for q in cfa.locations if variable in cfa.accesses_at(q)
    )
    write_sites = {q for q in all_sites if variable in cfa.writes_at(q)}
    for i, q1 in enumerate(all_sites):
        for q2 in all_sites[i:]:
            if q1 not in write_sites and q2 not in write_sites:
                continue
            if mhp.race_pair(q1, q2):
                surviving.append((q1, q2))
            else:
                refuted.append((q1, q2))
    if not surviving:
        return (
            "safe",
            "every conflicting pair refuted by intervals or locks",
            tuple(refuted),
            (),
            reachable,
        )
    return (
        "unknown",
        f"{len(surviving)} pair(s) not refuted by the abstraction",
        tuple(refuted),
        tuple(surviving),
        reachable,
    )


# -- cache serialization ------------------------------------------------------


def _iv_obj(iv: Interval) -> list:
    return [iv.lo, iv.hi]


def _summary_obj(report: AbsintReport) -> dict:
    return {
        "schema": ABSINT_SCHEMA,
        "variable": report.variable,
        "verdict": report.verdict,
        "reason": report.reason,
        "reachable": sorted(report.reachable),
        "intervals": {
            str(q): {v: _iv_obj(iv) for v, iv in sorted(env.items())}
            for q, env in sorted(report.intervals.items())
        },
        "locks": {
            str(q): sorted(ls) for q, ls in sorted(report.locks.items())
        },
        "pairs_refuted": [list(p) for p in report.pairs_refuted],
        "pairs_surviving": [list(p) for p in report.pairs_surviving],
    }


def _summary_from_obj(obj: dict, digest: str) -> AbsintReport:
    return AbsintReport(
        variable=obj["variable"],
        verdict=obj["verdict"],
        reason=obj["reason"],
        reachable=frozenset(obj["reachable"]),
        intervals={
            int(q): {v: Interval(*iv) for v, iv in env.items()}
            for q, env in obj["intervals"].items()
        },
        locks={
            int(q): frozenset(ls) for q, ls in obj["locks"].items()
        },
        pairs_refuted=tuple(tuple(p) for p in obj["pairs_refuted"]),
        pairs_surviving=tuple(tuple(p) for p in obj["pairs_surviving"]),
        cached=True,
        digest=digest,
    )


def absint_check(
    cfa: CFA,
    variable: str,
    cache: ArtifactCache | None = None,
    events: EventLog | None = None,
    monitors: tuple[Monitor, ...] | None = None,
) -> AbsintReport:
    """Run (or recall) the abstract interpretation for one query.

    With a cache, the summary is keyed by the slice digest: any program
    whose relevant slice is byte-identical -- reformatted, renamed
    outside the slice, edited in unrelated threads -- answers from disk.
    """
    events = events or EventLog()
    digest = slice_digest(cfa, variable)
    key = f"{ABSINT_SCHEMA}:{digest}"
    if cache is not None:
        blob = cache.get_blob("absint", key)
        if blob is not None and blob.get("schema") == ABSINT_SCHEMA:
            events.emit("absint_cache_hit", digest=digest[:12])
            try:
                return _summary_from_obj(blob, digest)
            except (KeyError, TypeError, ValueError):
                pass  # treat a malformed blob as a miss; recompute below
        events.emit("absint_cache_miss", digest=digest[:12])

    start = time.perf_counter()
    if monitors is None:
        monitors = infer_monitors(cfa)
    locks = held_locks(cfa, monitors)
    facts, _rounds = _analyze(cfa)
    verdict, reason, refuted, surviving, reachable = _verdict(
        cfa, variable, facts, monitors, locks
    )
    report = AbsintReport(
        variable=variable,
        verdict=verdict,
        reason=reason,
        reachable=reachable,
        intervals={
            q: env for q, env in facts.items() if env is not None
        },
        locks=locks,
        pairs_refuted=refuted,
        pairs_surviving=surviving,
        time_ms=(time.perf_counter() - start) * 1000.0,
        digest=digest,
    )
    if cache is not None:
        cache.put_blob("absint", key, _summary_obj(report))
    return report
