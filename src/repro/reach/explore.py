"""ReachAndBuild: abstract reachability plus ARG construction
(Algorithms 1-4 of the paper), incremental and frontier-parametric.

The worklist reachability of the abstract multithreaded program
``((C, P), (A, k))`` simultaneously builds the ARG (see
:mod:`repro.reach.arg`).  This module owns the loop itself:

* the expansion order is a pluggable :class:`~repro.reach.frontier.Frontier`
  (BFS by default -- identical to the historical generational order);
* when an :class:`~repro.reach.store.ArgStore` is supplied, abstract posts
  are served from its context-independent memos and whole runs whose input
  signature was seen before return without exploring;
* the wall-clock ``deadline`` is honored on every frontier pop, including
  runs resumed over a warm store -- an expired deadline raises before any
  memo can answer, matching the scratch path's budget contract.
"""

from __future__ import annotations

import time

from ..acfa.acfa import AcfaEdge
from ..context.counters import OMEGA, ContextState
from ..context.state import AbsState, AbstractProgram, CtxMove, MainMove, Move
from .arg import (
    AbstractRaceFound,
    ArgBuilder,
    ReachBudgetExceeded,
    ReachResult,
)
from .frontier import make_frontier
from .store import ArgStore, acfa_signature

__all__ = ["reach_and_build"]


def _run_signature(
    program: AbstractProgram,
    race_on: str | None,
    check_errors: bool,
    omega_start: bool,
    max_states: int,
    frontier: str,
    arg_name: str,
) -> tuple:
    """The complete input signature of one reachability run.

    Two runs with equal signatures explore identical abstract state
    spaces in identical order and therefore produce identical results --
    the deadline is deliberately excluded: serving a memoized result
    never takes longer than recomputing it, so a cached answer is always
    within any budget the scratch run would have met.
    """
    return (
        program.abstractor.mode,
        tuple(program.abstractor.preds),
        program.k,
        acfa_signature(program.acfa),
        race_on,
        check_errors,
        omega_start,
        max_states,
        frontier,
        arg_name,
    )


def reach_and_build(
    program: AbstractProgram,
    race_on: str | None = None,
    check_errors: bool = False,
    omega_start: bool = True,
    max_states: int = 500_000,
    deadline: float | None = None,
    arg_name: str = "arg",
    store: ArgStore | None = None,
    frontier: str = "bfs",
) -> ReachResult:
    """Compute abstract reachability; build the ARG (Algorithm 1).

    Raises :class:`AbstractRaceFound` with the abstract counterexample when
    an error state is reachable, :class:`ReachBudgetExceeded` when the
    state budget -- or the optional ``deadline``, an absolute
    :func:`time.perf_counter` instant -- runs out.

    ``store`` enables incremental reuse across calls; ``frontier`` selects
    the worklist order (``"bfs"``, ``"dfs"``, or ``"depth"``).
    """
    if deadline is not None and time.perf_counter() > deadline:
        raise ReachBudgetExceeded("wall-clock deadline exceeded")

    if store is not None:
        store.bind_cfa(program.cfa)
        sig = _run_signature(
            program,
            race_on,
            check_errors,
            omega_start,
            max_states,
            frontier,
            arg_name,
        )
        hit = store.lookup_result(sig)
        if hit is not None:
            if hit[0] == "race":
                _, trace, state = hit
                raise AbstractRaceFound(list(trace), state)
            return hit[1]

    cfa = program.cfa
    builder = ArgBuilder(cfa, program.abstractor.preds)

    def is_bad(s: AbsState) -> bool:
        if race_on is not None and program.is_race_state(s, race_on):
            return True
        if check_errors and s.pc in cfa.error_locations:
            return True
        return False

    def post(state: AbsState, move: Move) -> AbsState | None:
        """``program.post`` routed through the store's memos when present."""
        if store is None:
            return program.post(state, move)
        if isinstance(move, MainMove):
            edge = move.edge
            region = store.post_main(
                program.abstractor, state.region, edge.op
            )
            if region.is_bottom():
                return None
            return AbsState(edge.dst, region, state.context)
        edge = move.edge
        new_ctx = state.context.move(edge.src, edge.dst, program.k)
        region = store.post_havoc(
            program.abstractor,
            state.region,
            edge.havoc,
            program.acfa.label[edge.dst],
            program.acfa.label[edge.src],
        )
        if region.is_bottom():
            return None
        return AbsState(state.pc, region, new_ctx)

    init = program.initial(omega_start=omega_start)
    builder.set_initial(init.thread_state())

    parent: dict[AbsState, tuple[AbsState, Move] | None] = {init: None}

    # Covering-based pruning: for a fixed (pc, region), a context state with
    # pointwise-larger counts and the same occupied-atomic pattern enables a
    # superset of moves, reaches a superset of races, and produces identical
    # thread-state successors -- so states covered by an explored state can
    # be skipped (WSTS-style).  `covering` maps (pc, region, atomic
    # pattern) to the maximal count vectors seen.
    acfa_atomic = [
        q for q in sorted(program.acfa.locations) if program.acfa.is_atomic(q)
    ]

    def counts_geq(a, b) -> bool:
        for x, y in zip(a, b):
            if x is OMEGA:
                continue
            if y is OMEGA or x < y:
                return False
        return True

    covering: dict[tuple, list] = {}

    def is_covered(state: AbsState) -> bool:
        pattern = tuple(
            (state.context.count(q) is OMEGA or state.context.count(q) > 0)
            for q in acfa_atomic
        )
        key = (state.pc, state.region, pattern)
        counts = state.context.counts
        kept = covering.get(key)
        if kept is None:
            covering[key] = [counts]
            return False
        for other in kept:
            if counts_geq(other, counts):
                return True
        covering[key] = [
            other for other in kept if not counts_geq(counts, other)
        ] + [counts]
        return False

    def trace_to(state: AbsState) -> list[Move]:
        moves: list[Move] = []
        cur = state
        while parent[cur] is not None:
            prev, move = parent[cur]
            moves.append(move)
            cur = prev
        moves.reverse()
        return moves

    def found_race(trace: list[Move], state: AbsState):
        if store is not None:
            store.store_result(sig, ("race", tuple(trace), state))
        return AbstractRaceFound(trace, state)

    if is_bad(init):
        raise found_race([], init)

    reachable_contexts: set[ContextState] = {init.context}
    enabled_ctx: dict[int, set[AcfaEdge]] = {}

    worklist = make_frontier(frontier)
    worklist.push(init, 0)
    explored = 1
    while worklist:
        state, depth = worklist.pop()
        if deadline is not None and time.perf_counter() > deadline:
            raise ReachBudgetExceeded("wall-clock deadline exceeded")
        src_ts = state.thread_state()
        src_loc = builder.find(src_ts)
        for move in program.enabled_moves(state):
            if isinstance(move, CtxMove):
                enabled_ctx.setdefault(src_loc, set()).add(move.edge)
            nxt = post(state, move)
            if nxt is None:
                continue
            # Connect regardless of whether the state was seen: the
            # edge itself may be new.
            if isinstance(move, MainMove):
                builder.connect_main(src_ts, move.edge, nxt.thread_state())
            else:
                builder.connect_ctx(src_ts, nxt.thread_state())
            if nxt in parent:
                continue
            if is_covered(nxt):
                continue
            parent[nxt] = (state, move)
            reachable_contexts.add(nxt.context)
            explored += 1
            if is_bad(nxt):
                raise found_race(trace_to(nxt), nxt)
            if explored > max_states:
                raise ReachBudgetExceeded(
                    f"more than {max_states} abstract states"
                )
            worklist.push(nxt, depth + 1)

    arg, provenance = builder.export(arg_name)
    # Recompute per-export-location data.
    roots = {
        builder._find_root(l) for l in range(len(builder._parent))
    }
    renum = {root: i for i, root in enumerate(sorted(roots))}
    arg_pc = {renum[r]: builder._pc[r] for r in roots}
    state_location = {
        ts: renum[builder._find_root(loc)]
        for ts, loc in builder._state_loc.items()
    }
    enabled_renumed: dict[int, set[AcfaEdge]] = {}
    for loc, edges in enabled_ctx.items():
        enabled_renumed.setdefault(
            renum[builder._find_root(loc)], set()
        ).update(edges)

    result = ReachResult(
        arg=arg,
        provenance=provenance,
        arg_pc=arg_pc,
        states_explored=explored,
        reachable_contexts=reachable_contexts,
        enabled_ctx_edges=enabled_renumed,
        state_location=state_location,
    )
    if store is not None:
        store.store_result(sig, ("ok", result))
    return result
