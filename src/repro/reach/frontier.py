"""Pluggable worklist orderings for the abstract reachability loop.

The exploration in :mod:`repro.reach.explore` is parametric in the order
states are expanded.  ``BfsFrontier`` (the default) is a FIFO queue whose
expansion order is exactly the generational breadth-first order the
verifier has always used, so traces, ARGs, and verdicts are unchanged.
``DfsFrontier`` and ``DepthPriorityFrontier`` reach deep counterexamples
sooner on some workloads; they may visit a different abstract race first
and report different exploration statistics, but soundness (Theorem 1)
does not depend on the order, only on running the worklist to fixpoint.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque

from ..context.state import AbsState

__all__ = [
    "Frontier",
    "BfsFrontier",
    "DfsFrontier",
    "DepthPriorityFrontier",
    "FRONTIERS",
    "make_frontier",
]


class Frontier(ABC):
    """A worklist of (state, depth) pairs awaiting expansion."""

    name: str

    @abstractmethod
    def push(self, state: AbsState, depth: int) -> None: ...

    @abstractmethod
    def pop(self) -> tuple[AbsState, int]:
        """Remove and return the next pair; raises IndexError when empty."""

    @abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        return len(self) > 0


class BfsFrontier(Frontier):
    """First-in first-out: generational breadth-first order."""

    name = "bfs"

    def __init__(self) -> None:
        self._queue: deque[tuple[AbsState, int]] = deque()

    def push(self, state: AbsState, depth: int) -> None:
        self._queue.append((state, depth))

    def pop(self) -> tuple[AbsState, int]:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class DfsFrontier(Frontier):
    """Last-in first-out: depth-first order."""

    name = "dfs"

    def __init__(self) -> None:
        self._stack: list[tuple[AbsState, int]] = []

    def push(self, state: AbsState, depth: int) -> None:
        self._stack.append((state, depth))

    def pop(self) -> tuple[AbsState, int]:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class DepthPriorityFrontier(Frontier):
    """Deepest-first priority order with FIFO tie-breaking.

    Unlike plain DFS this keeps the whole frontier ordered: among states
    of equal depth, insertion order wins, so the ordering is deterministic.
    """

    name = "depth"

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, AbsState]] = []
        self._seq = 0

    def push(self, state: AbsState, depth: int) -> None:
        heapq.heappush(self._heap, (-depth, self._seq, state))
        self._seq += 1

    def pop(self) -> tuple[AbsState, int]:
        neg_depth, _, state = heapq.heappop(self._heap)
        return state, -neg_depth

    def __len__(self) -> int:
        return len(self._heap)


FRONTIERS: dict[str, type[Frontier]] = {
    cls.name: cls
    for cls in (BfsFrontier, DfsFrontier, DepthPriorityFrontier)
}


def make_frontier(name: str) -> Frontier:
    try:
        return FRONTIERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown frontier strategy {name!r}; "
            f"choose from {sorted(FRONTIERS)}"
        ) from None
