"""Persistent ARG store: reuse across CIRC iterations and restarts.

Every CIRC inner iteration (context weakening) and every ``(P, k)``
refinement restart re-explores an abstract state space that is mostly
identical to the previous one -- the outer loop is monotone.  The
:class:`ArgStore` survives across iterations of one ``circ()`` call (or
across calls, when the caller passes one in) and memoizes the units of
work whose keys are *context-independent*, so reuse is exact:

* **main-thread posts** keyed by ``(region, op)`` -- the abstract post of
  a CFA operation does not depend on the context at all;
* **context posts** keyed by ``(region, src_label, havoc, dst_label)`` --
  ACFA location labels are term tuples that recur across collapsed
  contexts, so when Collapse replaces context ``A`` with a weaker ``A'``,
  every move whose labels survived the weakening is served from the memo
  (this is the context-weakening reuse: the re-explored "kept" subtree
  costs hash lookups, and fresh SMT work happens only on the boundary
  where weakened labels produce new keys);
* **omega goodness** keyed by ``(location label, havoc, target label)``
  and **context-only reachability** keyed by the ACFA signature -- the
  omega check re-proves only changed locations;
* **collapse quotients** keyed by the ARG signature;
* whole **reachability results** keyed by the full input signature
  ``(mode, P, k, ACFA, flags)`` -- an identical inner iteration (engine
  warm restarts, repeated queries against one store) is answered without
  exploring at all.

**Subtree invalidation.**  On predicate refinement ``P -> P ∪ NP`` the
cartesian domain upgrades exactly: region literal sets keep their indices
(:meth:`PredicateSet.extended`), and ``Abs_{P∪NP}(φ) = Abs_P(φ) ∪ Δ``
where ``Δ`` holds literals over ``NP`` only.  A memoized post whose key
formulas share no variables with the support of ``NP`` has ``Δ = ∅`` --
neither a new predicate nor its negation is implied by a formula over
disjoint variables (both conjunctions stay satisfiable) -- so the entry
is *kept* and remains the exact abstraction under the extended set.
Entries whose support intersects ``NP`` are invalidated and recomputed
on demand if (and only if) the refined exploration reaches them again.
Nodes are therefore kept iff untouched by the new predicates; the
re-seeded worklist pays SMT only below the refined frontier.

Every memo value is a pure function of its key, so incremental
exploration computes byte-identical verdicts to scratch exploration
(the differential fuzzer referees this).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Optional, Sequence

from ..acfa.acfa import Acfa, acfa_signature
from ..cfa.cfa import CFA, Op
from ..predabs.abstractor import Abstractor
from ..predabs.region import PredicateSet, Region
from ..smt import terms as T
from ..smt.qcache import LruCache

__all__ = ["ArgStore", "acfa_signature"]

#: Bound on each post memo (entries are small: a key tuple and a Region).
POST_MEMO_SIZE = 65_536

#: Bound on the whole-result memo (entries hold full ReachResults).
RESULT_MEMO_SIZE = 256


def _terms_vars(terms: Iterable[T.Term]) -> frozenset[str]:
    out: set[str] = set()
    for t in terms:
        out.update(T.free_vars(t))
    return frozenset(out)


class ArgStore:
    """Cross-iteration reuse store for the incremental reachability loop.

    One store serves one CFA: binding a different CFA object resets every
    memo (the engine keeps reuse *counters* and digests in artifacts, not
    the store itself, so sharing across programs is never attempted).
    """

    def __init__(self) -> None:
        self._cfa: Optional[CFA] = None
        self._abstractor: Optional[Abstractor] = None
        # (region, op) -> (post region, support vars)
        self._main_post = LruCache(POST_MEMO_SIZE)
        # (region, src_label, havoc, dst_label) -> (post region, support)
        self._ctx_post = LruCache(POST_MEMO_SIZE)
        # full input signature -> ('ok', ReachResult) | ('race', trace, state)
        self._results = LruCache(RESULT_MEMO_SIZE)
        # (label_n, havoc, dst_label) -> bool  (omega goodness; pure in key)
        self._omega_good = LruCache(POST_MEMO_SIZE)
        # (acfa sig, init, k, budget) -> context-only reach configs (or None)
        self._ctx_reach: dict = {}
        # (arg sig, locals, name) -> (quotient acfa, mu)
        self._collapse: dict = {}
        self.counters: dict[str, int] = {
            "main_post_hits": 0,
            "main_post_misses": 0,
            "ctx_post_hits": 0,
            "ctx_post_misses": 0,
            "result_hits": 0,
            "result_misses": 0,
            "omega_hits": 0,
            "omega_misses": 0,
            "ctx_reach_hits": 0,
            "ctx_reach_misses": 0,
            "collapse_hits": 0,
            "collapse_misses": 0,
            "entries_kept": 0,
            "entries_invalidated": 0,
            "abstractor_extensions": 0,
            "abstractor_rebuilds": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Drop every memo (counters survive: they describe the session)."""
        self._abstractor = None
        self._main_post.clear()
        self._ctx_post.clear()
        self._results.clear()
        self._omega_good.clear()
        self._ctx_reach.clear()
        self._collapse.clear()

    def bind_cfa(self, cfa: CFA) -> None:
        if self._cfa is cfa:
            return
        if self._cfa is not None:
            self.reset()
        self._cfa = cfa

    # -- the persistent abstractor -------------------------------------------------

    def abstractor_for(self, preds: PredicateSet, mode: str) -> Abstractor:
        """The store's abstractor, upgraded in place for ``preds``.

        Three cases: same predicates -> reuse as is; current predicates a
        prefix of ``preds`` in cartesian mode -> extend incrementally,
        invalidating only post entries whose support meets the new
        predicates; anything else -> rebuild from scratch.
        """
        cur = self._abstractor
        if cur is not None and cur.mode == mode:
            if cur.preds == preds:
                return cur
            if mode == "cartesian" and self._is_prefix(cur.preds, preds):
                new_preds = [
                    preds[i] for i in range(len(cur.preds), len(preds))
                ]
                self._invalidate_for_predicates(new_preds)
                cur.extend(preds)
                self.counters["abstractor_extensions"] += 1
                return cur
        self._abstractor = Abstractor(preds, mode=mode)
        self._main_post.clear()
        self._ctx_post.clear()
        self.counters["abstractor_rebuilds"] += 1
        return self._abstractor

    @staticmethod
    def _is_prefix(old: PredicateSet, new: PredicateSet) -> bool:
        return len(old) <= len(new) and all(
            old[i] is new[i] or old[i] == new[i] for i in range(len(old))
        )

    def _invalidate_for_predicates(self, new_preds: Sequence[T.Term]) -> None:
        """Subtree invalidation: drop post entries touched by ``new_preds``.

        An entry is *touched* when the variables of its key formulas
        intersect the support of some new predicate; only touched entries
        can gain a delta literal under the extended predicate set, so
        untouched entries stay exact and are kept.  Degenerate new
        predicates (valid or unsatisfiable on their own) would add a
        literal even to untouched entries, so they force a full drop --
        the refiner filters them with the same check
        (:func:`repro.circ.refine.is_degenerate`), making this the rare
        path (callers extending a predicate set by hand).
        """
        from ..circ.refine import is_degenerate

        if not new_preds:
            return
        for p in new_preds:
            if is_degenerate(p):
                invalidated = len(self._main_post) + len(self._ctx_post)
                self._main_post.clear()
                self._ctx_post.clear()
                self._results.clear()
                self.counters["entries_invalidated"] += invalidated
                return
        support = _terms_vars(new_preds)
        for memo in (self._main_post, self._ctx_post):
            doomed = [
                key
                for key, (_, entry_vars) in memo.items()
                if entry_vars & support
            ]
            for key in doomed:
                memo.pop(key)
            self.counters["entries_invalidated"] += len(doomed)
            self.counters["entries_kept"] += len(memo)
        # Whole-result entries are keyed by the predicate set, so old
        # results stay valid for old queries; nothing to drop.

    # -- post memos ----------------------------------------------------------------

    def post_main(
        self, abstractor: Abstractor, region: Region, op: Op
    ) -> Region:
        """Memoized ``Abs.P(sp(region, op))``; exact under invalidation."""
        key = (region, op)
        hit = self._main_post.get(key)
        if hit is not None:
            self.counters["main_post_hits"] += 1
            return hit[0]
        self.counters["main_post_misses"] += 1
        post = abstractor.post_op(region, op)
        support = self._region_vars(region, abstractor.preds) | op.reads() | op.writes()
        self._main_post.put(key, (post, frozenset(support)))
        return post

    def post_havoc(
        self,
        abstractor: Abstractor,
        region: Region,
        havoc: frozenset[str],
        dst_label: tuple[T.Term, ...],
        src_label: tuple[T.Term, ...],
    ) -> Region:
        """Memoized context-move post.

        The key mentions only the *labels*, not the ACFA or its location
        numbering -- labels recur across collapsed contexts, which is what
        makes the memo survive context weakening.
        """
        key = (region, src_label, havoc, dst_label)
        hit = self._ctx_post.get(key)
        if hit is not None:
            self.counters["ctx_post_hits"] += 1
            return hit[0]
        self.counters["ctx_post_misses"] += 1
        post = abstractor.post_havoc(
            region, havoc, dst_label, source_label=src_label
        )
        support = (
            self._region_vars(region, abstractor.preds)
            | _terms_vars(src_label)
            | _terms_vars(dst_label)
        )
        self._ctx_post.put(key, (post, frozenset(support)))
        return post

    @staticmethod
    def _region_vars(region: Region, preds: PredicateSet) -> frozenset[str]:
        if region.is_bottom():
            return frozenset()
        out: set[str] = set()
        for idx, _ in region.literals:
            out.update(preds.support(idx))
        return frozenset(out)

    # -- whole-result memo -----------------------------------------------------------

    def lookup_result(self, sig: tuple):
        hit = self._results.get(sig)
        if hit is not None:
            self.counters["result_hits"] += 1
        else:
            self.counters["result_misses"] += 1
        return hit

    def store_result(self, sig: tuple, value: tuple) -> None:
        self._results.put(sig, value)

    # -- omega memos -------------------------------------------------------------------

    def omega_good(
        self,
        label_n: tuple[T.Term, ...],
        havoc: frozenset[str],
        dst_label: tuple[T.Term, ...],
        compute: Callable[[], bool],
    ) -> bool:
        key = (label_n, havoc, dst_label)
        hit = self._omega_good.get(key)
        if hit is not None:
            self.counters["omega_hits"] += 1
            return hit
        self.counters["omega_misses"] += 1
        good = compute()
        self._omega_good.put(key, good)
        return good

    def context_reach(self, key: tuple, compute: Callable[[], object]):
        if key in self._ctx_reach:
            self.counters["ctx_reach_hits"] += 1
            return self._ctx_reach[key]
        self.counters["ctx_reach_misses"] += 1
        value = compute()
        self._ctx_reach[key] = value
        return value

    # -- collapse memo ---------------------------------------------------------------------

    def collapse_quotient(
        self, graph: Acfa, locals_: Iterable[str], name: str = "context"
    ):
        """Memoized weak-bisimulation quotient of an ARG."""
        from ..acfa.collapse import collapse, quotient_key

        key = quotient_key(graph, locals_, name)
        if key in self._collapse:
            self.counters["collapse_hits"] += 1
            return self._collapse[key]
        self.counters["collapse_misses"] += 1
        value = collapse(graph, locals_, name=name)
        self._collapse[key] = value
        return value

    # -- reporting -----------------------------------------------------------------------------

    def approx_entries(self) -> int:
        """Total live memo entries across every tier.

        The serve daemon keeps many hot stores and needs a cheap,
        comparable size signal to enforce its memory ceiling; entry
        counts are proportional to retained regions/results and avoid
        walking object graphs.
        """
        return (
            len(self._main_post)
            + len(self._ctx_post)
            + len(self._results)
            + len(self._omega_good)
            + len(self._ctx_reach)
            + len(self._collapse)
        )

    def reuse_stats(self) -> dict[str, int]:
        """Counters plus current memo sizes, for ``--stats`` and artifacts."""
        out = dict(self.counters)
        out["main_post_size"] = len(self._main_post)
        out["ctx_post_size"] = len(self._ctx_post)
        out["result_size"] = len(self._results)
        out["omega_size"] = len(self._omega_good)
        return out

    def digest(self) -> str:
        """A stable digest of the store's result-memo keys.

        Persisted in engine artifacts next to the reuse counters so a
        warm start can tell whether two runs drew on the same exploration
        history without serializing the store itself.
        """
        h = hashlib.sha256()
        for sig in sorted(repr(k) for k in self._results.keys()):
            h.update(sig.encode())
            h.update(b"\x1f")
        h.update(str(len(self._main_post)).encode())
        h.update(str(len(self._ctx_post)).encode())
        return h.hexdigest()[:16]
