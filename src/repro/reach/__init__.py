"""Incremental abstract reachability: ARG data layer, pluggable
frontiers, the persistent cross-iteration store, and the exploration
loop itself.

Import surface::

    from repro.reach import reach_and_build, ArgStore

``repro.circ.reach`` re-exports everything here for backward
compatibility.
"""

from .arg import (
    AbstractRaceFound,
    ArgBuilder,
    ReachBudgetExceeded,
    ReachResult,
    ThreadState,
)
from .explore import reach_and_build
from .frontier import (
    FRONTIERS,
    BfsFrontier,
    DepthPriorityFrontier,
    DfsFrontier,
    Frontier,
    make_frontier,
)
from .store import ArgStore, acfa_signature

__all__ = [
    "AbstractRaceFound",
    "ReachBudgetExceeded",
    "ReachResult",
    "ArgBuilder",
    "ThreadState",
    "reach_and_build",
    "Frontier",
    "BfsFrontier",
    "DfsFrontier",
    "DepthPriorityFrontier",
    "FRONTIERS",
    "make_frontier",
    "ArgStore",
    "acfa_signature",
]
