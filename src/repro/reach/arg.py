"""The abstract reachability graph under construction (Algorithms 2-4).

``ArgBuilder`` is the union-find-backed ARG the exploration loop grows:
procedure ``Connect`` adds an edge per main-thread operation and procedure
``Union`` unifies the endpoints of environment moves (condition (4) of the
ARG definition requires ``f(s) = f(s')`` across environment edges).
``export`` freezes the graph into an :class:`~repro.acfa.acfa.Acfa` plus
the provenance map the refinement procedure needs to concretize context
operations back into CFA paths.

This module holds the pure data layer of the incremental reachability
framework; the worklist itself lives in :mod:`repro.reach.explore` and the
cross-iteration persistence in :mod:`repro.reach.store`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..acfa.acfa import Acfa, AcfaEdge
from ..cfa.cfa import CFA, AssignOp, Edge
from ..context.counters import ContextState
from ..context.state import AbsState, Move
from ..predabs.region import PredicateSet, Region

__all__ = [
    "AbstractRaceFound",
    "ReachBudgetExceeded",
    "ReachResult",
    "ArgBuilder",
    "ThreadState",
]

#: A thread state of the main thread: (control location, region).
ThreadState = tuple[int, Region]


class AbstractRaceFound(Exception):
    """Raised by the exploration when an abstract error state is reached.

    ``trace`` is the interleaved abstract trace from the initial state:
    a list of moves, each a MainMove (CFA edge) or CtxMove (ACFA edge).
    """

    def __init__(self, trace: list[Move], state: AbsState):
        super().__init__(f"abstract race after {len(trace)} steps")
        self.trace = trace
        self.state = state


class ReachBudgetExceeded(RuntimeError):
    """The abstract state space exceeded the exploration budget."""


class ArgBuilder:
    """Incremental ARG with union-find location merging."""

    def __init__(self, cfa: CFA, preds: PredicateSet):
        self.cfa = cfa
        self.preds = preds
        self._parent: list[int] = []
        self._state_loc: dict[ThreadState, int] = {}
        self._members: dict[int, set[ThreadState]] = {}
        self._pc: dict[int, int] = {}
        # (src_root, dst_root) -> (havoc set, provenance CFA edges); roots
        # are canonicalized lazily at export.
        self._edges: dict[tuple[int, int], tuple[set[str], set[Edge]]] = {}
        self.q0: Optional[int] = None

    # -- union-find --------------------------------------------------------------

    def _find_root(self, loc: int) -> int:
        root = loc
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[loc] != root:
            self._parent[loc], loc = root, self._parent[loc]
        return root

    # -- Algorithm Find ------------------------------------------------------------

    def find(self, ts: ThreadState) -> int:
        """Location containing the thread state, or a fresh one."""
        loc = self._state_loc.get(ts)
        if loc is not None:
            return self._find_root(loc)
        loc = len(self._parent)
        self._parent.append(loc)
        self._state_loc[ts] = loc
        self._members[loc] = {ts}
        self._pc[loc] = ts[0]
        return loc

    # -- Algorithm Union -------------------------------------------------------------

    def union(self, a: int, b: int) -> int:
        ra, rb = self._find_root(a), self._find_root(b)
        if ra == rb:
            return ra
        if self._pc[ra] != self._pc[rb]:
            raise AssertionError(
                "environment moves never change the main thread's pc"
            )
        # Merge smaller into larger.
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra].update(self._members.pop(rb))
        return ra

    # -- Algorithm Connect ---------------------------------------------------------------

    def connect_main(self, src: ThreadState, edge: Edge, dst: ThreadState) -> None:
        """Record a main-thread operation in the graph."""
        a = self.find(src)
        b = self.find(dst)
        if isinstance(edge.op, AssignOp):
            havoc = {edge.op.lhs}
        else:
            havoc = set()
        key = (a, b)
        entry = self._edges.get(key)
        if entry is None:
            self._edges[key] = (set(havoc), {edge})
        else:
            entry[0].update(havoc)
            entry[1].add(edge)

    def connect_ctx(self, src: ThreadState, dst: ThreadState) -> None:
        """An environment move: unify the two locations."""
        self.union(self.find(src), self.find(dst))

    def set_initial(self, ts: ThreadState) -> None:
        self.q0 = self.find(ts)

    # -- export -------------------------------------------------------------------------

    def export(self, name: str = "arg") -> tuple[Acfa, dict[tuple[int, int], frozenset[Edge]]]:
        """Freeze into an ACFA plus edge provenance.

        Location labels are the cartesian hull of the member thread states'
        regions (the literals common to every member) -- a sound
        over-approximation of the disjunction the paper's R map denotes.
        """
        assert self.q0 is not None, "set_initial was never called"
        roots = sorted({self._find_root(l) for l in range(len(self._parent))})
        renum = {root: i for i, root in enumerate(roots)}

        label: dict[int, tuple] = {}
        atomic: set[int] = set()
        for root in roots:
            members = self._members[root]
            common = None
            for (pc, region) in members:
                lits = set(region.literal_terms(self.preds))
                common = lits if common is None else (common & lits)
            label[renum[root]] = tuple(
                sorted(common or (), key=lambda t: repr(t))
            )
            if self.cfa.is_atomic(self._pc[root]):
                atomic.add(renum[root])

        merged_edges: dict[tuple[int, int], tuple[set[str], set[Edge]]] = {}
        for (a, b), (havoc, prov) in self._edges.items():
            ra, rb = renum[self._find_root(a)], renum[self._find_root(b)]
            entry = merged_edges.get((ra, rb))
            if entry is None:
                merged_edges[(ra, rb)] = (set(havoc), set(prov))
            else:
                entry[0].update(havoc)
                entry[1].update(prov)

        acfa = Acfa(
            name=name,
            q0=renum[self._find_root(self.q0)],
            locations=renum.values(),
            label=label,
            edges=[
                AcfaEdge(src, frozenset(h), dst)
                for (src, dst), (h, _) in merged_edges.items()
            ],
            atomic=atomic,
        )
        provenance = {
            key: frozenset(prov)
            for key, (_, prov) in merged_edges.items()
        }
        return acfa, provenance

    def pc_of_root(self, renumbered: dict[int, int]) -> dict[int, int]:
        return {
            renumbered[root]: self._pc[root]
            for root in {self._find_root(l) for l in range(len(self._parent))}
        }

    def location_of(self, ts: ThreadState) -> int | None:
        loc = self._state_loc.get(ts)
        return None if loc is None else self._find_root(loc)


@dataclass
class ReachResult:
    """Outcome of a completed (race-free) reachability run."""

    arg: Acfa
    provenance: dict[tuple[int, int], frozenset[Edge]]
    arg_pc: dict[int, int]
    states_explored: int
    reachable_contexts: set[ContextState]
    enabled_ctx_edges: dict[int, set[AcfaEdge]]
    state_location: dict[ThreadState, int]
