"""Abstract Control Flow Automata (Section 3.3 of the paper).

An ACFA models a context thread: locations are labeled with formulas over
the *global* variables (conjunctions of literals in this implementation),
edges are labeled with sets of havoced globals, and locations may be atomic.
When an abstract thread traverses an edge, the havoced variables receive
arbitrary values subject to the target location's label.

Between any ordered pair of locations at most one edge is kept; parallel
edges merge by unioning their havoc sets (a larger havoc set
over-approximates a smaller one, so the merge is sound -- this mirrors
procedure Connect of the paper).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..smt import terms as T

__all__ = ["Acfa", "AcfaEdge", "acfa_signature", "empty_acfa"]


class AcfaEdge:
    """A havoc edge ``src --Y--> dst``."""

    __slots__ = ("src", "havoc", "dst")

    def __init__(self, src: int, havoc: frozenset[str], dst: int):
        self.src = src
        self.havoc = frozenset(havoc)
        self.dst = dst

    def key(self) -> tuple:
        return (self.src, self.havoc, self.dst)

    def __eq__(self, other):
        return isinstance(other, AcfaEdge) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        vs = ",".join(sorted(self.havoc)) or "-"
        return f"{self.src} --{{{vs}}}--> {self.dst}"


class Acfa:
    """An abstract control flow automaton.

    ``label`` maps each location to a tuple of literal terms over the global
    variables, interpreted conjunctively (empty tuple = true).
    """

    def __init__(
        self,
        name: str,
        q0: int,
        locations: Iterable[int],
        label: Mapping[int, tuple[T.Term, ...]],
        edges: Iterable[AcfaEdge],
        atomic: Iterable[int] = (),
        entries: Iterable[int] | None = None,
    ):
        self.name = name
        self.q0 = q0
        #: Start locations holding the unbounded thread pools.  A symmetric
        #: context has the single entry ``q0``; the disjoint union used for
        #: asymmetric thread sets has one entry per template.
        self.entries = tuple(entries) if entries is not None else (q0,)
        self.locations = frozenset(locations)
        self.atomic = frozenset(atomic)
        self.label = {q: tuple(label.get(q, ())) for q in self.locations}
        merged: dict[tuple[int, int], set[str]] = {}
        for e in edges:
            merged.setdefault((e.src, e.dst), set()).update(e.havoc)
        self.edges = tuple(
            AcfaEdge(src, frozenset(h), dst)
            for (src, dst), h in sorted(
                merged.items(), key=lambda kv: kv[0]
            )
        )
        self._out: dict[int, tuple[AcfaEdge, ...]] = {
            q: () for q in self.locations
        }
        grouped: dict[int, list[AcfaEdge]] = {}
        for e in self.edges:
            grouped.setdefault(e.src, []).append(e)
        for q, es in grouped.items():
            self._out[q] = tuple(es)
        self.validate()

    # -- structure ----------------------------------------------------------------

    def out(self, q: int) -> tuple[AcfaEdge, ...]:
        return self._out[q]

    def is_atomic(self, q: int) -> bool:
        return q in self.atomic

    def is_empty(self) -> bool:
        """The do-nothing context: a single location with no edges."""
        return len(self.locations) == 1 and not self.edges

    @property
    def size(self) -> int:
        """Number of abstract locations (the paper's 'ACFA' column)."""
        return len(self.locations)

    def validate(self) -> None:
        if self.q0 not in self.locations:
            raise ValueError("ACFA start location missing")
        if self.q0 not in self.entries:
            raise ValueError("q0 must be one of the entries")
        for q in self.entries:
            if q not in self.locations:
                raise ValueError(f"entry {q} missing from locations")
            if q in self.atomic:
                raise ValueError("ACFA entry locations must not be atomic")
        for e in self.edges:
            if e.src not in self.locations or e.dst not in self.locations:
                raise ValueError(f"ACFA edge {e!r} mentions unknown location")

    # -- race-relevant access sets ---------------------------------------------------

    def may_write(self, q: int, x: str) -> bool:
        """An abstract thread at ``q`` can write ``x`` iff some out-edge
        havocs it (paper Section 4.1; abstract threads never 'read')."""
        return any(x in e.havoc for e in self.out(q))

    def writes_at(self, q: int) -> frozenset[str]:
        vs: set[str] = set()
        for e in self.out(q):
            vs.update(e.havoc)
        return frozenset(vs)

    # -- rendering --------------------------------------------------------------------

    def __str__(self) -> str:
        lines = [f"ACFA {self.name} (start {self.q0})"]
        for q in sorted(self.locations):
            mark = "*" if q in self.atomic else ""
            lbl = (
                " && ".join(T.pretty(t) for t in self.label[q])
                or "true"
            )
            lines.append(f"  loc {q}{mark}  [{lbl}]")
            for e in self.out(q):
                vs = ",".join(sorted(e.havoc)) or "-"
                lines.append(f"    --{{{vs}}}--> {e.dst}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        lines = [f'digraph "{self.name}" {{']
        for q in sorted(self.locations):
            lbl = " && ".join(T.pretty(t) for t in self.label[q]) or "true"
            star = "*" if q in self.atomic else ""
            lines.append(
                f'  n{q} [label="{q}{star}\\n{lbl}", shape=box];'
            )
        for e in self.edges:
            vs = ",".join(sorted(e.havoc))
            lines.append(f'  n{e.src} -> n{e.dst} [label="{{{vs}}}"];')
        lines.append("}")
        return "\n".join(lines)


def acfa_signature(acfa: Acfa) -> tuple:
    """A hashable value identifying an ACFA up to isomorphism of content.

    Two ACFAs with equal signatures have identical locations, labels,
    havoc edges, atomicity, and entries -- everything the abstract
    semantics reads.  The incremental exploration store keys its
    whole-run, omega, and quotient memos on this.
    """
    locs = tuple(sorted(acfa.locations))
    return (
        acfa.q0,
        acfa.entries,
        locs,
        tuple(sorted(acfa.atomic)),
        tuple((q, acfa.label[q]) for q in locs),
        tuple((e.src, tuple(sorted(e.havoc)), e.dst) for e in acfa.edges),
    )


def empty_acfa(name: str = "empty") -> Acfa:
    """The empty context: one non-atomic location labeled true, no edges.

    This is CIRC's initial context model -- 'the context does nothing'.
    """
    return Acfa(name=name, q0=0, locations=[0], label={0: ()}, edges=[])
