"""Weak bisimulation minimization of abstract reachability graphs
(procedure Collapse, Section 5 of the paper).

Collapse turns the ARG built by ReachAndBuild into a small context model:

1. **Local projection** -- every literal mentioning a local variable of the
   main thread is dropped from location labels ("replaced by unknown"), and
   local variables are removed from havoc sets.  The result speaks only
   about globals, as an ACFA must.
2. **Weak bisimulation quotient** -- locations are partitioned with the
   projected label and the atomic flag as observables.  Edges that havoc
   nothing and connect equi-observable locations are silent (tau); the
   quotient is computed by signature-based partition refinement over the
   tau-saturated move relation, the standard weak-bisimulation algorithm.
3. **Quotient ACFA** -- one location per block, labeled with the block's
   (common) label; parallel edges merge by havoc-set union, so an edge
   collapsed into a block with its endpoints survives as the self-loop the
   paper requires; silent self-moves are dropped (the matching CheckSim
   allows stutter matches for them).

The returned map ``mu`` sends each ARG location to its quotient location,
which the refinement procedure uses to concretize abstract context traces.
"""

from __future__ import annotations


from typing import Iterable

from ..smt import terms as T
from .acfa import Acfa, AcfaEdge, acfa_signature

__all__ = ["collapse", "project_acfa", "quotient_key"]


def quotient_key(
    graph: Acfa, locals_: Iterable[str], name: str = "context"
) -> tuple:
    """The complete set of inputs the quotient is a function of.

    ``collapse`` reads nothing beyond the ARG's structural content, the
    local-variable set it projects away, and the name it stamps on the
    result, so two calls with equal keys return equal ``(acfa, mu)``
    pairs.  The incremental exploration store memoizes ``collapse`` on
    this key, which is what makes the ACFA-unchanged fixpoint iterations
    of CIRC's inner loop re-quotient for free.
    """
    return (acfa_signature(graph), tuple(sorted(locals_)), name)


def project_acfa(graph: Acfa, locals_: frozenset[str], name: str | None = None) -> Acfa:
    """Project an ARG onto the global variables without quotienting.

    Drops local-variable literals from labels and local variables from
    havoc sets.  This is the view of the ARG through the context interface;
    the guarantee check (CheckSim) compares this projection against the
    assumed context ACFA, since context edges never mention locals.
    """
    return Acfa(
        name=name or f"{graph.name}|globals",
        q0=graph.q0,
        locations=graph.locations,
        label={
            q: _project_label(graph.label[q], locals_)
            for q in graph.locations
        },
        edges=[
            AcfaEdge(e.src, e.havoc - locals_, e.dst) for e in graph.edges
        ],
        atomic=graph.atomic,
    )


def _project_label(
    label: tuple[T.Term, ...], locals_: frozenset[str]
) -> tuple[T.Term, ...]:
    kept = [
        lit for lit in label if not (T.free_vars(lit) & locals_)
    ]
    # Canonical order for use as an observable.
    return tuple(sorted(set(kept), key=T.pretty))


def collapse(
    graph: Acfa, locals_: frozenset[str], name: str = "context"
) -> tuple[Acfa, dict[int, int]]:
    """Minimize ``graph`` into a context ACFA; returns (acfa, mu)."""
    locs = sorted(graph.locations)

    plabel = {
        q: _project_label(graph.label[q], locals_) for q in locs
    }
    pedges = [
        AcfaEdge(e.src, e.havoc - locals_, e.dst) for e in graph.edges
    ]

    obs = {q: (plabel[q], graph.is_atomic(q)) for q in locs}

    # --- tau closure -------------------------------------------------------
    tau_succ: dict[int, set[int]] = {q: {q} for q in locs}
    adj: dict[int, list[int]] = {q: [] for q in locs}
    for e in pedges:
        if not e.havoc and obs[e.src] == obs[e.dst]:
            adj[e.src].append(e.dst)
    for q in locs:
        stack = [q]
        while stack:
            cur = stack.pop()
            for nxt in adj[cur]:
                if nxt not in tau_succ[q]:
                    tau_succ[q].add(nxt)
                    stack.append(nxt)

    # --- weak moves: tau* . edge . tau* --------------------------------------
    out_edges: dict[int, list[AcfaEdge]] = {q: [] for q in locs}
    for e in pedges:
        out_edges[e.src].append(e)
    weak: dict[int, set[tuple[frozenset[str], int]]] = {q: set() for q in locs}
    for q in locs:
        for mid in tau_succ[q]:
            for e in out_edges[mid]:
                for end in tau_succ[e.dst]:
                    weak[q].add((e.havoc, end))

    # --- partition refinement --------------------------------------------------
    block: dict[int, int] = {}
    by_obs: dict[tuple, int] = {}
    for q in locs:
        key = obs[q]
        if key not in by_obs:
            by_obs[key] = len(by_obs)
        block[q] = by_obs[key]

    while True:
        sig: dict[int, tuple] = {}
        for q in locs:
            moves: set[tuple[frozenset[str], int]] = set()
            for havoc, end in weak[q]:
                target = block[end]
                if not havoc and target == block[q]:
                    continue  # silent self-block move
                moves.add((havoc, target))
            # Havoc subsumption: an edge that may write Y covers an edge to
            # the same block writing Y' subset-of Y (havoc means "arbitrary
            # write", which includes writing the old value back).  Keeping
            # only maximal havoc sets per target yields the paper's coarser
            # quotient (e.g. merging all three atomic locations of A1 in
            # Figure 2).
            maximal = {
                (h, b)
                for (h, b) in moves
                if not any(
                    h < h2 for (h2, b2) in moves if b2 == b
                )
            }
            sig[q] = (
                block[q],
                frozenset(
                    (tuple(sorted(h)), b) for h, b in maximal
                ),
            )
        remap: dict[tuple, int] = {}
        new_block: dict[int, int] = {}
        for q in locs:
            key = sig[q]
            if key not in remap:
                remap[key] = len(remap)
            new_block[q] = remap[key]
        if new_block == block:
            break
        block = new_block

    # --- quotient construction ----------------------------------------------------
    # Renumber blocks so the initial block is 0 and numbering is dense/stable.
    order: dict[int, int] = {}

    def block_id(b: int) -> int:
        if b not in order:
            order[b] = len(order)
        return order[b]

    block_id(block[graph.q0])
    for q in locs:
        block_id(block[q])

    mu = {q: block_id(block[q]) for q in locs}
    locations = sorted(set(mu.values()))
    label: dict[int, tuple[T.Term, ...]] = {}
    atomic: set[int] = set()
    for q in locs:
        b = mu[q]
        label[b] = plabel[q]
        if graph.is_atomic(q):
            atomic.add(b)
    # The start location hosts the unbounded pool of threads that have not
    # executed anything yet; their presence must not constrain the globals
    # (an initial-region label here would freeze the initial values forever
    # through the context invariant).  Figure 1(c) likewise leaves the start
    # location unlabeled (true).  Weakening a label is always sound.
    label[mu[graph.q0]] = ()

    edges: list[AcfaEdge] = []
    for e in pedges:
        src, dst = mu[e.src], mu[e.dst]
        if src == dst and not e.havoc:
            continue  # silent self-loop: matched by stuttering in CheckSim
        edges.append(AcfaEdge(src, e.havoc, dst))

    acfa = Acfa(
        name=name,
        q0=mu[graph.q0],
        locations=locations,
        label=label,
        edges=edges,
        atomic=atomic,
    )
    return acfa, mu
