"""Abstract control flow automata: structure, simulation, minimization."""

from .acfa import Acfa, AcfaEdge, empty_acfa
from .collapse import collapse
from .simulate import label_entails, simulates, simulation_relation
