"""Simulation checking between ACFAs (procedure CheckSim, Section 4.2).

``simulates(concrete, abstract_)`` decides whether the abstract ACFA
over-approximates the concrete one: the greatest relation R with

* **labels**: the concrete location's label entails the abstract one;
* **atomicity**: matched locations agree on the atomic flag (an abstract
  context that blocks, or fails to block, differently from the behavior it
  summarizes would change the scheduler);
* **edges**: every concrete edge ``q --Y--> q'`` is matched by an abstract
  edge ``a --Y'--> a'`` with ``Y a subset of Y'`` and ``(q', a') in R``.
  An empty-havoc concrete edge may also be matched by *stuttering* (staying
  at ``a``), the weak counterpart of the tau-edges that bisimulation
  minimization collapses: a move that havocs nothing and stays inside the
  abstract location is invisible to the context's interface.

computed by the standard fixpoint [HHK95], with SMT-backed label entailment.
"""

from __future__ import annotations

from typing import Sequence

from ..smt import terms as T
from ..smt.profile import stage
from ..smt.solver import is_sat_conjunction
from .acfa import Acfa

__all__ = ["label_entails", "simulation_relation", "simulates"]


def label_entails(
    antecedent: Sequence[T.Term], consequent: Sequence[T.Term], cache=None
) -> bool:
    """Does the literal conjunction ``antecedent`` entail every literal of
    ``consequent``?"""
    ante = list(antecedent)
    for lit in consequent:
        key = (tuple(ante), lit)
        if cache is not None and key in cache:
            if not cache[key]:
                return False
            continue
        with stage("simulate"):
            holds = not is_sat_conjunction(ante + [T.not_(lit)])
        if cache is not None:
            cache[key] = holds
        if not holds:
            return False
    return True


def simulation_relation(
    concrete: Acfa, abstract_: Acfa
) -> set[tuple[int, int]]:
    """The greatest simulation relation of ``abstract_`` over ``concrete``."""
    cache: dict = {}
    relation: set[tuple[int, int]] = set()
    for q in concrete.locations:
        for a in abstract_.locations:
            if concrete.is_atomic(q) != abstract_.is_atomic(a):
                continue
            if label_entails(concrete.label[q], abstract_.label[a], cache):
                relation.add((q, a))

    changed = True
    while changed:
        changed = False
        for (q, a) in list(relation):
            if (q, a) not in relation:
                continue
            ok = True
            for e in concrete.out(q):
                matched = False
                # Stutter match for invisible moves.
                if not e.havoc and (e.dst, a) in relation:
                    matched = True
                if not matched:
                    for f in abstract_.out(a):
                        if e.havoc <= f.havoc and (e.dst, f.dst) in relation:
                            matched = True
                            break
                if not matched:
                    ok = False
                    break
            if not ok:
                relation.discard((q, a))
                changed = True
    return relation


def simulates(concrete: Acfa, abstract_: Acfa) -> bool:
    """CheckSim: is ``concrete`` over-approximated by ``abstract_``?"""
    relation = simulation_relation(concrete, abstract_)
    return (concrete.q0, abstract_.q0) in relation
