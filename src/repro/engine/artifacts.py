"""JSON serialization of verification artifacts.

Cache entries must survive process boundaries and partial disk writes, so
everything the engine persists -- verdicts, discovered predicate sets,
collapsed context ACFAs, race witnesses -- round-trips through plain JSON
here rather than pickle: a corrupted or truncated entry surfaces as a
:class:`ArtifactError` (or a JSON decode error) that the cache layer
treats as a miss, never as arbitrary code execution or a crash.

Terms serialize structurally (tagged trees mirroring ``Term.key()``),
ACFAs as location/label/edge tables, and results as tagged objects; see
``result_to_obj``/``result_from_obj`` for the top-level entry points.
"""

from __future__ import annotations

from typing import Any

from ..acfa.acfa import Acfa, AcfaEdge
from ..cfa.cfa import AssignOp, AssumeOp, Edge
from ..circ.result import (
    CircResult,
    CircSafe,
    CircStats,
    CircUnknown,
    CircUnsafe,
)
from ..smt import terms as T

__all__ = [
    "ArtifactError",
    "term_to_obj",
    "term_from_obj",
    "acfa_to_obj",
    "acfa_from_obj",
    "result_to_obj",
    "result_from_obj",
]


class ArtifactError(ValueError):
    """A serialized artifact does not match the expected schema."""


# -- terms -------------------------------------------------------------------

_NULLARY = {"nondet"}
_NAMED = {"var", "addrof", "deref"}
_VALUED = {"int", "bool"}
_VARIADIC = {"add", "and", "or"}
_UNARY = {"neg", "not"}
_BINARY = {"sub", "mul", "implies", "iff"}

_TAG_TO_CLASS = {
    "var": T.Var,
    "int": T.IntConst,
    "bool": T.BoolConst,
    "add": T.Add,
    "sub": T.Sub,
    "neg": T.Neg,
    "mul": T.Mul,
    "cmp": T.Cmp,
    "not": T.Not,
    "and": T.And,
    "or": T.Or,
    "implies": T.Implies,
    "iff": T.Iff,
}


def term_to_obj(t: T.Term) -> Any:
    """Serialize a term as a tagged JSON tree."""
    tag = t.key()[0]
    if tag in _NULLARY:
        return [tag]
    if tag in _NAMED:
        return [tag, t.name]
    if tag in _VALUED:
        return [tag, t.value]
    if tag in _VARIADIC:
        return [tag, [term_to_obj(a) for a in t.args]]
    if tag in _UNARY:
        return [tag, term_to_obj(t.arg)]
    if tag in _BINARY:
        return [tag, term_to_obj(t.lhs), term_to_obj(t.rhs)]
    if tag == "cmp":
        return [tag, t.op, term_to_obj(t.lhs), term_to_obj(t.rhs)]
    raise ArtifactError(f"cannot serialize term {t!r}")


def term_from_obj(obj: Any) -> T.Term:
    """Rebuild a term from its tagged JSON tree."""
    if not isinstance(obj, list) or not obj:
        raise ArtifactError(f"malformed term payload {obj!r}")
    tag = obj[0]
    try:
        if tag in _NULLARY:
            from ..lang.ast import NONDET

            return NONDET
        if tag in _NAMED:
            if tag == "var":
                return T.Var(obj[1])
            from ..lang import ast as A

            return (A.AddrOf if tag == "addrof" else A.Deref)(obj[1])
        if tag in _VALUED:
            return _TAG_TO_CLASS[tag](obj[1])
        if tag in _VARIADIC:
            return _TAG_TO_CLASS[tag](
                tuple(term_from_obj(a) for a in obj[1])
            )
        if tag in _UNARY:
            return _TAG_TO_CLASS[tag](term_from_obj(obj[1]))
        if tag in _BINARY:
            return _TAG_TO_CLASS[tag](
                term_from_obj(obj[1]), term_from_obj(obj[2])
            )
        if tag == "cmp":
            return T.Cmp(obj[1], term_from_obj(obj[2]), term_from_obj(obj[3]))
    except (IndexError, TypeError, KeyError) as exc:
        raise ArtifactError(f"malformed term payload {obj!r}") from exc
    raise ArtifactError(f"unknown term tag {tag!r}")


# -- CFA edges (race witnesses) ----------------------------------------------


def _edge_to_obj(e: Edge) -> Any:
    if isinstance(e.op, AssignOp):
        op = ["assign", e.op.lhs, term_to_obj(e.op.rhs)]
    else:
        op = ["assume", term_to_obj(e.op.pred)]
    return {
        "src": e.src,
        "dst": e.dst,
        "op": op,
        "lock": list(e.lock_info) if e.lock_info else None,
    }


def _edge_from_obj(obj: Any) -> Edge:
    try:
        kind = obj["op"][0]
        if kind == "assign":
            op = AssignOp(obj["op"][1], term_from_obj(obj["op"][2]))
        elif kind == "assume":
            op = AssumeOp(term_from_obj(obj["op"][1]))
        else:
            raise ArtifactError(f"unknown op kind {kind!r}")
        lock = tuple(obj["lock"]) if obj.get("lock") else None
        return Edge(int(obj["src"]), op, int(obj["dst"]), lock)
    except (KeyError, IndexError, TypeError) as exc:
        raise ArtifactError(f"malformed edge payload {obj!r}") from exc


# -- ACFAs -------------------------------------------------------------------


def acfa_to_obj(acfa: Acfa) -> Any:
    return {
        "name": acfa.name,
        "q0": acfa.q0,
        "entries": sorted(acfa.entries),
        "locations": sorted(acfa.locations),
        "atomic": sorted(acfa.atomic),
        "label": {
            str(q): [term_to_obj(t) for t in acfa.label[q]]
            for q in sorted(acfa.locations)
        },
        "edges": [
            [e.src, sorted(e.havoc), e.dst] for e in acfa.edges
        ],
    }


def acfa_from_obj(obj: Any) -> Acfa:
    try:
        return Acfa(
            name=obj["name"],
            q0=int(obj["q0"]),
            locations=[int(q) for q in obj["locations"]],
            label={
                int(q): tuple(term_from_obj(t) for t in terms)
                for q, terms in obj["label"].items()
            },
            edges=[
                AcfaEdge(int(src), frozenset(havoc), int(dst))
                for src, havoc, dst in obj["edges"]
            ],
            atomic=[int(q) for q in obj["atomic"]],
            entries=[int(q) for q in obj["entries"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed ACFA payload: {exc}") from exc


# -- stats and results -------------------------------------------------------


def _stats_to_obj(stats: CircStats) -> Any:
    obj = {
        "outer_iterations": stats.outer_iterations,
        "inner_iterations": stats.inner_iterations,
        "n_predicates": stats.n_predicates,
        "final_acfa_size": stats.final_acfa_size,
        "abstract_states": stats.abstract_states,
        "final_k": stats.final_k,
        "elapsed_seconds": stats.elapsed_seconds,
    }
    # Incremental-exploration telemetry: reuse counters and the ArgStore
    # digest travel with the artifact so warm starts can report how much
    # exploration history they inherited.  Optional for compatibility
    # with artifacts written before the incremental engine existed.
    if stats.reuse is not None:
        obj["reuse"] = {k: int(v) for k, v in sorted(stats.reuse.items())}
    if stats.store_digest is not None:
        obj["store_digest"] = stats.store_digest
    return obj


def _stats_from_obj(obj: Any) -> CircStats:
    try:
        reuse = obj.get("reuse")
        if reuse is not None and not isinstance(reuse, dict):
            raise ValueError("reuse must be a mapping")
        digest = obj.get("store_digest")
        if digest is not None and not isinstance(digest, str):
            raise ValueError("store_digest must be a string")
        return CircStats(
            outer_iterations=int(obj["outer_iterations"]),
            inner_iterations=int(obj["inner_iterations"]),
            n_predicates=int(obj["n_predicates"]),
            final_acfa_size=int(obj["final_acfa_size"]),
            abstract_states=int(obj["abstract_states"]),
            final_k=int(obj["final_k"]),
            elapsed_seconds=float(obj["elapsed_seconds"]),
            reuse={k: int(v) for k, v in reuse.items()} if reuse else None,
            store_digest=digest,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed stats payload: {exc}") from exc


def result_to_obj(result: CircResult) -> Any:
    """Serialize any CIRC verdict (including static proofs, which
    round-trip as plain ``CircSafe``: the cache stores what was proved,
    not which layer proved it -- the job record keeps that)."""
    if isinstance(result, CircSafe):
        return {
            "kind": "safe",
            "variable": result.variable,
            "predicates": [term_to_obj(p) for p in result.predicates],
            "context": acfa_to_obj(result.context),
            "stats": _stats_to_obj(result.stats),
        }
    if isinstance(result, CircUnsafe):
        return {
            "kind": "race",
            "variable": result.variable,
            "n_threads": result.n_threads,
            "steps": [
                [tid, _edge_to_obj(edge)] for tid, edge in result.steps
            ],
            "predicates": [term_to_obj(p) for p in result.predicates],
            "stats": _stats_to_obj(result.stats),
        }
    if isinstance(result, CircUnknown):
        return {
            "kind": "unknown",
            "variable": result.variable,
            "reason": result.reason,
            "predicates": [term_to_obj(p) for p in result.predicates],
            "stats": _stats_to_obj(result.stats),
        }
    raise ArtifactError(f"cannot serialize result {result!r}")


def result_from_obj(obj: Any) -> CircResult:
    """Rebuild a verdict; raises :class:`ArtifactError` on any mismatch."""
    if not isinstance(obj, dict):
        raise ArtifactError(f"malformed result payload {obj!r}")
    kind = obj.get("kind")
    try:
        if kind == "safe":
            return CircSafe(
                variable=obj["variable"],
                predicates=tuple(
                    term_from_obj(p) for p in obj["predicates"]
                ),
                context=acfa_from_obj(obj["context"]),
                stats=_stats_from_obj(obj["stats"]),
            )
        if kind == "race":
            return CircUnsafe(
                variable=obj["variable"],
                steps=[
                    (int(tid), _edge_from_obj(edge))
                    for tid, edge in obj["steps"]
                ],
                n_threads=int(obj["n_threads"]),
                predicates=tuple(
                    term_from_obj(p) for p in obj["predicates"]
                ),
                stats=_stats_from_obj(obj["stats"]),
            )
        if kind == "unknown":
            return CircUnknown(
                variable=obj["variable"],
                reason=obj["reason"],
                predicates=tuple(
                    term_from_obj(p) for p in obj["predicates"]
                ),
                stats=_stats_from_obj(obj["stats"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed result payload: {exc}") from exc
    raise ArtifactError(f"unknown result kind {kind!r}")
