"""Content-addressed digests of verification problems.

The cache key for a (program, variable) query is a SHA-256 digest of the
*canonical rendering of the lowered CFA slice relevant to the variable*,
in the style of the digest-keyed incremental abstract interpretation of
Schwarz & Erhard (2025): reuse is keyed on the content actually analyzed,
never on file names or timestamps.

Slice definition
----------------

Starting from the race variable ``x``, the *relevant set* ``R`` is the
least set of variables containing ``x`` that is closed under

* **data flow**: if an edge assigns ``v := e`` with ``v`` in ``R``, all
  variables of ``e`` are in ``R``;
* **control flow**: all variables of every assume predicate are in ``R``
  (guards shape reachability, which shapes everything -- this is the
  conservative closure, never the minimal one).

The slice keeps the *entire* CFA graph -- every location, edge, atomic
mark, and error mark -- but normalizes the operation of every edge that
writes no variable of ``R``: such an operation is an identity on the
``R``-portion of the state, so it renders as the canonical token
``havoc``, or as ``read x`` when it reads the query variable (that read
access is race-relevant even though the write target is not).  Assume
edges always render verbatim: their variables are in ``R`` by
construction, and a blocking guard is not an identity.  Names of
irrelevant variables therefore never reach the rendering, which makes
the digest stable under alpha-renaming outside ``R`` (property-tested
in ``tests/fuzz/test_properties.py``).  Two programs with identical
slices have identical abstract semantics with respect to any predicate
set over ``R`` and identical race conditions on ``x``: a cache hit is
sound (see docs/ALGORITHM.md section 8 for the full argument).

Canonical rendering
-------------------

Locations are renumbered densely in BFS order from the start location,
visiting the out-edges of each location sorted by (operation text,
original target); operations are rendered through the same normalization
:mod:`repro.lang.unparse` uses for expressions, so formatting details of
the original source (whitespace, redundant parentheses, statement sugar
that lowers identically) never reach the digest.  The rendering also
pins the initial values of the relevant globals, which are part of the
verified semantics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..cfa.cfa import CFA, AssignOp, AssumeOp, Edge
from ..lang.unparse import unparse_expr

__all__ = [
    "SliceView",
    "relevant_variables",
    "slice_view",
    "slice_digest",
    "shape_key",
]

#: Bump when the rendering format changes; keyed into every digest so
#: stale cache entries from older layouts can never collide.
DIGEST_SCHEMA = "circ-slice-v2"


def _op_text(op) -> str:
    """Render one CFA operation through the unparse normalization."""
    if isinstance(op, AssignOp):
        return f"{op.lhs} := {unparse_expr(op.rhs)}"
    if isinstance(op, AssumeOp):
        return f"[{unparse_expr(op.pred)}]"
    raise TypeError(f"cannot render {op!r}")


def relevant_variables(cfa: CFA, variable: str) -> frozenset[str]:
    """The conservative relevant-variable closure for ``variable``."""
    relevant: set[str] = {variable}
    for e in cfa.edges:
        if isinstance(e.op, AssumeOp):
            relevant.update(e.op.reads())
    changed = True
    while changed:
        changed = False
        for e in cfa.edges:
            if isinstance(e.op, AssignOp) and e.op.lhs in relevant:
                new = e.op.reads() - relevant
                if new:
                    relevant.update(new)
                    changed = True
    return frozenset(relevant)


@dataclass(frozen=True)
class SliceView:
    """The canonical rendering of a slice, plus its digest."""

    variable: str
    relevant: frozenset[str]
    text: str
    digest: str


def _edge_line(e: Edge, relevant: frozenset[str], variable: str) -> str:
    op = e.op
    if isinstance(op, AssumeOp):
        # Guards always render: their variables are relevant by
        # construction, and a blocking predicate is not an identity.
        return _op_text(op)
    if op.writes() & relevant:
        return _op_text(op)
    # Writes no relevant variable: an identity on the R-portion of the
    # state.  The only race-relevant fact left is a read access of the
    # query variable itself; render it as a canonical token so names of
    # irrelevant variables (the write target, other operands) never
    # reach the digest.
    if variable in op.reads():
        return f"read {variable}"
    return "havoc"


def slice_view(cfa: CFA, variable: str) -> SliceView:
    """Compute the canonical slice rendering and digest for a query."""
    relevant = relevant_variables(cfa, variable)

    # Deterministic BFS renumbering: out-edges ordered by rendered
    # operation text, then original target.
    edge_keys: dict[int, list[tuple[str, int, Edge]]] = {}
    for e in cfa.edges:
        edge_keys.setdefault(e.src, []).append(
            (_edge_line(e, relevant, variable), e.dst, e)
        )
    for lines in edge_keys.values():
        lines.sort(key=lambda item: (item[0], item[1]))

    order: list[int] = []
    renum: dict[int, int] = {}
    queue = [cfa.q0]
    renum[cfa.q0] = 0
    while queue:
        q = queue.pop(0)
        order.append(q)
        for _, dst, _e in edge_keys.get(q, ()):
            if dst not in renum:
                renum[dst] = len(renum)
                queue.append(dst)
    # Locations unreachable from q0 (none after lowering's contraction,
    # but possible for hand-built CFAs) are appended in sorted order so
    # they still render deterministically.
    for q in sorted(cfa.locations):
        if q not in renum:
            renum[q] = len(renum)
            order.append(q)

    lines = [
        DIGEST_SCHEMA,
        f"var {variable}",
        "globals "
        + " ".join(
            f"{g}={cfa.global_init.get(g, 0)}"
            for g in sorted(cfa.globals & relevant)
        ),
    ]
    for q in order:
        marks = ""
        if q in cfa.atomic:
            marks += "*"
        if q in cfa.error_locations:
            marks += "!"
        lines.append(f"loc {renum[q]}{marks}")
        for text, dst, _e in edge_keys.get(q, ()):
            lines.append(f"  {text} -> {renum[dst]}")
    rendering = "\n".join(lines)
    digest = hashlib.sha256(rendering.encode()).hexdigest()
    return SliceView(
        variable=variable,
        relevant=relevant,
        text=rendering,
        digest=digest,
    )


def slice_digest(cfa: CFA, variable: str) -> str:
    """The content digest keying the artifact cache for this query."""
    return slice_view(cfa, variable).digest


def shape_key(cfa: CFA, variable: str) -> str:
    """A coarse digest used for predicate warm-starting.

    Keyed on the variable name and the multiset of rendered operations
    that access it: two slices with the same shape usually need the same
    synchronization predicates even when surrounding control flow
    changed, so a shape hit seeds CIRC's predicate set from the cached
    entry (warm start), cutting refinement iterations.  Shape hits never
    bypass verification -- only the exact slice digest does.
    """
    ops = sorted(
        _op_text(e.op)
        for e in cfa.edges
        if variable in (e.op.reads() | e.op.writes())
    )
    payload = "\n".join([DIGEST_SCHEMA, "shape", variable, *ops])
    return hashlib.sha256(payload.encode()).hexdigest()
