"""Job execution: worker pool, budgets, crash recovery, serial fallback.

The scheduler takes the planner's deduplicated worklist and resolves
every job through a three-level strategy:

1. **cache** -- the artifact cache answers byte-identical slices
   immediately (and seeds predicates for near-matches via the shape
   index);
2. **parallel** -- remaining jobs fan out over a ``multiprocessing``
   worker pool; each worker runs CIRC under the job's iteration and
   wall-clock budgets, so a divergent refinement sequence degrades to a
   clean ``UNKNOWN`` instead of wedging a worker forever;
3. **serial fallback** -- pool creation failure, a worker killed
   mid-job (``BrokenProcessPool``), or an unpicklable payload all
   degrade to in-process execution of the affected jobs, so a batch
   always completes with a full verdict table.

Workers communicate results as JSON-ready artifact objects (see
:mod:`repro.engine.artifacts`) rather than pickled verifier internals:
transport stays robust to class-layout drift between engine versions.
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from ..circ.circ import CircBudgetExceeded, CircError, circ
from ..circ.result import CircStats, CircUnknown
from ..lang.lower import lower_source
from .artifacts import result_from_obj, result_to_obj, term_from_obj, term_to_obj
from .cache import ArtifactCache
from .events import EventLog
from .planner import Job, JobResult, _verdict_of, options_fingerprint

__all__ = ["execute"]


def _run_job_payload(
    payload: dict,
    *,
    cfa=None,
    store=None,
    cache: ArtifactCache | None = None,
    book=None,
    events: EventLog | None = None,
) -> dict:
    """Execute one verification job (runs inside a worker process or,
    on fallback, in-process).  Pure function of its payload; returns a
    JSON-ready result record and never raises.

    The keyword-only parameters are the serve daemon's hot-state hooks:
    a pre-lowered ``cfa`` (so a long-lived :class:`~repro.reach.store
    .ArgStore` keeps its binding -- the store resets when bound to a new
    CFA object), a persistent ``store`` threaded into ``circ``, and
    in-process ``cache``/``book`` handles for portfolio jobs.  Pool
    workers never pass them, so the multiprocessing path is unchanged.
    """
    if payload.get("_test_kill_worker"):
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(137)  # simulate a crashed/OOM-killed worker
    # Imported here, not at module top: the portfolio package sits on
    # the engine's cache/events modules, so a top-level import would
    # close an import cycle through the engine package __init__.
    from ..portfolio.driver import PortfolioConflict

    start = time.perf_counter()
    variable = payload["variable"]
    extras: dict = {}
    try:
        if cfa is None:
            cfa = lower_source(payload["source"], payload["thread"])
        options = dict(payload["options"])
        seeds = tuple(
            term_from_obj(p) for p in payload.get("seed_predicates", ())
        )
        if seeds:
            existing = tuple(options.pop("initial_predicates", ()))
            options["initial_predicates"] = existing + seeds
        if options.pop("portfolio", False):
            result = _run_portfolio_job(
                cfa,
                variable,
                payload,
                options,
                extras,
                cache=cache,
                book=book,
                events=events,
            )
        else:
            if store is not None:
                options.setdefault("store", store)
            result = circ(cfa, race_on=variable, **options)
    except CircBudgetExceeded as exc:
        result = exc.result
    except CircError as exc:
        result = CircUnknown(
            variable=variable,
            reason=str(exc),
            predicates=(),
            stats=CircStats(),
        )
    except PortfolioConflict as exc:
        # A confident disagreement between analyses is evidence of an
        # unsoundness bug.  It must not sink the batch, but it must stay
        # loudly visible: the verdict is UNKNOWN (never either party's
        # claim) and the reason names the conflict for the event log.
        result = CircUnknown(
            variable=variable,
            reason=f"PORTFOLIO CONFLICT: {exc.detail}",
            predicates=(),
            stats=CircStats(),
        )
        extras["conflict"] = exc.detail
    except Exception as exc:  # a verifier bug must not sink the batch
        result = CircUnknown(
            variable=variable,
            reason=f"internal error: {type(exc).__name__}: {exc}",
            predicates=(),
            stats=CircStats(),
        )
    # One timing record for every consumer: the verifier's own
    # CircStats.elapsed_seconds is authoritative (the CLI --stats table
    # reads the same field), and the scheduler's clock only fills in for
    # paths where circ never finalized its stats (lowering failures,
    # internal errors).
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    if result.stats.elapsed_seconds > 0.0 and not extras:
        elapsed_ms = result.stats.elapsed_seconds * 1000.0
    record = {
        "job_id": payload["job_id"],
        "result": result_to_obj(result),
        "warm": bool(payload.get("seed_predicates")),
        "elapsed_ms": elapsed_ms,
    }
    record.update(extras)
    return record


def _run_portfolio_job(
    cfa, variable, payload, options, extras, cache=None, book=None,
    events=None,
):
    """Resolve one job through the analysis portfolio.

    Without in-process handles, the worker rebuilds its own on the
    shared cache root (blob reads/writes are atomic and checksummed, and
    the win-rate book's save is a locked read-merge-write), so warm
    absint summaries and learned scheduling order survive across batch
    workers.  The serve daemon passes its hot ``cache``/``book``
    directly instead.
    """
    from ..portfolio.driver import run_portfolio
    from ..portfolio.winrate import WinRateBook

    cache_root = payload.get("cache_root")
    if cache is None and cache_root:
        cache = ArtifactCache(cache_root)
    if book is None and cache_root:
        book = WinRateBook(os.path.join(cache_root, "winrates.json"))
    report = run_portfolio(
        cfa,
        variable,
        source=payload["source"],
        thread=payload["thread"],
        cache=cache,
        winrates=book,
        events=events,
        **options,
    )
    extras["portfolio_winner"] = report.winner
    extras["portfolio_cancelled"] = list(report.cancelled)
    extras["portfolio_ms"] = {
        o.analysis: round(o.time_ms, 3) for o in report.outcomes
    }
    return report.to_circ_result()


def _job_payload(
    job: Job,
    seeds: tuple,
    test_kill: bool = False,
    cache_root: str | None = None,
) -> dict:
    payload = {
        "job_id": job.job_id,
        "source": job.source,
        "thread": job.thread,
        "variable": job.variable,
        "options": dict(job.options),
        "seed_predicates": [term_to_obj(p) for p in seeds],
    }
    if cache_root is not None and job.options.get("portfolio"):
        payload["cache_root"] = cache_root
    if test_kill:
        payload["_test_kill_worker"] = True
    return payload


def _fan_out(
    job: Job,
    record: dict,
    source: str,
    results: dict[tuple[str, str], JobResult],
) -> None:
    """Translate one job record into a JobResult per (model, variable)."""
    result = result_from_obj(record["result"])
    for model, variable in job.aliases:
        results[(model, variable)] = JobResult(
            model=model,
            variable=variable,
            verdict=_verdict_of(result),
            source=source,
            time_ms=record["elapsed_ms"],
            detail=getattr(result, "reason", ""),
            result=result,
            digest=job.digest,
        )


def _finish(
    job: Job,
    record: dict,
    events: EventLog,
    cache: ArtifactCache | None,
    results: dict[tuple[str, str], JobResult],
) -> None:
    """Cache, log, and fan out one computed job record."""
    result = result_from_obj(record["result"])
    if "portfolio_winner" in record:
        winner = record["portfolio_winner"] or "none"
        source = f"portfolio:{winner}"
    else:
        source = "circ-warm" if record.get("warm") else "circ"
    if cache is not None:
        cache.put(
            job.digest,
            result,
            options_fingerprint(job.options),
            shape=job.shape,
        )
    reuse = result.stats.reuse or {}
    events.emit(
        "job_finished",
        job_id=job.job_id,
        verdict=_verdict_of(result),
        warm=bool(record.get("warm")),
        elapsed_ms=round(record["elapsed_ms"], 3),
        iterations=result.stats.inner_iterations,
        reuse_hits=sum(
            v for k, v in reuse.items() if k.endswith("_hits")
        ),
        store_digest=result.stats.store_digest or "",
        **{
            k: record[k]
            for k in (
                "portfolio_winner",
                "portfolio_cancelled",
                "portfolio_ms",
                "conflict",
            )
            if k in record
        },
    )
    _fan_out(job, record, source, results)


def _run_pool(
    pending: dict[int, tuple[Job, dict]],
    workers: int,
    events: EventLog,
) -> list[tuple[Job, dict]]:
    """Drain as much of ``pending`` as possible through a process pool.

    Returns the (job, record) pairs the pool completed, removing them
    from ``pending``; jobs whose worker crashed or whose submission
    failed stay in ``pending`` for the caller's serial pass.
    """
    completed: list[tuple[Job, dict]] = []
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # multiprocessing unavailable on this platform
        events.emit("pool_unavailable", reason="no concurrent.futures")
        return completed
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, RuntimeError) as exc:
        events.emit("pool_unavailable", reason=str(exc))
        return completed

    events.emit("pool_started", workers=workers, jobs=len(pending))
    try:
        futures = {}
        for job_id, (job, payload) in pending.items():
            events.emit("job_started", job_id=job.job_id, mode="pool")
            try:
                futures[executor.submit(_run_job_payload, payload)] = job
            except Exception as exc:  # submission/pickling failure
                events.emit(
                    "worker_failed", job_id=job.job_id, reason=str(exc)
                )
        for future, job in futures.items():
            try:
                record = future.result()
            except BrokenProcessPool:
                events.emit(
                    "worker_failed",
                    job_id=job.job_id,
                    reason="worker process died; retrying serially",
                )
                continue
            except Exception as exc:
                events.emit(
                    "worker_failed", job_id=job.job_id, reason=str(exc)
                )
                continue
            completed.append((job, record))
            del pending[job.job_id]
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return completed


def execute(
    jobs: Sequence[Job],
    cache: ArtifactCache | None = None,
    events: EventLog | None = None,
    workers: int | None = None,
    warm_start: bool = True,
    _test_kill_first_attempt: bool = False,
) -> dict[tuple[str, str], JobResult]:
    """Run a worklist to completion; returns results per (model, variable).

    ``workers=None`` picks ``os.cpu_count()`` capped by the worklist
    size; ``workers<=1`` runs everything in-process.  The private
    ``_test_kill_first_attempt`` knob makes pool workers die on their
    first attempt, exercising the crash-recovery path in tests.
    """
    events = events or EventLog()
    results: dict[tuple[str, str], JobResult] = {}
    pending: dict[int, tuple[Job, dict]] = {}

    for job in jobs:
        fp = options_fingerprint(job.options)
        entry = cache.get(job.digest, fp) if cache is not None else None
        if entry is not None:
            events.emit(
                "cache_hit",
                job_id=job.job_id,
                digest=job.digest[:12],
                verdict=_verdict_of(entry.result),
            )
            _fan_out(
                job,
                {"result": result_to_obj(entry.result), "elapsed_ms": 0.0},
                "cache",
                results,
            )
            continue
        events.emit("cache_miss", job_id=job.job_id, digest=job.digest[:12])
        seeds: tuple = ()
        if cache is not None and warm_start:
            seeds = cache.seed_predicates(job.shape, fp)
            if seeds:
                events.emit(
                    "warm_start",
                    job_id=job.job_id,
                    n_predicates=len(seeds),
                )
        pending[job.job_id] = (
            job,
            _job_payload(
                job,
                seeds,
                _test_kill_first_attempt,
                cache_root=str(cache.root) if cache is not None else None,
            ),
        )

    if not pending:
        return results

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(pending)))

    if workers > 1:
        for job, record in _run_pool(pending, workers, events):
            _finish(job, record, events, cache, results)

    # Serial pass: everything never attempted, plus everything whose
    # worker died.  In-process execution cannot lose a job.
    for job, payload in list(pending.values()):
        payload.pop("_test_kill_worker", None)
        events.emit("job_started", job_id=job.job_id, mode="serial")
        record = _run_job_payload(payload)
        _finish(job, record, events, cache, results)
        del pending[job.job_id]

    return results
