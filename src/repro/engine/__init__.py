"""The batch verification engine (planner -> scheduler -> cache).

Turns the one-shot CIRC checker into an engine that serves many
(program, variable) queries fast: static pruning, content-addressed
artifact caching keyed on canonical slice digests, predicate
warm-starting, and a crash-tolerant multiprocessing scheduler.  See
docs/ALGORITHM.md section 8 for the architecture and the cache
soundness argument.
"""

from .cache import ArtifactCache, CacheEntry
from .digest import (
    SliceView,
    relevant_variables,
    shape_key,
    slice_digest,
    slice_view,
)
from .engine import BatchReport, run_batch, verify_one
from .events import EventLog
from .planner import BatchItem, Job, JobResult, options_fingerprint, plan
from .scheduler import execute

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "SliceView",
    "relevant_variables",
    "shape_key",
    "slice_digest",
    "slice_view",
    "BatchReport",
    "run_batch",
    "verify_one",
    "EventLog",
    "BatchItem",
    "Job",
    "JobResult",
    "options_fingerprint",
    "plan",
    "execute",
]
