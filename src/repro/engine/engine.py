"""The batch verification engine: planner -> scheduler -> cache.

``run_batch`` is the bulk entry point (the ``repro-race batch``
subcommand, the redundancy auditor, and ``bench_engine.py`` all sit on
it); ``verify_one`` serves single queries, giving ``check_race`` a
cache-accelerated in-process path with the same digest keying.

A batch run:

1. plans a job per must-check variable, discharging variables the
   static lattice proves safe without spawning any work;
2. answers byte-identical slices from the content-addressed cache and
   warm-starts near-matches from the shape index;
3. fans the remaining jobs out over a worker pool with budgets and
   crash recovery, falling back to in-process serial execution;
4. emits JSONL telemetry throughout and returns a :class:`BatchReport`
   whose rows are ordered exactly like the input queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..cfa.cfa import CFA
from ..circ.circ import CircBudgetExceeded, CircInconclusive, circ
from ..circ.result import CircResult
from ..smt.profile import PROFILER
from ..smt.qcache import SAT_CACHE
from .cache import ArtifactCache
from .digest import shape_key, slice_digest
from .events import EventLog
from .planner import BatchItem, JobResult, options_fingerprint, plan
from .scheduler import execute

__all__ = ["BatchReport", "run_batch", "verify_one"]


@dataclass
class BatchReport:
    """The outcome of one engine run."""

    rows: list[JobResult] = field(default_factory=list)
    wall_ms: float = 0.0
    n_jobs: int = 0
    n_static: int = 0
    n_deduped: int = 0
    cache_stats: dict = field(default_factory=dict)

    @property
    def races(self) -> list[JobResult]:
        return [r for r in self.rows if r.verdict == "race"]

    @property
    def unknown(self) -> list[JobResult]:
        return [r for r in self.rows if r.verdict == "unknown"]

    @property
    def hit_rate(self) -> float:
        """Fraction of planned jobs answered by the cache."""
        hits = self.cache_stats.get("hits", 0)
        misses = self.cache_stats.get("misses", 0)
        total = hits + misses
        return hits / total if total else 0.0


def run_batch(
    items: Sequence[BatchItem],
    cache_dir: str | None = None,
    workers: int | None = None,
    events: EventLog | str | None = None,
    prefilter: bool = True,
    warm_start: bool = True,
    shards: int | None = None,
    shard_id: int | None = None,
    shard_workers: int | None = None,
    _test_kill_first_attempt: bool = False,
    **circ_options,
) -> BatchReport:
    """Verify every (model, variable) query of ``items``.

    ``cache_dir=None`` disables persistence (every job computes);
    ``events`` may be an :class:`EventLog` or a path for JSONL output.
    Keyword options are forwarded to :func:`repro.circ.circ` and are
    part of the cache key.

    The sharding knobs (see :mod:`repro.shard`):

    * ``shards`` + ``shard_id`` -- *dry-run* mode: plan everything, but
      run only the jobs whose digest falls in bucket ``shard_id`` of a
      ``shards``-way partition.  Static discharges are reported by every
      shard (planning is cheap; the merge dedups them).  The report's
      rows cover only this shard's queries; merge the N shard payloads
      with ``repro-race merge-reports``.
    * ``shard_workers`` -- *coordinated* mode: run the full worklist
      through the work-stealing worker fleet instead of the process
      pool, partitioned into ``shards`` buckets (default: two per
      worker, so stealing has granularity to work with).
    """
    start = time.perf_counter()
    if isinstance(events, str):
        events = EventLog(events)
    events = events or EventLog()
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None

    if shard_id is not None and shards is None:
        raise ValueError("shard_id requires shards")
    if shard_id is not None and shard_workers is not None:
        raise ValueError(
            "shard_id (dry-run mode) and shard_workers (coordinated "
            "mode) are mutually exclusive"
        )

    events.emit("batch_started", items=len(items))
    if cache is not None:
        warmed = SAT_CACHE.load(cache.smt_tier_path())
        if warmed:
            events.emit("smt_warm_start", entries=warmed)
    the_plan = plan(
        items, options=circ_options, events=events, prefilter=prefilter
    )

    jobs = the_plan.jobs
    if shard_id is not None:
        from ..shard.partition import filter_shard

        jobs, foreign = filter_shard(jobs, shards, shard_id)
        events.emit(
            "shard_filtered",
            shards=shards,
            shard_id=shard_id,
            owned=len(jobs),
            foreign=len(foreign),
        )
    if shard_workers is not None:
        from ..shard.coordinator import execute_sharded

        n_workers = max(1, int(shard_workers))
        results = execute_sharded(
            jobs,
            shards=shards if shards is not None else 2 * n_workers,
            workers=n_workers,
            cache=cache,
            events=events,
            warm_start=warm_start,
            _test_kill_first_attempt=_test_kill_first_attempt,
        )
    else:
        results = execute(
            jobs,
            cache=cache,
            events=events,
            workers=workers,
            warm_start=warm_start,
            _test_kill_first_attempt=_test_kill_first_attempt,
        )

    by_query = {(r.model, r.variable): r for r in the_plan.done}
    by_query.update(results)
    rows = [by_query[key] for key in the_plan.order if key in by_query]

    n_deduped = sum(len(j.aliases) - 1 for j in jobs)
    report = BatchReport(
        rows=rows,
        wall_ms=(time.perf_counter() - start) * 1000.0,
        n_jobs=len(jobs),
        n_static=len(the_plan.done),
        n_deduped=n_deduped,
        cache_stats=cache.stats() if cache is not None else {},
    )
    if cache is not None:
        saved = SAT_CACHE.save(cache.smt_tier_path())
        if saved:
            events.emit("smt_tier_saved", entries=saved)
    events.emit(
        "smt_stats",
        **{f"qcache_{k}": v for k, v in SAT_CACHE.stats().items()},
        **{f"smt_{k}": v for k, v in PROFILER.totals().items()},
    )
    events.emit(
        "batch_summary",
        rows=len(report.rows),
        jobs=report.n_jobs,
        static=report.n_static,
        deduped=report.n_deduped,
        races=len(report.races),
        unknown=len(report.unknown),
        wall_ms=round(report.wall_ms, 3),
        **{f"cache_{k}": v for k, v in report.cache_stats.items()},
    )
    events.close()
    return report


def verify_one(
    cfa: CFA,
    variable: str,
    cache_dir: str | None = None,
    warm_start: bool = True,
    events: EventLog | None = None,
    **circ_options,
) -> CircResult:
    """Cache-accelerated single-query verification (in-process).

    The digest machinery works directly on the lowered CFA, so callers
    holding only a CFA (no source text) still get content-addressed
    reuse; parallelism is pointless for one query, so the scheduler is
    bypassed.  Budget exhaustion surfaces as a returned
    :class:`~repro.circ.result.CircUnknown`, mirroring the batch path.
    """
    events = events or EventLog()
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    # The fingerprint sees the full option dict (including ``portfolio``,
    # which is salient) before the flag is popped below, so portfolio and
    # CIRC-only runs never serve each other's cache entries.
    fp = options_fingerprint(circ_options)
    digest = slice_digest(cfa, variable)
    if cache is not None:
        entry = cache.get(digest, fp)
        if entry is not None:
            events.emit("cache_hit", digest=digest[:12])
            return entry.result
        events.emit("cache_miss", digest=digest[:12])

    options = dict(circ_options)
    shape = shape_key(cfa, variable)
    if cache is not None and warm_start:
        seeds = cache.seed_predicates(shape, fp)
        if seeds:
            events.emit("warm_start", n_predicates=len(seeds))
            existing = tuple(options.pop("initial_predicates", ()))
            options["initial_predicates"] = existing + seeds

    portfolio = options.pop("portfolio", False)
    try:
        if portfolio:
            from ..portfolio.driver import run_portfolio
            from ..portfolio.winrate import WinRateBook

            book = (
                WinRateBook(cache.root / "winrates.json")
                if cache is not None
                else None
            )
            report = run_portfolio(
                cfa,
                variable,
                cache=cache,
                winrates=book,
                events=events,
                **options,
            )
            result: CircResult = report.to_circ_result()
        else:
            result = circ(cfa, race_on=variable, **options)
    except (CircBudgetExceeded, CircInconclusive) as exc:
        result = exc.result
    if cache is not None:
        cache.put(digest, result, fp, shape=shape)
    return result
