"""Job planning: from batch items to a deduplicated verification worklist.

The planner is the first stage of the engine pipeline
(planner -> scheduler -> cache).  It lowers every batch item once,
classifies its shared variables through the static pre-analysis
(:mod:`repro.static`), and

* discharges ``local`` / ``read-shared`` / ``protected`` variables
  immediately as static proofs -- no job is spawned for them;
* plans one :class:`Job` per remaining ``must-check`` query, keyed by
  the content digest of its relevant slice;
* deduplicates jobs with identical (digest, options) keys: audits like
  the redundancy checker submit dozens of program variants whose slices
  for a given variable are often byte-identical, and those must be
  verified once and fanned out, not recomputed per variant.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..cfa.cfa import CFA
from ..circ.result import CircResult
from ..lang.lower import lower_source
from ..races.spec import racy_variables
from .digest import shape_key, slice_digest
from .events import EventLog

__all__ = ["BatchItem", "Job", "JobResult", "Plan", "options_fingerprint", "plan"]


@dataclass(frozen=True)
class BatchItem:
    """One program in a batch request."""

    model: str
    source: str
    thread: str | None = None
    #: None means "every written global".
    variables: tuple[str, ...] | None = None


@dataclass
class Job:
    """One deduplicated verification task.

    ``aliases`` lists every (model, variable) query this job answers;
    the first alias is the canonical one.
    """

    job_id: int
    source: str
    thread: str | None
    variable: str
    digest: str
    shape: str
    options: dict
    aliases: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class JobResult:
    """The engine's answer to one (model, variable) query."""

    model: str
    variable: str
    verdict: str  # 'safe' | 'race' | 'unknown'
    source: str  # 'static' | 'cache' | 'circ' | 'circ-warm'
    time_ms: float
    detail: str = ""
    result: CircResult | None = None
    digest: str = ""


@dataclass
class Plan:
    """Planner output: immediate results plus the remaining worklist."""

    jobs: list[Job]
    done: list[JobResult]
    #: (model, variable) pairs per item, in report order.
    order: list[tuple[str, str]]


#: Options that change verdicts or artifacts and therefore key the cache.
_SALIENT_OPTIONS = (
    "variant",
    "k",
    "strategy",
    "abstraction",
    "max_outer",
    "max_inner",
    "max_states",
    "max_iterations",
    "timeout_s",
    # Portfolio runs may resolve a query with a baseline analysis, so
    # their artifacts must never serve a CIRC-only lookup (or vice
    # versa): the flag keys the cache like any verdict-relevant option.
    "portfolio",
)


def options_fingerprint(options: dict) -> str:
    """A stable fingerprint of the verdict-relevant verifier options."""
    salient = {
        key: options[key]
        for key in _SALIENT_OPTIONS
        if key in options and options[key] is not None
    }
    blob = json.dumps(salient, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _verdict_of(result: CircResult) -> str:
    if result.unknown:
        return "unknown"
    return "safe" if result.safe else "race"


def plan(
    items: Sequence[BatchItem],
    options: dict | None = None,
    events: EventLog | None = None,
    prefilter: bool = True,
) -> Plan:
    """Lower, classify, digest, and deduplicate a batch of queries."""
    from ..static.classify import classify
    from ..static.prefilter import StaticSafe
    from ..acfa.acfa import empty_acfa
    from ..circ.result import CircStats

    options = dict(options or {})
    events = events or EventLog()
    jobs_by_key: dict[tuple[str, str], Job] = {}
    done: list[JobResult] = []
    order: list[tuple[str, str]] = []
    fp = options_fingerprint(options)

    for item in items:
        start = time.perf_counter()
        cfa: CFA = lower_source(item.source, item.thread)
        variables: Iterable[str] = (
            item.variables
            if item.variables is not None
            else sorted(racy_variables(cfa))
        )
        variables = list(variables)
        for v in variables:
            if v not in cfa.globals:
                raise ValueError(
                    f"{v!r} is not a global of model {item.model!r}"
                )
        report = classify(cfa, variables) if prefilter else None
        lower_ms = (time.perf_counter() - start) * 1000.0

        for v in variables:
            order.append((item.model, v))
            vstart = time.perf_counter()
            if report is not None:
                vv = report.verdict(v)
                if vv.prunable:
                    proof = StaticSafe(
                        variable=v,
                        predicates=(),
                        context=empty_acfa(),
                        stats=CircStats(
                            elapsed_seconds=(
                                time.perf_counter() - vstart
                            )
                        ),
                        static_verdict=vv.verdict,
                        reason=vv.reason,
                    )
                    done.append(
                        JobResult(
                            model=item.model,
                            variable=v,
                            verdict="safe",
                            source="static",
                            time_ms=(time.perf_counter() - vstart)
                            * 1000.0,
                            detail=f"{vv.verdict.value}: {vv.reason}",
                            result=proof,
                        )
                    )
                    events.emit(
                        "job_planned",
                        model=item.model,
                        variable=v,
                        disposition="static",
                        verdict=vv.verdict.value,
                    )
                    continue
            digest = slice_digest(cfa, v)
            shape = shape_key(cfa, v)
            key = (digest, fp)
            job = jobs_by_key.get(key)
            if job is None:
                job = Job(
                    job_id=len(jobs_by_key),
                    source=item.source,
                    thread=item.thread,
                    variable=v,
                    digest=digest,
                    shape=shape,
                    options=options,
                )
                jobs_by_key[key] = job
            job.aliases.append((item.model, v))
            events.emit(
                "job_planned",
                model=item.model,
                variable=v,
                disposition="job" if len(job.aliases) == 1 else "dedup",
                job_id=job.job_id,
                digest=digest[:12],
                lower_ms=round(lower_ms, 3),
            )

    return Plan(jobs=list(jobs_by_key.values()), done=done, order=order)
