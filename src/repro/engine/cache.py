"""Content-addressed on-disk cache of verification artifacts.

Layout (everything under one cache root, safe to delete at any time)::

    objects/<dd>/<digest>.json   full artifact: verdict + predicates + ACFA
    shapes/<dd>/<shape>.json     warm-start index: predicates by slice shape

Entries are keyed by the slice digest of :mod:`repro.engine.digest`, so a
hit *means* the lowered slice relevant to the variable is byte-identical
to the one verified before -- renaming files, editing unrelated threads,
reformatting, or rewriting the expressions of statements on irrelevant
variables all still hit.

Robustness rules:

* writes are atomic (unique temp file + ``os.replace``) so a killed
  process -- or a concurrent writer -- never leaves a half-written
  object visible, and a torn write can never trip the
  checksum-quarantine path;
* every object embeds a checksum of its payload; reads verify it and
  treat any mismatch, decode error, or schema violation as a **miss**
  (the corrupt file is unlinked so the slot heals on the next store);
* concurrent writers may race on the same object/blob key -- last
  ``os.replace`` wins, which is fine because both wrote equivalent
  artifacts for the same content digest;
* the **shape index is the one genuinely mutated slot** (different
  digests append predicates to the same shape), so its update is a
  read-merge-write under an advisory ``flock``: two shard workers
  publishing predicates for the same shape accumulate instead of
  clobbering each other.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..circ.result import CircResult
from ..smt import terms as T
from ..util.locks import atomic_write_text, file_lock
from .artifacts import (
    ArtifactError,
    result_from_obj,
    result_to_obj,
    term_from_obj,
    term_to_obj,
)

__all__ = ["CacheEntry", "ArtifactCache"]

#: Bump when the on-disk entry format changes.
CACHE_FORMAT = "circ-cache-v1"

#: Warm-start seeds kept per shape after merging concurrent writers.
MAX_SHAPE_PREDICATES = 32


@dataclass
class CacheEntry:
    """A deserialized cache object."""

    digest: str
    result: CircResult
    options_fp: str


def _payload_checksum(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _atomic_write(path: Path, data: str) -> None:
    atomic_write_text(path, data)


class ArtifactCache:
    """The on-disk artifact store.

    ``options_fp`` is a fingerprint of the verifier options that can
    change the *artifacts* (variant, abstraction, strategy, budgets); it
    is mixed into the storage key so runs with different configurations
    never serve each other's entries.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- storage keys --------------------------------------------------------

    def _object_path(self, digest: str, options_fp: str) -> Path:
        key = hashlib.sha256(
            f"{CACHE_FORMAT}\n{digest}\n{options_fp}".encode()
        ).hexdigest()
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _shape_path(self, shape: str, options_fp: str) -> Path:
        key = hashlib.sha256(
            f"{CACHE_FORMAT}\nshape\n{shape}\n{options_fp}".encode()
        ).hexdigest()
        return self.root / "shapes" / key[:2] / f"{key}.json"

    def smt_tier_path(self) -> Path:
        """Where the persistent SMT verdict tier lives under this root.

        The SMT query cache (:mod:`repro.smt.qcache`) keys entries by
        canonical-formula digest, not slice digest, so one file per cache
        root suffices -- verdicts are reusable across models and options.
        """
        return self.root / "smt" / "qcache.json"

    # -- objects -------------------------------------------------------------

    def get(self, digest: str, options_fp: str = "") -> CacheEntry | None:
        """Look up a verdict by slice digest; None on miss or corruption."""
        path = self._object_path(digest, options_fp)
        payload = self._read_checked(path)
        if payload is None:
            self.misses += 1
            return None
        if (
            payload.get("format") != CACHE_FORMAT
            or payload.get("digest") != digest
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            result = result_from_obj(payload["result"])
        except (ArtifactError, KeyError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return CacheEntry(
            digest=digest, result=result, options_fp=options_fp
        )

    def put(
        self,
        digest: str,
        result: CircResult,
        options_fp: str = "",
        shape: str | None = None,
    ) -> None:
        """Store a verdict; also refreshes the warm-start index.

        UNKNOWN results are never stored as verdicts -- a repeat query
        should retry (possibly warm-started), not be served a cached
        give-up -- but the predicates discovered before the budget ran
        out still feed the warm-start index.
        """
        if shape is not None and getattr(result, "predicates", ()):
            self._put_shape(shape, options_fp, result.predicates)
        if getattr(result, "unknown", False):
            return
        body = {
            "format": CACHE_FORMAT,
            "digest": digest,
            "options_fp": options_fp,
            "result": result_to_obj(result),
        }
        body["checksum"] = _payload_checksum(body["result"])
        _atomic_write(
            self._object_path(digest, options_fp),
            json.dumps(body, sort_keys=True, indent=1),
        )

    # -- generic blobs -------------------------------------------------------

    def _blob_path(self, kind: str, key: str) -> Path:
        digest = hashlib.sha256(
            f"{CACHE_FORMAT}\nblob\n{kind}\n{key}".encode()
        ).hexdigest()
        return self.root / kind / digest[:2] / f"{digest}.json"

    def get_blob(self, kind: str, key: str) -> Any | None:
        """Look up an auxiliary analysis artifact (e.g. an abstract-
        interpretation summary) by namespace + key.

        Blobs get the same robustness discipline as verdict objects --
        checksummed payloads, corruption treated as a miss with the file
        quarantined -- but none of the verdict-specific schema: the
        payload is arbitrary JSON owned by the storing analysis.
        """
        path = self._blob_path(kind, key)
        payload = self._read_checked(path, field="data")
        if payload is None:
            self.misses += 1
            return None
        if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload["data"]

    def put_blob(self, kind: str, key: str, data: Any) -> None:
        """Store an auxiliary analysis artifact (atomic, checksummed)."""
        body = {
            "format": CACHE_FORMAT,
            "kind": kind,
            "key": key,
            "data": data,
        }
        body["checksum"] = _payload_checksum(body["data"])
        _atomic_write(
            self._blob_path(kind, key),
            json.dumps(body, sort_keys=True, indent=1),
        )

    # -- warm-start index ----------------------------------------------------

    def _put_shape(
        self, shape: str, options_fp: str, predicates: tuple[T.Term, ...]
    ) -> None:
        """Merge ``predicates`` into the shape's warm-start entry.

        Unlike objects and blobs (content-addressed, so concurrent
        writers store equivalent payloads), the shape slot aggregates
        predicates from *different* digests.  The update is therefore a
        read-merge-write under an advisory ``flock``: fresh predicates
        go first, previously published ones that are still distinct
        follow, capped at :data:`MAX_SHAPE_PREDICATES` so the seed set
        stays a warm start rather than a predicate dump.
        """
        path = self._shape_path(shape, options_fp)
        fresh = [term_to_obj(p) for p in predicates]
        with file_lock(path.with_suffix(".lock")):
            existing: list = []
            payload = self._read_checked(path, field="predicates")
            if payload is not None and payload.get("shape") == shape:
                existing = list(payload["predicates"])
            merged = fresh + [o for o in existing if o not in fresh]
            merged = merged[:MAX_SHAPE_PREDICATES]
            body = {
                "format": CACHE_FORMAT,
                "shape": shape,
                "predicates": merged,
            }
            body["checksum"] = _payload_checksum(body["predicates"])
            _atomic_write(
                path, json.dumps(body, sort_keys=True, indent=1)
            )

    def seed_predicates(
        self, shape: str, options_fp: str = ""
    ) -> tuple[T.Term, ...]:
        """Warm-start predicates for a slice shape; () when unknown."""
        path = self._shape_path(shape, options_fp)
        payload = self._read_checked(path, field="predicates")
        if payload is None or payload.get("shape") != shape:
            return ()
        try:
            return tuple(
                term_from_obj(p) for p in payload["predicates"]
            )
        except (ArtifactError, KeyError):
            self._quarantine(path)
            return ()

    # -- shared plumbing -----------------------------------------------------

    def _read_checked(
        self, path: Path, field: str = "result"
    ) -> dict | None:
        """Read + checksum-verify one cache file; None (and quarantine)
        on any failure mode: missing, unreadable, undecodable, wrong
        shape, checksum mismatch."""
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        if _payload_checksum(payload.get(field)) != payload.get("checksum"):
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Drop a corrupt entry so the slot recomputes and heals."""
        self.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }
