"""Structured JSONL telemetry for the batch engine.

Every engine run emits a stream of flat JSON events -- job lifecycle,
cache hits and misses, warm starts, worker failures, and the final batch
summary -- so external tooling (dashboards, CI assertions, the bundled
``bench_engine.py``) can consume engine behavior without parsing the
human-readable table.  Events carry a monotonic ``t`` offset in seconds
from the log's creation rather than wall-clock timestamps, which keeps
logs deterministic enough to diff across runs.

The log is thread-safe; with ``path=None`` events are only collected in
memory (``log.events``), which the tests use.  A ``listener`` callable
receives every event as it is emitted -- the serve daemon uses this to
stream per-job telemetry frames to subscribed clients in real time
rather than replaying the log after the fact.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, IO

__all__ = ["EventLog"]


class EventLog:
    """An append-only JSONL event sink."""

    def __init__(
        self,
        path: str | None = None,
        listener: Any = None,
    ):
        self.path = path
        self.events: list[dict[str, Any]] = []
        self.listener = listener
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._fh: IO[str] | None = None
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "a")

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the event dict."""
        event = {
            "event": kind,
            "t": round(time.perf_counter() - self._t0, 6),
            **fields,
        }
        with self._lock:
            self.events.append(event)
            if self._fh is not None:
                self._fh.write(json.dumps(event, sort_keys=True) + "\n")
                self._fh.flush()
        # Outside the lock: a listener may be arbitrarily slow (it
        # typically enqueues a frame onto an asyncio loop) and must not
        # serialize unrelated emitters; a listener error never breaks
        # the verification path that emitted the event.
        if self.listener is not None:
            try:
                self.listener(event)
            except Exception:
                pass
        return event

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        with self._lock:
            return [e for e in self.events if e["event"] == kind]

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
