"""Randomized schedule simulation (dynamic-checker style smoke testing).

``simulate`` drives a multithreaded CFA program under a seeded random
scheduler, recording any race or assertion failure it stumbles into --
the dynamic counterpart (Eraser-style happenstance testing) to the static
checkers, useful for quick smoke tests of models and as an extra oracle:
anything the simulator finds is, by construction, a genuine trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .interp import ConcreteState, MultiProgram, RaceWitness

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Outcome of a batch of random runs.

    ``deadlocks`` counts runs that got *stuck*: no transition was
    enabled even though some thread still had out-edges (e.g. every
    thread blocked on an assume, or an atomic thread blocked while
    holding the section).  Runs where every thread simply reached a
    location with no out-edges are normal completions, counted in
    ``terminations`` instead.
    """

    runs: int
    steps_total: int
    witness: Optional[RaceWitness] = None
    deadlocks: int = 0
    terminations: int = 0

    @property
    def found(self) -> bool:
        return self.witness is not None


def simulate(
    program: MultiProgram,
    race_on: str | None = None,
    check_errors: bool = False,
    runs: int = 50,
    max_steps: int = 400,
    seed: int = 0,
) -> SimulationResult:
    """Run ``runs`` random schedules of up to ``max_steps`` steps each.

    Returns on the first race on ``race_on`` (or assertion failure when
    ``check_errors``); the witness is the executed prefix, genuine by
    construction.  A run with no enabled transition counts as a deadlock
    only when some thread could still move (it has out-edges but none is
    enabled); if every thread exhausted its out-edges the run terminated
    normally.
    """
    rng = random.Random(seed)
    steps_total = 0
    deadlocks = 0
    terminations = 0

    def is_terminal(state: ConcreteState) -> bool:
        return not any(
            program.cfas[i].out(state.thread_pc(i))
            for i in range(program.n_threads)
        )

    def is_bad(state: ConcreteState) -> bool:
        if race_on is not None and program.is_race_state(state, race_on):
            return True
        if check_errors and program.is_error_state(state):
            return True
        return False

    for run in range(runs):
        state = program.initial()
        steps: list = []
        states = [state]
        if is_bad(state):
            return SimulationResult(
                runs=run + 1,
                steps_total=steps_total,
                witness=RaceWitness(steps, states),
            )
        for _ in range(max_steps):
            successors = list(program.successors(state))
            if not successors:
                if is_terminal(state):
                    terminations += 1
                else:
                    deadlocks += 1
                break
            thread, edge, nxt = rng.choice(successors)
            steps.append((thread, edge))
            states.append(nxt)
            state = nxt
            steps_total += 1
            if is_bad(state):
                return SimulationResult(
                    runs=run + 1,
                    steps_total=steps_total,
                    witness=RaceWitness(steps, states),
                )
    return SimulationResult(
        runs=runs,
        steps_total=steps_total,
        deadlocks=deadlocks,
        terminations=terminations,
    )
