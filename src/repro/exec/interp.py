"""Explicit-state interpreter for multithreaded CFA programs.

Implements the concrete semantics of Section 3.1/3.2 of the paper: a state
is a valuation of the globals plus, per thread, a program counter and a
valuation of that thread's locals.  Scheduling follows the atomic-location
rule: if some thread sits at an atomic location, only that thread runs.

This module serves three roles in the reproduction:

* a *test oracle* -- for programs with small finite reachable state spaces,
  exhaustive exploration decides race freedom exactly, which cross-checks
  the CIRC verifier's verdicts;
* a *counterexample validator* -- CIRC's concrete error traces are replayed
  step by step;
* the *ModelCheck* procedure of Appendix A builds on the same machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..cfa.cfa import CFA, AssignOp, AssumeOp, Edge
from ..smt.terms import evaluate

__all__ = [
    "ConcreteState",
    "MultiProgram",
    "ExploreResult",
    "RaceWitness",
    "explore",
    "replay",
]


@dataclass(frozen=True)
class ConcreteState:
    """An immutable, hashable concrete program state."""

    globals: tuple[tuple[str, int], ...]
    threads: tuple[tuple[int, tuple[tuple[str, int], ...]], ...]

    def global_env(self) -> dict[str, int]:
        return dict(self.globals)

    def thread_pc(self, i: int) -> int:
        return self.threads[i][0]

    def thread_env(self, i: int) -> dict[str, int]:
        return dict(self.threads[i][1])

    def full_env(self, i: int) -> dict[str, int]:
        """Environment visible to thread ``i`` (globals + its locals)."""
        env = self.global_env()
        env.update(self.thread_env(i))
        return env

    def __str__(self) -> str:
        gs = ", ".join(f"{k}={v}" for k, v in self.globals)
        ts = "; ".join(
            f"T{i}@{pc}[" + ", ".join(f"{k}={v}" for k, v in loc) + "]"
            for i, (pc, loc) in enumerate(self.threads)
        )
        return f"<{gs} | {ts}>"


class MultiProgram:
    """A multithreaded program: one CFA per thread (paper's C^n when all
    entries are the same CFA)."""

    def __init__(self, cfas: Sequence[CFA], init: Mapping[str, int] | None = None):
        if not cfas:
            raise ValueError("need at least one thread")
        self.cfas = tuple(cfas)
        g0 = dict(cfas[0].global_init)
        for c in cfas[1:]:
            if c.globals != cfas[0].globals:
                raise ValueError("threads disagree on the global variables")
        if init:
            g0.update(init)
        self._init_globals = g0

    @classmethod
    def symmetric(
        cls, cfa: CFA, n: int, init: Mapping[str, int] | None = None
    ) -> "MultiProgram":
        """``n`` copies of the same thread (the paper's C^infinity, truncated)."""
        return cls([cfa] * n, init)

    @property
    def n_threads(self) -> int:
        return len(self.cfas)

    def initial(self) -> ConcreteState:
        return ConcreteState(
            globals=tuple(sorted(self._init_globals.items())),
            threads=tuple(
                (
                    cfa.q0,
                    tuple(sorted((v, 0) for v in cfa.locals)),
                )
                for cfa in self.cfas
            ),
        )

    # -- scheduling ---------------------------------------------------------------

    def atomic_thread(self, state: ConcreteState) -> Optional[int]:
        """The unique thread at an atomic location, if any."""
        for i, (pc, _) in enumerate(state.threads):
            if self.cfas[i].is_atomic(pc):
                return i
        return None

    def schedulable(self, state: ConcreteState) -> list[int]:
        at = self.atomic_thread(state)
        if at is not None:
            return [at]
        return list(range(self.n_threads))

    # -- transitions ------------------------------------------------------------------

    def step(
        self, state: ConcreteState, thread: int, edge: Edge
    ) -> Optional[ConcreteState]:
        """Execute ``edge`` for ``thread``; None when not enabled."""
        pc, _ = state.threads[thread]
        if edge.src != pc:
            return None
        env = state.full_env(thread)
        op = edge.op
        if isinstance(op, AssumeOp):
            if not evaluate(op.pred, env):
                return None
            new_globals = state.globals
            new_locals = state.threads[thread][1]
        elif isinstance(op, AssignOp):
            value = evaluate(op.rhs, env)
            cfa = self.cfas[thread]
            if op.lhs in cfa.globals:
                g = state.global_env()
                g[op.lhs] = value
                new_globals = tuple(sorted(g.items()))
                new_locals = state.threads[thread][1]
            else:
                loc = state.thread_env(thread)
                loc[op.lhs] = value
                new_globals = state.globals
                new_locals = tuple(sorted(loc.items()))
        else:
            raise TypeError(f"unknown op {op!r}")
        threads = list(state.threads)
        threads[thread] = (edge.dst, new_locals)
        return ConcreteState(new_globals, tuple(threads))

    def successors(
        self, state: ConcreteState
    ) -> Iterator[tuple[int, Edge, ConcreteState]]:
        for i in self.schedulable(state):
            pc = state.thread_pc(i)
            for edge in self.cfas[i].out(pc):
                nxt = self.step(state, i, edge)
                if nxt is not None:
                    yield i, edge, nxt

    # -- race and error predicates (Section 4.1) -----------------------------------

    def is_race_state(self, state: ConcreteState, x: str) -> bool:
        """Two distinct threads have enabled accesses to ``x``, one a write,
        and no thread holds an atomic location."""
        if self.atomic_thread(state) is not None:
            return False
        writers = []
        accessors = []
        for i, (pc, _) in enumerate(state.threads):
            cfa = self.cfas[i]
            if cfa.may_write(pc, x):
                writers.append(i)
            if cfa.may_access(pc, x):
                accessors.append(i)
        for w in writers:
            for a in accessors:
                if a != w:
                    return True
        return False

    def is_error_state(self, state: ConcreteState) -> bool:
        """Some thread reached an assertion-failure location."""
        return any(
            pc in self.cfas[i].error_locations
            for i, (pc, _) in enumerate(state.threads)
        )


@dataclass
class RaceWitness:
    """A concrete interleaved trace ending in a race (or error) state."""

    steps: list[tuple[int, Edge]]
    states: list[ConcreteState]

    def __str__(self) -> str:
        lines = []
        for (thread, edge), state in zip(self.steps, self.states[1:]):
            lines.append(f"T{thread}: {edge.op}   -->  {state}")
        return "\n".join(lines)


@dataclass
class ExploreResult:
    """Outcome of bounded exhaustive exploration."""

    visited: int
    complete: bool
    witness: Optional[RaceWitness]

    @property
    def found(self) -> bool:
        return self.witness is not None


def explore(
    program: MultiProgram,
    race_on: str | None = None,
    check_errors: bool = False,
    max_states: int = 200_000,
    deadline: float | None = None,
) -> ExploreResult:
    """Breadth-first exploration of the reachable states.

    Stops at the first race on ``race_on`` (or assertion failure when
    ``check_errors``), returning a shortest witness.  ``complete`` is False
    when the ``max_states`` budget -- or the optional ``deadline``, an
    absolute :func:`time.perf_counter` instant -- was exhausted first, in
    which case the absence of a witness is inconclusive.
    """

    def is_bad(s: ConcreteState) -> bool:
        if race_on is not None and program.is_race_state(s, race_on):
            return True
        if check_errors and program.is_error_state(s):
            return True
        return False

    init = program.initial()
    parent: dict[ConcreteState, tuple[ConcreteState, int, Edge] | None] = {
        init: None
    }
    frontier = [init]
    visited = 1

    def witness_for(state: ConcreteState) -> RaceWitness:
        steps: list[tuple[int, Edge]] = []
        chain: list[ConcreteState] = [state]
        cur = state
        while parent[cur] is not None:
            prev, thread, edge = parent[cur]
            steps.append((thread, edge))
            chain.append(prev)
            cur = prev
        steps.reverse()
        chain.reverse()
        return RaceWitness(steps, chain)

    if is_bad(init):
        return ExploreResult(visited, True, witness_for(init))

    while frontier:
        next_frontier: list[ConcreteState] = []
        for state in frontier:
            if deadline is not None and time.perf_counter() > deadline:
                return ExploreResult(visited, False, None)
            for thread, edge, nxt in program.successors(state):
                if nxt in parent:
                    continue
                parent[nxt] = (state, thread, edge)
                visited += 1
                if is_bad(nxt):
                    return ExploreResult(visited, True, witness_for(nxt))
                if visited >= max_states:
                    return ExploreResult(visited, False, None)
                next_frontier.append(nxt)
        frontier = next_frontier
    return ExploreResult(visited, True, None)


def replay(
    program: MultiProgram,
    steps: Iterable[tuple[int, Edge]],
    race_on: str | None = None,
) -> tuple[bool, list[ConcreteState]]:
    """Replay an interleaved trace from the initial state.

    Returns (ok, states): ``ok`` is True when every step was schedulable and
    enabled, and -- if ``race_on`` is given -- the final state is a race
    state on that variable.
    """
    state = program.initial()
    states = [state]
    for thread, edge in steps:
        if thread not in program.schedulable(state):
            return False, states
        nxt = program.step(state, thread, edge)
        if nxt is None:
            return False, states
        state = nxt
        states.append(state)
    if race_on is not None and not program.is_race_state(state, race_on):
        return False, states
    return True, states
