"""Concrete multithreaded semantics: interpreter, explorer, simulator."""

from .interp import (
    ConcreteState,
    ExploreResult,
    MultiProgram,
    RaceWitness,
    explore,
    replay,
)
from .simulate import SimulationResult, simulate
