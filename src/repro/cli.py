"""Command-line interface: ``python -m repro`` or the ``repro-race`` script.

Subcommands
-----------

``check FILE``
    Run CIRC on a mini-C program; prove or refute race freedom for
    unboundedly many threads (per variable, or ``--all`` written globals).
    The static pre-analysis prunes provably-safe variables first;
    ``--no-prefilter`` forces CIRC on everything.

``static FILE``
    Run only the static pre-analysis: per-variable verdicts from the
    lattice ``{local, read-shared, protected, must-check}``.

``explore FILE``
    Exhaustive explicit-state exploration for a fixed thread count
    (exact on finite-state programs).

``baselines FILE``
    Run the comparison analyses: the two-phase racer (verdict +
    witness/proofs), the abstract-interpretation pass, the Eraser-style
    lockset discipline, and the stateless thread-modular checker.  The
    exit code follows the racer's reconciled verdict with the same
    mapping as ``check``.

``portfolio FILE``
    Race the witness-producing static detectors against CIRC with
    cross-cancellation: the first confident verdict (sound proof or
    replayed witness) cancels the rest.  ``--parallel`` runs CIRC in a
    separate process so cancellation is two-way; win rates per workload
    shape are learned into the cache directory and reorder the schedule.

``cfa FILE``
    Dump the thread's control flow automaton (text or Graphviz).

``bench [APP]``
    Run the bundled nesC benchmark models (Table 1 of the paper).

``batch FILE... [--nesc [APP]]``
    Verify many (model, variable) queries through the verification
    engine: static pruning, a content-addressed on-disk artifact cache
    (re-runs answer instantly), predicate warm-starting, and a parallel
    worker pool.  ``--json`` emits the shared report schema also used
    by ``static --json``.  ``--shards N --shard-id I`` runs only bucket
    I of an N-way digest partition (no network needed; merge the
    payloads afterwards); ``--workers M`` routes jobs through the
    work-stealing sharded coordinator instead of the process pool.

``merge-reports REPORT... [-o FILE]``
    Deterministically merge per-shard report-v1 JSON payloads into one
    canonical report: duplicates collapse, confident verdicts supersede
    unknown, and a confident cross-shard disagreement is a hard error
    (exit 2).  The exit code otherwise follows the merged verdicts.

``fuzz --seed N --iters K``
    Differential fuzzing: random programs through every verdict path
    (circ, prefilter, engine cold/warm, lockset, flow) cross-checked
    against the explicit-state oracle.  Hard disagreement classes
    (unsoundness, forged witness, oracle contradiction, crash) exit
    nonzero; minimized reproducers can be persisted with ``--corpus``.

``serve [--socket PATH | --host H --port P]``
    Long-running verification daemon: newline-delimited JSON over a
    Unix or TCP socket, hot ArgStore/qcache/win-rate state shared
    across requests, in-flight request dedup, per-client budgets, and
    graceful SIGTERM drain.  See ``docs/SERVICE.md``.

``submit FILE... [--socket PATH]``
    Send programs to a running daemon and print the same report the
    ``batch`` subcommand would (``--json`` for the shared payload).

Exit codes: 0 verified, 1 race found (or hard fuzz disagreement),
2 usage/parse error or a portfolio verdict conflict (two confident
analyses disagreed -- an internal soundness error, never silently
resolved), 3 budget exhausted (explore) or daemon-draining RETRYABLE,
4 verification undecided (UNKNOWN verdict, including solver-quota
exhaustion).  ``check``, ``batch``, ``portfolio``, ``baselines``, and
``submit`` all share this mapping via :func:`_verdict_exit`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .baselines.lockset import lockset_analysis
from .baselines.threadmodular import thread_modular
from .circ import CircBudgetExceeded, CircError, CircInconclusive, circ
from .exec.interp import MultiProgram, explore
from .lang.lower import lower_source
from .races.spec import racy_variables
from .smt.terms import pretty

__all__ = ["main"]

#: The one verdict -> exit-code mapping every verifying subcommand uses.
EXIT_OK = 0
EXIT_RACE = 1
EXIT_USAGE = 2
EXIT_BUDGET = 3
EXIT_UNKNOWN = 4


def _verdict_exit(races: int, unknown: int) -> int:
    """Exit code for a set of per-variable verdicts: any race wins,
    then any undecided query, then success.  ``check``, ``batch``,
    ``portfolio``, and ``baselines`` all route through here so their
    exit codes can never drift apart."""
    if races:
        return EXIT_RACE
    if unknown:
        return EXIT_UNKNOWN
    return EXIT_OK


def _load(path: str, thread: str | None):
    source = Path(path).read_text()
    return lower_source(source, thread)


def _print_smt_stats() -> None:
    from .smt.profile import PROFILER
    from .smt.qcache import SAT_CACHE
    from .smt.session import default_session

    print("\nSMT query profile (per stage):")
    print(
        f"  {'stage':10s} {'queries':>8s} {'sat':>7s} {'unsat':>7s} "
        f"{'hits':>7s} {'t-confl':>8s} {'wall_s':>9s}"
    )
    rows = list(PROFILER.snapshot().items())
    rows.append(("total", PROFILER.totals()))
    for label, st in rows:
        print(
            f"  {label:10s} {st['queries']:>8d} {st['sat']:>7d} "
            f"{st['unsat']:>7d} {st['cache_hits']:>7d} "
            f"{st['theory_conflicts']:>8d} {st['wall_s']:>9.3f}"
        )
    cs = SAT_CACHE.stats()
    print(
        f"query cache: size {cs['size']}/{cs['maxsize']}, "
        f"{cs['hits']} hits / {cs['misses']} misses, "
        f"{cs['evictions']} evictions, {cs['warm_hits']} warm hits"
    )
    ss = default_session().stats.to_obj()
    print(
        f"incremental session: {ss['queries']} queries "
        f"({ss['sat']} sat / {ss['unsat']} unsat), "
        f"{ss['theory_conflicts']} theory conflicts, "
        f"{ss['encode_hits']} encode hits, {ss['resets']} resets"
    )


def _print_reuse_stats(reuse: dict[str, int]) -> None:
    """The ArgStore reuse table shown under ``--stats``."""
    print("\nincremental exploration reuse (ArgStore):")
    print(f"  {'memo':12s} {'hits':>8s} {'misses':>8s} {'rate':>7s}")
    for memo in ("main_post", "ctx_post", "result", "omega",
                 "ctx_reach", "collapse"):
        hits = reuse.get(f"{memo}_hits", 0)
        misses = reuse.get(f"{memo}_misses", 0)
        total = hits + misses
        rate = f"{hits / total:6.1%}" if total else "     -"
        print(f"  {memo:12s} {hits:>8d} {misses:>8d} {rate:>7s}")
    print(
        f"  refinement invalidation: "
        f"{reuse.get('entries_kept', 0)} entries kept, "
        f"{reuse.get('entries_invalidated', 0)} invalidated; "
        f"{reuse.get('abstractor_extensions', 0)} abstractor extensions, "
        f"{reuse.get('abstractor_rebuilds', 0)} rebuilds"
    )


def _cmd_check(args) -> int:
    cfa = _load(args.file, args.thread)
    variables = (
        sorted(racy_variables(cfa)) if args.all else [args.var]
    )
    if not variables or variables == [None]:
        print("error: give --var NAME or --all", file=sys.stderr)
        return 2
    if args.stats:
        from .smt.profile import PROFILER

        PROFILER.reset()
    if args.report:
        from .races.report import audit, render_markdown

        report = audit(
            cfa,
            name=Path(args.file).name,
            variables=None if args.all else variables,
            variant="omega" if args.omega else "circ",
            k=args.k,
        )
        Path(args.report).write_text(render_markdown(report))
        print(f"wrote {args.report}")
        if args.stats:
            _print_smt_stats()
        return 1 if report.races else 0
    static_report = None
    if not args.no_prefilter:
        from .static import classify

        static_report = classify(cfa, variables)
    races = unknown = budget = 0
    reuse_totals: dict[str, int] = {}
    for var in variables:
        start = time.perf_counter()
        if static_report is not None:
            vv = static_report.verdict(var)
            if vv.prunable:
                print(
                    f"{var}: SAFE  [static: {vv.verdict.value} "
                    f"-- {vv.reason}]"
                )
                continue
        portfolio_tag = ""
        try:
            if getattr(args, "portfolio", False):
                from .portfolio import run_portfolio

                source = Path(args.file).read_text()
                preport = run_portfolio(
                    cfa,
                    var,
                    source=source,
                    thread=args.thread,
                    parallel=args.parallel,
                    variant="omega" if args.omega else "circ",
                    k=args.k,
                    max_iterations=args.max_iterations,
                    timeout_s=args.timeout,
                    incremental=not args.no_incremental,
                    frontier=args.frontier,
                )
                result = preport.to_circ_result()
                portfolio_tag = (
                    f"    portfolio: won by {preport.winner or 'none'}"
                    + (
                        f", cancelled {', '.join(preport.cancelled)}"
                        if preport.cancelled
                        else ""
                    )
                )
            else:
                result = circ(
                    cfa,
                    race_on=var,
                    variant="omega" if args.omega else "circ",
                    k=args.k,
                    max_iterations=args.max_iterations,
                    timeout_s=args.timeout,
                    incremental=not args.no_incremental,
                    frontier=args.frontier,
                )
        except (CircBudgetExceeded, CircInconclusive) as exc:
            result = exc.result
        except CircError as exc:
            print(f"{var}: UNDECIDED ({exc})")
            budget += 1
            continue
        # The verifier's own stats record is the single timing source
        # (the engine's JSONL events read the same field); the local
        # clock only covers verdicts that never reached finalization.
        elapsed = result.stats.elapsed_seconds or (
            time.perf_counter() - start
        )
        if result.stats.reuse:
            for key, value in result.stats.reuse.items():
                reuse_totals[key] = reuse_totals.get(key, 0) + value
        if result.unknown:
            print(f"{var}: UNKNOWN  [{elapsed:.1f}s, {result.reason}]")
            unknown += 1
        elif result.safe:
            print(
                f"{var}: SAFE  [{elapsed:.1f}s, "
                f"{len(result.predicates)} predicates, "
                f"ACFA size {result.context.size}]"
            )
            if args.verbose:
                for p in result.predicates:
                    print(f"    predicate: {pretty(p)}")
                print(result.context)
        else:
            races += 1
            print(
                f"{var}: RACE  [{elapsed:.1f}s, "
                f"{result.n_threads} threads]"
            )
            for tid, edge in result.steps:
                print(f"    T{tid}: {edge.op}")
        if portfolio_tag:
            print(portfolio_tag)
    if args.stats:
        _print_smt_stats()
        if reuse_totals:
            _print_reuse_stats(reuse_totals)
    if budget and not races and not unknown:
        return EXIT_BUDGET
    return _verdict_exit(races, unknown)


def _cmd_explore(args) -> int:
    cfa = _load(args.file, args.thread)
    mp = MultiProgram.symmetric(cfa, args.threads)
    result = explore(
        mp,
        race_on=args.var,
        check_errors=args.errors,
        max_states=args.max_states,
    )
    kind = "assertion failure" if args.errors else f"race on {args.var!r}"
    if result.found:
        print(f"FOUND {kind} with {args.threads} threads:")
        print(result.witness)
        return 1
    scope = "complete" if result.complete else "BUDGET EXHAUSTED"
    print(
        f"no {kind} with {args.threads} threads "
        f"({result.visited} states, {scope})"
    )
    return 0 if result.complete else 3


def _cmd_baselines(args) -> int:
    from .portfolio import absint_check, racer_check
    from .races.report import rows_from_baselines

    cfa = _load(args.file, args.thread)
    variables = (
        [args.var] if args.var else sorted(racy_variables(cfa))
    )
    lockset = lockset_analysis(cfa)
    races = unknown = 0
    all_rows = []
    for var in variables:
        racer = racer_check(cfa, var)
        absint = absint_check(cfa, var)
        stateless = thread_modular(cfa, var)
        all_rows.extend(
            rows_from_baselines(
                model=Path(args.file).name,
                variable=var,
                racer=racer,
                absint=absint,
                lockset=lockset,
                stateless=type(stateless).__name__,
            )
        )
        if args.json:
            continue
        locks = sorted(lockset.candidate.get(var, ()))
        print(f"{var}:")
        print(
            f"  racer:          {racer.verdict.upper()} "
            f"({racer.reason})"
        )
        if racer.verdict == "race":
            for tid, edge in racer.witness:
                print(f"    T{tid}: {edge.op}")
        for p in racer.pairs:
            if p.status == "proved":
                print(f"    pair {p.pair}: proved -- {p.reason}")
        print(
            f"  absint:         {absint.verdict.upper()} "
            f"({absint.reason})"
        )
        print(
            f"  lockset:        "
            f"{'WARNS' if lockset.warns_on(var) else 'ok'} "
            f"(candidate lockset {locks})"
        )
        print(f"  thread-modular: {type(stateless).__name__}")
        # Exit parity with check/batch follows the racer's reconciled
        # verdict -- the one baseline whose claims carry proofs or
        # replayed witnesses rather than warnings.
        if racer.verdict == "race":
            races += 1
        elif racer.verdict == "unknown":
            unknown += 1
    if args.json:
        import json

        from .races.report import rows_to_payload

        print(json.dumps(rows_to_payload(all_rows), indent=2))
        races = sum(
            1 for r in all_rows if r.source == "racer" and r.verdict == "race"
        )
        unknown = sum(
            1
            for r in all_rows
            if r.source == "racer" and r.verdict == "unknown"
        )
    return _verdict_exit(races, unknown)


def _cmd_portfolio(args) -> int:
    from .portfolio import PortfolioConflict, WinRateBook, run_portfolio
    from .races.report import (
        render_rows_table,
        rows_from_portfolio,
        rows_to_payload,
    )

    source = Path(args.file).read_text()
    cfa = lower_source(source, args.thread)
    variables = (
        [args.var] if args.var else sorted(racy_variables(cfa))
    )
    if not variables:
        print("error: no written globals to check", file=sys.stderr)
        return EXIT_USAGE

    from .engine.cache import ArtifactCache
    from .engine.events import EventLog

    cache = None if args.no_cache else ArtifactCache(args.cache)
    book = (
        WinRateBook(Path(args.cache) / "winrates.json")
        if not args.no_cache
        else None
    )
    events = EventLog(args.events) if args.events else EventLog()
    options = {}
    if args.max_iterations is not None:
        options["max_iterations"] = args.max_iterations
    if args.timeout is not None:
        options["timeout_s"] = args.timeout

    races = unknown = 0
    all_rows = []
    try:
        for var in variables:
            report = run_portfolio(
                cfa,
                var,
                source=source,
                thread=args.thread,
                cancel=not args.no_cancel,
                parallel=args.parallel,
                cache=cache,
                events=events,
                winrates=book,
                **options,
            )
            all_rows.extend(
                rows_from_portfolio(report, model=Path(args.file).name)
            )
            if report.verdict == "race":
                races += 1
            elif report.verdict == "unknown":
                unknown += 1
            if args.json:
                continue
            won = report.winner or "none"
            cancelled = (
                f", cancelled {', '.join(report.cancelled)}"
                if report.cancelled
                else ""
            )
            print(
                f"{var}: {report.verdict.upper()}  "
                f"[won by {won}{cancelled}, shape {report.shape}, "
                f"{report.total_ms / 1000.0:.1f}s]"
            )
            if report.verdict == "race":
                for tid, edge in report.witness:
                    print(f"    T{tid}: {edge.op}")
    except PortfolioConflict as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        events.close()
    if args.json:
        import json

        print(json.dumps(rows_to_payload(all_rows), indent=2))
    elif args.verbose:
        print()
        print(render_rows_table(all_rows))
    return _verdict_exit(races, unknown)


def _cmd_redundant(args) -> int:
    from .races.redundancy import find_redundant_sync

    source = Path(args.file).read_text()
    findings = find_redundant_sync(
        source, args.var, thread=args.thread
    )
    if not findings:
        print("no synchronization constructs found")
        return 0
    for f in findings:
        tag = "REDUNDANT" if f.redundant else "needed"
        print(f"{f.site}: {tag} -- {f.detail}")
    return 0


def _cmd_simulate(args) -> int:
    from .exec.simulate import simulate

    cfa = _load(args.file, args.thread)
    mp = MultiProgram.symmetric(cfa, args.threads)
    result = simulate(
        mp,
        race_on=args.var,
        check_errors=args.errors,
        runs=args.runs,
        max_steps=args.max_steps,
        seed=args.seed,
    )
    if result.found:
        print(
            f"random schedule hit a bug after {result.runs} run(s) "
            f"({result.steps_total} steps):"
        )
        print(result.witness)
        return 1
    print(
        f"no bug in {result.runs} random runs "
        f"({result.steps_total} steps, {result.deadlocks} deadlocked); "
        "note: absence here proves nothing -- use 'check' for a proof"
    )
    return 0


def _cmd_static(args) -> int:
    from .static import classify

    cfa = _load(args.file, args.thread)
    report = classify(
        cfa, [args.var] if args.var else None
    )
    if args.json:
        import json

        from .races.report import REPORT_SCHEMA, rows_from_static

        payload = {
            "schema": REPORT_SCHEMA,
            "report": [
                r.to_obj()
                for r in rows_from_static(
                    report, model=Path(args.file).name
                )
            ],
            "thread": report.cfa_name,
            "monitors": [
                {"variable": m.variable, "kind": m.kind}
                for m in report.monitors
            ],
            "verdicts": {
                name: {
                    "verdict": vv.verdict.value,
                    "reason": vv.reason,
                    "read_sites": list(vv.read_sites),
                    "write_sites": list(vv.write_sites),
                    "protectors": list(vv.protectors),
                    "racing_pairs": [list(p) for p in vv.racing_pairs],
                }
                for name, vv in sorted(report.verdicts.items())
            },
            "summary": report.counts(),
            "must_check": list(report.must_check),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report)
    return 0


def _cmd_cfa(args) -> int:
    cfa = _load(args.file, args.thread)
    if args.dot:
        print(cfa.to_dot())
        return 0
    print(cfa)
    # The per-location access/write sets the static passes operate on --
    # restricted to globals, since locals cannot race.
    print()
    print("global access sets per location:")
    for q in sorted(cfa.locations):
        reads = sorted(cfa.reads_at(q) & cfa.globals)
        writes = sorted(cfa.writes_at(q) & cfa.globals)
        if not reads and not writes:
            continue
        mark = "*" if cfa.is_atomic(q) else " "
        print(
            f"  loc {q}{mark} reads={{{', '.join(reads)}}} "
            f"writes={{{', '.join(writes)}}}"
        )
    return 0


def _cmd_bench(args) -> int:
    from .nesc.programs import BENCHMARKS

    rows = [
        b
        for b in BENCHMARKS
        if args.app is None or b.app_name == args.app
    ]
    status = 0
    for b in rows:
        var = b.variable.replace("_buggy", "")
        start = time.perf_counter()
        result = circ(b.app.cfa(), race_on=var)
        elapsed = time.perf_counter() - start
        verdict = "SAFE" if result.safe else "RACE"
        expected = "SAFE" if b.expect_safe else "RACE"
        mark = "ok" if verdict == expected else "UNEXPECTED"
        print(
            f"{b.key:34s} {verdict:5s} [{elapsed:6.1f}s]  "
            f"(paper: {b.paper_preds if b.paper_preds is not None else '-'} preds) {mark}"
        )
        if mark != "ok":
            status = 1
    return status


def _cmd_batch(args) -> int:
    from .engine import BatchItem, run_batch
    from .races.report import (
        render_rows_table,
        rows_from_batch,
        rows_to_payload,
    )

    items = []
    for path in args.files:
        items.append(
            BatchItem(
                model=Path(path).name,
                source=Path(path).read_text(),
                thread=args.thread,
                variables=(args.var,) if args.var else None,
            )
        )
    if args.nesc is not None:
        from .nesc.programs import BENCHMARKS

        for b in BENCHMARKS:
            if args.nesc and b.app_name != args.nesc:
                continue
            items.append(
                BatchItem(
                    model=b.key,
                    source=b.app.thread_source(),
                    variables=(b.variable.replace("_buggy", ""),),
                )
            )
    if not items:
        print(
            "error: give FILE arguments and/or --nesc [APP]",
            file=sys.stderr,
        )
        return 2

    options = {"variant": "omega" if args.omega else "circ", "k": args.k}
    if args.max_iterations is not None:
        options["max_iterations"] = args.max_iterations
    if args.timeout is not None:
        options["timeout_s"] = args.timeout
    if args.no_incremental:
        options["incremental"] = False
    if args.portfolio:
        options["portfolio"] = True
    if args.jobs is not None and args.workers is not None:
        print(
            "error: --jobs (process pool) and --workers (sharded "
            "coordinator) are mutually exclusive",
            file=sys.stderr,
        )
        return EXIT_USAGE
    report = run_batch(
        items,
        cache_dir=None if args.no_cache else args.cache,
        workers=args.jobs,
        events=args.events,
        prefilter=not args.no_prefilter,
        shards=args.shards,
        shard_id=args.shard_id,
        shard_workers=args.workers,
        **options,
    )
    rows = rows_from_batch(report)
    summary = {
        "queries": len(report.rows),
        "jobs": report.n_jobs,
        "static": report.n_static,
        "deduped": report.n_deduped,
        "races": len(report.races),
        "unknown": len(report.unknown),
        "cache": report.cache_stats,
        "hit_rate": round(report.hit_rate, 4),
        "wall_ms": round(report.wall_ms, 3),
    }
    if args.json:
        import json

        print(json.dumps(rows_to_payload(rows, summary=summary), indent=2))
    else:
        print(render_rows_table(rows))
        print(
            f"\n{summary['queries']} queries: "
            f"{summary['static']} static, {summary['deduped']} deduped, "
            f"{summary['races']} race(s), {summary['unknown']} unknown; "
            f"cache hit rate {summary['hit_rate']:.0%}; "
            f"{report.wall_ms / 1000.0:.1f}s"
        )
    return _verdict_exit(len(report.races), len(report.unknown))


def _cmd_merge_reports(args) -> int:
    import json

    from .shard.merge import ShardConflict, merge_payloads, render_merged

    payloads = []
    for path in args.files:
        try:
            payloads.append(json.loads(Path(path).read_text()))
        except ValueError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        merged = merge_payloads(payloads)
    except ShardConflict as exc:
        # Two sound shards cannot disagree; mirroring the portfolio
        # conflict policy, this is an internal soundness error surfaced
        # loudly, never silently reconciled.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    text = render_merged(merged)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    summary = merged["summary"]
    return _verdict_exit(summary["races"], summary["unknown"])


def _cmd_serve(args) -> int:
    import asyncio

    from .serve.server import RaceServer, ServeConfig

    config = ServeConfig(
        socket=args.socket,
        host=args.host,
        port=args.port,
        cache_dir=None if args.no_cache else args.cache,
        workers=args.workers,
        memory_mb=args.memory_mb,
        qcache_flush_every=args.qcache_flush_every,
        max_client_jobs=args.max_client_jobs,
        solver_quota_s=args.solver_quota,
        events=args.events,
        prefilter=not args.no_prefilter,
    )
    server = RaceServer(config)
    where = args.socket or f"{args.host}:{args.port}"
    print(f"repro-race serve: listening on {where}", file=sys.stderr)
    asyncio.run(server.serve_forever())
    return EXIT_OK


def _cmd_submit(args) -> int:
    import json

    from .races.report import ReportRow, render_rows_table
    from .serve.client import ServeError, submit_sync

    items = []
    for path in args.files:
        items.append(
            {
                "model": Path(path).name,
                "source": Path(path).read_text(),
                "thread": args.thread,
                "variables": [args.var] if args.var else None,
            }
        )
    if args.nesc is not None:
        from .nesc.programs import BENCHMARKS

        for b in BENCHMARKS:
            if args.nesc and b.app_name != args.nesc:
                continue
            items.append(
                {
                    "model": b.key,
                    "source": b.app.thread_source(),
                    "variables": [b.variable.replace("_buggy", "")],
                }
            )
    if not items:
        print(
            "error: give FILE arguments and/or --nesc [APP]",
            file=sys.stderr,
        )
        return EXIT_USAGE

    options = {"variant": "omega" if args.omega else "circ", "k": args.k}
    if args.max_iterations is not None:
        options["max_iterations"] = args.max_iterations
    if args.timeout is not None:
        options["timeout_s"] = args.timeout
    mode = "portfolio" if args.portfolio else "batch"

    def on_event(frame):
        print(json.dumps(frame), file=sys.stderr)

    try:
        result = submit_sync(
            items,
            mode=mode,
            options=options,
            socket=args.socket,
            host=args.host,
            port=args.port,
            name=args.client,
            on_event=on_event if args.events else None,
            stream=bool(args.events),
        )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except (ConnectionError, OSError) as exc:
        # Daemon down/unreachable is transient, not a verdict: exit 3 so
        # retry loops can tell it apart from a race or UNKNOWN.
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return EXIT_BUDGET

    summary = result.get("summary", {})
    if args.json:
        payload = {
            "schema": result.get("schema"),
            "rows": result.get("rows", []),
            "summary": summary,
        }
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            ReportRow(
                model=r["model"],
                variable=r["variable"],
                verdict=r["verdict"],
                source=r["source"],
                time_ms=r["time_ms"],
                detail=r.get("detail"),
            )
            for r in result.get("rows", [])
        ]
        print(render_rows_table(rows))
        print(
            f"\n{summary.get('queries', len(rows))} queries: "
            f"{summary.get('static', 0)} static, "
            f"{summary.get('deduped', 0)} deduped, "
            f"{summary.get('races', 0)} race(s), "
            f"{summary.get('unknown', 0)} unknown; "
            f"{summary.get('wall_ms', 0.0) / 1000.0:.1f}s"
        )
    return int(result.get("exit_code", EXIT_OK))


def _cmd_fuzz(args) -> int:
    from .fuzz.diff import (
        HARD_CLASSES,
        FuzzConfig,
        run_fuzz,
        write_corpus,
    )
    from .fuzz.gen import GenConfig
    from .races.report import render_rows_table, rows_to_payload

    circ_options = []
    if args.max_iterations is not None:
        circ_options.append(("max_iterations", args.max_iterations))
    if args.timeout is not None:
        circ_options.append(("timeout_s", args.timeout))
    if args.no_incremental:
        circ_options.append(("incremental", False))
    config = FuzzConfig(
        gen=GenConfig(),
        max_threads=args.threads,
        max_states=args.max_states,
        circ_options=FuzzConfig().circ_options + tuple(circ_options),
        shrink_failures=not args.no_shrink,
    )
    shrink_classes = (
        frozenset(HARD_CLASSES | {"incompleteness"})
        if args.shrink_all
        else HARD_CLASSES
    )
    report = run_fuzz(
        seed=args.seed,
        iters=args.iters,
        config=config,
        events=args.events,
        shrink_classes=shrink_classes,
    )

    by_class: dict[str, int] = {}
    for _, _, d in report.disagreements:
        by_class[d.classification] = by_class.get(d.classification, 0) + 1
    summary = {
        "seed": args.seed,
        "iters": args.iters,
        "oracle": report.oracle_counts,
        "disagreements": by_class,
        "hard": len(report.hard),
        "elapsed_s": round(report.elapsed_seconds, 2),
    }
    if args.corpus:
        written = write_corpus(report, args.corpus)
        summary["corpus_files"] = [str(p) for p in written]

    if args.json:
        import json

        print(json.dumps(rows_to_payload(report.rows, summary=summary), indent=2))
    else:
        if args.verbose:
            print(render_rows_table(report.rows))
            print()
        print(
            f"{args.iters} programs (seeds {args.seed}.."
            f"{args.seed + args.iters - 1}): oracle {report.oracle_counts}; "
            f"disagreements {by_class or 'none'}; "
            f"{report.elapsed_seconds:.1f}s"
        )
        for seed, source, d in report.hard:
            print(
                f"\nHARD {d.classification} on path {d.path} "
                f"(seed {seed}): tool={d.tool_verdict} "
                f"oracle={d.oracle_verdict} -- {d.detail}"
            )
            print(source)
    return 1 if report.hard else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-race",
        description="Race checking by context inference (PLDI 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="CIRC verification (unbounded threads)")
    p.add_argument("file")
    p.add_argument("--var", help="global variable to check")
    p.add_argument("--all", action="store_true", help="check every written global")
    p.add_argument("--thread", help="thread name for multi-thread files")
    p.add_argument("--omega", action="store_true", help="use the infinity-check variant")
    p.add_argument("-k", type=int, default=1, help="initial counter bound")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print solver-level profiling (per-stage queries, cache, session)",
    )
    p.add_argument("--report", metavar="FILE", help="write a Markdown audit report")
    p.add_argument(
        "--no-prefilter",
        action="store_true",
        help="run CIRC on every variable, skipping the static pre-analysis",
    )
    p.add_argument(
        "--max-iterations",
        type=int,
        help="abstraction-refinement iteration budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-variable wall-clock budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--no-incremental",
        action="store_true",
        help="rebuild the ARG from scratch each iteration "
        "(disables the persistent ArgStore)",
    )
    p.add_argument(
        "--frontier",
        choices=("bfs", "dfs", "depth"),
        default="bfs",
        help="worklist order for abstract exploration (default: bfs)",
    )
    p.add_argument(
        "--portfolio",
        action="store_true",
        help="race the static detectors against CIRC with cross-cancellation",
    )
    p.add_argument(
        "--parallel",
        action="store_true",
        help="with --portfolio: run CIRC in a separate process "
        "(two-way cancellation)",
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "static",
        help="static pre-analysis only: per-variable race verdicts",
    )
    p.add_argument("file")
    p.add_argument("--var", help="classify a single global")
    p.add_argument("--thread", help="thread name for multi-thread files")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_static)

    p = sub.add_parser("explore", help="explicit-state search (fixed threads)")
    p.add_argument("file")
    p.add_argument("--var", help="race variable")
    p.add_argument("--errors", action="store_true", help="check assertions instead")
    p.add_argument("--threads", type=int, default=2)
    p.add_argument("--max-states", type=int, default=200_000)
    p.add_argument("--thread", help="thread name")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "baselines",
        help="comparison analyses: racer, absint, lockset, thread-modular",
    )
    p.add_argument("file")
    p.add_argument("--var")
    p.add_argument("--thread")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_baselines)

    p = sub.add_parser(
        "portfolio",
        help="static detectors race CIRC with cross-cancellation",
    )
    p.add_argument("file")
    p.add_argument("--var", help="global variable to check")
    p.add_argument("--thread", help="thread name for multi-thread files")
    p.add_argument(
        "--parallel",
        action="store_true",
        help="run CIRC in a separate process (two-way cancellation)",
    )
    p.add_argument(
        "--no-cancel",
        action="store_true",
        help="run every analysis to completion (no cross-cancellation)",
    )
    p.add_argument(
        "--cache",
        default=".repro-cache",
        metavar="DIR",
        help="artifact cache / win-rate book directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache and win-rate learning",
    )
    p.add_argument(
        "--events", metavar="FILE", help="append JSONL telemetry to FILE"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print the per-analysis report table",
    )
    p.add_argument(
        "--max-iterations",
        type=int,
        help="CIRC refinement iteration budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="CIRC wall-clock budget (UNKNOWN when hit)",
    )
    p.set_defaults(func=_cmd_portfolio)

    p = sub.add_parser(
        "redundant", help="find synchronization unnecessary for race freedom"
    )
    p.add_argument("file")
    p.add_argument("--var", required=True)
    p.add_argument("--thread")
    p.set_defaults(func=_cmd_redundant)

    p = sub.add_parser("simulate", help="random-schedule smoke testing")
    p.add_argument("file")
    p.add_argument("--var", help="race variable")
    p.add_argument("--errors", action="store_true")
    p.add_argument("--threads", type=int, default=2)
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--max-steps", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--thread")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("cfa", help="dump the control flow automaton")
    p.add_argument("file")
    p.add_argument("--dot", action="store_true", help="Graphviz output")
    p.add_argument("--thread")
    p.set_defaults(func=_cmd_cfa)

    p = sub.add_parser("bench", help="run the bundled nesC models")
    p.add_argument("app", nargs="?", help="secureTosBase | surge | sense")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "batch",
        help="verify many queries through the caching/parallel engine",
    )
    p.add_argument("files", nargs="*", metavar="FILE", help="mini-C programs")
    p.add_argument(
        "--nesc",
        nargs="?",
        const="",
        metavar="APP",
        help="include the bundled nesC models (optionally one app)",
    )
    p.add_argument("--var", help="check one global (default: every written global)")
    p.add_argument("--thread", help="thread name for multi-thread files")
    p.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker processes (default: CPU count; 1 = in-process)",
    )
    p.add_argument(
        "--cache",
        default=".repro-cache",
        metavar="DIR",
        help="artifact cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the artifact cache"
    )
    p.add_argument(
        "--events", metavar="FILE", help="append JSONL telemetry to FILE"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--omega", action="store_true", help="use the infinity-check variant")
    p.add_argument("-k", type=int, default=1, help="initial counter bound")
    p.add_argument(
        "--no-prefilter",
        action="store_true",
        help="plan a CIRC job for every variable",
    )
    p.add_argument(
        "--max-iterations",
        type=int,
        help="per-job refinement iteration budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-job wall-clock budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--no-incremental",
        action="store_true",
        help="run every CIRC job without the persistent ArgStore",
    )
    p.add_argument(
        "--portfolio",
        action="store_true",
        help="resolve each job through the analysis portfolio "
        "(racer/absint/CIRC with cross-cancellation)",
    )
    p.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="partition jobs into N digest buckets (see docs/SHARDING.md)",
    )
    p.add_argument(
        "--shard-id",
        type=int,
        metavar="I",
        help="dry-run mode: run only bucket I of an N-way partition "
        "(requires --shards; merge the per-shard --json payloads with "
        "'merge-reports')",
    )
    p.add_argument(
        "--workers",
        type=int,
        metavar="M",
        help="coordinated mode: run jobs through M work-stealing worker "
        "processes (mutually exclusive with --jobs and --shard-id)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "merge-reports",
        help="merge per-shard report-v1 JSON payloads deterministically",
    )
    p.add_argument(
        "files", nargs="+", metavar="REPORT", help="report-v1 JSON files"
    )
    p.add_argument(
        "-o", "--out", metavar="FILE", help="write the merged payload here"
    )
    p.set_defaults(func=_cmd_merge_reports)

    p = sub.add_parser(
        "serve",
        help="long-running verification daemon (NDJSON over a socket)",
    )
    p.add_argument(
        "--socket", metavar="PATH", help="listen on a Unix socket at PATH"
    )
    p.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default: 127.0.0.1)"
    )
    p.add_argument(
        "--port", type=int, default=7734, help="TCP port (default: 7734; 0 = ephemeral)"
    )
    p.add_argument(
        "--cache",
        default=".repro-cache",
        metavar="DIR",
        help="artifact cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the artifact cache"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="verification worker threads (default: 2)",
    )
    p.add_argument(
        "--memory-mb",
        type=float,
        default=512.0,
        metavar="MB",
        help="hot-context memory ceiling before LRU eviction (default: 512)",
    )
    p.add_argument(
        "--qcache-flush-every",
        type=int,
        default=256,
        metavar="N",
        help="spill the SMT warm tier every N new entries (default: 256)",
    )
    p.add_argument(
        "--max-client-jobs",
        type=int,
        default=4,
        metavar="N",
        help="per-client concurrent job cap (default: 4)",
    )
    p.add_argument(
        "--solver-quota",
        type=float,
        metavar="SECONDS",
        help="per-client cumulative solver-time quota "
        "(over-quota jobs yield typed UNKNOWN verdicts)",
    )
    p.add_argument(
        "--events", metavar="FILE", help="append JSONL telemetry to FILE"
    )
    p.add_argument(
        "--no-prefilter",
        action="store_true",
        help="plan a CIRC job for every variable",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="send programs to a running serve daemon",
    )
    p.add_argument("files", nargs="*", metavar="FILE", help="mini-C programs")
    p.add_argument(
        "--nesc",
        nargs="?",
        const="",
        metavar="APP",
        help="include the bundled nesC models (optionally one app)",
    )
    p.add_argument("--var", help="check one global (default: every written global)")
    p.add_argument("--thread", help="thread name for multi-thread files")
    p.add_argument(
        "--socket", metavar="PATH", help="connect to a Unix socket at PATH"
    )
    p.add_argument(
        "--host", default="127.0.0.1", help="daemon address (default: 127.0.0.1)"
    )
    p.add_argument(
        "--port", type=int, default=7734, help="daemon TCP port (default: 7734)"
    )
    p.add_argument(
        "--client", metavar="NAME", help="client name for daemon telemetry"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--events",
        action="store_true",
        help="stream per-job telemetry frames to stderr",
    )
    p.add_argument("--omega", action="store_true", help="use the infinity-check variant")
    p.add_argument("-k", type=int, default=1, help="initial counter bound")
    p.add_argument(
        "--max-iterations",
        type=int,
        help="per-job refinement iteration budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-job wall-clock budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--portfolio",
        action="store_true",
        help="resolve each job through the analysis portfolio",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of every verdict path vs the oracle",
    )
    p.add_argument("--seed", type=int, default=0, help="first generator seed")
    p.add_argument(
        "--iters", type=int, default=100, help="number of programs to fuzz"
    )
    p.add_argument(
        "--threads",
        type=int,
        default=3,
        metavar="N",
        help="oracle exploration bound (threads)",
    )
    p.add_argument(
        "--max-states",
        type=int,
        default=60_000,
        help="oracle per-bound state budget",
    )
    p.add_argument(
        "--events", metavar="FILE", help="append JSONL telemetry to FILE"
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        help="persist minimized reproducers into DIR",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing programs unminimized",
    )
    p.add_argument(
        "--shrink-all",
        action="store_true",
        help="also minimize logged (incompleteness) disagreements",
    )
    p.add_argument(
        "--max-iterations",
        type=int,
        help="per-path CIRC refinement budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-path CIRC wall-clock budget (UNKNOWN when hit)",
    )
    p.add_argument(
        "--no-incremental",
        action="store_true",
        help="run the CIRC paths without the persistent ArgStore",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print the per-path report table",
    )
    p.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        return 0  # downstream pager closed the pipe
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
