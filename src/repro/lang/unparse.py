"""Pretty-printing programs back to mini-C source.

The inverse of :mod:`repro.lang.parser` up to formatting: ``unparse``
renders a :class:`~repro.lang.ast.Program` as source text that re-parses
to an equivalent AST.  Used by tooling (showing pointer-eliminated or
otherwise transformed programs) and by the round-trip property tests that
pin the parser/printer pair.
"""

from __future__ import annotations

from ..smt import terms as T
from . import ast as A

__all__ = ["unparse", "unparse_stmt", "unparse_expr"]


def unparse_expr(t: T.Term) -> str:
    """Render an expression or condition."""
    if isinstance(t, A.Nondet):
        return "*"
    if isinstance(t, A.AddrOf):
        return f"&{t.name}"
    if isinstance(t, A.Deref):
        return f"*{t.name}"
    if isinstance(t, T.Var):
        return t.name
    if isinstance(t, T.IntConst):
        return str(t.value) if t.value >= 0 else f"(0 - {-t.value})"
    if isinstance(t, T.BoolConst):
        return "(0 == 0)" if t.value else "(0 == 1)"
    if isinstance(t, T.Add):
        return "(" + " + ".join(unparse_expr(a) for a in t.args) + ")"
    if isinstance(t, T.Sub):
        return f"({unparse_expr(t.lhs)} - {unparse_expr(t.rhs)})"
    if isinstance(t, T.Neg):
        return f"(0 - {unparse_expr(t.arg)})"
    if isinstance(t, T.Mul):
        return f"({unparse_expr(t.lhs)} * {unparse_expr(t.rhs)})"
    if isinstance(t, T.Cmp):
        return f"({unparse_expr(t.lhs)} {t.op} {unparse_expr(t.rhs)})"
    if isinstance(t, T.Not):
        return f"(!{unparse_expr(t.arg)})"
    if isinstance(t, T.And):
        return "(" + " && ".join(unparse_expr(a) for a in t.args) + ")"
    if isinstance(t, T.Or):
        return "(" + " || ".join(unparse_expr(a) for a in t.args) + ")"
    raise TypeError(f"cannot unparse {t!r}")


def unparse_stmt(stmt: A.Stmt, indent: int = 0) -> str:
    """Render one statement (with a trailing newline)."""
    pad = "  " * indent

    def block_body(s: A.Stmt) -> str:
        if isinstance(s, A.Block):
            inner = "".join(
                unparse_stmt(child, indent + 1) for child in s.stmts
            )
        else:
            inner = unparse_stmt(s, indent + 1)
        return "{\n" + inner + pad + "}"

    if isinstance(stmt, A.Block):
        return pad + block_body(stmt) + "\n"
    if isinstance(stmt, A.LocalDecl):
        star = "*" if stmt.pointer else ""
        init = f" = {unparse_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}local int {star}{stmt.name}{init};\n"
    if isinstance(stmt, A.Assign):
        return f"{pad}{stmt.lhs} = {unparse_expr(stmt.rhs)};\n"
    if isinstance(stmt, A.DerefAssign):
        return f"{pad}*{stmt.pointer} = {unparse_expr(stmt.rhs)};\n"
    if isinstance(stmt, A.AssignCall):
        args = ", ".join(unparse_expr(a) for a in stmt.args)
        return f"{pad}{stmt.lhs} = {stmt.func}({args});\n"
    if isinstance(stmt, A.CallStmt):
        args = ", ".join(unparse_expr(a) for a in stmt.args)
        return f"{pad}{stmt.func}({args});\n"
    if isinstance(stmt, A.If):
        out = f"{pad}if ({unparse_expr(stmt.cond)}) {block_body(stmt.then)}"
        if stmt.els is not None:
            out += f" else {block_body(stmt.els)}"
        return out + "\n"
    if isinstance(stmt, A.While):
        return (
            f"{pad}while ({unparse_expr(stmt.cond)}) "
            f"{block_body(stmt.body)}\n"
        )
    if isinstance(stmt, A.Atomic):
        return f"{pad}atomic {block_body(stmt.body)}\n"
    if isinstance(stmt, A.Assume):
        return f"{pad}assume({unparse_expr(stmt.cond)});\n"
    if isinstance(stmt, A.Assert):
        return f"{pad}assert({unparse_expr(stmt.cond)});\n"
    if isinstance(stmt, A.Skip):
        return f"{pad}skip;\n"
    if isinstance(stmt, A.Break):
        return f"{pad}break;\n"
    if isinstance(stmt, A.Lock):
        return f"{pad}lock({stmt.mutex});\n"
    if isinstance(stmt, A.Unlock):
        return f"{pad}unlock({stmt.mutex});\n"
    if isinstance(stmt, A.Return):
        if stmt.value is None:
            return f"{pad}return;\n"
        return f"{pad}return {unparse_expr(stmt.value)};\n"
    raise TypeError(f"cannot unparse {stmt!r}")


def unparse(program: A.Program) -> str:
    """Render a whole program."""
    parts: list[str] = []
    for g in program.globals:
        star = "*" if g.pointer else ""
        init = f" = {g.init}" if g.init else ""
        parts.append(f"global int {star}{g.name}{init};\n")
    for f in program.functions:
        ret = "int" if f.returns_value else "void"
        params = ", ".join(f"int {p}" for p in f.params)
        body = unparse_stmt(f.body, 0).lstrip()
        parts.append(f"{ret} {f.name}({params}) {body}")
    for t in program.threads:
        body = unparse_stmt(t.body, 0).lstrip()
        parts.append(f"thread {t.name} {body}")
    return "\n".join(parts)
