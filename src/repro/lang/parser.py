"""Recursive-descent parser for the mini-C concurrent language.

Grammar (informal)::

    program   := decl*
    decl      := 'global' 'int' init (',' init)* ';'
               | ('int' | 'void') IDENT '(' params? ')' block
               | 'thread' IDENT block
    init      := IDENT ('=' NUM | '=' '-' NUM)?
    params    := 'int' IDENT (',' 'int' IDENT)*
    block     := '{' stmt* '}'
    stmt      := 'local' 'int' IDENT ('=' expr)? ';'
               | IDENT '=' expr ';'
               | IDENT '=' IDENT '(' args? ')' ';'
               | IDENT '(' args? ')' ';'
               | 'if' '(' cond ')' stmt ('else' stmt)?
               | 'while' '(' cond ')' stmt
               | 'atomic' block
               | 'assume' '(' cond ')' ';'
               | 'assert' '(' cond ')' ';'
               | 'skip' ';' | 'break' ';'
               | 'lock' '(' IDENT ')' ';' | 'unlock' '(' IDENT ')' ';'
               | 'return' expr? ';'
               | block
    cond      := or-chains of and-chains of (comparison | '!' cond
               | '(' cond ')' | '*' | expr)
    expr      := additive over unary over primary ('*' only with a
                 constant operand; '/' and '%' are rejected at parse
                 time to keep expressions linear)

An arithmetic expression used where a condition is expected is desugared to
``expr != 0`` (C truthiness).  The nondeterministic condition ``*`` may only
appear as an entire condition (possibly negated), mirroring BLAST.
"""

from __future__ import annotations

from ..smt import terms as T
from . import ast as A
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse_program", "parse_expr", "parse_cond"]


class ParseError(SyntaxError):
    """Raised on grammatically invalid input."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r} but found {tok.text!r} "
                f"at line {tok.line}:{tok.col}"
            )
        return self.next()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    # -- program structure -------------------------------------------------------

    def program(self) -> A.Program:
        globals_: list[A.GlobalDecl] = []
        functions: list[A.Function] = []
        threads: list[A.ThreadDef] = []
        while not self.at("eof"):
            if self.at("kw", "global"):
                globals_.extend(self.global_decl())
            elif self.at("kw", "int") or self.at("kw", "void"):
                functions.append(self.function_decl())
            elif self.at("kw", "thread"):
                threads.append(self.thread_decl())
            else:
                tok = self.peek()
                raise ParseError(
                    f"expected declaration but found {tok.text!r} "
                    f"at line {tok.line}:{tok.col}"
                )
        return A.Program(tuple(globals_), tuple(functions), tuple(threads))

    def global_decl(self) -> list[A.GlobalDecl]:
        kw = self.expect("kw", "global")
        self.expect("kw", "int")
        decls = []
        while True:
            pointer = self.accept("punct", "*") is not None
            name = self.expect("ident").text
            init = 0
            if self.accept("punct", "="):
                negative = self.accept("punct", "-") is not None
                init = int(self.expect("num").text)
                if negative:
                    init = -init
            decls.append(A.GlobalDecl(name, init, pointer, kw.line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        return decls

    def function_decl(self) -> A.Function:
        ret = self.next()  # 'int' or 'void'
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: list[str] = []
        if not self.at("punct", ")"):
            while True:
                self.expect("kw", "int")
                params.append(self.expect("ident").text)
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        body = self.block()
        return A.Function(
            name, tuple(params), ret.text == "int", body, ret.line
        )

    def thread_decl(self) -> A.ThreadDef:
        kw = self.expect("kw", "thread")
        name = self.expect("ident").text
        body = self.block()
        return A.ThreadDef(name, body, kw.line)

    # -- statements --------------------------------------------------------------

    def block(self) -> A.Block:
        brace = self.expect("punct", "{")
        stmts: list[A.Stmt] = []
        while not self.at("punct", "}"):
            if self.at("eof"):
                raise ParseError(f"unclosed block starting at line {brace.line}")
            stmts.append(self.statement())
        self.expect("punct", "}")
        return A.Block(tuple(stmts), brace.line)

    def statement(self) -> A.Stmt:
        tok = self.peek()
        if self.at("punct", "{"):
            return self.block()
        if self.at("kw", "local"):
            self.next()
            self.expect("kw", "int")
            pointer = self.accept("punct", "*") is not None
            name = self.expect("ident").text
            init = None
            if self.accept("punct", "="):
                init = self.expr()
            self.expect("punct", ";")
            return A.LocalDecl(name, init, pointer, tok.line)
        if self.at("kw", "if"):
            self.next()
            self.expect("punct", "(")
            cond = self.cond()
            self.expect("punct", ")")
            then = self.statement()
            els = None
            if self.accept("kw", "else"):
                els = self.statement()
            return A.If(cond, then, els, tok.line)
        if self.at("kw", "while"):
            self.next()
            self.expect("punct", "(")
            cond = self.cond()
            self.expect("punct", ")")
            body = self.statement()
            return A.While(cond, body, tok.line)
        if self.at("kw", "atomic"):
            self.next()
            return A.Atomic(self.block(), tok.line)
        if self.at("kw", "assume") or self.at("kw", "assert"):
            kw = self.next()
            self.expect("punct", "(")
            cond = self.cond()
            self.expect("punct", ")")
            self.expect("punct", ";")
            cls = A.Assume if kw.text == "assume" else A.Assert
            return cls(cond, tok.line)
        if self.at("kw", "skip"):
            self.next()
            self.expect("punct", ";")
            return A.Skip(tok.line)
        if self.at("kw", "break"):
            self.next()
            self.expect("punct", ";")
            return A.Break(tok.line)
        if self.at("kw", "lock") or self.at("kw", "unlock"):
            kw = self.next()
            self.expect("punct", "(")
            mutex = self.expect("ident").text
            self.expect("punct", ")")
            self.expect("punct", ";")
            cls = A.Lock if kw.text == "lock" else A.Unlock
            return cls(mutex, tok.line)
        if self.at("kw", "return"):
            self.next()
            value = None
            if not self.at("punct", ";"):
                value = self.expr()
            self.expect("punct", ";")
            return A.Return(value, tok.line)
        if self.at("punct", "*") and self.peek(1).kind == "ident":
            self.next()
            pointer = self.expect("ident").text
            self.expect("punct", "=")
            rhs = self.expr()
            self.expect("punct", ";")
            return A.DerefAssign(pointer, rhs, tok.line)
        if self.at("ident"):
            name = self.next().text
            if self.accept("punct", "="):
                # Assignment, possibly from a call.
                if self.at("ident") and self.peek(1).text == "(":
                    func = self.next().text
                    args = self.call_args()
                    self.expect("punct", ";")
                    return A.AssignCall(name, func, args, tok.line)
                rhs = self.expr()
                self.expect("punct", ";")
                return A.Assign(name, rhs, tok.line)
            if self.at("punct", "("):
                args = self.call_args()
                self.expect("punct", ";")
                return A.CallStmt(name, args, tok.line)
            raise ParseError(
                f"expected '=' or '(' after {name!r} at line {tok.line}"
            )
        raise ParseError(
            f"unexpected token {tok.text!r} at line {tok.line}:{tok.col}"
        )

    def call_args(self) -> tuple[T.Term, ...]:
        self.expect("punct", "(")
        args: list[T.Term] = []
        if not self.at("punct", ")"):
            while True:
                args.append(self.expr())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return tuple(args)

    # -- conditions ---------------------------------------------------------------

    def cond(self) -> T.Term:
        return self.cond_or()

    def cond_or(self) -> T.Term:
        left = self.cond_and()
        while self.accept("punct", "||"):
            right = self.cond_and()
            left = T.or_(left, right)
        return left

    def cond_and(self) -> T.Term:
        left = self.cond_not()
        while self.accept("punct", "&&"):
            right = self.cond_not()
            left = T.and_(left, right)
        return left

    def cond_not(self) -> T.Term:
        if self.accept("punct", "!"):
            inner = self.cond_not()
            if isinstance(inner, A.Nondet):
                return inner  # !* is still a coin flip
            return T.not_(inner)
        return self.cond_atom()

    def cond_atom(self) -> T.Term:
        if self.at("punct", "*"):
            self.next()
            return A.NONDET
        if self.at("punct", "("):
            # Could be a parenthesized condition or arithmetic expression;
            # parse as condition (conditions subsume desugared expressions).
            self.next()
            inner = self.cond()
            self.expect("punct", ")")
            return self._maybe_comparison(inner)
        expr = self.expr()
        return self._maybe_comparison(expr)

    def _maybe_comparison(self, left: T.Term) -> T.Term:
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.at("punct", op):
                self.next()
                right = self.expr()
                if not _is_arith(left):
                    raise ParseError("comparison of a boolean expression")
                return T.Cmp(op, left, right)
        if _is_arith(left):
            # C truthiness: a bare arithmetic expression means `expr != 0`.
            return T.ne(left, T.num(0))
        return left

    # -- expressions -----------------------------------------------------------------

    def expr(self) -> T.Term:
        left = self.term()
        while True:
            if self.accept("punct", "+"):
                left = T.add(left, self.term())
            elif self.accept("punct", "-"):
                left = T.sub(left, self.term())
            else:
                return left

    def term(self) -> T.Term:
        left = self.unary()
        while True:
            if self.at("punct", "*"):
                # Distinguish multiplication from a nondet marker: after a
                # complete operand, '*' binds as multiplication.
                self.next()
                right = self.unary()
                left = T.mul(left, right)
            elif self.at("punct", "/") or self.at("punct", "%"):
                tok = self.peek()
                raise ParseError(
                    f"non-linear operator {tok.text!r} at line {tok.line} "
                    "is not supported"
                )
            else:
                return left

    def unary(self) -> T.Term:
        if self.accept("punct", "-"):
            return T.neg(self.unary())
        if self.at("punct", "*") and self.peek(1).kind == "ident":
            self.next()
            return A.Deref(self.expect("ident").text)
        return self.primary()

    def primary(self) -> T.Term:
        tok = self.peek()
        if tok.text == "&" and tok.kind == "punct":
            self.next()
            return A.AddrOf(self.expect("ident").text)
        if tok.kind == "num":
            self.next()
            return T.num(int(tok.text))
        if tok.kind == "ident":
            self.next()
            return T.var(tok.text)
        if self.accept("punct", "("):
            inner = self.expr()
            self.expect("punct", ")")
            return inner
        raise ParseError(
            f"expected expression but found {tok.text!r} "
            f"at line {tok.line}:{tok.col}"
        )


def _is_arith(t: T.Term) -> bool:
    return isinstance(t, (T.Var, T.IntConst, T.Add, T.Sub, T.Neg, T.Mul))


def parse_program(source: str) -> A.Program:
    """Parse a complete program."""
    return _Parser(tokenize(source)).program()


def parse_expr(source: str) -> T.Term:
    """Parse a standalone arithmetic expression (for tests and tools)."""
    p = _Parser(tokenize(source))
    e = p.expr()
    p.expect("eof")
    return e


def parse_cond(source: str) -> T.Term:
    """Parse a standalone condition (for tests and tools)."""
    p = _Parser(tokenize(source))
    c = p.cond()
    p.expect("eof")
    return c
