"""Abstract syntax for the mini-C concurrent language.

The language is the source form of the paper's programs (Figure 1 and the
nesC models of Section 6): integer globals, per-thread integer locals,
structured control flow, ``atomic`` blocks (nesC's atomic sections),
``assume``/``assert``, nondeterministic conditions (``*``), simple
lock/unlock primitives (recognized by the lockset baseline), and
non-recursive functions that are inlined during lowering.

Expressions and conditions reuse the SMT term language
(:mod:`repro.smt.terms`); the single extension is :class:`Nondet`, the
nondeterministic condition ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..smt.terms import Term

__all__ = [
    "Nondet",
    "NONDET",
    "Program",
    "GlobalDecl",
    "Function",
    "ThreadDef",
    "Stmt",
    "LocalDecl",
    "Assign",
    "AssignCall",
    "AddrOf",
    "Deref",
    "DerefAssign",
    "If",
    "While",
    "Atomic",
    "Assume",
    "Assert",
    "Skip",
    "Lock",
    "Unlock",
    "CallStmt",
    "Return",
    "Break",
    "Block",
]


class Nondet(Term):
    """The nondeterministic condition ``*``."""

    __slots__ = ()

    def key(self) -> tuple:
        return ("nondet",)

    def __repr__(self) -> str:
        return "*"


#: The unique nondeterministic-condition marker.
NONDET = Nondet()


class AddrOf(Term):
    """The address expression ``&x`` (Section 5 memory model)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("terms are immutable")

    def key(self) -> tuple:
        return ("addrof", self.name)

    def __repr__(self) -> str:
        return f"&{self.name}"


class Deref(Term):
    """The dereference expression ``*p``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("terms are immutable")

    def key(self) -> tuple:
        return ("deref", self.name)

    def __repr__(self) -> str:
        return f"*{self.name}"


class Stmt:
    """Base class for statements."""

    __slots__ = ("line",)


@dataclass
class LocalDecl(Stmt):
    """``local int x;`` / ``local int *p;`` (optionally initialized)."""

    name: str
    init: Optional[Term] = None
    pointer: bool = False
    line: int = 0


@dataclass
class Assign(Stmt):
    """``x = e;``"""

    lhs: str
    rhs: Term
    line: int = 0


@dataclass
class AssignCall(Stmt):
    """``x = f(e1, ..., en);``"""

    lhs: str
    func: str
    args: tuple[Term, ...] = ()
    line: int = 0


@dataclass
class DerefAssign(Stmt):
    """``*p = e;`` -- a write through a pointer."""

    pointer: str
    rhs: Term
    line: int = 0


@dataclass
class CallStmt(Stmt):
    """``f(e1, ..., en);``"""

    func: str
    args: tuple[Term, ...] = ()
    line: int = 0


@dataclass
class If(Stmt):
    """``if (c) s1 else s2`` -- ``els`` may be None."""

    cond: Term
    then: "Stmt"
    els: Optional["Stmt"] = None
    line: int = 0


@dataclass
class While(Stmt):
    """``while (c) s``"""

    cond: Term
    body: "Stmt"
    line: int = 0


@dataclass
class Atomic(Stmt):
    """``atomic { ... }`` -- the body executes without preemption."""

    body: "Block"
    line: int = 0


@dataclass
class Assume(Stmt):
    """``assume(c);`` -- blocks unless c holds."""

    cond: Term
    line: int = 0


@dataclass
class Assert(Stmt):
    """``assert(c);`` -- reaches the error location when c fails."""

    cond: Term
    line: int = 0


@dataclass
class Skip(Stmt):
    """``skip;``"""

    line: int = 0


@dataclass
class Lock(Stmt):
    """``lock(m);`` -- atomic test-and-set on the mutex variable ``m``."""

    mutex: str
    line: int = 0


@dataclass
class Unlock(Stmt):
    """``unlock(m);``"""

    mutex: str
    line: int = 0


@dataclass
class Return(Stmt):
    """``return;`` or ``return e;``"""

    value: Optional[Term] = None
    line: int = 0


@dataclass
class Break(Stmt):
    """``break;``"""

    line: int = 0


@dataclass
class Block(Stmt):
    """``{ s1 ... sn }``"""

    stmts: tuple[Stmt, ...] = ()
    line: int = 0


@dataclass
class GlobalDecl:
    """``global int x;`` / ``global int *p;`` (default initial value 0,
    which for pointers is the null address)."""

    name: str
    init: int = 0
    pointer: bool = False
    line: int = 0


@dataclass
class Function:
    """A non-recursive function, inlined at lowering time."""

    name: str
    params: tuple[str, ...]
    returns_value: bool
    body: Block
    line: int = 0


@dataclass
class ThreadDef:
    """A thread template; the multithreaded program runs copies of it."""

    name: str
    body: Block
    line: int = 0


@dataclass
class Program:
    """A parsed program: globals, functions, and thread templates."""

    globals: tuple[GlobalDecl, ...] = ()
    functions: tuple[Function, ...] = ()
    threads: tuple[ThreadDef, ...] = ()

    def global_names(self) -> frozenset[str]:
        return frozenset(g.name for g in self.globals)

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")

    def thread(self, name: str | None = None) -> ThreadDef:
        if name is None:
            if len(self.threads) != 1:
                raise ValueError(
                    "program has multiple threads; specify a name"
                )
            return self.threads[0]
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(f"no thread named {name!r}")
