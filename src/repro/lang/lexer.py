"""Tokenizer for the mini-C concurrent language."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "global",
        "local",
        "int",
        "void",
        "thread",
        "if",
        "else",
        "while",
        "atomic",
        "assume",
        "assert",
        "skip",
        "lock",
        "unlock",
        "return",
        "break",
    }
)

_PUNCT = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "&",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
)


class LexError(SyntaxError):
    """Raised on malformed input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'num' | 'kw' | 'punct' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize source text; raises :class:`LexError` on bad characters."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated comment at line {line}")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("num", source[i:j], line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        for p in _PUNCT:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                i += len(p)
                col += len(p)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}:{col}")
    tokens.append(Token("eof", "", line, col))
    return tokens
