"""The Section 5 memory model: pointers, aliasing, and their elimination.

The paper extends the basic integer algorithm to pointer variables: "we
cannot infer the global memory address being accessed syntactically ...
for the error check, we ask for every pair of lvalues l1, l2 at a state,
if the addresses of l1 and l2 can be the same ... we use a flow insensitive
alias and escape analysis to curtail the possible aliasing relationships."

This module implements that design as a frontend pass:

1. every address-taken variable receives a distinct positive *address
   constant* (0 is the null address);
2. a flow-insensitive, inclusion-based (Andersen-style) points-to analysis
   computes ``pts(p)`` for every single-level pointer;
3. pointer operations are eliminated by case-splitting over the points-to
   sets: ``x = *p`` and ``*p = e`` become address-comparison chains over
   the may-alias targets (a deref with no live target blocks, modeling the
   paper's treatment of null as an unreachable error path), and ``p = &x``
   becomes an ordinary constant assignment.

The core verifier then runs unchanged on the pointer-free program, and a
race on ``x`` automatically covers every access through an alias of ``x``
-- exactly the lvalue-pair check of Section 5, with the alias analysis
bounding the pairs explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..smt import terms as T
from . import ast as A

__all__ = ["PointerError", "PointsTo", "analyze_pointers", "eliminate_pointers"]


class PointerError(ValueError):
    """Unsupported pointer construct (multi-level, arithmetic, ...)."""


@dataclass
class PointsTo:
    """Result of the flow-insensitive alias/escape analysis."""

    #: address constant per address-taken variable (1-based; 0 is null)
    address: dict[str, int] = field(default_factory=dict)
    #: may-point-to sets per pointer variable
    pts: dict[str, frozenset[str]] = field(default_factory=dict)
    #: pointer variable names
    pointers: frozenset[str] = frozenset()

    def escaped(self) -> frozenset[str]:
        """Variables whose address is taken (they 'escape' into pointers)."""
        return frozenset(self.address)

    def may_alias(self, l1: str, l2: str) -> bool:
        """Can lvalues l1 and l2 denote the same memory? (Section 5's
        question.)  Plain variables alias only themselves; a pointer deref
        aliases its points-to set."""
        s1 = self.pts.get(l1, frozenset({l1}))
        s2 = self.pts.get(l2, frozenset({l2}))
        return bool(s1 & s2)


def _walk_statements(program: A.Program):
    """Yield every statement in every thread and function body."""

    def walk(stmt):
        yield stmt
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                yield from walk(s)
        elif isinstance(stmt, A.If):
            yield from walk(stmt.then)
            if stmt.els is not None:
                yield from walk(stmt.els)
        elif isinstance(stmt, A.While):
            yield from walk(stmt.body)
        elif isinstance(stmt, A.Atomic):
            yield from walk(stmt.body)

    for thread in program.threads:
        yield from walk(thread.body)
    for func in program.functions:
        yield from walk(func.body)


def _collect_pointers(program: A.Program) -> frozenset[str]:
    names = {g.name for g in program.globals if g.pointer}
    for stmt in _walk_statements(program):
        if isinstance(stmt, A.LocalDecl) and stmt.pointer:
            names.add(stmt.name)
    return frozenset(names)


def _term_mentions(t: T.Term, cls) -> list:
    return [s for s in T.subterms(t) if isinstance(s, cls)]


def analyze_pointers(program: A.Program) -> PointsTo:
    """Flow-insensitive inclusion-based points-to analysis."""
    pointers = _collect_pointers(program)
    address: dict[str, int] = {}

    def addr_of(name: str) -> int:
        if name in pointers:
            raise PointerError(
                f"address of pointer {name!r}: multi-level pointers "
                "are not supported"
            )
        if name not in address:
            address[name] = len(address) + 1
        return address[name]

    # Seed sets and subset constraints.
    pts: dict[str, set[str]] = {p: set() for p in pointers}
    subset: list[tuple[str, str]] = []  # pts[a] <= pts[b]

    def seed_assign(lhs: str, rhs: T.Term) -> None:
        if isinstance(rhs, A.AddrOf):
            addr_of(rhs.name)
            pts[lhs].add(rhs.name)
        elif isinstance(rhs, T.Var) and rhs.name in pointers:
            subset.append((rhs.name, lhs))
        elif isinstance(rhs, T.IntConst) and rhs.value == 0:
            pass  # null
        else:
            raise PointerError(
                f"pointer {lhs!r} may only be assigned &var, another "
                "pointer, or 0 (null)"
            )

    for stmt in _walk_statements(program):
        if isinstance(stmt, A.Assign):
            if stmt.lhs in pointers:
                seed_assign(stmt.lhs, stmt.rhs)
            else:
                for bad in _term_mentions(stmt.rhs, A.AddrOf):
                    addr_of(bad.name)  # ensure an address exists
        elif isinstance(stmt, A.LocalDecl) and stmt.pointer:
            if stmt.init is not None:
                seed_assign(stmt.name, stmt.init)
        elif isinstance(stmt, A.DerefAssign):
            if stmt.pointer not in pointers:
                raise PointerError(
                    f"dereference of non-pointer {stmt.pointer!r}"
                )
            if _term_mentions(stmt.rhs, A.Deref) or _term_mentions(
                stmt.rhs, A.AddrOf
            ):
                raise PointerError(
                    "the right-hand side of *p = e must be pointer-free"
                )

    # Propagate subset constraints to fixpoint.
    changed = True
    while changed:
        changed = False
        for src, dst in subset:
            before = len(pts[dst])
            pts[dst] |= pts[src]
            if len(pts[dst]) != before:
                changed = True

    return PointsTo(
        address=address,
        pts={p: frozenset(s) for p, s in pts.items()},
        pointers=pointers,
    )


# ---------------------------------------------------------------------------
# Elimination
# ---------------------------------------------------------------------------


def _replace_addrof(t: T.Term, info: PointsTo) -> T.Term:
    def repl(node: T.Term) -> T.Term | None:
        if isinstance(node, A.AddrOf):
            return T.num(info.address[node.name])
        if isinstance(node, A.Deref):
            raise PointerError(
                "a dereference may only appear as the entire right-hand "
                "side of an assignment (x = *p;) or as a write target "
                "(*p = e;)"
            )
        return None

    return T.transform(t, repl)


def _deref_chain(
    pointer: str, targets: Iterable[str], info: PointsTo, make_body
) -> A.Stmt:
    """Build the case-split over a pointer's may-targets.

    ``make_body(target)`` returns the statement for one alias case; the
    fall-through (null or outside the points-to set) blocks.
    """
    chain: A.Stmt = A.Assume(T.FALSE)
    for target in sorted(targets, reverse=True):
        guard = T.eq(T.var(pointer), T.num(info.address[target]))
        chain = A.If(guard, make_body(target), chain)
    return chain


class _Rewriter:
    def __init__(self, info: PointsTo):
        self.info = info

    def rewrite(self, stmt: A.Stmt) -> A.Stmt:
        info = self.info
        if isinstance(stmt, A.Block):
            return A.Block(
                tuple(self.rewrite(s) for s in stmt.stmts), stmt.line
            )
        if isinstance(stmt, A.If):
            return A.If(
                self._cond(stmt.cond),
                self.rewrite(stmt.then),
                self.rewrite(stmt.els) if stmt.els is not None else None,
                stmt.line,
            )
        if isinstance(stmt, A.While):
            return A.While(
                self._cond(stmt.cond), self.rewrite(stmt.body), stmt.line
            )
        if isinstance(stmt, A.Atomic):
            return A.Atomic(self.rewrite(stmt.body), stmt.line)
        if isinstance(stmt, (A.Assume, A.Assert)):
            cls = type(stmt)
            return cls(self._cond(stmt.cond), stmt.line)
        if isinstance(stmt, A.LocalDecl):
            init = stmt.init
            if init is not None:
                init = (
                    _replace_addrof(init, info)
                    if not isinstance(init, A.Deref)
                    else init
                )
            if isinstance(init, A.Deref):
                # local int x = *p;  ->  declare then case-split assign.
                decl = A.LocalDecl(stmt.name, None, False, stmt.line)
                assign = self._deref_read(stmt.name, init)
                return A.Block((decl, assign), stmt.line)
            return A.LocalDecl(stmt.name, init, False, stmt.line)
        if isinstance(stmt, A.Assign):
            if isinstance(stmt.rhs, A.Deref):
                return self._deref_read(stmt.lhs, stmt.rhs)
            return A.Assign(
                stmt.lhs, _replace_addrof(stmt.rhs, info), stmt.line
            )
        if isinstance(stmt, A.DerefAssign):
            rhs = _replace_addrof(stmt.rhs, info)
            targets = info.pts.get(stmt.pointer, frozenset())
            return _deref_chain(
                stmt.pointer,
                targets,
                info,
                lambda t: A.Assign(t, rhs, stmt.line),
            )
        if isinstance(stmt, (A.AssignCall, A.CallStmt)):
            args = tuple(
                _replace_addrof(a, info) for a in stmt.args
            )
            if isinstance(stmt, A.AssignCall):
                return A.AssignCall(stmt.lhs, stmt.func, args, stmt.line)
            return A.CallStmt(stmt.func, args, stmt.line)
        if isinstance(stmt, A.Return):
            value = stmt.value
            if value is not None:
                value = _replace_addrof(value, info)
            return A.Return(value, stmt.line)
        return stmt  # Skip, Lock, Unlock, Break

    def _cond(self, cond: T.Term) -> T.Term:
        if isinstance(cond, A.Nondet):
            return cond
        return _replace_addrof(cond, self.info)

    def _deref_read(self, lhs: str, deref: A.Deref) -> A.Stmt:
        info = self.info
        if deref.name not in info.pointers:
            raise PointerError(f"dereference of non-pointer {deref.name!r}")
        targets = info.pts.get(deref.name, frozenset())
        return _deref_chain(
            deref.name,
            targets,
            info,
            lambda t: A.Assign(lhs, T.var(t), 0),
        )


def eliminate_pointers(program: A.Program) -> tuple[A.Program, PointsTo]:
    """Rewrite a program with pointers into an equivalent pointer-free one.

    Returns the rewritten program plus the alias analysis results (for
    tooling and for the lvalue-pair race question).
    """
    info = analyze_pointers(program)
    if not info.pointers:
        return program, info
    rewriter = _Rewriter(info)
    globals_ = tuple(
        A.GlobalDecl(g.name, g.init, False, g.line) for g in program.globals
    )
    functions = tuple(
        A.Function(
            f.name,
            f.params,
            f.returns_value,
            rewriter.rewrite(f.body),
            f.line,
        )
        for f in program.functions
    )
    threads = tuple(
        A.ThreadDef(t.name, rewriter.rewrite(t.body), t.line)
        for t in program.threads
    )
    return A.Program(globals_, functions, threads), info
