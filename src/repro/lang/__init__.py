"""Mini-C concurrent language frontend: AST, parser, pointers, CFA lowering."""

from . import ast
from .ast import NONDET, AddrOf, Deref, Nondet, Program, ThreadDef
from .lexer import LexError, tokenize
from .lower import LowerError, lower_program, lower_source, lower_thread
from .parser import ParseError, parse_cond, parse_expr, parse_program
from .pointers import PointerError, PointsTo, analyze_pointers, eliminate_pointers
