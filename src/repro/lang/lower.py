"""Lowering from the mini-C AST to Control Flow Automata.

Mirrors BLAST's CIL frontend in miniature:

* structured statements become assume/assign edges;
* ``atomic`` blocks mark their interior locations atomic (the entry edge
  carries the thread into the first atomic location; the last operation of
  the block releases atomicity by targeting a non-atomic location);
* functions are inlined at each call site with freshly renamed locals
  (recursion is rejected);
* ``lock``/``unlock`` desugar into an atomic test-and-set / a reset, with
  ``lock_info`` tags preserved for the lockset baseline;
* a final contraction pass removes stutter (``assume true``) edges that
  connect equi-atomic locations, keeping CFAs close to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smt import terms as T
from ..smt.simplify import fold_constants
from ..cfa.cfa import CFA, AssignOp, AssumeOp, Edge
from . import ast as A
from .parser import parse_program

__all__ = ["LowerError", "lower_thread", "lower_source", "lower_program"]

#: Maximum function-call inlining depth (recursion guard).
MAX_INLINE_DEPTH = 32


class LowerError(ValueError):
    """Raised on semantically invalid programs (undeclared variables,
    recursion, misplaced nondeterministic markers, ...)."""


@dataclass
class _Frame:
    """Inlining context for one function activation."""

    rename: dict[str, str]
    return_target: int | None = None
    return_var: str | None = None


class _Lowerer:
    def __init__(self, program: A.Program, thread: A.ThreadDef):
        self.program = program
        self.thread = thread
        self.globals = set(program.global_names())
        self.locals: set[str] = set()
        self.edges: list[Edge] = []
        self.atomic: set[int] = set()
        self.error_loc: int | None = None
        self._next_loc = 0
        self._inline_counter = 0
        self._break_targets: list[int] = []
        self._frames: list[_Frame] = [_Frame(rename={})]
        self._atomic_depth = 0

    # -- allocation ---------------------------------------------------------

    def fresh(self) -> int:
        q = self._next_loc
        self._next_loc += 1
        if self._atomic_depth > 0:
            self.atomic.add(q)
        return q

    def error(self) -> int:
        if self.error_loc is None:
            self.error_loc = self._next_loc
            self._next_loc += 1
        return self.error_loc

    def emit(self, src: int, op, dst: int, lock_info=None) -> None:
        self.edges.append(Edge(src, op, dst, lock_info))

    # -- variable resolution ----------------------------------------------------

    def resolve(self, name: str) -> str:
        for frame in reversed(self._frames):
            if name in frame.rename:
                return frame.rename[name]
        if name in self.globals or name in self.locals:
            return name
        raise LowerError(f"undeclared variable {name!r}")

    def resolve_term(self, t: T.Term) -> T.Term:
        mapping = {}
        for name in T.free_vars(t):
            mapping[name] = T.var(self.resolve(name))
        return T.substitute(t, mapping)

    def declare_local(self, name: str) -> str:
        """Register a local; inlined frames get suffixed copies."""
        frame = self._frames[-1]
        if len(self._frames) == 1:
            unique = name
        else:
            unique = f"{name}@{self._inline_counter}"
        if unique in self.globals or unique in self.locals:
            if len(self._frames) == 1:
                raise LowerError(f"duplicate declaration of {name!r}")
        self.locals.add(unique)
        frame.rename[name] = unique
        return unique

    # -- conditions ----------------------------------------------------------------

    def check_no_nested_nondet(self, cond: T.Term) -> None:
        from ..smt.terms import subterms

        for s in subterms(cond):
            if isinstance(s, A.Nondet) and s is not cond:
                raise LowerError(
                    "'*' may only be used as an entire condition"
                )

    def branch_preds(self, cond: T.Term) -> tuple[T.Term, T.Term]:
        """(then-assume, else-assume) for a condition."""
        if isinstance(cond, A.Nondet):
            return T.TRUE, T.TRUE
        self.check_no_nested_nondet(cond)
        cond = fold_constants(self.resolve_term(cond))
        return cond, fold_constants(T.not_(cond))

    # -- statement lowering -----------------------------------------------------------

    def lower_stmt(self, stmt: A.Stmt, entry: int) -> int:
        """Lower ``stmt`` starting at ``entry``; returns the exit location."""
        if isinstance(stmt, A.Block):
            cur = entry
            for s in stmt.stmts:
                cur = self.lower_stmt(s, cur)
            return cur
        if isinstance(stmt, A.LocalDecl):
            name = self.declare_local(stmt.name)
            if stmt.init is None:
                return entry
            rhs = self.resolve_term(stmt.init)
            exit_ = self.fresh()
            self.emit(entry, AssignOp(name, rhs), exit_)
            return exit_
        if isinstance(stmt, A.Assign):
            lhs = self.resolve(stmt.lhs)
            rhs = self.resolve_term(stmt.rhs)
            exit_ = self.fresh()
            self.emit(entry, AssignOp(lhs, rhs), exit_)
            return exit_
        if isinstance(stmt, A.Skip):
            return entry
        if isinstance(stmt, A.Assume):
            if isinstance(stmt.cond, A.Nondet):
                return entry
            self.check_no_nested_nondet(stmt.cond)
            pred = fold_constants(self.resolve_term(stmt.cond))
            exit_ = self.fresh()
            if pred == T.TRUE:
                self.emit(entry, AssumeOp(T.TRUE), exit_)
            elif pred != T.FALSE:
                self.emit(entry, AssumeOp(pred), exit_)
            return exit_
        if isinstance(stmt, A.Assert):
            then_p, else_p = self.branch_preds(stmt.cond)
            exit_ = self.fresh()
            if then_p != T.FALSE:
                self.emit(entry, AssumeOp(then_p), exit_)
            if else_p != T.FALSE:
                self.emit(entry, AssumeOp(else_p), self.error())
            return exit_
        if isinstance(stmt, A.If):
            then_p, else_p = self.branch_preds(stmt.cond)
            then_entry = self.fresh()
            if then_p != T.FALSE:
                self.emit(entry, AssumeOp(then_p), then_entry)
            then_exit = self.lower_stmt(stmt.then, then_entry)
            if stmt.els is None:
                join = self.fresh()
                if else_p != T.FALSE:
                    self.emit(entry, AssumeOp(else_p), join)
                self.emit(then_exit, AssumeOp(T.TRUE), join)
                return join
            else_entry = self.fresh()
            if else_p != T.FALSE:
                self.emit(entry, AssumeOp(else_p), else_entry)
            else_exit = self.lower_stmt(stmt.els, else_entry)
            join = self.fresh()
            self.emit(then_exit, AssumeOp(T.TRUE), join)
            self.emit(else_exit, AssumeOp(T.TRUE), join)
            return join
        if isinstance(stmt, A.While):
            head = self.fresh()
            self.emit(entry, AssumeOp(T.TRUE), head)
            then_p, else_p = self.branch_preds(stmt.cond)
            exit_ = self.fresh()
            body_entry = self.fresh()
            if then_p != T.FALSE:
                self.emit(head, AssumeOp(then_p), body_entry)
            if else_p != T.FALSE:
                self.emit(head, AssumeOp(else_p), exit_)
            self._break_targets.append(exit_)
            body_exit = self.lower_stmt(stmt.body, body_entry)
            self._break_targets.pop()
            self.emit(body_exit, AssumeOp(T.TRUE), head)
            return exit_
        if isinstance(stmt, A.Break):
            if not self._break_targets:
                raise LowerError("'break' outside a loop")
            self.emit(entry, AssumeOp(T.TRUE), self._break_targets[-1])
            # Unreachable continuation.
            return self.fresh()
        if isinstance(stmt, A.Atomic):
            atomic_entry = self.fresh()
            self.atomic.add(atomic_entry)
            self.emit(entry, AssumeOp(T.TRUE), atomic_entry)
            self._atomic_depth += 1
            body_exit = self.lower_stmt(stmt.body, atomic_entry)
            self._atomic_depth -= 1
            # The last operation releases atomicity: its target must be
            # non-atomic.  If the body exit ended up atomic (it was created
            # inside), append an explicit release edge.
            if body_exit in self.atomic and self._atomic_depth == 0:
                release = self.fresh()
                self.emit(body_exit, AssumeOp(T.TRUE), release)
                return release
            return body_exit
        if isinstance(stmt, A.Lock):
            mutex = self.resolve(stmt.mutex)
            mid = self.fresh()
            self.atomic.add(mid)
            exit_ = self.fresh()  # atomic only if inside an atomic block
            info = ("acquire", mutex)
            self.emit(
                entry, AssumeOp(T.eq(T.var(mutex), T.num(0))), mid, info
            )
            self.emit(mid, AssignOp(mutex, T.num(1)), exit_, info)
            return exit_
        if isinstance(stmt, A.Unlock):
            mutex = self.resolve(stmt.mutex)
            exit_ = self.fresh()
            self.emit(
                entry, AssignOp(mutex, T.num(0)), exit_, ("release", mutex)
            )
            return exit_
        if isinstance(stmt, A.Return):
            frame = self._frames[-1]
            if frame.return_target is None:
                # Return from the thread body: jump to a terminal sink.
                sink = self.fresh()
                self.emit(entry, AssumeOp(T.TRUE), sink)
                if stmt.value is not None:
                    raise LowerError("thread bodies cannot return a value")
                return self.fresh()  # unreachable continuation
            cur = entry
            if frame.return_var is not None:
                if stmt.value is None:
                    raise LowerError("missing return value")
                rhs = self.resolve_term(stmt.value)
                nxt = self.fresh()
                self.emit(cur, AssignOp(frame.return_var, rhs), nxt)
                cur = nxt
            elif stmt.value is not None:
                raise LowerError("void function returns a value")
            self.emit(cur, AssumeOp(T.TRUE), frame.return_target)
            return self.fresh()  # unreachable continuation
        if isinstance(stmt, A.CallStmt):
            return self.inline_call(stmt.func, stmt.args, None, entry)
        if isinstance(stmt, A.AssignCall):
            lhs = self.resolve(stmt.lhs)
            return self.inline_call(stmt.func, stmt.args, lhs, entry)
        raise TypeError(f"unknown statement {stmt!r}")

    def inline_call(
        self,
        func_name: str,
        args: tuple[T.Term, ...],
        result_var: str | None,
        entry: int,
    ) -> int:
        if len(self._frames) > MAX_INLINE_DEPTH:
            raise LowerError(
                f"call chain deeper than {MAX_INLINE_DEPTH}: recursion?"
            )
        func = self.program.function(func_name)
        if len(args) != len(func.params):
            raise LowerError(
                f"call to {func_name!r} with {len(args)} args, "
                f"expected {len(func.params)}"
            )
        if result_var is not None and not func.returns_value:
            raise LowerError(f"void function {func_name!r} used as a value")
        self._inline_counter += 1
        frame = _Frame(rename={}, return_target=None, return_var=result_var)
        # Evaluate arguments into fresh parameter locals (in the caller's
        # scope), then enter the callee frame.
        cur = entry
        param_names: list[str] = []
        for p, arg in zip(func.params, args):
            unique = f"{p}@{self._inline_counter}"
            self.locals.add(unique)
            param_names.append(unique)
            rhs = self.resolve_term(arg)
            nxt = self.fresh()
            self.emit(cur, AssignOp(unique, rhs), nxt)
            cur = nxt
        for p, unique in zip(func.params, param_names):
            frame.rename[p] = unique
        exit_ = self.fresh()
        frame.return_target = exit_
        self._frames.append(frame)
        body_exit = self.lower_stmt(func.body, cur)
        self._frames.pop()
        # Fall-through return (void functions, or int functions on paths
        # without an explicit return -- value stays unchanged).
        self.emit(body_exit, AssumeOp(T.TRUE), exit_)
        return exit_

    # -- assembly ---------------------------------------------------------------------

    def build(self) -> CFA:
        q0 = self.fresh()
        self.lower_stmt(self.thread.body, q0)
        locations = set(range(self._next_loc))
        error_locs = {self.error_loc} if self.error_loc is not None else set()
        cfa = CFA(
            name=self.thread.name,
            q0=q0,
            locations=locations,
            edges=self.edges,
            atomic=self.atomic,
            error_locations=error_locs,
            globals_=self.globals,
            locals_=self.locals,
            global_init={g.name: g.init for g in self.program.globals},
        )
        return _contract(cfa)


def _contract(cfa: CFA) -> CFA:
    """Contract stutter edges and drop unreachable locations.

    An edge ``u --[true]--> v`` with no lock tag is contracted (u merged
    into v) when it is u's only out-edge, u is not an error location,
    u != v, and the merge does not *acquire* atomicity early (contracting a
    non-atomic u into an atomic v would let predecessors enter the atomic
    section one step sooner, removing interleavings -- unsound).  Merging an
    atomic u into a non-atomic v is fine: a thread at u blocks every other
    thread and its only move is the free stutter, so eliding the state
    preserves both the reachable data states and the race states.  This
    removes the bookkeeping locations lowering introduces at joins and
    atomic-block exits, keeping CFAs equal to the paper's hand-drawn
    figures.
    """
    edges = list(cfa.edges)
    q0 = cfa.q0
    atomic = set(cfa.atomic)
    error = set(cfa.error_locations)

    changed = True
    while changed:
        changed = False
        out: dict[int, list[Edge]] = {}
        for e in edges:
            out.setdefault(e.src, []).append(e)
        for u, outs in out.items():
            if len(outs) != 1:
                continue
            e = outs[0]
            v = e.dst
            if u == v or u in error:
                continue
            if not isinstance(e.op, AssumeOp) or e.op.pred != T.TRUE:
                continue
            if e.lock_info is not None:
                continue
            if u not in atomic and v in atomic:
                continue  # never acquire atomicity early
            # Merge u into v.
            new_edges = []
            for other in edges:
                if other is e:
                    continue
                src = v if other.src == u else other.src
                dst = v if other.dst == u else other.dst
                new_edges.append(Edge(src, other.op, dst, other.lock_info))
            edges = new_edges
            if q0 == u:
                q0 = v
            atomic.discard(u)
            changed = True
            break

    # Reachability restriction.
    succ: dict[int, list[int]] = {}
    for e in edges:
        succ.setdefault(e.src, []).append(e.dst)
    reachable = {q0}
    stack = [q0]
    while stack:
        q = stack.pop()
        for nxt in succ.get(q, ()):
            if nxt not in reachable:
                reachable.add(nxt)
                stack.append(nxt)
    edges = [e for e in edges if e.src in reachable and e.dst in reachable]

    # Renumber locations densely in BFS order from q0 for stable output.
    order: list[int] = []
    seen = {q0}
    queue = [q0]
    succs: dict[int, list[int]] = {}
    for e in edges:
        succs.setdefault(e.src, []).append(e.dst)
    while queue:
        q = queue.pop(0)
        order.append(q)
        for nxt in sorted(succs.get(q, ())):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    renum = {old: i for i, old in enumerate(order)}

    return CFA(
        name=cfa.name,
        q0=renum[q0],
        locations=renum.values(),
        edges=[
            Edge(renum[e.src], e.op, renum[e.dst], e.lock_info)
            for e in edges
        ],
        atomic={renum[q] for q in atomic if q in renum},
        error_locations={renum[q] for q in error if q in renum},
        globals_=cfa.globals,
        locals_=cfa.locals,
        global_init=cfa.global_init,
    )


def lower_thread(program: A.Program, thread_name: str | None = None) -> CFA:
    """Lower one thread of a parsed program into a CFA.

    Programs using the Section 5 pointer extension are first rewritten by
    the alias-analysis-driven elimination pass."""
    from .pointers import eliminate_pointers

    program, _ = eliminate_pointers(program)
    thread = program.thread(thread_name)
    return _Lowerer(program, thread).build()


def lower_source(source: str, thread_name: str | None = None) -> CFA:
    """Parse source text and lower one thread."""
    return lower_thread(parse_program(source), thread_name)


def lower_program(source: str) -> dict[str, CFA]:
    """Parse source text and lower every thread."""
    program = parse_program(source)
    return {t.name: lower_thread(program, t.name) for t in program.threads}
