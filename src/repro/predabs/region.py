"""Abstract data regions for predicate abstraction.

Following BLAST's implementation (and sufficient for every example in the
paper), regions are *cartesian*: a region is a conjunction of literals over
the current predicate set, or bottom.  The paper's ``Abs.P`` operator (the
smallest expressible over-approximation) is instantiated with the cartesian
domain: the strongest conjunction of predicate literals implied by a
formula.

A region is represented by the set of (predicate-index, polarity) pairs it
asserts; fewer literals = weaker region.  ``top`` is the empty set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..smt import terms as T

__all__ = ["PredicateSet", "Region", "TOP", "BOTTOM"]


class PredicateSet:
    """An ordered, duplicate-free collection of predicates.

    Predicates are boolean terms over program variables (locals refer to the
    main thread's copy -- paper Section 2.3).
    """

    def __init__(self, preds: Iterable[T.Term] = ()):
        seen: dict[T.Term, None] = {}
        for p in preds:
            if not isinstance(p, T.Term):
                raise TypeError(f"predicate must be a term: {p!r}")
            seen.setdefault(p)
        self._preds: tuple[T.Term, ...] = tuple(seen)
        self._supports: tuple[frozenset[str], ...] | None = None

    def support(self, i: int) -> frozenset[str]:
        """The free variables of predicate ``i`` (cached per set).

        The ArgStore's subtree invalidation intersects predicate supports
        against thousands of memo entries; with the per-term memo in
        :func:`repro.smt.terms.free_vars` plus this per-set tuple, each
        lookup is O(1) after the first.
        """
        sup = self._supports
        if sup is None:
            sup = self._supports = tuple(T.free_vars(p) for p in self._preds)
        return sup[i]

    def __len__(self) -> int:
        return len(self._preds)

    def __iter__(self) -> Iterator[T.Term]:
        return iter(self._preds)

    def __contains__(self, p: T.Term) -> bool:
        return p in self._preds

    def __getitem__(self, i: int) -> T.Term:
        return self._preds[i]

    def index(self, p: T.Term) -> int:
        return self._preds.index(p)

    def extended(self, new_preds: Iterable[T.Term]) -> "PredicateSet":
        """A new set with ``new_preds`` appended (existing indices stable)."""
        return PredicateSet(list(self._preds) + list(new_preds))

    def __eq__(self, other) -> bool:
        return isinstance(other, PredicateSet) and self._preds == other._preds

    def __hash__(self) -> int:
        return hash(self._preds)

    def __repr__(self) -> str:
        return f"PredicateSet({[T.pretty(p) for p in self._preds]})"


@dataclass(frozen=True)
class Region:
    """A cartesian abstract region: a conjunction of predicate literals.

    ``literals`` holds (index, polarity) pairs; ``bottom`` marks the empty
    region.  Regions are value objects -- hashable, usable in seen-sets.
    """

    literals: frozenset[tuple[int, bool]] = frozenset()
    bottom: bool = False

    @staticmethod
    def top() -> "Region":
        return TOP

    def is_bottom(self) -> bool:
        return self.bottom

    def formula(self, preds: PredicateSet) -> T.Term:
        """The concretization as a term."""
        if self.bottom:
            return T.FALSE
        parts = []
        for idx, pol in sorted(self.literals):
            p = preds[idx]
            parts.append(p if pol else T.not_(p))
        return T.and_(*parts)

    def literal_terms(self, preds: PredicateSet) -> list[T.Term]:
        """The conjunction as a list of literal terms."""
        if self.bottom:
            return [T.FALSE]
        out = []
        for idx, pol in sorted(self.literals):
            p = preds[idx]
            out.append(p if pol else T.not_(p))
        return out

    def entails(self, other: "Region") -> bool:
        """Syntactic entailment: self asserts every literal of ``other``.

        Sound (never claims entailment that does not hold) and complete for
        regions over the same predicate set in the cartesian domain.
        """
        if self.bottom:
            return True
        if other.bottom:
            return False
        return other.literals <= self.literals

    def meet(self, other: "Region") -> "Region":
        if self.bottom or other.bottom:
            return BOTTOM
        merged = self.literals | other.literals
        by_index: dict[int, bool] = {}
        for idx, pol in merged:
            if idx in by_index and by_index[idx] != pol:
                return BOTTOM
            by_index[idx] = pol
        return Region(frozenset(merged))

    def render(self, preds: PredicateSet) -> str:
        if self.bottom:
            return "false"
        if not self.literals:
            return "true"
        return T.pretty(self.formula(preds))


TOP = Region()
BOTTOM = Region(frozenset(), bottom=True)


@dataclass(frozen=True)
class BooleanRegion(Region):
    """A *boolean* abstract region: a disjunction of predicate cubes.

    This is the paper's exact ``Abs.P`` codomain -- the smallest region
    expressible as a boolean formula over the predicates.  ``cubes`` holds
    full cubes (one polarity per predicate index); the inherited
    ``literals`` field carries the cartesian hull (the literals common to
    every cube), which is what ARG labels and syntactic entailment use, so
    a BooleanRegion drops into every cartesian code path soundly while
    ``formula`` retains the precise disjunction.
    """

    cubes: frozenset[frozenset[tuple[int, bool]]] = frozenset()

    @staticmethod
    def from_cubes(
        cubes: Iterable[frozenset[tuple[int, bool]]],
    ) -> "BooleanRegion":
        cubes = frozenset(cubes)
        if not cubes:
            return BooleanRegion(
                literals=frozenset(), bottom=True, cubes=frozenset()
            )
        hull = frozenset.intersection(*cubes)
        return BooleanRegion(literals=hull, bottom=False, cubes=cubes)

    def formula(self, preds: PredicateSet) -> T.Term:
        if self.bottom:
            return T.FALSE
        disjuncts = []
        for cube in sorted(self.cubes, key=sorted):
            parts = []
            for idx, pol in sorted(cube):
                p = preds[idx]
                parts.append(p if pol else T.not_(p))
            disjuncts.append(T.and_(*parts))
        return T.or_(*disjuncts)

    def render(self, preds: PredicateSet) -> str:
        if self.bottom:
            return "false"
        if not self.cubes:
            return "true"
        return T.pretty(self.formula(preds))
