"""The ``Abs.P`` operator and abstract post for thread and context moves.

``Abstractor`` answers the two queries the abstract reachability of
Section 3.4 needs:

* ``post_op``: the abstract successor region of a main-thread CFA operation,
  ``Abs.P(sp(region, op))`` -- the strongest postcondition in the chosen
  predicate domain;
* ``post_havoc``: the abstract successor region of a context ACFA move,
  ``Abs.P((exists Y. region and r(src)) and r(dst))`` -- labels act at move
  time (see DESIGN.md section 5 for the soundness discussion).

Existential quantification over the havoced globals is exact: the variables
are renamed to fresh symbols, which a satisfiability query treats as free.
Queries go through the SMT conjunction fast path and are memoized, since
the same (region, operation) pairs recur heavily during fixpoint iteration.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..cfa.cfa import Op
from ..cfa.ops import sp
from ..smt import terms as T
from ..smt.profile import stage
from ..smt.qcache import LruCache
from ..smt.solver import ConjunctionContext, is_sat, is_sat_conjunction
from .region import BOTTOM, PredicateSet, Region

__all__ = ["Abstractor"]

#: Suffix for renamed (existentially projected) variables.
_HAVOC_SUFFIX = "__h"
_OLD_SUFFIX = "__old"


def _flatten_conjunction(parts: Sequence[T.Term]):
    """Flatten formulas into a literal list for the conjunction fast path.

    Returns the literals, ``False`` if a part contains an unsatisfiable
    constant, or ``None`` when some part is not conjunctive.
    """
    literals: list[T.Term] = []
    for part in parts:
        stack = [part]
        while stack:
            t = stack.pop()
            if isinstance(t, T.And):
                stack.extend(t.args)
            elif isinstance(t, T.Cmp) or (
                isinstance(t, T.Not) and isinstance(t.arg, T.Cmp)
            ):
                literals.append(t)
            elif isinstance(t, T.BoolConst):
                if not t.value:
                    return False
            else:
                return None
    return literals


def _query_sat(parts: Sequence[T.Term]) -> bool:
    """Satisfiability of a conjunction of formulas (not just literals)."""
    literals = _flatten_conjunction(parts)
    if literals is False:
        return False
    if literals is None:
        return is_sat(T.and_(*parts))
    return is_sat_conjunction(literals)


class Abstractor:
    """Predicate abstraction engine over a fixed predicate set.

    ``mode`` selects the abstract domain:

    * ``"cartesian"`` (default, BLAST's choice): regions are conjunctions
      of predicate literals -- each ``Abs.P`` costs at most 2|P| theory
      queries;
    * ``"boolean"`` (the paper's exact ``Abs.P``): regions are the
      smallest boolean combination over P, represented as a disjunction of
      full cubes enumerated with satisfiability pruning -- exponential in
      |P| in the worst case but exact.
    """

    #: Bound on the per-instance region memo (LRU, instrumented).
    CACHE_SIZE = 16_384

    def __init__(self, preds: PredicateSet, mode: str = "cartesian"):
        if mode not in ("cartesian", "boolean"):
            raise ValueError(f"unknown abstraction mode {mode!r}")
        self.preds = preds
        self.mode = mode
        self._cache: LruCache = LruCache(self.CACHE_SIZE)
        self.query_count = 0

    # -- the Abs.P operator ------------------------------------------------------

    def abstract(self, parts: Sequence[T.Term]) -> Region:
        """Strongest region of the selected domain implied by ``parts``."""
        key = ("abs", self.mode, tuple(parts))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.query_count += 1
        with stage("predabs"):
            if not _query_sat(parts):
                self._cache.put(key, BOTTOM)
                return BOTTOM
            if self.mode == "boolean":
                region = self._abstract_boolean(parts)
            else:
                region = self._abstract_cartesian(parts)
        self._cache.put(key, region)
        return region

    # -- incremental predicate-set upgrade ---------------------------------------

    def extend(self, preds: PredicateSet) -> dict[str, int]:
        """Upgrade in place to the extended predicate set ``preds``.

        Requires the current predicates to be a prefix of ``preds`` (the
        refinement loop only ever appends, keeping region literal indices
        stable) and the cartesian domain, where the upgrade is exact:
        ``Abs_{P∪NP}(φ) = Abs_P(φ) ∪ Δ`` with ``Δ`` ranging over the new
        predicates only.  A memo entry whose key formulas share no
        variables with the new predicates has an empty ``Δ`` -- a formula
        over disjoint variables implies neither a (two-sided satisfiable)
        predicate nor its negation -- so it is kept verbatim; overlapping
        entries are evicted and recomputed on demand.  Bottom entries are
        always kept: an unsatisfiable conjunction stays unsatisfiable
        under more predicates.

        Returns ``{"kept": n, "evicted": m, "cleared": 0|1}``.
        """
        if self.mode != "cartesian":
            raise ValueError("extend() requires the cartesian domain")
        old_n = len(self.preds)
        if len(preds) < old_n or any(
            self.preds[i] != preds[i] for i in range(old_n)
        ):
            raise ValueError("extend() requires a predicate-set extension")
        new_preds = [preds[i] for i in range(old_n, len(preds))]
        self.preds = preds
        if not new_preds:
            return {"kept": len(self._cache), "evicted": 0, "cleared": 0}
        for p in new_preds:
            if not _query_sat([p]) or not _query_sat([T.not_(p)]):
                # A degenerate (valid or unsatisfiable) predicate adds a
                # literal to every non-bottom region: nothing survives.
                size = len(self._cache)
                self._cache.clear()
                return {"kept": 0, "evicted": size, "cleared": 1}
        support: set[str] = set()
        for p in new_preds:
            support.update(T.free_vars(p))
        doomed = []
        kept = 0
        for key, region in self._cache.items():
            if region.is_bottom():
                kept += 1
                continue
            parts_vars: set[str] = set()
            for part in key[2]:
                parts_vars.update(T.free_vars(part))
            if parts_vars & support:
                doomed.append(key)
            else:
                kept += 1
        for key in doomed:
            self._cache.pop(key)
        return {"kept": kept, "evicted": len(doomed), "cleared": 0}

    def _abstract_cartesian(self, parts: Sequence[T.Term]) -> Region:
        literals: set[tuple[int, bool]] = set()
        base = list(parts)
        # The whole sweep probes the same base conjunction: share one
        # ConjunctionContext so the base's Gaussian/FM elimination runs
        # once instead of 2|P| times.  Observable behavior (cache keys,
        # hit counts, verdicts) is identical to the per-query path.
        base_lits = _flatten_conjunction(base)
        ctx = (
            ConjunctionContext(base_lits)
            if isinstance(base_lits, list)
            else None
        )
        for idx, p in enumerate(self.preds):
            if ctx is not None and isinstance(p, T.Cmp):
                if not ctx.query(T.not_(p)):
                    literals.add((idx, True))
                elif not ctx.query(p):
                    literals.add((idx, False))
            elif not _query_sat(base + [T.not_(p)]):
                literals.add((idx, True))
            elif not _query_sat(base + [p]):
                literals.add((idx, False))
        return Region(frozenset(literals))

    def _abstract_boolean(self, parts: Sequence[T.Term]) -> Region:
        """Enumerate the consistent full cubes with unsat pruning."""
        from .region import BooleanRegion

        cubes: list[frozenset[tuple[int, bool]]] = []
        n = len(self.preds)

        def extend(idx: int, partial: list[tuple[int, bool]], terms: list[T.Term]):
            if idx == n:
                cubes.append(frozenset(partial))
                return
            p = self.preds[idx]
            for polarity, lit in ((True, p), (False, T.not_(p))):
                if _query_sat(terms + [lit]):
                    partial.append((idx, polarity))
                    terms.append(lit)
                    extend(idx + 1, partial, terms)
                    terms.pop()
                    partial.pop()

        extend(0, [], list(parts))
        if not cubes:
            return BOTTOM
        return BooleanRegion.from_cubes(cubes)

    # -- abstract post -------------------------------------------------------------

    def post_op(
        self, region: Region, op: Op, ctx_inv: Sequence[T.Term] = ()
    ) -> Region:
        """Abstract successor for a main-thread operation."""
        if region.is_bottom():
            return BOTTOM
        phi = region.formula(self.preds)
        post = sp(phi, op, fresh=_OLD_SUFFIX)
        return self.abstract([post, *ctx_inv])

    def post_havoc(
        self,
        region: Region,
        havoc: Iterable[str],
        target_label: Sequence[T.Term],
        source_label: Sequence[T.Term] = (),
    ) -> Region:
        """Abstract successor for a context ACFA move (havoc edge).

        The move is guarded by the source location's label (the paper's
        ACFA state space requires ``s |= r(s.pc)`` when the abstract thread
        transitions), the havoced globals are projected out, and the
        successor is constrained by the target label::

            Abs.P( (exists Y. region and r(src)) and r(dst) )

        A bottom result means the move is not enabled from this region.
        """
        if region.is_bottom():
            return BOTTOM
        phi = T.and_(region.formula(self.preds), *source_label)
        mapping = {v: T.var(v + _HAVOC_SUFFIX) for v in havoc}
        projected = T.substitute(phi, mapping)
        return self.abstract([projected, *target_label])

    def initial_region(self, init: dict[str, int], variables: Iterable[str]) -> Region:
        """Abstraction of the initial state (paper: all variables zero,
        except explicitly initialized globals)."""
        parts = [
            T.eq(T.var(v), T.num(init.get(v, 0))) for v in sorted(variables)
        ]
        return self.abstract(parts)
