"""Predicate abstraction: cartesian regions and the Abs.P operator."""

from .abstractor import Abstractor
from .region import BOTTOM, TOP, PredicateSet, Region
