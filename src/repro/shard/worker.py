"""The shard worker process: one NDJSON loop around the job runner.

The coordinator spawns ``python -m repro.shard.worker`` with a pipe per
direction and speaks the serve daemon's framing
(:func:`repro.serve.protocol.encode_frame` / ``decode_frame``) with a
three-op vocabulary:

``{"op": "hello", "worker": N, "cache_root": PATH?, "warm_start": B}``
    Session setup.  With a cache root, the worker warm-starts its SMT
    query cache from the shared persistent tier, so every worker in the
    fleet begins with the fleet's accumulated verdicts.  Replies
    ``{"frame": "ready", "worker": N, "warm_entries": K}``.

``{"op": "job", "payload": {...}}``
    One verification job, exactly the scheduler's JSON-ready payload
    (:func:`repro.engine.scheduler._job_payload`).  The worker runs it
    through the same ``_run_job_payload`` the pool and serial paths use
    -- verdicts cannot differ by transport -- and replies
    ``{"frame": "result", "job_id": I, "record": {...}}``.

``{"op": "shutdown"}``
    Drain: the worker merges its SMT verdicts into the shared warm tier
    (a locked read-merge-write, so concurrent workers accumulate) and
    replies ``{"frame": "bye", "tier_entries": K}`` before exiting.

Crash injection for the retry tests rides in the payload: a
``_test_kill_worker`` flag makes the worker die with ``os._exit(137)``
*before* touching the job, simulating an OOM-killed worker whose job
must re-enter the queue as if fresh.

Real stdout is reserved for frames; ``sys.stdout`` is rebound to stderr
so a stray ``print`` anywhere in the verifier can never corrupt the
framing.
"""

from __future__ import annotations

import os
import sys

from ..serve.protocol import decode_frame, encode_frame

__all__ = ["main"]


def _send(out, frame: dict) -> None:
    out.write(encode_frame(frame).decode())
    out.flush()


def main() -> int:
    out = sys.stdout
    sys.stdout = sys.stderr  # stray prints must not corrupt framing

    from ..engine.cache import ArtifactCache
    from ..engine.scheduler import _run_job_payload
    from ..smt.qcache import SAT_CACHE

    cache_root: str | None = None
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            frame = decode_frame(line)
        except ValueError as exc:
            _send(out, {"frame": "error", "message": str(exc)})
            continue
        op = frame.get("op")
        if op == "hello":
            cache_root = frame.get("cache_root")
            warm = 0
            if cache_root:
                warm = SAT_CACHE.load(
                    ArtifactCache(cache_root).smt_tier_path()
                )
            _send(
                out,
                {
                    "frame": "ready",
                    "worker": frame.get("worker"),
                    "warm_entries": warm,
                },
            )
        elif op == "job":
            payload = dict(frame["payload"])
            if payload.pop("_test_kill_worker", False):
                os._exit(137)  # simulate a crashed/OOM-killed worker
            record = _run_job_payload(payload)
            _send(
                out,
                {
                    "frame": "result",
                    "job_id": payload["job_id"],
                    "record": record,
                },
            )
        elif op == "shutdown":
            saved = 0
            if cache_root:
                saved = SAT_CACHE.save(
                    ArtifactCache(cache_root).smt_tier_path()
                )
            _send(out, {"frame": "bye", "tier_entries": saved})
            return 0
        else:
            _send(
                out,
                {"frame": "error", "message": f"unknown op {op!r}"},
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
