"""The sharded coordinator: digest buckets, work-stealing, crash retry.

``execute_sharded`` is a drop-in alternative to the scheduler's
process-pool ``execute``: same inputs (the planner's deduplicated
worklist), same output (a :class:`~repro.engine.planner.JobResult` per
(model, variable) query), same artifact-cache discipline.  What changes
is the execution topology:

1. jobs are partitioned by slice digest into ``shards`` buckets
   (:mod:`repro.shard.partition`), each bucket *homed* to worker
   ``bucket % workers``;
2. workers are real OS processes (``python -m repro.shard.worker``)
   driven over NDJSON pipes with the serve daemon's framing -- the same
   frames would travel a TCP socket to a remote machine unchanged;
3. a worker whose home buckets drain **steals** from the tail of the
   most-loaded foreign bucket, so one straggler bucket cannot idle the
   rest of the fleet (``shard_steal`` telemetry records every theft);
4. a crashed worker's in-flight job **re-enters its bucket as if
   fresh** -- artifact writes are atomic, the shape index merges under
   a lock, and the SMT tier only publishes on clean shutdown, so a
   retry can never observe (or leave) a half-written artifact.  Jobs
   that exhaust their retry budget, and jobs left over when every
   worker is gone, fall back to in-process serial execution: like the
   scheduler, a sharded run always completes with a full verdict table.

Warm starts flow through the content-addressed layer, not through
process memory: the coordinator publishes each finished job's artifact
and shape predicates immediately, and computes warm-start seeds *at
dispatch time* (the pool scheduler seeds before any job has run), so a
job dispatched late warm-starts from predicates a different worker
discovered minutes earlier.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from typing import Sequence

from ..engine.cache import ArtifactCache
from ..engine.events import EventLog
from ..engine.planner import Job, JobResult, _verdict_of, options_fingerprint
from ..engine.scheduler import (
    _fan_out,
    _finish,
    _job_payload,
    _run_job_payload,
)
from ..engine.artifacts import result_to_obj
from ..serve.protocol import decode_frame, encode_frame
from .partition import bucket_of

__all__ = ["execute_sharded"]

#: A job crashing this many workers is run serially by the coordinator.
MAX_JOB_RETRIES = 2

#: Worker slots are respawned after a crash at most this many times.
MAX_RESPAWNS = 3


class _Buckets:
    """The shared worklist: per-bucket deques with stealing.

    All mutation happens under one lock.  ``take(worker)`` prefers the
    worker's home buckets (front-of-queue, preserving planner order)
    and otherwise steals from the *tail* of the most-loaded foreign
    bucket -- the classic deque discipline: owners and thieves touch
    opposite ends, and the straggler keeps its earliest (likely
    in-progress-adjacent) work local.
    """

    def __init__(self, jobs: Sequence[Job], shards: int, workers: int):
        self.shards = shards
        self.workers = workers
        self.lock = threading.Lock()
        self.queues: list[list[Job]] = [[] for _ in range(shards)]
        for job in jobs:
            self.queues[bucket_of(job.digest, shards)].append(job)
        self.steals = 0

    def home_buckets(self, worker: int) -> list[int]:
        return [b for b in range(self.shards) if b % self.workers == worker]

    def take(self, worker: int) -> tuple[Job, int, bool] | None:
        """Next job for ``worker`` as (job, bucket, stolen); None when
        every bucket is empty."""
        with self.lock:
            for b in self.home_buckets(worker):
                if self.queues[b]:
                    return self.queues[b].pop(0), b, False
            victim = max(
                (b for b in range(self.shards) if self.queues[b]),
                key=lambda b: len(self.queues[b]),
                default=None,
            )
            if victim is None:
                return None
            self.steals += 1
            return self.queues[victim].pop(), victim, True

    def requeue(self, job: Job, bucket: int) -> None:
        """Re-enter a crashed worker's job at the front of its bucket."""
        with self.lock:
            self.queues[bucket].insert(0, job)

    def drain(self) -> list[Job]:
        with self.lock:
            leftover = [job for q in self.queues for job in q]
            for q in self.queues:
                q.clear()
            return leftover


class _Worker:
    """One worker subprocess plus its pipe plumbing."""

    def __init__(self, worker_id: int, cache_root: str | None, warm_start: bool):
        self.id = worker_id
        self.cache_root = cache_root
        self.warm_start = warm_start
        self.proc: subprocess.Popen | None = None
        self.spawns = 0

    def spawn(self) -> None:
        self.spawns += 1
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.shard.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        self.send(
            {
                "op": "hello",
                "worker": self.id,
                "cache_root": self.cache_root,
                "warm_start": self.warm_start,
            }
        )
        ready = self.recv()
        if ready is None or ready.get("frame") != "ready":
            raise OSError(f"worker {self.id} failed its hello handshake")

    def send(self, frame: dict) -> None:
        assert self.proc is not None and self.proc.stdin is not None
        self.proc.stdin.write(encode_frame(frame).decode())
        self.proc.stdin.flush()

    def recv(self) -> dict | None:
        """Next frame from the worker; None on EOF (worker died)."""
        assert self.proc is not None and self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.strip()
            if line:
                return decode_frame(line)
        return None

    def shutdown(self) -> None:
        if self.proc is None or self.proc.poll() is not None:
            return
        try:
            self.send({"op": "shutdown"})
            while True:
                frame = self.recv()
                if frame is None or frame.get("frame") == "bye":
                    break
        except (OSError, ValueError):
            pass
        finally:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
            self.proc.wait()


def execute_sharded(
    jobs: Sequence[Job],
    shards: int,
    workers: int,
    cache: ArtifactCache | None = None,
    events: EventLog | None = None,
    warm_start: bool = True,
    _test_kill_first_attempt: bool = False,
) -> dict[tuple[str, str], JobResult]:
    """Run a worklist through the sharded worker fleet.

    Mirrors :func:`repro.engine.scheduler.execute`'s contract exactly;
    see the module docstring for the topology.
    """
    events = events or EventLog()
    results: dict[tuple[str, str], JobResult] = {}
    results_lock = threading.Lock()

    # Cache hits answer immediately, exactly like the scheduler.
    pending: list[Job] = []
    for job in jobs:
        fp = options_fingerprint(job.options)
        entry = cache.get(job.digest, fp) if cache is not None else None
        if entry is not None:
            events.emit(
                "cache_hit",
                job_id=job.job_id,
                digest=job.digest[:12],
                verdict=_verdict_of(entry.result),
            )
            _fan_out(
                job,
                {"result": result_to_obj(entry.result), "elapsed_ms": 0.0},
                "cache",
                results,
            )
            continue
        events.emit("cache_miss", job_id=job.job_id, digest=job.digest[:12])
        pending.append(job)

    if not pending:
        return results

    workers = max(1, min(workers, len(pending)))
    buckets = _Buckets(pending, shards, workers)
    events.emit(
        "shard_planned",
        shards=shards,
        workers=workers,
        jobs=len(pending),
        buckets=[len(q) for q in buckets.queues],
    )

    retries: dict[int, int] = {}
    killed: set[int] = set()
    exhausted: list[Job] = []
    cache_root = str(cache.root) if cache is not None else None

    def build_payload(job: Job) -> dict:
        # Seeds are computed at dispatch time so this job warm-starts
        # from predicates published by jobs that finished *during* this
        # run -- on any worker, through the shared shape index.
        seeds: tuple = ()
        if cache is not None and warm_start:
            fp = options_fingerprint(job.options)
            seeds = cache.seed_predicates(job.shape, fp)
            if seeds:
                events.emit(
                    "warm_start",
                    job_id=job.job_id,
                    n_predicates=len(seeds),
                )
        kill = (
            _test_kill_first_attempt and job.job_id not in killed
        )
        if kill:
            killed.add(job.job_id)
        return _job_payload(job, seeds, kill, cache_root=cache_root)

    def run_worker(slot: _Worker) -> None:
        while True:
            item = buckets.take(slot.id)
            if item is None:
                return
            job, bucket, stolen = item
            if stolen:
                events.emit(
                    "shard_steal",
                    shard=bucket,
                    job_id=job.job_id,
                    thief=slot.id,
                    victim=bucket % workers,
                )
            if slot.proc is None or slot.proc.poll() is not None:
                if slot.spawns > MAX_RESPAWNS:
                    buckets.requeue(job, bucket)
                    return
                try:
                    slot.spawn()
                    events.emit(
                        "worker_spawned", worker=slot.id, spawns=slot.spawns
                    )
                except OSError as exc:
                    events.emit(
                        "worker_failed", worker=slot.id, reason=str(exc)
                    )
                    buckets.requeue(job, bucket)
                    return
            events.emit(
                "job_started",
                job_id=job.job_id,
                mode="shard",
                shard=bucket,
                worker=slot.id,
            )
            try:
                slot.send({"op": "job", "payload": build_payload(job)})
                frame = slot.recv()
            except (OSError, ValueError):
                frame = None
            if frame is None or frame.get("frame") != "result":
                # The worker died mid-job (or spoke garbage, which we
                # treat identically).  The job re-enters its bucket as
                # if fresh; nothing half-written is visible because
                # every store publishes atomically.  The corpse must be
                # reaped here: until wait() collects it, poll() can
                # still report the worker alive and the retry would be
                # written into a dead pipe.
                try:
                    slot.proc.kill()
                    slot.proc.wait()
                except OSError:
                    pass
                retries[job.job_id] = retries.get(job.job_id, 0) + 1
                events.emit(
                    "worker_crashed",
                    worker=slot.id,
                    job_id=job.job_id,
                    shard=bucket,
                )
                if retries[job.job_id] <= MAX_JOB_RETRIES:
                    events.emit(
                        "job_retry",
                        job_id=job.job_id,
                        shard=bucket,
                        attempt=retries[job.job_id] + 1,
                    )
                    buckets.requeue(job, bucket)
                else:
                    # Out of worker attempts: park the job for the
                    # in-process serial pass (it is in no bucket, so
                    # drain() alone would lose it).
                    with results_lock:
                        exhausted.append(job)
                continue
            with results_lock:
                _finish(job, frame["record"], events, cache, results)

    slots = [
        _Worker(i, cache_root, warm_start) for i in range(workers)
    ]
    threads = [
        threading.Thread(
            target=run_worker, args=(slot,), name=f"shard-worker-{slot.id}"
        )
        for slot in slots
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for slot in slots:
        slot.shutdown()

    # Serial pass: jobs that exhausted retries or outlived every worker
    # slot.  In-process execution cannot lose a job.
    done_ids = {
        r.digest for r in results.values()
    }  # digests answered so far
    for job in buckets.drain() + exhausted:
        if job.digest in done_ids:
            continue
        payload = _job_payload(job, (), False, cache_root=cache_root)
        events.emit("job_started", job_id=job.job_id, mode="serial")
        record = _run_job_payload(payload)
        _finish(job, record, events, cache, results)

    events.emit(
        "shard_summary",
        shards=shards,
        workers=workers,
        steals=buckets.steals,
        retries=sum(retries.values()),
        respawns=sum(max(0, s.spawns - 1) for s in slots),
    )
    return results
