"""Distributed sharded engine: partition, coordinate, merge.

The shard package scales the batch engine past one process pool:

* :mod:`~repro.shard.partition` -- deterministic digest-based bucketing
  (any party computes the same partition with no communication);
* :mod:`~repro.shard.coordinator` -- the work-stealing multiprocess
  coordinator driving ``python -m repro.shard.worker`` fleets over
  NDJSON pipes, with crash retry and a serial completion guarantee;
* :mod:`~repro.shard.worker` -- the worker process loop;
* :mod:`~repro.shard.merge` -- deterministic reconciliation of
  per-shard report-v1 payloads into one canonical report.

See docs/SHARDING.md for the wire format and operational notes.
"""

from .coordinator import execute_sharded
from .merge import ShardConflict, canonical_row, merge_payloads, render_merged
from .partition import bucket_of, filter_shard, partition_jobs

__all__ = [
    "bucket_of",
    "partition_jobs",
    "filter_shard",
    "execute_sharded",
    "merge_payloads",
    "render_merged",
    "canonical_row",
    "ShardConflict",
]
