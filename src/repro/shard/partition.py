"""Digest-driven partitioning of the planner's deduplicated job graph.

A shard is a *bucket of content digests*: job ``j`` belongs to bucket
``int(j.digest, 16) % shards``.  Because the digest is a pure function
of the verified slice (see :mod:`repro.engine.digest`), the partition is

* **deterministic** -- every coordinator, dry-run invocation, and
  retried worker computes the same assignment with no shared state;
* **location-independent** -- two machines given the same corpus and
  shard count agree on ownership without talking to each other, which
  is what makes the no-network dry-run mode (``--shards N --shard-id
  i`` per invocation, reports merged afterwards) equivalent to the
  coordinated run;
* **stable under workload edits** -- adding a program only moves the
  jobs whose digests it adds, never reshuffles existing ownership
  within the same shard count.

Static discharges are *not* partitioned: planning (lower + classify) is
cheap and runs in every shard, so each shard's report carries the full
set of static rows and the merge deduplicates them.  Only the expensive
CIRC/portfolio jobs are split.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.planner import Job

__all__ = ["bucket_of", "partition_jobs", "filter_shard"]


def bucket_of(digest: str, shards: int) -> int:
    """The bucket owning a slice digest, for a given shard count."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(digest, 16) % shards


def partition_jobs(
    jobs: Sequence[Job], shards: int
) -> list[list[Job]]:
    """Split a deduplicated worklist into ``shards`` digest buckets."""
    buckets: list[list[Job]] = [[] for _ in range(shards)]
    for job in jobs:
        buckets[bucket_of(job.digest, shards)].append(job)
    return buckets


def filter_shard(
    jobs: Sequence[Job], shards: int, shard_id: int
) -> tuple[list[Job], list[Job]]:
    """Split a worklist into (owned, foreign) jobs for one shard."""
    if not 0 <= shard_id < shards:
        raise ValueError(
            f"shard_id must be in [0, {shards}), got {shard_id}"
        )
    owned: list[Job] = []
    foreign: list[Job] = []
    for job in jobs:
        (owned if bucket_of(job.digest, shards) == shard_id else foreign).append(job)
    return owned, foreign
