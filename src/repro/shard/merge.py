"""Deterministic merge of per-shard report-v1 payloads.

Each shard run (dry-run invocation or coordinated worker) emits the
shared report-v1 payload over the queries it answered.  The merge folds
any number of those payloads into **one canonical report** such that

* the union of an N-shard partition is byte-identical to the canonical
  form of the unsharded report (golden-tested for N in {2, 4});
* duplicate rows -- static discharges replicated into every shard, or a
  job that ran twice because a steal and a retry overlapped -- collapse
  to a single row;
* a *confident disagreement* (one shard says ``safe``, another says
  ``race`` for the same query) raises :class:`ShardConflict`, a hard
  error mirroring the portfolio's ``PortfolioConflict``: two sound
  analyses of the same digest cannot disagree, so a conflict is
  evidence of corruption or an unsoundness bug and must never be
  silently reconciled;
* an ``unknown`` row is superseded by a confident row for the same
  query from another shard (a retried/stolen job may have decided what
  a budget-exhausted first attempt could not).

Canonicalization deliberately erases *execution accidents* so that the
merged artifact depends only on verdicts: ``time_ms`` is zeroed and the
accelerator sources ``cache`` / ``circ-warm`` are folded into ``circ``
(whether a shard answered from its cache or warm-started is a property
of the run, not of the program).  The summary is recomputed from the
merged rows alone.  Rows sort by (model, variable, source, verdict,
detail), and the payload serializes with sorted keys -- byte-identity
between two merges is therefore exactly row-set equality.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from ..races.report import PRIMARY_SOURCE_PREFIXES, REPORT_SCHEMA

__all__ = ["ShardConflict", "canonical_row", "merge_payloads", "render_merged"]

#: Confident verdicts; two different ones for one query are a conflict.
_CONFIDENT = ("safe", "race")


class ShardConflict(Exception):
    """Two shards confidently disagree on one query -- a hard error."""

    def __init__(self, model: str, variable: str, verdicts: Sequence[str]):
        self.model = model
        self.variable = variable
        self.verdicts = tuple(sorted(set(verdicts)))
        super().__init__(
            f"shards confidently disagree on ({model!r}, {variable!r}): "
            f"{' vs '.join(self.verdicts)}"
        )


def canonical_row(row: dict[str, Any]) -> dict[str, Any]:
    """One report-v1 row with execution accidents erased."""
    source = str(row.get("source", ""))
    if source in ("cache", "circ-warm"):
        source = "circ"
    return {
        "model": str(row.get("model", "")),
        "variable": str(row.get("variable", "")),
        "verdict": str(row.get("verdict", "")),
        "source": source,
        "time_ms": 0.0,
        "detail": str(row.get("detail") or ""),
    }


def _is_primary(source: str) -> bool:
    return source.startswith(PRIMARY_SOURCE_PREFIXES)


def _row_key(row: dict[str, Any]) -> tuple:
    return (row["model"], row["variable"], row["source"])


def merge_payloads(payloads: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold report-v1 payloads into one canonical payload.

    Raises :class:`ShardConflict` on a confident disagreement and
    ``ValueError`` on a payload that does not carry the shared schema.
    """
    # (model, variable, source) -> canonical rows seen for that slot.
    slots: dict[tuple, list[dict]] = {}
    n_payloads = 0
    for payload in payloads:
        n_payloads += 1
        if payload.get("schema") != REPORT_SCHEMA:
            raise ValueError(
                f"payload {n_payloads} does not carry schema "
                f"{REPORT_SCHEMA!r} (got {payload.get('schema')!r})"
            )
        for raw in payload.get("rows", ()):
            row = canonical_row(raw)
            slots.setdefault(_row_key(row), []).append(row)

    merged: list[dict] = []
    by_query: dict[tuple[str, str], list[dict]] = {}
    for key, rows in slots.items():
        # Reconcile duplicates within one slot: identical rows collapse,
        # a confident verdict supersedes unknown, and ties break on the
        # lexicographically first (verdict, detail) for determinism.
        confident = [r for r in rows if r["verdict"] in _CONFIDENT]
        pool = confident or rows
        pool.sort(key=lambda r: (r["verdict"], r["detail"]))
        merged.append(pool[0])
        if _is_primary(key[2]):
            # Every confident row participates in the conflict check --
            # a within-slot disagreement (two shards, same source) is
            # just as impossible as a cross-source one and must not be
            # masked by the deterministic tie-break above.
            by_query.setdefault((key[0], key[1]), []).extend(
                confident or [pool[0]]
            )

    # Conflict check over primary rows: one query must not end up with
    # two different confident verdicts, whatever the source(s).
    for (model, variable), rows in by_query.items():
        verdicts = {
            r["verdict"] for r in rows if r["verdict"] in _CONFIDENT
        }
        if len(verdicts) > 1:
            raise ShardConflict(model, variable, sorted(verdicts))

    merged.sort(
        key=lambda r: (
            r["model"],
            r["variable"],
            r["source"],
            r["verdict"],
            r["detail"],
        )
    )
    # Per-query verdicts over primary rows: a decided query is never
    # dragged back to unknown by a secondary attempt's unknown row.
    verdict_of: dict[tuple[str, str], str] = {}
    for query, rows in by_query.items():
        verdicts = {r["verdict"] for r in rows}
        if "race" in verdicts:
            verdict_of[query] = "race"
        elif "safe" in verdicts:
            verdict_of[query] = "safe"
        else:
            verdict_of[query] = "unknown"
    # ``reports_merged`` would be natural telemetry here, but the
    # payload must depend only on verdicts (an N-shard union and the
    # unsharded report are byte-identical), so the summary carries no
    # trace of how many reports fed the merge.
    primary = [r for r in merged if _is_primary(r["source"])]
    summary = {
        "queries": len(verdict_of),
        "races": sum(1 for v in verdict_of.values() if v == "race"),
        "unknown": sum(1 for v in verdict_of.values() if v == "unknown"),
        "static": sum(1 for r in primary if r["source"] == "static"),
    }
    return {"schema": REPORT_SCHEMA, "rows": merged, "summary": summary}


def render_merged(payload: dict[str, Any]) -> str:
    """The canonical serialization byte-identity is defined over."""
    return json.dumps(payload, indent=2, sort_keys=True)
