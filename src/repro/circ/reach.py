"""ReachAndBuild: abstract reachability plus ARG construction
(Algorithms 1-4 of the paper).

The worklist reachability of the abstract multithreaded program
``((C, P), (A, k))`` simultaneously builds an *abstract reachability graph*
(ARG): an ACFA over the main thread's abstract thread states that
over-approximates the behavior of C in the current context.  Procedure
``Connect`` adds an edge per main-thread operation (an assignment
contributes its target to the havoc label, an assume contributes nothing)
and **unifies** the source and target locations of environment moves
(procedure Union) -- condition (4) of the ARG definition requires
``f(s) = f(s')`` across environment edges.

Union-find keeps the unification cheap; ``export`` freezes the graph into
an :class:`~repro.acfa.acfa.Acfa` plus the provenance map the refinement
procedure needs to concretize context operations back into CFA paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..acfa.acfa import Acfa, AcfaEdge
from ..cfa.cfa import CFA, AssignOp, Edge
from ..context.counters import ContextState
from ..context.state import (
    AbsState,
    AbstractProgram,
    CtxMove,
    MainMove,
    Move,
)
from ..predabs.region import PredicateSet, Region

__all__ = [
    "AbstractRaceFound",
    "ReachBudgetExceeded",
    "ReachResult",
    "ArgBuilder",
    "reach_and_build",
]

#: A thread state of the main thread: (control location, region).
ThreadState = tuple[int, Region]


class AbstractRaceFound(Exception):
    """Raised by reach_and_build when an abstract error state is reached.

    ``trace`` is the interleaved abstract trace from the initial state:
    a list of moves, each a MainMove (CFA edge) or CtxMove (ACFA edge).
    """

    def __init__(self, trace: list[Move], state: AbsState):
        super().__init__(f"abstract race after {len(trace)} steps")
        self.trace = trace
        self.state = state


class ReachBudgetExceeded(RuntimeError):
    """The abstract state space exceeded the exploration budget."""


class ArgBuilder:
    """Incremental ARG with union-find location merging."""

    def __init__(self, cfa: CFA, preds: PredicateSet):
        self.cfa = cfa
        self.preds = preds
        self._parent: list[int] = []
        self._state_loc: dict[ThreadState, int] = {}
        self._members: dict[int, set[ThreadState]] = {}
        self._pc: dict[int, int] = {}
        # (src_root, dst_root) -> (havoc set, provenance CFA edges); roots
        # are canonicalized lazily at export.
        self._edges: dict[tuple[int, int], tuple[set[str], set[Edge]]] = {}
        self.q0: Optional[int] = None

    # -- union-find --------------------------------------------------------------

    def _find_root(self, loc: int) -> int:
        root = loc
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[loc] != root:
            self._parent[loc], loc = root, self._parent[loc]
        return root

    # -- Algorithm Find ------------------------------------------------------------

    def find(self, ts: ThreadState) -> int:
        """Location containing the thread state, or a fresh one."""
        loc = self._state_loc.get(ts)
        if loc is not None:
            return self._find_root(loc)
        loc = len(self._parent)
        self._parent.append(loc)
        self._state_loc[ts] = loc
        self._members[loc] = {ts}
        self._pc[loc] = ts[0]
        return loc

    # -- Algorithm Union -------------------------------------------------------------

    def union(self, a: int, b: int) -> int:
        ra, rb = self._find_root(a), self._find_root(b)
        if ra == rb:
            return ra
        if self._pc[ra] != self._pc[rb]:
            raise AssertionError(
                "environment moves never change the main thread's pc"
            )
        # Merge smaller into larger.
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra].update(self._members.pop(rb))
        return ra

    # -- Algorithm Connect ---------------------------------------------------------------

    def connect_main(self, src: ThreadState, edge: Edge, dst: ThreadState) -> None:
        """Record a main-thread operation in the graph."""
        a = self.find(src)
        b = self.find(dst)
        if isinstance(edge.op, AssignOp):
            havoc = {edge.op.lhs}
        else:
            havoc = set()
        key = (a, b)
        entry = self._edges.get(key)
        if entry is None:
            self._edges[key] = (set(havoc), {edge})
        else:
            entry[0].update(havoc)
            entry[1].add(edge)

    def connect_ctx(self, src: ThreadState, dst: ThreadState) -> None:
        """An environment move: unify the two locations."""
        self.union(self.find(src), self.find(dst))

    def set_initial(self, ts: ThreadState) -> None:
        self.q0 = self.find(ts)

    # -- export -------------------------------------------------------------------------

    def export(self, name: str = "arg") -> tuple[Acfa, dict[tuple[int, int], frozenset[Edge]]]:
        """Freeze into an ACFA plus edge provenance.

        Location labels are the cartesian hull of the member thread states'
        regions (the literals common to every member) -- a sound
        over-approximation of the disjunction the paper's R map denotes.
        """
        assert self.q0 is not None, "set_initial was never called"
        roots = sorted({self._find_root(l) for l in range(len(self._parent))})
        renum = {root: i for i, root in enumerate(roots)}

        label: dict[int, tuple] = {}
        atomic: set[int] = set()
        for root in roots:
            members = self._members[root]
            common = None
            for (pc, region) in members:
                lits = set(region.literal_terms(self.preds))
                common = lits if common is None else (common & lits)
            label[renum[root]] = tuple(
                sorted(common or (), key=lambda t: repr(t))
            )
            if self.cfa.is_atomic(self._pc[root]):
                atomic.add(renum[root])

        merged_edges: dict[tuple[int, int], tuple[set[str], set[Edge]]] = {}
        for (a, b), (havoc, prov) in self._edges.items():
            ra, rb = renum[self._find_root(a)], renum[self._find_root(b)]
            entry = merged_edges.get((ra, rb))
            if entry is None:
                merged_edges[(ra, rb)] = (set(havoc), set(prov))
            else:
                entry[0].update(havoc)
                entry[1].update(prov)

        acfa = Acfa(
            name=name,
            q0=renum[self._find_root(self.q0)],
            locations=renum.values(),
            label=label,
            edges=[
                AcfaEdge(src, frozenset(h), dst)
                for (src, dst), (h, _) in merged_edges.items()
            ],
            atomic=atomic,
        )
        provenance = {
            key: frozenset(prov)
            for key, (_, prov) in merged_edges.items()
        }
        return acfa, provenance

    def pc_of_root(self, renumbered: dict[int, int]) -> dict[int, int]:
        return {
            renumbered[root]: self._pc[root]
            for root in {self._find_root(l) for l in range(len(self._parent))}
        }

    def location_of(self, ts: ThreadState) -> int | None:
        loc = self._state_loc.get(ts)
        return None if loc is None else self._find_root(loc)


@dataclass
class ReachResult:
    """Outcome of a completed (race-free) reachability run."""

    arg: Acfa
    provenance: dict[tuple[int, int], frozenset[Edge]]
    arg_pc: dict[int, int]
    states_explored: int
    reachable_contexts: set[ContextState]
    enabled_ctx_edges: dict[int, set[AcfaEdge]]
    state_location: dict[ThreadState, int]


def reach_and_build(
    program: AbstractProgram,
    race_on: str | None = None,
    check_errors: bool = False,
    omega_start: bool = True,
    max_states: int = 500_000,
    deadline: float | None = None,
    arg_name: str = "arg",
) -> ReachResult:
    """Compute abstract reachability; build the ARG (Algorithm 1).

    Raises :class:`AbstractRaceFound` with the abstract counterexample when
    an error state is reachable, :class:`ReachBudgetExceeded` when the
    state budget -- or the optional ``deadline``, an absolute
    :func:`time.perf_counter` instant -- runs out.
    """
    cfa = program.cfa
    builder = ArgBuilder(cfa, program.abstractor.preds)

    def is_bad(s: AbsState) -> bool:
        if race_on is not None and program.is_race_state(s, race_on):
            return True
        if check_errors and s.pc in cfa.error_locations:
            return True
        return False

    init = program.initial(omega_start=omega_start)
    builder.set_initial(init.thread_state())

    parent: dict[AbsState, tuple[AbsState, Move] | None] = {init: None}

    # Covering-based pruning: for a fixed (pc, region), a context state with
    # pointwise-larger counts and the same occupied-atomic pattern enables a
    # superset of moves, reaches a superset of races, and produces identical
    # thread-state successors -- so states covered by an explored state can
    # be skipped (WSTS-style).  `frontier_max` maps (pc, region, atomic
    # pattern) to the maximal count vectors seen.
    from ..context.counters import OMEGA

    acfa_atomic = [
        q for q in sorted(program.acfa.locations) if program.acfa.is_atomic(q)
    ]

    def counts_geq(a, b) -> bool:
        for x, y in zip(a, b):
            if x is OMEGA:
                continue
            if y is OMEGA or x < y:
                return False
        return True

    covering: dict[tuple, list] = {}

    def is_covered(state: AbsState) -> bool:
        pattern = tuple(
            (state.context.count(q) is OMEGA or state.context.count(q) > 0)
            for q in acfa_atomic
        )
        key = (state.pc, state.region, pattern)
        counts = state.context.counts
        kept = covering.get(key)
        if kept is None:
            covering[key] = [counts]
            return False
        for other in kept:
            if counts_geq(other, counts):
                return True
        covering[key] = [
            other for other in kept if not counts_geq(counts, other)
        ] + [counts]
        return False

    def trace_to(state: AbsState) -> list[Move]:
        moves: list[Move] = []
        cur = state
        while parent[cur] is not None:
            prev, move = parent[cur]
            moves.append(move)
            cur = prev
        moves.reverse()
        return moves

    if is_bad(init):
        raise AbstractRaceFound([], init)

    reachable_contexts: set[ContextState] = {init.context}
    enabled_ctx: dict[int, set[AcfaEdge]] = {}

    frontier = [init]
    explored = 1
    while frontier:
        next_frontier: list[AbsState] = []
        for state in frontier:
            if deadline is not None and time.perf_counter() > deadline:
                raise ReachBudgetExceeded("wall-clock deadline exceeded")
            src_ts = state.thread_state()
            src_loc = builder.find(src_ts)
            for move in program.enabled_moves(state):
                if isinstance(move, CtxMove):
                    enabled_ctx.setdefault(src_loc, set()).add(move.edge)
                nxt = program.post(state, move)
                if nxt is None:
                    continue
                # Connect regardless of whether the state was seen: the
                # edge itself may be new.
                if isinstance(move, MainMove):
                    builder.connect_main(src_ts, move.edge, nxt.thread_state())
                else:
                    builder.connect_ctx(src_ts, nxt.thread_state())
                if nxt in parent:
                    continue
                if is_covered(nxt):
                    continue
                parent[nxt] = (state, move)
                reachable_contexts.add(nxt.context)
                explored += 1
                if is_bad(nxt):
                    raise AbstractRaceFound(trace_to(nxt), nxt)
                if explored > max_states:
                    raise ReachBudgetExceeded(
                        f"more than {max_states} abstract states"
                    )
                next_frontier.append(nxt)
        frontier = next_frontier

    arg, provenance = builder.export(arg_name)
    # Recompute per-export-location data.
    roots = {
        builder._find_root(l) for l in range(len(builder._parent))
    }
    renum = {root: i for i, root in enumerate(sorted(roots))}
    arg_pc = {renum[r]: builder._pc[r] for r in roots}
    state_location = {
        ts: renum[builder._find_root(loc)]
        for ts, loc in builder._state_loc.items()
    }
    enabled_renumed: dict[int, set[AcfaEdge]] = {}
    for loc, edges in enabled_ctx.items():
        enabled_renumed.setdefault(
            renum[builder._find_root(loc)], set()
        ).update(edges)

    return ReachResult(
        arg=arg,
        provenance=provenance,
        arg_pc=arg_pc,
        states_explored=explored,
        reachable_contexts=reachable_contexts,
        enabled_ctx_edges=enabled_renumed,
        state_location=state_location,
    )
