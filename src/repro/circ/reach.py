"""Compatibility surface for the historical ``repro.circ.reach`` module.

The reachability core moved into the :mod:`repro.reach` package when it
became incremental: :mod:`repro.reach.arg` holds the ARG data layer,
:mod:`repro.reach.frontier` the worklist orderings,
:mod:`repro.reach.store` the persistent cross-iteration store, and
:mod:`repro.reach.explore` the loop.  Everything that used to live here
is re-exported unchanged -- ``reach_and_build`` gained only optional
``store``/``frontier`` parameters and behaves identically without them.
"""

from ..reach import (
    AbstractRaceFound,
    ArgBuilder,
    ArgStore,
    ReachBudgetExceeded,
    ReachResult,
    ThreadState,
    reach_and_build,
)

__all__ = [
    "AbstractRaceFound",
    "ReachBudgetExceeded",
    "ReachResult",
    "ArgBuilder",
    "ArgStore",
    "ThreadState",
    "reach_and_build",
]
