"""The CIRC inference algorithm (Algorithm 5) and the infinity-check
optimization (Section 5, called omega-CIRC here).

CIRC's outer loop owns the abstraction parameters -- the predicate set P and
the counter bound k.  Its inner loop performs the circular assume-guarantee
argument: starting from the empty (do-nothing) context, it alternates

* **assume** -- ReachAndBuild explores the main thread against the current
  context ACFA and produces an ARG;
* **guarantee** -- CheckSim tests whether the context simulates the ARG;
  on success the program is safe (Theorem 1), otherwise the ARG's weak
  bisimulation quotient becomes the next (weaker) context.

An abstract race aborts the inner loop into Refine, which either produces a
validated concrete counterexample or refines (P, k) and restarts.

omega-CIRC replaces the unbounded (OMEGA-counted) context of the assume step
with *exactly k* context threads, then discharges the unbounded case with
the per-location closure check ``omega_check``: every environment transition
enabled in the context-only reachability must preserve every ARG location's
region.  Failure of the check bumps k and reruns.
"""

from __future__ import annotations

import time
from typing import Iterable, Literal, Optional

from ..acfa.acfa import Acfa, empty_acfa
from ..acfa.collapse import collapse, project_acfa
from ..acfa.simulate import simulates
from ..cfa.cfa import CFA
from ..context.state import AbstractProgram
from ..exec.interp import MultiProgram, replay
from ..predabs.abstractor import Abstractor
from ..predabs.region import PredicateSet
from ..reach import FRONTIERS, ArgStore
from ..smt import terms as T
from .omega import omega_check
from .reach import (
    AbstractRaceFound,
    ReachBudgetExceeded,
    ReachResult,
    reach_and_build,
)
from .refine import MiningStrategy, RealRace, Refinement, RefinementFailure, refine
from .result import CircSafe, CircStats, CircUnknown, CircUnsafe, IterationRecord

__all__ = [
    "CircError",
    "CircBudgetExceeded",
    "CircInconclusive",
    "circ",
    "omega_check",
]

Variant = Literal["circ", "omega"]


class CircError(RuntimeError):
    """CIRC did not converge within its iteration budgets."""


class CircInconclusive(CircError):
    """Refinement stalled: an abstract race could neither be realized as
    a concrete witness nor refuted with new predicates, and the bounded
    concrete fallback was inconclusive.  Wraps the
    :class:`~repro.circ.result.CircUnknown` verdict in ``result`` so
    callers that prefer a value to an exception can unwrap it, exactly
    like :class:`CircBudgetExceeded`.
    """

    def __init__(self, result: CircUnknown):
        super().__init__(result.reason)
        self.result = result


class CircBudgetExceeded(CircError):
    """An explicit caller-supplied budget (``max_iterations`` or
    ``timeout_s``) ran out before CIRC reached a verdict.

    Wraps the :class:`~repro.circ.result.CircUnknown` verdict in
    ``result`` so callers that prefer a value to an exception (the batch
    engine, ``check_race``) can unwrap it.
    """

    def __init__(self, result: CircUnknown):
        super().__init__(result.reason)
        self.result = result


def circ(
    cfa: CFA,
    race_on: str | None = None,
    check_errors: bool = False,
    initial_predicates: Iterable[T.Term] = (),
    k: int = 1,
    variant: Variant = "circ",
    strategy: MiningStrategy = "wp-atoms",
    abstraction: str = "cartesian",
    max_outer: int = 40,
    max_inner: int = 40,
    max_states: int = 500_000,
    max_iterations: int | None = None,
    timeout_s: float | None = None,
    keep_history: bool = False,
    validate_witness: bool = True,
    incremental: bool = True,
    frontier: str = "bfs",
    store: ArgStore | None = None,
) -> CircSafe | CircUnsafe:
    """Check the symmetric multithreaded program ``cfa``^infinity for races
    on ``race_on`` (or assertion failures when ``check_errors``).

    Returns :class:`CircSafe` or :class:`CircUnsafe`; raises
    :class:`CircError` when the iteration budget is exhausted (the problem
    is undecidable in general -- Theorem 1 gives soundness on termination).

    ``max_iterations`` caps the *total* number of inner iterations across
    all restarts and ``timeout_s`` caps wall-clock time; exceeding either
    raises :class:`CircBudgetExceeded`, whose ``result`` attribute is the
    :class:`~repro.circ.result.CircUnknown` verdict carrying partial
    statistics and the predicates discovered so far.  Both default to
    ``None`` (no budget), preserving the historical behavior of looping
    until ``max_outer``/``max_inner`` give up with a plain ``CircError``.

    ``incremental`` (default on) keeps a persistent
    :class:`~repro.reach.store.ArgStore` across inner iterations and
    refinement restarts, reusing abstract posts, omega checks, and
    collapse quotients whose inputs did not change; verdicts are
    byte-identical to scratch exploration.  Pass ``incremental=False``
    (the escape hatch) to rebuild everything each iteration, or a
    ``store`` to share reuse across several calls on the same program.
    ``frontier`` selects the exploration order (``"bfs"``, ``"dfs"``,
    ``"depth"``); the default BFS matches the historical order exactly.
    """
    if race_on is None and not check_errors:
        raise ValueError("nothing to check: give race_on or check_errors")
    if frontier not in FRONTIERS:
        raise ValueError(
            f"unknown frontier strategy {frontier!r}; "
            f"choose from {sorted(FRONTIERS)}"
        )
    start_time = time.perf_counter()
    deadline = start_time + timeout_s if timeout_s is not None else None
    stats = CircStats(final_k=k)
    preds = PredicateSet(initial_predicates)
    omega_start = variant == "circ"
    # The boolean domain does not upgrade by literal union, so predicate
    # refinement cannot keep any memoized posts -- run it from scratch.
    use_store = incremental and abstraction == "cartesian"
    arg_store = (store or ArgStore()) if use_store else None
    if arg_store is not None:
        arg_store.bind_cfa(cfa)

    def finalize_stats() -> None:
        stats.n_predicates = len(preds)
        stats.final_k = k
        stats.elapsed_seconds = time.perf_counter() - start_time
        if arg_store is not None:
            stats.reuse = arg_store.reuse_stats()
            stats.store_digest = arg_store.digest()

    def record(rec: IterationRecord) -> None:
        if keep_history:
            rec.elapsed_s = time.perf_counter() - start_time
            stats.history.append(rec)

    def check_budget() -> None:
        elapsed = time.perf_counter() - start_time
        if timeout_s is not None and elapsed > timeout_s:
            reason = f"wall-clock budget of {timeout_s:g}s exceeded"
        elif (
            max_iterations is not None
            and stats.inner_iterations >= max_iterations
        ):
            reason = f"iteration budget of {max_iterations} exceeded"
        else:
            return
        finalize_stats()
        raise CircBudgetExceeded(
            CircUnknown(
                variable=race_on,
                reason=reason,
                predicates=tuple(preds),
                stats=stats,
            )
        )

    for outer in range(1, max_outer + 1):
        stats.outer_iterations = outer
        context: Acfa = empty_acfa()
        mu: dict[int, int] = {}
        prev_reach: Optional[ReachResult] = None
        if arg_store is not None:
            abstractor = arg_store.abstractor_for(preds, abstraction)
        else:
            abstractor = Abstractor(preds, mode=abstraction)
        refined = False

        for inner in range(1, max_inner + 1):
            check_budget()
            stats.inner_iterations += 1
            program = AbstractProgram(cfa, abstractor, context, k)
            try:
                reach = reach_and_build(
                    program,
                    race_on=race_on,
                    check_errors=check_errors,
                    omega_start=omega_start,
                    max_states=max_states,
                    deadline=deadline,
                    store=arg_store,
                    frontier=frontier,
                )
            except AbstractRaceFound as exc:
                record(
                    IterationRecord(
                        outer,
                        inner,
                        tuple(preds),
                        k,
                        acfa=context,
                        event="race",
                    )
                )
                try:
                    outcome = refine(
                        cfa,
                        race_on,
                        exc.trace,
                        exc.state,
                        context,
                        prev_reach,
                        mu,
                        k,
                        preds,
                        strategy=strategy,
                    )
                except RefinementFailure:
                    # The abstract race may be realizable only through an
                    # interleaving of silent steps that the trace-placement
                    # heuristic cannot express.  Fall back to a bounded
                    # explicit-state search, which is sound (it reports
                    # only genuine races); if that is inconclusive too,
                    # surface a clean UNKNOWN rather than leaking the
                    # internal RefinementFailure to callers.  The fallback
                    # respects the remaining wall-clock budget: a timeout
                    # mid-search surfaces as CircBudgetExceeded below.
                    check_budget()
                    try:
                        outcome = _concrete_fallback(
                            cfa, race_on, check_errors, deadline
                        )
                    except RefinementFailure as stalled:
                        # A deadline-truncated search is a budget story,
                        # not a refinement stall.
                        check_budget()
                        finalize_stats()
                        raise CircInconclusive(
                            CircUnknown(
                                variable=race_on,
                                reason=str(stalled),
                                predicates=tuple(preds),
                                stats=stats,
                            )
                        ) from stalled
                if isinstance(outcome, RealRace):
                    if validate_witness:
                        program_c = MultiProgram.symmetric(
                            cfa, outcome.n_threads
                        )
                        ok, _ = replay(
                            program_c, outcome.steps, race_on=race_on
                        )
                        if not ok:
                            raise CircError(
                                "counterexample failed concrete replay"
                            )
                    finalize_stats()
                    return CircUnsafe(
                        variable=race_on,
                        steps=outcome.steps,
                        n_threads=outcome.n_threads,
                        predicates=tuple(preds),
                        stats=stats,
                    )
                assert isinstance(outcome, Refinement)
                record(
                    IterationRecord(
                        outer,
                        inner,
                        tuple(preds),
                        k,
                        event="refine",
                        refinement_reason=outcome.reason,
                        new_predicates=tuple(outcome.new_predicates),
                    )
                )
                preds = preds.extended(outcome.new_predicates)
                k = outcome.new_k
                refined = True
                break
            except ReachBudgetExceeded as exc:
                # Typed degrade: the wall-clock deadline or abstract
                # state budget ran out inside one reachability pass.
                check_budget()
                raise CircError(str(exc)) from exc

            stats.abstract_states += reach.states_explored
            record(
                IterationRecord(
                    outer,
                    inner,
                    tuple(preds),
                    k,
                    arg=reach.arg,
                    acfa=context,
                    states_explored=reach.states_explored,
                    event="reach",
                )
            )

            if simulates(project_acfa(reach.arg, cfa.locals), context):
                if variant == "omega" and not omega_check(
                    reach, context, cfa, k, store=arg_store
                ):
                    k += 1
                    refined = True
                    record(
                        IterationRecord(
                            outer,
                            inner,
                            tuple(preds),
                            k,
                            event="omega-bump",
                        )
                    )
                    break
                finalize_stats()
                stats.final_acfa_size = context.size
                record(
                    IterationRecord(
                        outer,
                        inner,
                        tuple(preds),
                        k,
                        arg=reach.arg,
                        acfa=context,
                        event="converged",
                    )
                )
                return CircSafe(
                    variable=race_on,
                    predicates=tuple(preds),
                    context=context,
                    stats=stats,
                )

            if arg_store is not None:
                context, mu = arg_store.collapse_quotient(
                    reach.arg, cfa.locals
                )
            else:
                context, mu = collapse(reach.arg, cfa.locals)
            prev_reach = reach
        else:
            raise CircError(
                f"inner loop did not converge in {max_inner} iterations"
            )
        if not refined:
            raise CircError("inner loop exited without refinement")
    raise CircError(f"no verdict after {max_outer} outer iterations")


def _concrete_fallback(
    cfa: CFA,
    race_on: str | None,
    check_errors: bool,
    deadline: float | None = None,
) -> RealRace:
    """Bounded explicit-state search for a genuine race witness.

    Used when Refine can neither realize nor refute an abstract trace (its
    silent-step placement is a heuristic).  Tries 2..4 symmetric threads
    with a growing state budget; raises RefinementFailure when inconclusive.
    ``deadline`` (an absolute ``perf_counter`` instant, from the caller's
    ``timeout_s``) bounds the search in wall-clock time as well.
    """
    from ..exec.interp import explore

    for n in (2, 3, 4):
        program = MultiProgram.symmetric(cfa, n)
        result = explore(
            program,
            race_on=race_on,
            check_errors=check_errors,
            max_states=60_000 * n,
            deadline=deadline,
        )
        if result.found:
            return RealRace(
                steps=result.witness.steps, model={}, n_threads=n
            )
    raise RefinementFailure(
        "abstract race could not be realized or refuted "
        "(refinement found no new predicates; bounded concrete search "
        "found no witness)"
    )
