"""Verdicts and statistics for CIRC runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..acfa.acfa import Acfa
from ..cfa.cfa import Edge
from ..smt import terms as T

__all__ = [
    "IterationRecord",
    "CircStats",
    "CircSafe",
    "CircUnsafe",
    "CircUnknown",
    "CircResult",
]


@dataclass
class IterationRecord:
    """Snapshot of one inner iteration, for figure regeneration and debug."""

    outer: int
    inner: int
    predicates: tuple[T.Term, ...]
    k: int
    arg: Optional[Acfa] = None
    acfa: Optional[Acfa] = None
    states_explored: int = 0
    event: str = ""  # 'reach', 'race', 'converged'
    refinement_reason: str = ""
    new_predicates: tuple[T.Term, ...] = ()
    #: Wall-clock seconds since the start of the run when the record was
    #: emitted.  This is the one timing field every consumer reads -- the
    #: CLI ``--stats`` table and the engine's JSONL events both derive
    #: their timings from here / from ``CircStats.elapsed_seconds``
    #: instead of keeping separate clocks.
    elapsed_s: float = 0.0


@dataclass
class CircStats:
    """Aggregate statistics (the paper's Table 1 columns and more)."""

    outer_iterations: int = 0
    inner_iterations: int = 0
    n_predicates: int = 0
    final_acfa_size: int = 0
    abstract_states: int = 0
    final_k: int = 0
    elapsed_seconds: float = 0.0
    history: list[IterationRecord] = field(default_factory=list)
    #: Reuse counters from the incremental ArgStore (None when the run
    #: was non-incremental); persisted in engine artifacts.
    reuse: Optional[dict[str, int]] = None
    #: Digest of the ArgStore's exploration history at exit.
    store_digest: Optional[str] = None


@dataclass
class CircSafe:
    """The program is race-free (sound by assume-guarantee, Theorem 1)."""

    variable: str | None
    predicates: tuple[T.Term, ...]
    context: Acfa
    stats: CircStats

    @property
    def safe(self) -> bool:
        return True

    @property
    def unknown(self) -> bool:
        return False

    def __str__(self) -> str:
        preds = ", ".join(T.pretty(p) for p in self.predicates) or "(none)"
        return (
            f"SAFE: no race on {self.variable!r}\n"
            f"  predicates ({len(self.predicates)}): {preds}\n"
            f"  context ACFA size: {self.context.size}\n"
            f"  iterations: {self.stats.outer_iterations} outer / "
            f"{self.stats.inner_iterations} inner"
        )


@dataclass
class CircUnsafe:
    """A genuine race, with a validated interleaved witness."""

    variable: str | None
    steps: list[tuple[int, Edge]]
    n_threads: int
    predicates: tuple[T.Term, ...]
    stats: CircStats

    @property
    def safe(self) -> bool:
        return False

    @property
    def unknown(self) -> bool:
        return False

    def __str__(self) -> str:
        lines = [
            f"UNSAFE: race on {self.variable!r} with "
            f"{self.n_threads} threads"
        ]
        for tid, edge in self.steps:
            lines.append(f"  T{tid}: {edge.op}")
        return "\n".join(lines)


@dataclass
class CircUnknown:
    """CIRC gave up within an explicit resource budget (Section 5 caveat:
    the problem is undecidable, so divergent refinement sequences exist).

    Neither a proof nor a counterexample: ``safe`` is ``False`` because
    safety was *not established*, and ``unknown`` distinguishes this from
    a genuine race verdict.  Carries the partial statistics and the
    predicates discovered before the budget ran out (useful as warm-start
    seeds for a retry with a larger budget).
    """

    variable: str | None
    reason: str
    predicates: tuple[T.Term, ...]
    stats: CircStats

    @property
    def safe(self) -> bool:
        return False

    @property
    def unknown(self) -> bool:
        return True

    def __str__(self) -> str:
        return (
            f"UNKNOWN: no verdict on {self.variable!r} -- {self.reason}\n"
            f"  iterations: {self.stats.outer_iterations} outer / "
            f"{self.stats.inner_iterations} inner, "
            f"{self.stats.elapsed_seconds:.1f}s"
        )


CircResult = CircSafe | CircUnsafe | CircUnknown
