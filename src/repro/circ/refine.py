"""Counterexample analysis and abstraction refinement (Section 5, Refine).

Given an abstract error trace of the thread-context program, Refine:

1. **Computes an interleaving** -- context moves are assigned to concrete
   thread identities by an exact token simulation over the context ACFA
   (a move out of a location holding no token, other than the initial
   location's unbounded pool, means the counter parameter was too small:
   increment ``k``).  Each thread's ACFA-edge sequence is then concretized
   into a CFA path by searching the abstract reachability graph the ACFA
   was minimized from: quotient edges are matched by member ARG edges
   (whose provenance records the originating CFA edges), and silent
   within-block moves may be interspersed freely.
2. **Analyzes the interleaving** -- the SSA trace formula (Figure 5) is
   checked for satisfiability.  A model yields a genuine interleaved race,
   validated by replay under the concrete semantics.  An unsatisfiable TF
   is mined for new predicates, either from Craig interpolants at every cut
   point (the "Abstractions from proofs" strategy) or from the atoms of the
   trace clauses (classic BLAST weakest-precondition atoms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Optional, Sequence

from ..acfa.acfa import Acfa, AcfaEdge
from ..cfa.cfa import CFA, AssumeOp, Edge
from ..cfa.ops import SsaBuilder, TraceStep, trace_formula
from ..context.state import AbsState, CtxMove, MainMove, Move
from ..smt import terms as T
from ..smt.interpolate import sequence_interpolants
from ..smt.solver import get_model
from .reach import ReachResult

__all__ = [
    "RefinementFailure",
    "RealRace",
    "Refinement",
    "ConcretizedTrace",
    "is_degenerate",
    "refine",
]

MiningStrategy = Literal["interpolants", "wp-atoms"]

#: Cap on the number of candidate interleavings tried per abstract trace.
MAX_CANDIDATES = 64


class RefinementFailure(RuntimeError):
    """Refine could not make progress (no new predicates, no counter bump)."""


@dataclass
class RealRace:
    """A genuine concrete counterexample."""

    steps: list[tuple[int, Edge]]  # (thread id, CFA edge); 0 = main
    model: dict[str, int]
    n_threads: int


@dataclass
class Refinement:
    """The trace was spurious; refined abstraction parameters."""

    new_predicates: list[T.Term]
    new_k: int
    reason: str = ""


@dataclass
class ConcretizedTrace:
    """An interleaved candidate trace plus its trace formula."""

    steps: list[tuple[int, Edge]]
    clauses: list[T.Term]
    groups: list[list[T.Term]]
    ssa: SsaBuilder
    n_threads: int


# ---------------------------------------------------------------------------
# Step 1: token simulation + per-thread concretization
# ---------------------------------------------------------------------------


class _CounterTooLow(Exception):
    pass


def _assign_threads(
    trace: Sequence[Move], acfa: Acfa
) -> tuple[
    list[Optional[int]],
    dict[int, list[int]],
    dict[int, int],
    dict[int, int],
]:
    """Assign each context move to a thread id (1-based; 0 is main).

    Returns (owner per trace index, per-thread move indices, final location
    per thread, minting entry per thread).  New threads are minted from the
    unbounded pool of any entry location (symmetric programs have one
    entry; asymmetric unions have one per template).  Raises _CounterTooLow
    when a move fires from a location holding no token and no pool.
    """
    position: dict[int, int] = {}
    owner: list[Optional[int]] = [None] * len(trace)
    moves_of: dict[int, list[int]] = {}
    entry_of: dict[int, int] = {}
    next_tid = 1
    for i, move in enumerate(trace):
        if not isinstance(move, CtxMove):
            continue
        src, dst = move.edge.src, move.edge.dst
        tid = None
        for cand in sorted(position):
            if position[cand] == src:
                tid = cand
                break
        if tid is None:
            if src not in acfa.entries:
                raise _CounterTooLow()
            tid = next_tid
            next_tid += 1
            moves_of[tid] = []
            entry_of[tid] = src
        position[tid] = dst
        owner[i] = tid
        moves_of.setdefault(tid, []).append(i)
    return owner, moves_of, position, entry_of


@dataclass
class _PathStep:
    cfa_edge: Edge
    consumes: Optional[int]  # index into the thread's abstract move list


def _concretize_thread(
    abstract_edges: Sequence[AcfaEdge],
    arg: Acfa,
    provenance: dict[tuple[int, int], frozenset[Edge]],
    arg_pc: dict[int, int],
    mu: dict[int, int],
    locals_: frozenset[str],
    final_ok: Callable[[int], bool],
    limit: int = 8,
) -> list[list[_PathStep]]:
    """CFA paths through the ARG realizing the abstract edge sequence.

    DFS over (consumed-count, ARG location); member edges consume the next
    abstract edge, silent within-block edges are free moves, and every
    provenance CFA edge is a distinct branch choice.  ``final_ok`` filters
    acceptable final ARG locations (e.g. the racing thread must end at a pc
    that writes the race variable).  Up to ``limit`` distinct paths are
    returned (shorter first), so the caller can fall back to an alternative
    branch when the first concretization is data-infeasible.
    """
    m = len(abstract_edges)
    results: list[list[_PathStep]] = []
    if m == 0 and final_ok(arg.q0):
        results.append([])

    # Iterative DFS with per-path visited set (prevents silent-cycle loops
    # while still allowing different paths through the same node).
    def dfs(i: int, g: int, path: list[_PathStep], visited: frozenset):
        if len(results) >= limit:
            return
        if i == m and final_ok(g) and path:
            results.append(list(path))
            if len(results) >= limit:
                return
        for e in arg.out(g):
            prov = provenance.get((e.src, e.dst), frozenset())
            silent = mu[e.src] == mu[e.dst] and not (e.havoc - locals_)
            moves: list[int] = []
            if silent:
                moves.append(i)
            if i < m:
                ae = abstract_edges[i]
                if mu[e.src] == ae.src and mu[e.dst] == ae.dst:
                    moves.append(i + 1)
            for ni in moves:
                node = (ni, e.dst)
                if node in visited:
                    continue
                for cfa_edge in sorted(prov, key=str):
                    path.append(
                        _PathStep(cfa_edge, ni - 1 if ni > i else None)
                    )
                    dfs(ni, e.dst, path, visited | {node})
                    path.pop()
                    if len(results) >= limit:
                        return

    dfs(0, arg.q0, [], frozenset({(0, arg.q0)}))
    results.sort(key=len)
    return results


# ---------------------------------------------------------------------------
# Step 2: trace formula and analysis
# ---------------------------------------------------------------------------


def _build_interleaving(
    trace: Sequence[Move],
    owner: Sequence[Optional[int]],
    thread_paths: dict[int, list[_PathStep]],
    moves_of: dict[int, list[int]],
) -> list[tuple[int, Edge]]:
    """Merge main moves and concretized context paths, placing silent steps
    adjacent to the abstract move they precede (or, for trailing steps,
    follow)."""
    # For each thread, bucket its path steps around its abstract moves.
    before: dict[tuple[int, int], list[Edge]] = {}
    trailing: dict[int, list[Edge]] = {}
    for tid, path in thread_paths.items():
        consumed = -1
        pending: list[Edge] = []
        for step in path:
            if step.consumes is None:
                pending.append(step.cfa_edge)
            else:
                consumed = step.consumes
                pending.append(step.cfa_edge)
                before[(tid, consumed)] = pending
                pending = []
        trailing[tid] = pending

    steps: list[tuple[int, Edge]] = []
    per_thread_count: dict[int, int] = {}
    for i, move in enumerate(trace):
        if isinstance(move, MainMove):
            steps.append((0, move.edge))
            continue
        tid = owner[i]
        assert tid is not None
        j = per_thread_count.get(tid, 0)
        per_thread_count[tid] = j + 1
        for edge in before.get((tid, j), []):
            steps.append((tid, edge))
        if j == len(moves_of[tid]) - 1:
            for edge in trailing.get(tid, []):
                steps.append((tid, edge))
    # Stationary participants (no abstract moves) run their silent paths at
    # the end, just before the race state.
    for tid, move_indices in moves_of.items():
        if not move_indices:
            for edge in trailing.get(tid, []):
                steps.append((tid, edge))
    return steps


def _initial_clauses(
    cfa: CFA,
    n_threads: int,
    ssa: SsaBuilder,
    locals_by_thread: dict[int, frozenset[str]] | None = None,
) -> list[T.Term]:
    """Clauses pinning every SSA version-0 variable to its initial value."""
    clauses = []
    for g in sorted(cfa.globals):
        clauses.append(
            T.eq(T.var(ssa.current(0, g)), T.num(cfa.global_init.get(g, 0)))
        )
    for tid in range(n_threads):
        locs = (
            locals_by_thread.get(tid, cfa.locals)
            if locals_by_thread
            else cfa.locals
        )
        for loc in sorted(locs):
            clauses.append(T.eq(T.var(ssa.current(tid, loc)), T.num(0)))
    return clauses


def build_trace_formula(
    cfa: CFA,
    steps: Sequence[tuple[int, Edge]],
    n_threads: int,
    locals_by_thread: dict[int, frozenset[str]] | None = None,
) -> ConcretizedTrace:
    """The SSA trace formula of an interleaving, grouped per step.

    ``locals_by_thread`` overrides the per-thread local-variable sets for
    asymmetric programs (thread 0 defaults to ``cfa``'s locals).
    """
    trace_steps = [TraceStep(tid, e.op) for tid, e in steps]
    clauses, ssa_used = trace_formula(trace_steps, cfa.globals)
    # Rebuild with init clauses in front; recompute with a fresh builder so
    # version numbering is shared.
    ssa = SsaBuilder(cfa.globals)
    init = _initial_clauses(cfa, n_threads, ssa, locals_by_thread)
    groups: list[list[T.Term]] = [init]
    all_clauses = list(init)
    for ts in trace_steps:
        op = ts.op
        if isinstance(op, AssumeOp):
            clause = ssa.rename_term(ts.thread, op.pred)
        else:
            rhs = ssa.rename_term(ts.thread, op.rhs)
            lhs = ssa.bump(ts.thread, op.lhs)
            clause = T.eq(T.var(lhs), rhs)
        groups.append([clause])
        all_clauses.append(clause)
    return ConcretizedTrace(
        steps=list(steps),
        clauses=all_clauses,
        groups=groups,
        ssa=ssa,
        n_threads=n_threads,
    )


def _mine_interpolants(ct: ConcretizedTrace) -> list[T.Term]:
    itps = sequence_interpolants(ct.groups)
    if itps is None:
        return []
    preds: list[T.Term] = []
    for itp in itps:
        for atom in T.atoms(itp):
            preds.append(SsaBuilder.unrename_term(atom))
    return preds


def _mine_wp_atoms(ct: ConcretizedTrace) -> list[T.Term]:
    preds: list[T.Term] = []
    n_init = len(ct.groups[0])
    used: set[str] = set()
    for clause in ct.clauses[n_init:]:
        used.update(T.free_vars(clause))
        for atom in T.atoms(clause):
            preds.append(SsaBuilder.unrename_term(atom))
    # Initial-value atoms matter when the trace reads a variable's initial
    # value (e.g. assertions over initialized globals); restrict to the
    # variables the trace actually touches to avoid noise.
    for clause in ct.clauses[:n_init]:
        if T.free_vars(clause) & used:
            for atom in T.atoms(clause):
                preds.append(SsaBuilder.unrename_term(atom))
    return preds


def is_degenerate(p: T.Term) -> bool:
    """True for atoms that are valid or unsatisfiable on their own, e.g.
    the ``x == x+1`` artifacts of un-SSA-ing an assignment clause.

    Degenerate atoms refine nothing -- both polarities of a real
    predicate must be satisfiable for it to split an abstract state.
    Their absence from refinements is also what the incremental ArgStore's
    support-based subtree invalidation relies on: a degenerate predicate
    would add a literal even to posts over disjoint variables, forcing a
    full memo drop instead of a frontier re-exploration.
    """
    from ..smt.solver import is_sat_conjunction

    return not is_sat_conjunction([p]) or not is_sat_conjunction(
        [T.not_(p)]
    )


def _useful_predicates(
    candidates: Iterable[T.Term], existing: Iterable[T.Term]
) -> list[T.Term]:
    from ..smt.profile import stage
    from ..smt.simplify import fold_constants

    known = set(existing)
    out: list[T.Term] = []
    with stage("refine"):
        for p in candidates:
            p = fold_constants(p)
            if not isinstance(p, T.Cmp):
                continue
            if not T.free_vars(p):
                continue
            if p in known or T.not_(p) in known:
                continue
            if is_degenerate(p):
                continue
            known.add(p)
            out.append(p)
    return out


# ---------------------------------------------------------------------------
# The Refine procedure
# ---------------------------------------------------------------------------


def refine(
    cfa: CFA,
    race_on: str | None,
    trace: Sequence[Move],
    final_state: AbsState,
    acfa: Acfa,
    prev_reach: Optional[ReachResult],
    mu: dict[int, int],
    k: int,
    existing_preds: Iterable[T.Term],
    strategy: MiningStrategy = "wp-atoms",
) -> RealRace | Refinement:
    """Analyze an abstract counterexample (paper procedure Refine).

    ``prev_reach``/``mu`` describe the ARG the context ACFA was minimized
    from (None when the context is the empty ACFA, which has no moves).
    """
    # ---- interleaving computation --------------------------------------
    try:
        owner, moves_of, final_pos, entry_of = _assign_threads(trace, acfa)
    except _CounterTooLow:
        return Refinement([], k + 1, reason="counter too low")

    # Race participants that never moved: threads from the initial pool can
    # take part in the race while still 'at' the context start location
    # (e.g. a bare unprotected write reachable by silent steps only).  Mint
    # stationary thread ids for unfilled roles at the start location.
    if race_on is not None and prev_reach is not None:
        needed = _missing_start_participants(
            cfa, race_on, final_state, acfa, final_pos
        )
        for _ in range(needed):
            tid = max(moves_of, default=0) + 1
            moves_of[tid] = []
            final_pos[tid] = acfa.q0
            entry_of[tid] = acfa.q0

    candidates: dict[int, list[list[_PathStep]]] = {}
    if moves_of:
        assert prev_reach is not None, "context moves need a concretizable ACFA"
        finals = _race_role_conditions(
            cfa, race_on, final_state, acfa, final_pos, prev_reach
        )
        for tid, move_indices in moves_of.items():
            abstract_edges = [trace[i].edge for i in move_indices]
            paths = _concretize_thread(
                abstract_edges,
                prev_reach.arg,
                prev_reach.provenance,
                prev_reach.arg_pc,
                mu,
                cfa.locals,
                finals.get(tid, lambda g: True),
            )
            if not paths:
                # The quotient admits an edge sequence its members cannot
                # realize -- treat like an imprecise counter/context and
                # weaken by raising k (forces re-exploration with a finer
                # context on the next round).
                return Refinement(
                    [], k + 1, reason="abstract trace has no ARG realization"
                )
            candidates[tid] = paths

    # ---- feasibility across candidate concretizations ---------------------
    import itertools

    n_threads = 1 + len(moves_of)
    tids = sorted(candidates)
    tried: list[ConcretizedTrace] = []
    combos = itertools.islice(
        itertools.product(*(candidates[t] for t in tids)), MAX_CANDIDATES
    )
    if not tids:
        combos = iter([()])
    for combo in combos:
        thread_paths = dict(zip(tids, combo))
        steps = _build_interleaving(trace, owner, thread_paths, moves_of)
        ct = build_trace_formula(cfa, steps, n_threads)
        model = get_model(T.and_(*ct.clauses))
        if model is not None:
            return RealRace(steps=steps, model=model, n_threads=n_threads)
        tried.append(ct)

    # ---- predicate mining (union across the spurious candidates) -----------
    strategies = (
        [_mine_interpolants, _mine_wp_atoms]
        if strategy == "interpolants"
        else [_mine_wp_atoms, _mine_interpolants]
    )
    for miner in strategies:
        mined: list[T.Term] = []
        for ct in tried:
            mined.extend(miner(ct))
        new = _useful_predicates(mined, existing_preds)
        if new:
            return Refinement(new, k, reason=f"mined by {miner.__name__}")
    raise RefinementFailure(
        "spurious abstract trace but no new predicates were found"
    )


def _race_role_conditions(
    cfa: CFA,
    race_on: str | None,
    final_state: AbsState,
    acfa: Acfa,
    final_pos: dict[int, int],
    prev_reach: ReachResult,
) -> dict[int, Callable[[int], bool]]:
    """Final-location requirements for the racing context threads.

    The race at the final abstract state names the participating context
    locations; the concretized threads ending there must reach a CFA pc
    with the corresponding access actually enabled.
    """
    if race_on is None:
        return {}
    x = race_on
    arg_pc = prev_reach.arg_pc

    def writer_ok(g: int) -> bool:
        return cfa.may_write(arg_pc[g], x)

    def accessor_ok(g: int) -> bool:
        return cfa.may_access(arg_pc[g], x)

    main_accesses = cfa.may_access(final_state.pc, x)
    writer_locs = [
        q
        for q in final_state.context.occupied()
        if acfa.may_write(q, x)
    ]

    conditions: dict[int, Callable[[int], bool]] = {}
    if main_accesses and writer_locs:
        # One context thread must be a writer.
        tid = _tid_at(final_pos, writer_locs)
        if tid is not None:
            conditions[tid] = writer_ok
        return conditions
    if len(writer_locs) >= 1:
        # Need two context participants: a writer plus a writer/accessor.
        tid1 = _tid_at(final_pos, writer_locs)
        if tid1 is not None:
            conditions[tid1] = writer_ok
            remaining = {
                t: loc for t, loc in final_pos.items() if t != tid1
            }
            tid2 = _tid_at(remaining, writer_locs)
            if tid2 is not None:
                conditions[tid2] = writer_ok
    return conditions


def _tid_at(positions: dict[int, int], locations: list[int]) -> Optional[int]:
    for tid in sorted(positions):
        if positions[tid] in locations:
            return tid
    return None


def _missing_start_participants(
    cfa: CFA,
    x: str,
    final_state: AbsState,
    acfa: Acfa,
    final_pos: dict[int, int],
) -> int:
    """How many race participants must be minted from the start pool.

    The abstract race may involve context threads that never moved (the
    OMEGA pool at the ACFA start location); they have no trace moves, so the
    token simulation does not see them.  They can participate only when the
    start location itself write-enables ``x``.
    """
    if not acfa.may_write(acfa.q0, x):
        return 0
    ctx = final_state.context
    if acfa.q0 not in set(ctx.occupied()):
        return 0
    main_participates = cfa.may_access(final_state.pc, x)
    writer_locs = [
        q for q in ctx.occupied() if acfa.may_write(q, x)
    ]
    required = 1 if main_participates else 2
    available = sum(
        1 for tid in final_pos if final_pos[tid] in writer_locs
    )
    return max(0, required - available)
