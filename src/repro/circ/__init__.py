"""The CIRC race-checking algorithm: reachability, refinement, main loop."""

from .circ import CircBudgetExceeded, CircError, CircInconclusive, circ
from .multi import MultiSafe, MultiUnsafe, circ_multi
from .omega import omega_check
from .reach import (
    AbstractRaceFound,
    ArgBuilder,
    ReachBudgetExceeded,
    ReachResult,
    reach_and_build,
)
from .refine import (
    ConcretizedTrace,
    RealRace,
    Refinement,
    RefinementFailure,
    build_trace_formula,
    refine,
)
from .result import CircSafe, CircStats, CircUnknown, CircUnsafe, IterationRecord
