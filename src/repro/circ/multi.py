"""CIRC for asymmetric thread sets.

Section 2.3 of the paper: "In general, our algorithm requires that each of
the threads be running one of finitely many pieces of code, and that the
threads do not reference each other."  The formal development treats the
symmetric case for clarity; this module implements the general one.

The multithreaded program runs arbitrarily many copies of each of several
thread *templates*.  The context model is the **disjoint union** of one
ACFA per template, with one unbounded (OMEGA) pool per template entry.
The assume-guarantee loop runs each template in the 'main' role against
the shared union context; the guarantee requires every template's ARG to
be simulated by its own component of the union.  Refinement works on the
union: the token simulation mints threads from any entry, and each
context thread is concretized through the ARG of *its* template.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..acfa.acfa import Acfa, AcfaEdge, empty_acfa
from ..acfa.collapse import collapse, project_acfa
from ..acfa.simulate import simulation_relation
from ..cfa.cfa import CFA, Edge
from ..context.state import AbstractProgram
from ..exec.interp import MultiProgram, replay
from ..predabs.abstractor import Abstractor
from ..predabs.region import PredicateSet
from ..reach import ArgStore
from ..smt import terms as T
from ..smt.solver import get_model
from .circ import CircError
from .reach import AbstractRaceFound, ReachResult, reach_and_build
from .refine import (
    MAX_CANDIDATES,
    RefinementFailure,
    _assign_threads,
    _build_interleaving,
    _concretize_thread,
    _CounterTooLow,
    _mine_interpolants,
    _mine_wp_atoms,
    _useful_predicates,
    build_trace_formula,
)
from .result import CircStats

__all__ = ["MultiSafe", "MultiUnsafe", "circ_multi"]


@dataclass
class MultiSafe:
    """Every template composition is race-free on the variable."""

    variable: str
    templates: tuple[str, ...]
    predicates: dict[str, tuple[T.Term, ...]]
    contexts: dict[str, Acfa]
    stats: CircStats

    @property
    def safe(self) -> bool:
        return True


@dataclass
class MultiUnsafe:
    """A genuine race; ``template_of`` names each thread's code."""

    variable: str
    steps: list[tuple[int, Edge]]
    template_of: dict[int, str]
    stats: CircStats

    @property
    def safe(self) -> bool:
        return False

    @property
    def n_threads(self) -> int:
        return len(self.template_of)


@dataclass
class _Union:
    """A disjoint union of per-template context ACFAs."""

    acfa: Acfa
    offsets: list[int]
    entry_of_template: list[int]

    def template_of_location(self, loc: int) -> int:
        for i in reversed(range(len(self.offsets))):
            if loc >= self.offsets[i]:
                return i
        raise ValueError(loc)


def _union_contexts(contexts: Sequence[Acfa]) -> _Union:
    offsets: list[int] = []
    locations: list[int] = []
    label: dict[int, tuple] = {}
    edges: list[AcfaEdge] = []
    atomic: list[int] = []
    entries: list[int] = []
    next_id = 0
    for ctx in contexts:
        offsets.append(next_id)
        renum = {q: next_id + i for i, q in enumerate(sorted(ctx.locations))}
        next_id += len(ctx.locations)
        for q in ctx.locations:
            locations.append(renum[q])
            label[renum[q]] = ctx.label[q]
            if ctx.is_atomic(q):
                atomic.append(renum[q])
        for e in ctx.edges:
            edges.append(AcfaEdge(renum[e.src], e.havoc, renum[e.dst]))
        entries.append(renum[ctx.q0])
    acfa = Acfa(
        name="union",
        q0=entries[0],
        locations=locations,
        label=label,
        edges=edges,
        atomic=atomic,
        entries=entries,
    )
    return _Union(acfa=acfa, offsets=offsets, entry_of_template=entries)


def _simulated_by_component(
    arg: Acfa, union: _Union, template: int, locals_: frozenset[str]
) -> bool:
    projected = project_acfa(arg, locals_)
    rel = simulation_relation(projected, union.acfa)
    return (projected.q0, union.entry_of_template[template]) in rel


def circ_multi(
    templates: dict[str, CFA],
    race_on: str,
    k: int = 1,
    strategy: str = "wp-atoms",
    max_outer: int = 40,
    max_inner: int = 40,
    max_states: int = 500_000,
    validate_witness: bool = True,
    incremental: bool = True,
    frontier: str = "bfs",
) -> MultiSafe | MultiUnsafe:
    """Check races on ``race_on`` over arbitrarily many copies of *each*
    template running concurrently.

    ``incremental`` keeps one :class:`~repro.reach.store.ArgStore` per
    template, reusing abstract posts and collapse quotients across inner
    iterations and refinement restarts exactly like :func:`~repro.circ.circ.circ`.
    """
    if not templates:
        raise ValueError("need at least one thread template")
    names = list(templates)
    cfas = [templates[n] for n in names]
    globals0 = cfas[0].globals
    for c in cfas[1:]:
        if c.globals != globals0:
            raise ValueError("templates must share the global variables")
        if c.global_init != cfas[0].global_init:
            raise ValueError("templates disagree on initial global values")

    start_time = time.perf_counter()
    stats = CircStats(final_k=k)
    preds = [PredicateSet() for _ in names]
    stores: list[Optional[ArgStore]] = [
        ArgStore() if incremental else None for _ in names
    ]

    def finalize_reuse() -> None:
        if not incremental:
            return
        merged: dict[str, int] = {}
        for s in stores:
            for key, value in s.reuse_stats().items():
                merged[key] = merged.get(key, 0) + value
        stats.reuse = merged

    for outer in range(1, max_outer + 1):
        stats.outer_iterations = outer
        contexts = [empty_acfa(f"ctx:{n}") for n in names]
        mus: list[dict[int, int]] = [{} for _ in names]
        prev: list[Optional[ReachResult]] = [None for _ in names]
        abstractors = [
            stores[i].abstractor_for(p, "cartesian")
            if stores[i] is not None
            else Abstractor(p)
            for i, p in enumerate(preds)
        ]
        refined = False

        for inner in range(1, max_inner + 1):
            stats.inner_iterations += 1
            union = _union_contexts(contexts)
            reaches: list[ReachResult] = []
            race: Optional[tuple[int, AbstractRaceFound]] = None
            for i, cfa in enumerate(cfas):
                program = AbstractProgram(
                    cfa, abstractors[i], union.acfa, k
                )
                try:
                    reaches.append(
                        reach_and_build(
                            program,
                            race_on=race_on,
                            max_states=max_states,
                            store=stores[i],
                            frontier=frontier,
                        )
                    )
                except AbstractRaceFound as exc:
                    race = (i, exc)
                    break
            if race is not None:
                main_i, exc = race
                outcome = _refine_multi(
                    names,
                    cfas,
                    main_i,
                    race_on,
                    exc,
                    union,
                    contexts,
                    prev,
                    mus,
                    k,
                    preds,
                    strategy,
                )
                if isinstance(outcome, MultiUnsafe):
                    if validate_witness:
                        order = sorted(outcome.template_of)
                        mp = MultiProgram(
                            [
                                templates[outcome.template_of[t]]
                                for t in order
                            ]
                        )
                        remap = {t: j for j, t in enumerate(order)}
                        steps = [
                            (remap[t], e) for t, e in outcome.steps
                        ]
                        ok, _ = replay(mp, steps, race_on=race_on)
                        if not ok:
                            raise CircError(
                                "multi-template witness failed replay"
                            )
                    outcome.stats = stats
                    stats.elapsed_seconds = (
                        time.perf_counter() - start_time
                    )
                    finalize_reuse()
                    return outcome
                new_preds, new_k = outcome
                for i, extra in enumerate(new_preds):
                    preds[i] = preds[i].extended(extra)
                k = new_k
                refined = True
                break

            stats.abstract_states += sum(
                r.states_explored for r in reaches
            )
            if all(
                _simulated_by_component(
                    reaches[i].arg, union, i, cfas[i].locals
                )
                for i in range(len(cfas))
            ):
                stats.elapsed_seconds = time.perf_counter() - start_time
                stats.final_k = k
                finalize_reuse()
                return MultiSafe(
                    variable=race_on,
                    templates=tuple(names),
                    predicates={
                        n: tuple(preds[i]) for i, n in enumerate(names)
                    },
                    contexts={
                        n: contexts[i] for i, n in enumerate(names)
                    },
                    stats=stats,
                )
            new_contexts = []
            for i, r in enumerate(reaches):
                if stores[i] is not None:
                    ctx, mu = stores[i].collapse_quotient(
                        r.arg, cfas[i].locals, name=f"ctx:{names[i]}"
                    )
                else:
                    ctx, mu = collapse(
                        r.arg, cfas[i].locals, name=f"ctx:{names[i]}"
                    )
                new_contexts.append(ctx)
                mus[i] = mu
                prev[i] = r
            contexts = new_contexts
        else:
            raise CircError(
                f"multi-template inner loop did not converge in {max_inner}"
            )
        if not refined:
            raise CircError("inner loop exited without refinement")
    raise CircError(f"no verdict after {max_outer} outer iterations")


def _refine_multi(
    names: list[str],
    cfas: list[CFA],
    main_i: int,
    race_on: str,
    exc: AbstractRaceFound,
    union: _Union,
    contexts: list[Acfa],
    prev: list[Optional[ReachResult]],
    mus: list[dict[int, int]],
    k: int,
    preds: list[PredicateSet],
    strategy: str,
):
    """Refine an abstract race of template ``main_i`` against the union.

    Returns MultiUnsafe for a genuine race, or (per-template new predicate
    lists, new k) for a refinement.
    """
    trace = exc.trace
    try:
        owner, moves_of, final_pos, entry_of = _assign_threads(
            trace, union.acfa
        )
    except _CounterTooLow:
        return [[] for _ in names], k + 1

    # Stationary participants from any entry whose pool can race.
    final_state = exc.state
    main_cfa = cfas[main_i]
    if race_on is not None:
        main_participates = main_cfa.may_access(final_state.pc, race_on)
        writers = [
            q
            for q in final_state.context.occupied()
            if union.acfa.may_write(q, race_on)
        ]
        available = sum(1 for t in final_pos if final_pos[t] in writers)
        required = 1 if main_participates else 2
        for entry in union.entry_of_template:
            if available >= required:
                break
            if union.acfa.may_write(entry, race_on) and entry in set(
                final_state.context.occupied()
            ):
                tid = max(moves_of, default=0) + 1
                moves_of[tid] = []
                final_pos[tid] = entry
                entry_of[tid] = entry
                available += 1

    # Concretize each context thread through its template's ARG.
    candidates: dict[int, list] = {}
    template_of: dict[int, int] = {0: main_i}
    for tid, move_indices in moves_of.items():
        t_i = union.template_of_location(entry_of[tid])
        template_of[tid] = t_i
        reach_i = prev[t_i]
        if reach_i is None:
            return [[] for _ in names], k + 1
        # mu into union coordinates.
        offset_map = {
            g: _component_to_union(mus[t_i][g], contexts[t_i], union, t_i)
            for g in mus[t_i]
        }
        abstract_edges = [trace[j].edge for j in move_indices]
        cfa_t = cfas[t_i]

        def final_ok(g, _reach=reach_i, _cfa=cfa_t, _tid=tid):
            if race_on is None:
                return True
            if final_pos[_tid] in {
                q
                for q in final_state.context.occupied()
                if union.acfa.may_write(q, race_on)
            }:
                return _cfa.may_write(_reach.arg_pc[g], race_on)
            return True

        paths = _concretize_thread(
            abstract_edges,
            reach_i.arg,
            reach_i.provenance,
            reach_i.arg_pc,
            offset_map,
            cfa_t.locals,
            final_ok,
        )
        if not paths:
            return [[] for _ in names], k + 1
        candidates[tid] = paths

    import itertools

    tids = sorted(candidates)
    locals_by_thread = {
        tid: cfas[template_of[tid]].locals for tid in template_of
    }
    n_threads = 1 + len(moves_of)
    tried = []
    combos = (
        itertools.islice(
            itertools.product(*(candidates[t] for t in tids)),
            MAX_CANDIDATES,
        )
        if tids
        else iter([()])
    )
    for combo in combos:
        thread_paths = dict(zip(tids, combo))
        steps = _build_interleaving(trace, owner, thread_paths, moves_of)
        ct = build_trace_formula(
            main_cfa, steps, n_threads, locals_by_thread
        )
        model = get_model(T.and_(*ct.clauses))
        if model is not None:
            return MultiUnsafe(
                variable=race_on,
                steps=steps,
                template_of={
                    t: names[template_of[t]] for t in template_of
                },
                stats=CircStats(),
            )
        tried.append(ct)

    # Mining: distribute atoms to the templates whose variables they use.
    miners = (
        [_mine_interpolants, _mine_wp_atoms]
        if strategy == "interpolants"
        else [_mine_wp_atoms, _mine_interpolants]
    )
    globals0 = cfas[0].globals
    for miner in miners:
        mined: list[T.Term] = []
        for ct in tried:
            mined.extend(miner(ct))
        per_template: list[list[T.Term]] = [[] for _ in names]
        progress = False
        for i in range(len(names)):
            relevant = [
                p
                for p in mined
                if T.free_vars(p) <= (globals0 | cfas[i].locals)
            ]
            new = _useful_predicates(relevant, preds[i])
            if new:
                per_template[i] = new
                progress = True
        if progress:
            return per_template, k
    raise RefinementFailure(
        "multi-template refinement found no new predicates"
    )


def _component_to_union(
    comp_loc: int, context: Acfa, union: _Union, template: int
) -> int:
    """Map a component-ACFA location id to its id in the union."""
    sorted_locs = sorted(context.locations)
    return union.offsets[template] + sorted_locs.index(comp_loc)