"""The infinity-check of Section 5 (the heart of omega-CIRC).

After the inner loop converges with exactly ``k`` context threads, the
check discharges the unbounded case:

1. compute R, the reachable configurations of the *context-only* system
   A^infinity -- every thread, including the one that will play 'main', is
   an abstract A-thread; moves are label-guarded havoc transitions, so
   protocol state (a held lock, a claimed state variable) restricts which
   configurations arise;
2. a context transition ``e = q' --Y--> q''`` is *enabled at* an abstract
   location ``q-bar`` when some configuration in R has a token at ``q'``
   and a (distinct) token at ``q-bar`` (the paper's rule: ``G.q-bar > 0``
   when ``q-bar != q'``, ``> 1`` otherwise);
3. an ARG location ``n`` is *good* for ``e`` when executing the havoc from
   n's region, constrained by the target label, stays inside n's region:
   ``(exists Y. r(n)) and r(q'') |= r(n)``;
4. if every ARG location is good for every transition enabled at its
   abstract image, A soundly summarizes arbitrarily many threads.

The data carried through R is a conjunction of literals from the finite
universe of initial-value facts and ACFA labels, so the fixpoint
terminates; if it exceeds its budget we fall back to the coarse
"graph-reachable" enabledness (sound: it only enables more transitions,
making the goodness requirement stricter).
"""

from __future__ import annotations

from typing import Optional

from ..acfa.acfa import Acfa, AcfaEdge
from ..acfa.simulate import simulation_relation
from ..cfa.cfa import CFA
from ..context.counters import OMEGA, ContextState, counter_dec, counter_inc
from ..reach.store import ArgStore, acfa_signature
from ..smt import terms as T
from ..smt.profile import stage
from ..smt.solver import is_sat_conjunction
from .reach import ReachResult

__all__ = ["omega_check"]

#: Budget for the context-only reachability before falling back.
MAX_CONTEXT_STATES = 40_000

Config = tuple[frozenset, tuple]  # (literal set, counter map)


def _occupied(counts: tuple):
    for q, v in enumerate(counts):
        if v is OMEGA or v > 0:
            yield q


def _count_ok(counts: tuple, q: int, need: int) -> bool:
    v = counts[q]
    return v is OMEGA or v >= need


def _context_only_reach(
    acfa: Acfa, cfa: CFA, k: int, max_states: int = MAX_CONTEXT_STATES
) -> Optional[list[Config]]:
    n = max(acfa.locations) + 1
    init_literals = frozenset(
        T.eq(T.var(g), T.num(v))
        for g, v in sorted(cfa.global_init.items())
    )
    init: Config = (
        init_literals,
        ContextState.initial_omega(n, acfa.q0).counts,
    )
    seen = {init}
    frontier = [init]
    configs = [init]
    while frontier:
        nxt = []
        for literals, counts in frontier:
            # Atomic scheduling: while any token occupies an atomic
            # location, only tokens at atomic locations move.
            occupied = list(_occupied(counts))
            atomic_occupied = [q for q in occupied if acfa.is_atomic(q)]
            movers = atomic_occupied if atomic_occupied else occupied
            for q in movers:
                for e in acfa.out(q):
                    guard = list(literals) + list(acfa.label[e.src])
                    if not is_sat_conjunction(guard):
                        continue
                    survivors = {
                        lit
                        for lit in guard
                        if not (T.free_vars(lit) & e.havoc)
                    }
                    new_literals = frozenset(
                        survivors | set(acfa.label[e.dst])
                    )
                    if not is_sat_conjunction(list(new_literals)):
                        continue
                    moved = list(counts)
                    moved[e.src] = counter_dec(moved[e.src])
                    moved[e.dst] = counter_inc(moved[e.dst], k)
                    state: Config = (new_literals, tuple(moved))
                    if state in seen:
                        continue
                    seen.add(state)
                    if len(seen) > max_states:
                        return None
                    configs.append(state)
                    nxt.append(state)
        frontier = nxt
    return configs


def _graph_reachable(acfa: Acfa) -> frozenset[int]:
    reach = {acfa.q0}
    stack = [acfa.q0]
    while stack:
        q = stack.pop()
        for e in acfa.out(q):
            if e.dst not in reach:
                reach.add(e.dst)
                stack.append(e.dst)
    return frozenset(reach)


def omega_check(
    reach: ReachResult,
    acfa: Acfa,
    cfa: CFA,
    k: int,
    store: ArgStore | None = None,
) -> bool:
    """Is the converged k-thread context sound for arbitrarily many
    threads?  (See module docstring.)

    With an :class:`ArgStore`, the context-only reachability is memoized
    by the ACFA's signature and the per-(location, edge) goodness checks
    by their label terms, so after a context weakening or refinement only
    the *changed* locations are re-proved.
    """
    with stage("omega"):
        return _omega_check(reach, acfa, cfa, k, store)


def _omega_check(
    reach: ReachResult,
    acfa: Acfa,
    cfa: CFA,
    k: int,
    store: ArgStore | None = None,
) -> bool:
    if acfa.is_empty():
        return not acfa.edges

    if store is not None:
        reach_key = (
            acfa_signature(acfa),
            tuple(sorted(cfa.global_init.items())),
            k,
            MAX_CONTEXT_STATES,
        )
        configs = store.context_reach(
            reach_key, lambda: _context_only_reach(acfa, cfa, k)
        )
    else:
        configs = _context_only_reach(acfa, cfa, k)
    if configs is None:
        coverable = _graph_reachable(acfa)

        def enabled(e: AcfaEdge, a_main: int) -> bool:
            if acfa.is_atomic(a_main):
                return False  # main inside atomic: nobody else runs
            return e.src in coverable and a_main in coverable

    else:

        def enabled(e: AcfaEdge, a_main: int) -> bool:
            if acfa.is_atomic(a_main):
                return False  # main inside atomic: nobody else runs
            need_main = 2 if a_main == e.src else 1
            for _, counts in configs:
                if not _count_ok(counts, e.src, 1):
                    continue
                if _count_ok(counts, a_main, need_main):
                    return True
            return False

    sim = simulation_relation(reach.arg, acfa)
    related: dict[int, set[int]] = {}
    for (g, a) in sim:
        related.setdefault(g, set()).add(a)

    for n in reach.arg.locations:
        label_n = reach.arg.label[n]
        for e in acfa.edges:
            if not any(enabled(e, a) for a in related.get(n, ())):
                continue
            dst_label = acfa.label[e.dst]
            if store is not None:
                good = store.omega_good(
                    label_n,
                    e.havoc,
                    dst_label,
                    lambda: _is_good(label_n, e.havoc, dst_label),
                )
            else:
                good = _is_good(label_n, e.havoc, dst_label)
            if not good:
                return False
    return True


def _is_good(
    label_n: tuple[T.Term, ...],
    havoc: frozenset[str],
    dst_label: tuple[T.Term, ...],
) -> bool:
    """Goodness of one (ARG location, context edge) pair:
    ``(exists Y. r(n)) and r(q'') |= r(n)`` -- a pure function of the
    location label, the havoc set, and the target label."""
    mapping = {v: T.var(v + "__h") for v in havoc}
    projected = [T.substitute(lit, mapping) for lit in label_n]
    antecedent = projected + list(dst_label)
    for lit in label_n:
        if is_sat_conjunction(antecedent + [T.not_(lit)]):
            return False
    return True
