"""Synthetic nesC application models for the paper's evaluation (Table 1).

The paper ran CIRC on variables of three TinyOS applications --
``secureTosBase`` (9539 lines of compiled C), ``surge`` (9697 lines), and
``sense`` (3019 lines) -- that the nesC compiler's flow analysis had
flagged (and the programmers had annotated ``norace``).  The sources are
not in this repository, so each variable's *synchronization idiom* is
re-created here from Section 6's descriptions:

* **state-variable (test-and-set) protection**: ``gTxByteCnt``,
  ``gTxRunningCRC`` -- "protected by a state variable much like the example
  in Section 2";
* **conditional locking through a function's return value**: ``gTxState``
  -- "accessed at several places inside a function", with the original
  bug of an access *after* the state-variable release;
* **multi-valued state machine with conditional accesses**:
  ``gRxHeadIndex``;
* **trivially protected**: ``gTxProto`` (atomic sections only),
  ``gRxTailIndex`` (task context only);
* **split-phase interrupt protocol**: ``rec_ptr`` -- handler disables its
  interrupt, posts a task, writes; the task writes and re-enables;
* **interrupt-enable plus state variable**: ``tosPort`` -- including the
  genuine race CIRC found when the resetting interrupt is always enabled.

Each entry records the paper's measured numbers for shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .model import Event, NescApp, Task

__all__ = ["NescBenchmark", "TEST_AND_SET_SOURCE", "benchmark", "BENCHMARKS", "benchmarks_for"]


#: The paper's Figure 1 program, verbatim.
TEST_AND_SET_SOURCE = """
global int x, state;
thread main {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
"""


@dataclass
class NescBenchmark:
    """One row of the evaluation: an application model and a race variable."""

    app_name: str  # the paper's application (secureTosBase/surge/sense)
    variable: str
    app: NescApp
    expect_safe: bool
    paper_preds: Optional[int] = None
    paper_acfa: Optional[int] = None
    paper_time: Optional[str] = None
    note: str = ""

    @property
    def key(self) -> str:
        return f"{self.app_name}/{self.variable}"


def _state_variable_app(
    name: str, var: str, state: str, extra_body: str = ""
) -> NescApp:
    """The Section 2 test-and-set idiom guarding ``var`` with ``state``."""
    body = f"""
      atomic {{ old = {state}; if ({state} == 0) {{ {state} = 1; }} }}
      if (old == 0) {{
        {var} = {var} + 1;
        {extra_body}
        {state} = 0;
      }}
    """
    return NescApp(
        name=name,
        globals=[(var, 0), (state, 0)],
        events=[Event("dataReady", body)],
        locals_decl="local int old;",
    )


def _gtx_state_app(buggy: bool) -> NescApp:
    """Conditional locking on gTxState through a try-lock function.

    The paper's secureTosBase bug: one access to gTxState happened *after*
    the call that released the state variable; moving it before the call
    made CIRC report safety.
    """
    after_release = (
        "txRelease(); seen = gTxState;"
        if buggy
        else "seen = gTxState; txRelease();"
    )
    functions = """
    int txTryLock() {
      local int got;
      got = 0;
      atomic { if (gTxState == 0) { gTxState = 1; got = 1; } }
      return got;
    }
    void txRelease() { gTxState = 0; }
    """
    body = f"""
      got = txTryLock();
      if (got == 0) {{
        skip;
      }} else {{
        gTxState = 2;
        {after_release}
      }}
    """
    return NescApp(
        name="gTxState" + ("_buggy" if buggy else ""),
        globals=[("gTxState", 0)],
        events=[Event("sendDone", body)],
        functions=functions,
        locals_decl="local int got; local int seen;",
    )


def _grx_headindex_app() -> NescApp:
    """Multi-valued state machine with conditional accesses."""
    body = """
      atomic { old = gRxState; if (gRxState == 0) { gRxState = 1; } }
      if (old == 0) {
        gRxHeadIndex = gRxHeadIndex + 1;
        atomic { gRxState = 2; }
        if (gRxHeadIndex > 3) { gRxHeadIndex = 0; }
        gRxState = 0;
      }
    """
    return NescApp(
        name="gRxHeadIndex",
        globals=[("gRxHeadIndex", 0), ("gRxState", 0)],
        events=[Event("rxReady", body)],
        locals_decl="local int old;",
    )


def _gtx_proto_app() -> NescApp:
    """Trivially safe: every access sits inside an atomic section."""
    return NescApp(
        name="gTxProto",
        globals=[("gTxProto", 0)],
        events=[
            Event("protoSet", "atomic { gTxProto = gTxProto + 1; }"),
            Event(
                "protoClear",
                "atomic { if (gTxProto > 3) { gTxProto = 0; } }",
            ),
        ],
    )


def _grx_tailindex_app() -> NescApp:
    """Trivially safe: accessed only from (serialized) task context."""
    return NescApp(
        name="gRxTailIndex",
        globals=[("gRxTailIndex", 0)],
        tasks=[
            Task(
                "advanceTail",
                """
                gRxTailIndex = gRxTailIndex + 1;
                if (gRxTailIndex > 7) { gRxTailIndex = 0; }
                """,
            )
        ],
    )


def _rec_ptr_app() -> NescApp:
    """surge's split-phase protocol on rec_ptr.

    The receive interrupt fires only while enabled; the hardware dispatch
    disables it.  The handler writes rec_ptr and posts the task; the task
    writes rec_ptr and re-enables the interrupt.
    """
    return NescApp(
        name="rec_ptr",
        globals=[("rec_ptr", 0), ("recIntrEn", 1), ("recPending", 0)],
        events=[
            Event(
                "receive",
                """
                rec_ptr = rec_ptr + 1;
                recPending = 1;
                """,
                enable_flag="recIntrEn",
                auto_disable=True,
            )
        ],
        tasks=[
            Task(
                "receiveTask",
                """
                if (recPending == 1) {
                  rec_ptr = rec_ptr + 1;
                  recPending = 0;
                  recIntrEn = 1;
                }
                """,
            )
        ],
    )


def _tos_port_app(buggy: bool) -> NescApp:
    """sense's tosPort: interrupt-enable bit combined with a state variable.

    Buggy version (the race CIRC found): the ADC interrupt that resets the
    state variable and reads the port is always enabled, so it can fire
    between a thread's acquisition of the state variable and its write.
    Fixed version (after the programmer's explanation): the interrupt is
    enabled only once the write has completed.
    """
    if buggy:
        adc = Event(
            "adcReady",
            """
            sState = 0;
            seen = tosPort;
            """,
        )
        task_body = """
          atomic { old = sState; if (sState == 0) { sState = 1; } }
          if (old == 0) {
            tosPort = tosPort + 1;
          }
        """
        globals_ = [("tosPort", 0), ("sState", 0)]
        return NescApp(
            name="tosPort_buggy",
            globals=globals_,
            events=[adc],
            tasks=[Task("startSense", task_body)],
            locals_decl="local int old; local int seen;",
        )
    adc = Event(
        "adcReady",
        """
        seen = tosPort;
        sState = 0;
        """,
        enable_flag="adcEn",
        auto_disable=True,
    )
    task_body = """
      atomic { old = sState; if (sState == 0) { sState = 1; } }
      if (old == 0) {
        tosPort = tosPort + 1;
        adcEn = 1;
      }
    """
    return NescApp(
        name="tosPort",
        globals=[("tosPort", 0), ("sState", 0), ("adcEn", 0)],
        events=[adc],
        tasks=[Task("startSense", task_body)],
        locals_decl="local int old; local int seen;",
    )


def _benchmarks() -> list[NescBenchmark]:
    return [
        NescBenchmark(
            "secureTosBase",
            "gTxState",
            _gtx_state_app(buggy=False),
            expect_safe=True,
            paper_preds=11,
            paper_acfa=23,
            paper_time="7m38s",
            note="conditional locking via try-lock return value",
        ),
        NescBenchmark(
            "secureTosBase",
            "gTxState_buggy",
            _gtx_state_app(buggy=True),
            expect_safe=False,
            note="original code: access after the releasing call",
        ),
        NescBenchmark(
            "secureTosBase",
            "gTxByteCnt",
            _state_variable_app("gTxByteCnt", "gTxByteCnt", "gTxState"),
            expect_safe=True,
            paper_preds=4,
            paper_acfa=13,
            paper_time="1m41s",
            note="state-variable protection (Section 2 idiom)",
        ),
        NescBenchmark(
            "secureTosBase",
            "gTxRunningCRC",
            _state_variable_app(
                "gTxRunningCRC",
                "gTxRunningCRC",
                "gTxState",
                extra_body="gTxRunningCRC = gTxRunningCRC + 2;",
            ),
            expect_safe=True,
            paper_preds=4,
            paper_acfa=13,
            paper_time="1m50s",
            note="state-variable protection, two guarded writes",
        ),
        NescBenchmark(
            "secureTosBase",
            "gTxProto",
            _gtx_proto_app(),
            expect_safe=True,
            paper_preds=0,
            paper_acfa=9,
            paper_time="12s",
            note="trivially safe: atomic sections only",
        ),
        NescBenchmark(
            "secureTosBase",
            "gRxHeadIndex",
            _grx_headindex_app(),
            expect_safe=True,
            paper_preds=8,
            paper_acfa=64,
            paper_time="20m50s",
            note="multi-valued state variable, conditional accesses",
        ),
        NescBenchmark(
            "secureTosBase",
            "gRxTailIndex",
            _grx_tailindex_app(),
            expect_safe=True,
            paper_preds=0,
            paper_acfa=5,
            paper_time="2s",
            note="trivially safe: task context only",
        ),
        NescBenchmark(
            "surge",
            "rec_ptr",
            _rec_ptr_app(),
            expect_safe=True,
            paper_preds=4,
            paper_acfa=23,
            paper_time="1m18s",
            note="split-phase interrupt-disable protocol",
        ),
        NescBenchmark(
            "surge",
            "gTxByteCnt",
            _state_variable_app("gTxByteCnt", "gTxByteCnt", "gTxState"),
            expect_safe=True,
            paper_preds=4,
            paper_acfa=15,
            paper_time="1m34s",
        ),
        NescBenchmark(
            "surge",
            "gTxRunningCRC",
            _state_variable_app(
                "gTxRunningCRC",
                "gTxRunningCRC",
                "gTxState",
                extra_body="gTxRunningCRC = gTxRunningCRC + 2;",
            ),
            expect_safe=True,
            paper_preds=4,
            paper_acfa=15,
            paper_time="1m45s",
        ),
        NescBenchmark(
            "surge",
            "gTxState",
            _gtx_state_app(buggy=False),
            expect_safe=True,
            paper_preds=11,
            paper_acfa=35,
            paper_time="9m54s",
        ),
        NescBenchmark(
            "sense",
            "tosPort",
            _tos_port_app(buggy=False),
            expect_safe=True,
            paper_preds=6,
            paper_acfa=26,
            paper_time="16m25s",
            note="interrupt-enable bit + state variable",
        ),
        NescBenchmark(
            "sense",
            "tosPort_buggy",
            _tos_port_app(buggy=True),
            expect_safe=False,
            note="the race CIRC found: resetting interrupt always enabled",
        ),
    ]


BENCHMARKS: tuple[NescBenchmark, ...] = tuple(_benchmarks())


def benchmark(key: str) -> NescBenchmark:
    """Look up a benchmark by 'app/variable' key."""
    for b in BENCHMARKS:
        if b.key == key:
            return b
    raise KeyError(f"no benchmark {key!r}")


def benchmarks_for(app_name: str) -> list[NescBenchmark]:
    return [b for b in BENCHMARKS if b.app_name == app_name]
