"""A nesC/TinyOS-style concurrency model (Section 6 substrate).

TinyOS programs have two concurrency sources: *events* (interrupt handlers,
which can preempt anything whenever their interrupt is enabled) and *tasks*
(run-to-completion jobs that never preempt each other but can be preempted
by events).  Following the paper's methodology, an application is modeled
as arbitrarily many threads, each executing a big loop that
nondeterministically fires an enabled interrupt handler or runs a task.

``NescApp`` assembles such a model from handler/task bodies written in the
mini-C statement language and compiles it to a single thread template
(mini-C source and CFA) for the CIRC checker.  Task mutual exclusion is
enforced with a scheduler flag acquired in an atomic section; events guard
on their interrupt-enable flag.

The structural information (which accesses occur in interrupt context,
which inside atomic sections) is retained for the flow-based baseline
checker, which mimics the nesC compiler's race analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfa.cfa import CFA
from ..lang import ast as A
from ..lang.lower import lower_source
from ..lang.parser import parse_program

__all__ = ["Event", "Task", "NescApp", "TASK_LOCK"]

#: The scheduler flag serializing tasks.
TASK_LOCK = "__taskLock"


@dataclass
class Event:
    """An interrupt handler.

    ``enable_flag``: name of the global modeling the interrupt-enable bit;
    the handler fires only while it is 1.  ``auto_disable``: hardware
    clears the bit when the handler is dispatched (re-enabling is the
    program's job), atomically with the dispatch.
    """

    name: str
    body: str
    enable_flag: str | None = None
    auto_disable: bool = False


@dataclass
class Task:
    """A run-to-completion task (serialized against other tasks)."""

    name: str
    body: str


@dataclass
class NescApp:
    """A synthetic nesC application."""

    name: str
    globals: list[tuple[str, int]]
    events: list[Event] = field(default_factory=list)
    tasks: list[Task] = field(default_factory=list)
    functions: str = ""
    locals_decl: str = ""

    # -- compilation -------------------------------------------------------------

    def thread_source(self) -> str:
        """The mini-C source of one thread of the model."""
        lines: list[str] = []
        for name, init in self.globals:
            if init:
                lines.append(f"global int {name} = {init};")
            else:
                lines.append(f"global int {name};")
        if self.tasks:
            lines.append(f"global int {TASK_LOCK};")
        if self.functions:
            lines.append(self.functions)
        lines.append("thread app {")
        if self.locals_decl:
            lines.append(self.locals_decl)
        lines.append("  while (1) {")

        branches: list[str] = []
        for ev in self.events:
            body_lines = []
            if ev.enable_flag is not None:
                if ev.auto_disable:
                    body_lines.append(
                        f"atomic {{ assume({ev.enable_flag} == 1); "
                        f"{ev.enable_flag} = 0; }}"
                    )
                else:
                    body_lines.append(f"assume({ev.enable_flag} == 1);")
            body_lines.append(ev.body)
            branches.append("\n".join(body_lines))
        for task in self.tasks:
            body_lines = [
                f"atomic {{ assume({TASK_LOCK} == 0); {TASK_LOCK} = 1; }}",
                task.body,
                f"{TASK_LOCK} = 0;",
            ]
            branches.append("\n".join(body_lines))

        if not branches:
            branches.append("skip;")
        for i, branch in enumerate(branches):
            head = "if (*) {" if i == 0 else "} else if (*) {"
            if i == len(branches) - 1:
                head = "} else {" if len(branches) > 1 else head
            lines.append(head)
            lines.append(branch)
        lines.append("}")  # close if chain
        lines.append("  }")  # while
        lines.append("}")  # thread
        return "\n".join(lines)

    def cfa(self) -> CFA:
        """Lower the model to a CFA thread template."""
        return lower_source(self.thread_source())

    # -- structural access classification (for the flow baseline) -----------------

    def _body_accesses(self, body: str, in_event: bool):
        """Yield (variable, is_write, in_atomic, in_event) for a body."""
        globals_decl = "".join(
            f"global int {name};" for name, _ in self.globals
        ) + (f"global int {TASK_LOCK};" if self.tasks else "")
        source = (
            globals_decl
            + (self.functions or "")
            + "thread probe {"
            + (self.locals_decl or "")
            + body
            + "}"
        )
        program = parse_program(source)
        functions = {f.name: f for f in program.functions}
        global_names = {name for name, _ in self.globals}

        def walk(stmt, in_atomic: bool, seen: frozenset):
            from ..smt.terms import free_vars

            if isinstance(stmt, A.Block):
                for s in stmt.stmts:
                    yield from walk(s, in_atomic, seen)
            elif isinstance(stmt, A.Atomic):
                yield from walk(stmt.body, True, seen)
            elif isinstance(stmt, A.If):
                for v in free_vars(stmt.cond) & global_names:
                    yield (v, False, in_atomic)
                yield from walk(stmt.then, in_atomic, seen)
                if stmt.els is not None:
                    yield from walk(stmt.els, in_atomic, seen)
            elif isinstance(stmt, A.While):
                for v in free_vars(stmt.cond) & global_names:
                    yield (v, False, in_atomic)
                yield from walk(stmt.body, in_atomic, seen)
            elif isinstance(stmt, (A.Assume, A.Assert)):
                for v in free_vars(stmt.cond) & global_names:
                    yield (v, False, in_atomic)
            elif isinstance(stmt, A.Assign):
                for v in free_vars(stmt.rhs) & global_names:
                    yield (v, False, in_atomic)
                if stmt.lhs in global_names:
                    yield (stmt.lhs, True, in_atomic)
            elif isinstance(stmt, A.LocalDecl):
                if stmt.init is not None:
                    for v in free_vars(stmt.init) & global_names:
                        yield (v, False, in_atomic)
            elif isinstance(stmt, (A.CallStmt, A.AssignCall)):
                for arg in stmt.args:
                    for v in free_vars(arg) & global_names:
                        yield (v, False, in_atomic)
                func = functions.get(stmt.func)
                if func is not None and stmt.func not in seen:
                    yield from walk(
                        func.body, in_atomic, seen | {stmt.func}
                    )
                if isinstance(stmt, A.AssignCall) and stmt.lhs in global_names:
                    yield (stmt.lhs, True, in_atomic)
            elif isinstance(stmt, A.Return):
                if stmt.value is not None:
                    for v in free_vars(stmt.value) & global_names:
                        yield (v, False, in_atomic)
            # Skip/Lock/Unlock/Break: no global data accesses to classify.

        thread = program.thread("probe")
        for (v, w, a) in walk(thread.body, False, frozenset()):
            yield (v, w, a, in_event)

    def access_table(self):
        """All global accesses: (var, is_write, in_atomic, in_event)."""
        rows = []
        for ev in self.events:
            rows.extend(self._body_accesses(ev.body, in_event=True))
        for task in self.tasks:
            rows.extend(self._body_accesses(task.body, in_event=False))
        return rows
