"""nesC/TinyOS substrate: concurrency model and Table 1 application models."""

from .model import Event, NescApp, Task, TASK_LOCK
from .programs import BENCHMARKS, NescBenchmark, TEST_AND_SET_SOURCE, benchmark, benchmarks_for
