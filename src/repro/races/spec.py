"""The race-detection problem (Section 4.1) and a high-level checking API.

A state of the multithreaded program has a *race on x* when two distinct
threads have enabled accesses to ``x``, at least one of them a write, and no
thread occupies an atomic location.  ``Write.i.x`` / ``Read.i.x`` are
location-level: a thread can write (read) ``x`` if some out-edge of its
current location assigns (reads) it.

``check_race`` is the front door of the library: it takes program source or
a CFA and dispatches to the CIRC verifier (sound for unboundedly many
threads) or the explicit-state explorer (exact for a fixed thread count).
"""

from __future__ import annotations


from ..cfa.cfa import CFA
from ..circ.circ import CircBudgetExceeded, CircInconclusive, circ
from ..circ.result import CircResult
from ..exec.interp import ExploreResult, MultiProgram, explore
from ..lang.lower import lower_source

__all__ = [
    "racy_variables",
    "shared_variables",
    "check_race",
    "check_race_bounded",
]


def shared_variables(cfa: CFA) -> frozenset[str]:
    """Globals accessed anywhere in the thread (race candidates)."""
    out: set[str] = set()
    for q in cfa.locations:
        out.update(cfa.accesses_at(q) & cfa.globals)
    return frozenset(out)


def racy_variables(cfa: CFA) -> frozenset[str]:
    """Globals written somewhere (only written variables can race)."""
    out: set[str] = set()
    for q in cfa.locations:
        out.update(cfa.writes_at(q) & cfa.globals)
    return frozenset(out)


def _as_cfa(program: str | CFA, thread: str | None = None) -> CFA:
    if isinstance(program, CFA):
        return program
    return lower_source(program, thread)


def check_race(
    program: str | CFA,
    variable: str,
    thread: str | None = None,
    prefilter: bool = False,
    engine: bool = False,
    cache_dir: str | None = None,
    **circ_options,
) -> CircResult:
    """Prove or refute race freedom on ``variable`` for unboundedly many
    symmetric threads, via the CIRC algorithm.

    ``program`` may be mini-C source text or a lowered CFA.  Keyword options
    are forwarded to :func:`repro.circ.circ` (``variant="omega"`` selects
    the infinity-check optimization, ``k`` the initial counter, ...).

    With ``prefilter=True`` the static pre-analysis
    (:mod:`repro.static`) runs first: when it classifies ``variable`` as
    ``local``, ``read-shared``, or ``protected``, a
    :class:`~repro.static.StaticSafe` proof is returned without invoking
    CIRC at all.  The verdict is unchanged either way -- the pre-analysis
    only prunes variables it can prove safe -- but pruned variables skip
    the whole CEGAR loop.

    With ``engine=True`` the query routes through the verification
    engine (:mod:`repro.engine`): the content-addressed artifact cache
    under ``cache_dir`` answers repeat queries for byte-identical slices
    instantly and warm-starts near-matches from cached predicates.  The
    verdict is unchanged (a cache hit implies an identical lowered
    slice); budget exhaustion (``max_iterations``/``timeout_s``)
    surfaces as a :class:`~repro.circ.result.CircUnknown` instead of an
    exception on both paths.
    """
    cfa = _as_cfa(program, thread)
    if variable not in cfa.globals:
        raise ValueError(f"{variable!r} is not a global of the program")
    if engine:
        from ..engine import verify_one
        from ..static.prefilter import prefilter_check

        if prefilter:
            from ..static.classify import classify

            vv = classify(cfa, [variable]).verdict(variable)
            if vv.prunable:
                return prefilter_check(cfa, variable)
        return verify_one(
            cfa, variable, cache_dir=cache_dir, **circ_options
        )
    if prefilter:
        from ..static.prefilter import prefilter_check

        return prefilter_check(cfa, variable, **circ_options)
    try:
        return circ(cfa, race_on=variable, **circ_options)
    except (CircBudgetExceeded, CircInconclusive) as exc:
        return exc.result


def check_race_bounded(
    program: str | CFA,
    variable: str,
    n_threads: int = 2,
    thread: str | None = None,
    max_states: int = 200_000,
) -> ExploreResult:
    """Exact explicit-state race check for a fixed number of threads."""
    cfa = _as_cfa(program, thread)
    if variable not in cfa.globals:
        raise ValueError(f"{variable!r} is not a global of the program")
    mp = MultiProgram.symmetric(cfa, n_threads)
    return explore(mp, race_on=variable, max_states=max_states)
