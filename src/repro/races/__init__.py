"""Race specification, checking entry points, audits, redundancy analysis."""

from .redundancy import RedundancyFinding, SyncSite, find_redundant_sync
from .report import AuditReport, VariableAudit, audit, render_markdown
from .spec import check_race, check_race_bounded, racy_variables, shared_variables
