"""Markdown audit reports: the Section 6 workflow as a reusable artifact.

``audit`` runs the full pipeline on one thread template -- baseline
checkers first, CIRC on everything they flag (or on every written global)
-- and ``render_markdown`` turns the outcome into a report a reviewer can
read without the tool: per-variable verdicts, the discovered predicates and
context sizes for proofs, and replayed interleavings for races.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..baselines.lockset import lockset_analysis
from ..cfa.cfa import CFA
from ..circ.circ import CircError, circ
from ..circ.result import CircSafe, CircUnsafe
from ..smt.terms import pretty
from .spec import racy_variables

__all__ = [
    "VariableAudit",
    "AuditReport",
    "audit",
    "render_markdown",
    "ReportRow",
    "REPORT_SCHEMA",
    "PRIMARY_SOURCE_PREFIXES",
    "rows_to_payload",
    "render_rows_table",
    "rows_from_static",
    "rows_from_batch",
    "rows_from_portfolio",
    "rows_from_baselines",
]

#: Version tag of the machine-readable row schema shared by
#: ``repro-race static --json`` and ``repro-race batch --json``.
REPORT_SCHEMA = "repro-race/report-v1"

#: Source prefixes of *primary* rows -- the one verdict per query that
#: decides exit codes and shard-merge reconciliation.  Portfolio
#: payloads additionally carry one informational row per attempted
#: analysis (``racer``, ``absint``, ``lockset``, ...), which never
#: shadow a decided query.  ``repro.serve.protocol.exit_code_for`` and
#: ``repro.shard.merge`` both consume this contract.
PRIMARY_SOURCE_PREFIXES = (
    "static",
    "cache",
    "circ",
    "budget",
    "portfolio:",
)


@dataclass(frozen=True)
class ReportRow:
    """One row of the shared machine-readable report schema.

    Every JSON-emitting subcommand reports per-query outcomes in this
    exact shape so downstream tooling parses one format:

    * ``model`` -- program/model name the query belongs to;
    * ``variable`` -- the shared variable checked;
    * ``verdict`` -- ``safe`` | ``race`` | ``unknown``;
    * ``source`` -- which layer produced the verdict (``static``,
      ``cache``, ``circ``, ``circ-warm``, ``portfolio:<analysis>``, or a
      baseline analysis name);
    * ``time_ms`` -- wall-clock spent on this query, milliseconds.
    """

    model: str
    variable: str
    verdict: str
    source: str
    time_ms: float
    detail: str = ""

    def to_obj(self) -> dict:
        return {
            "model": self.model,
            "variable": self.variable,
            "verdict": self.verdict,
            "source": self.source,
            "time_ms": round(self.time_ms, 3),
            "detail": self.detail,
        }


def rows_to_payload(rows, **extra) -> dict:
    """The canonical JSON payload wrapping shared-schema rows."""
    payload = {
        "schema": REPORT_SCHEMA,
        "rows": [r.to_obj() for r in rows],
    }
    payload.update(extra)
    return payload


def render_rows_table(rows) -> str:
    """A fixed-width text table over shared-schema rows."""
    header = f"{'model':24s} {'variable':16s} {'verdict':8s} {'source':10s} {'time':>9s}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.model:24s} {r.variable:16s} {r.verdict:8s} "
            f"{r.source:10s} {r.time_ms:8.1f}ms"
        )
    return "\n".join(lines)


def rows_from_static(report, model: str) -> list[ReportRow]:
    """Shared-schema rows for a static pre-analysis report.

    Prunable verdicts are sound safety proofs (``safe`` / ``static``);
    ``must-check`` means the pre-analysis alone cannot decide, which in
    this schema is exactly an ``unknown`` verdict from the ``static``
    source.
    """
    rows = []
    for name, vv in sorted(report.verdicts.items()):
        rows.append(
            ReportRow(
                model=model,
                variable=name,
                verdict="safe" if vv.prunable else "unknown",
                source="static",
                time_ms=0.0,
                detail=f"{vv.verdict.value}: {vv.reason}",
            )
        )
    return rows


def rows_from_batch(report) -> list[ReportRow]:
    """Shared-schema rows for an engine :class:`~repro.engine.BatchReport`."""
    return [
        ReportRow(
            model=r.model,
            variable=r.variable,
            verdict=r.verdict,
            source=r.source,
            time_ms=r.time_ms,
            detail=r.detail,
        )
        for r in report.rows
    ]


def rows_from_portfolio(report, model: str) -> list[ReportRow]:
    """Shared-schema rows for one portfolio run: the reconciled verdict
    first (source ``portfolio:<winner>``), then one row per analysis so
    the report preserves who ran, who was cancelled, and how long each
    attempt took.  A cancelled analysis reports ``unknown`` -- it made
    no claim -- with the cancellation recorded in ``detail``.
    """
    winner = report.winner or "none"
    rows = [
        ReportRow(
            model=model,
            variable=report.variable,
            verdict=report.verdict,
            source=f"portfolio:{winner}",
            time_ms=report.total_ms,
            detail=f"shape {report.shape}",
        )
    ]
    for o in report.outcomes:
        rows.append(
            ReportRow(
                model=model,
                variable=report.variable,
                verdict="unknown" if o.cancelled else o.verdict,
                source=o.analysis,
                time_ms=o.time_ms,
                detail=o.detail,
            )
        )
    return rows


def rows_from_baselines(
    model: str,
    variable: str,
    racer=None,
    absint=None,
    lockset=None,
    stateless: str | None = None,
) -> list[ReportRow]:
    """Shared-schema rows for the ``baselines`` subcommand.

    The Eraser lockset discipline emits warnings, not verdicts, so its
    row is ``unknown``-on-warn (a warning proves nothing) and ``safe``
    only in the discipline's own limited sense -- the detail string keeps
    the distinction honest.  The racer and absint rows carry real
    verdicts with the standard meaning.
    """
    rows = []
    if racer is not None:
        rows.append(
            ReportRow(
                model=model,
                variable=variable,
                verdict=racer.verdict,
                source="racer",
                time_ms=racer.phase1_ms + racer.phase2_ms,
                detail=racer.reason,
            )
        )
    if absint is not None:
        rows.append(
            ReportRow(
                model=model,
                variable=variable,
                verdict=absint.verdict,
                source="absint",
                time_ms=absint.time_ms,
                detail=absint.reason,
            )
        )
    if lockset is not None:
        warns = lockset.warns_on(variable)
        locks = sorted(lockset.candidate.get(variable, ()))
        rows.append(
            ReportRow(
                model=model,
                variable=variable,
                verdict="unknown" if warns else "safe",
                source="lockset",
                time_ms=0.0,
                detail=(
                    f"{'warns' if warns else 'consistent discipline'}; "
                    f"candidate lockset {locks}"
                ),
            )
        )
    if stateless is not None:
        rows.append(
            ReportRow(
                model=model,
                variable=variable,
                verdict="safe" if stateless == "StatelessSafe" else "unknown",
                source="thread-modular",
                time_ms=0.0,
                detail=stateless,
            )
        )
    return rows


@dataclass
class VariableAudit:
    """The audit outcome for one shared variable."""

    variable: str
    lockset_warns: bool
    candidate_lockset: tuple[str, ...]
    verdict: str  # 'safe' | 'race' | 'undecided'
    elapsed_seconds: float = 0.0
    predicates: tuple = ()
    acfa_size: int = 0
    witness: tuple = ()
    n_threads: int = 0
    detail: str = ""


@dataclass
class AuditReport:
    """A full audit of a thread template."""

    name: str
    variables: list[VariableAudit] = field(default_factory=list)

    @property
    def races(self) -> list[VariableAudit]:
        return [v for v in self.variables if v.verdict == "race"]

    @property
    def proved(self) -> list[VariableAudit]:
        return [v for v in self.variables if v.verdict == "safe"]

    @property
    def false_positives(self) -> list[VariableAudit]:
        """Baseline warnings that CIRC discharged."""
        return [
            v
            for v in self.variables
            if v.lockset_warns and v.verdict == "safe"
        ]


def audit(
    cfa: CFA,
    name: str = "program",
    variables: Iterable[str] | None = None,
    only_flagged: bool = False,
    **circ_options,
) -> AuditReport:
    """Run baselines + CIRC over the shared variables of ``cfa``."""
    lockset = lockset_analysis(cfa)
    targets = sorted(variables) if variables else sorted(racy_variables(cfa))
    report = AuditReport(name=name)
    for var in targets:
        warns = lockset.warns_on(var)
        entry = VariableAudit(
            variable=var,
            lockset_warns=warns,
            candidate_lockset=tuple(sorted(lockset.candidate.get(var, ()))),
            verdict="undecided",
        )
        if only_flagged and not warns:
            entry.verdict = "safe"
            entry.detail = "lock discipline satisfied; CIRC skipped"
            report.variables.append(entry)
            continue
        start = time.perf_counter()
        try:
            result = circ(cfa, race_on=var, **circ_options)
        except CircError as exc:
            entry.detail = str(exc)
            entry.elapsed_seconds = time.perf_counter() - start
            report.variables.append(entry)
            continue
        entry.elapsed_seconds = time.perf_counter() - start
        if isinstance(result, CircSafe):
            entry.verdict = "safe"
            entry.predicates = result.predicates
            entry.acfa_size = result.context.size
        else:
            assert isinstance(result, CircUnsafe)
            entry.verdict = "race"
            entry.witness = tuple(result.steps)
            entry.n_threads = result.n_threads
        report.variables.append(entry)
    return report


def render_markdown(report: AuditReport) -> str:
    """Render an :class:`AuditReport` as a Markdown document."""
    lines = [f"# Race audit: {report.name}", ""]
    lines.append(
        f"{len(report.variables)} shared variable(s) checked; "
        f"{len(report.proved)} proved race-free, "
        f"{len(report.races)} racy, "
        f"{len(report.false_positives)} baseline false positive(s) "
        "discharged."
    )
    lines.append("")
    lines.append("| variable | lockset | CIRC | time | detail |")
    lines.append("|---|---|---|---|---|")
    for v in report.variables:
        lockset = "warns" if v.lockset_warns else "ok"
        if v.verdict == "safe":
            detail = (
                f"{len(v.predicates)} predicates, ACFA {v.acfa_size}"
                if v.acfa_size
                else v.detail or "-"
            )
        elif v.verdict == "race":
            detail = f"witness with {v.n_threads} threads"
        else:
            detail = v.detail or "-"
        lines.append(
            f"| `{v.variable}` | {lockset} | **{v.verdict}** "
            f"| {v.elapsed_seconds:.1f}s | {detail} |"
        )
    for v in report.variables:
        if v.verdict == "safe" and v.predicates:
            lines.append("")
            lines.append(f"## `{v.variable}`: proof artifacts")
            lines.append("")
            lines.append("Discovered predicates:")
            lines.append("")
            for p in v.predicates:
                lines.append(f"- `{pretty(p)}`")
        elif v.verdict == "race":
            lines.append("")
            lines.append(f"## `{v.variable}`: race witness")
            lines.append("")
            lines.append("```")
            for tid, edge in v.witness:
                lines.append(f"T{tid}: {edge.op}")
            lines.append("```")
    lines.append("")
    return "\n".join(lines)
