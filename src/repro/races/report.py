"""Markdown audit reports: the Section 6 workflow as a reusable artifact.

``audit`` runs the full pipeline on one thread template -- baseline
checkers first, CIRC on everything they flag (or on every written global)
-- and ``render_markdown`` turns the outcome into a report a reviewer can
read without the tool: per-variable verdicts, the discovered predicates and
context sizes for proofs, and replayed interleavings for races.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..baselines.lockset import lockset_analysis
from ..cfa.cfa import CFA
from ..circ.circ import CircError, circ
from ..circ.result import CircSafe, CircUnsafe
from ..smt.terms import pretty
from .spec import racy_variables

__all__ = ["VariableAudit", "AuditReport", "audit", "render_markdown"]


@dataclass
class VariableAudit:
    """The audit outcome for one shared variable."""

    variable: str
    lockset_warns: bool
    candidate_lockset: tuple[str, ...]
    verdict: str  # 'safe' | 'race' | 'undecided'
    elapsed_seconds: float = 0.0
    predicates: tuple = ()
    acfa_size: int = 0
    witness: tuple = ()
    n_threads: int = 0
    detail: str = ""


@dataclass
class AuditReport:
    """A full audit of a thread template."""

    name: str
    variables: list[VariableAudit] = field(default_factory=list)

    @property
    def races(self) -> list[VariableAudit]:
        return [v for v in self.variables if v.verdict == "race"]

    @property
    def proved(self) -> list[VariableAudit]:
        return [v for v in self.variables if v.verdict == "safe"]

    @property
    def false_positives(self) -> list[VariableAudit]:
        """Baseline warnings that CIRC discharged."""
        return [
            v
            for v in self.variables
            if v.lockset_warns and v.verdict == "safe"
        ]


def audit(
    cfa: CFA,
    name: str = "program",
    variables: Iterable[str] | None = None,
    only_flagged: bool = False,
    **circ_options,
) -> AuditReport:
    """Run baselines + CIRC over the shared variables of ``cfa``."""
    lockset = lockset_analysis(cfa)
    targets = sorted(variables) if variables else sorted(racy_variables(cfa))
    report = AuditReport(name=name)
    for var in targets:
        warns = lockset.warns_on(var)
        entry = VariableAudit(
            variable=var,
            lockset_warns=warns,
            candidate_lockset=tuple(sorted(lockset.candidate.get(var, ()))),
            verdict="undecided",
        )
        if only_flagged and not warns:
            entry.verdict = "safe"
            entry.detail = "lock discipline satisfied; CIRC skipped"
            report.variables.append(entry)
            continue
        start = time.perf_counter()
        try:
            result = circ(cfa, race_on=var, **circ_options)
        except CircError as exc:
            entry.detail = str(exc)
            entry.elapsed_seconds = time.perf_counter() - start
            report.variables.append(entry)
            continue
        entry.elapsed_seconds = time.perf_counter() - start
        if isinstance(result, CircSafe):
            entry.verdict = "safe"
            entry.predicates = result.predicates
            entry.acfa_size = result.context.size
        else:
            assert isinstance(result, CircUnsafe)
            entry.verdict = "race"
            entry.witness = tuple(result.steps)
            entry.n_threads = result.n_threads
        report.variables.append(entry)
    return report


def render_markdown(report: AuditReport) -> str:
    """Render an :class:`AuditReport` as a Markdown document."""
    lines = [f"# Race audit: {report.name}", ""]
    lines.append(
        f"{len(report.variables)} shared variable(s) checked; "
        f"{len(report.proved)} proved race-free, "
        f"{len(report.races)} racy, "
        f"{len(report.false_positives)} baseline false positive(s) "
        "discharged."
    )
    lines.append("")
    lines.append("| variable | lockset | CIRC | time | detail |")
    lines.append("|---|---|---|---|---|")
    for v in report.variables:
        lockset = "warns" if v.lockset_warns else "ok"
        if v.verdict == "safe":
            detail = (
                f"{len(v.predicates)} predicates, ACFA {v.acfa_size}"
                if v.acfa_size
                else v.detail or "-"
            )
        elif v.verdict == "race":
            detail = f"witness with {v.n_threads} threads"
        else:
            detail = v.detail or "-"
        lines.append(
            f"| `{v.variable}` | {lockset} | **{v.verdict}** "
            f"| {v.elapsed_seconds:.1f}s | {detail} |"
        )
    for v in report.variables:
        if v.verdict == "safe" and v.predicates:
            lines.append("")
            lines.append(f"## `{v.variable}`: proof artifacts")
            lines.append("")
            lines.append("Discovered predicates:")
            lines.append("")
            for p in v.predicates:
                lines.append(f"- `{pretty(p)}`")
        elif v.verdict == "race":
            lines.append("")
            lines.append(f"## `{v.variable}`: race witness")
            lines.append("")
            lines.append("```")
            for tid, edge in v.witness:
                lines.append(f"T{tid}: {edge.op}")
            lines.append("```")
    lines.append("")
    return "\n".join(lines)
