"""Redundant-synchronization detection (the paper's second use case).

Section 1: race detectors "also allow more aggressive programming by
detecting redundant synchronizations (by verifying the safety of the
program without the synchronizations)."  In nesC this matters doubly:
atomic sections are implemented by disabling interrupts, so every
unnecessary one costs responsiveness.

``find_redundant_sync`` enumerates the synchronization constructs of a
program (atomic sections and lock/unlock pairs), removes each in turn, and
re-runs the CIRC verifier: a construct is *redundant for variable x* when
the program remains race-free on x without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circ.circ import CircError, circ
from ..lang import ast as A
from ..lang.lower import lower_thread
from ..lang.parser import parse_program

__all__ = ["SyncSite", "RedundancyFinding", "find_redundant_sync"]


@dataclass(frozen=True)
class SyncSite:
    """One synchronization construct of the program."""

    kind: str  # 'atomic' | 'lock'
    ident: str  # description: source line for atomic, mutex name for locks
    index: int

    def __str__(self) -> str:
        if self.kind == "atomic":
            return f"atomic section #{self.index} (line {self.ident})"
        return f"lock discipline on {self.ident!r}"


@dataclass
class RedundancyFinding:
    """Verdict for one synchronization site."""

    site: SyncSite
    redundant: bool
    detail: str = ""


def _atomic_sites(thread: A.ThreadDef) -> list[A.Atomic]:
    sites: list[A.Atomic] = []

    def walk(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                walk(s)
        elif isinstance(stmt, A.Atomic):
            sites.append(stmt)
            walk(stmt.body)
        elif isinstance(stmt, A.If):
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, A.While):
            walk(stmt.body)

    walk(thread.body)
    return sites


def _mutexes(thread: A.ThreadDef) -> list[str]:
    names: list[str] = []

    def walk(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                walk(s)
        elif isinstance(stmt, A.Lock):
            if stmt.mutex not in names:
                names.append(stmt.mutex)
        elif isinstance(stmt, A.Atomic):
            walk(stmt.body)
        elif isinstance(stmt, A.If):
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, A.While):
            walk(stmt.body)

    walk(thread.body)
    return names


def _strip(
    stmt: A.Stmt, drop_atomic: Optional[A.Atomic], drop_mutex: Optional[str]
) -> A.Stmt:
    """Rebuild ``stmt`` with one synchronization construct removed."""
    if isinstance(stmt, A.Block):
        return A.Block(
            tuple(_strip(s, drop_atomic, drop_mutex) for s in stmt.stmts),
            stmt.line,
        )
    if isinstance(stmt, A.Atomic):
        body = _strip(stmt.body, drop_atomic, drop_mutex)
        if stmt is drop_atomic:
            return body  # unwrap: the body runs preemptibly
        return A.Atomic(body, stmt.line)
    if isinstance(stmt, A.If):
        return A.If(
            stmt.cond,
            _strip(stmt.then, drop_atomic, drop_mutex),
            _strip(stmt.els, drop_atomic, drop_mutex)
            if stmt.els is not None
            else None,
            stmt.line,
        )
    if isinstance(stmt, A.While):
        return A.While(
            stmt.cond, _strip(stmt.body, drop_atomic, drop_mutex), stmt.line
        )
    if isinstance(stmt, (A.Lock, A.Unlock)) and stmt.mutex == drop_mutex:
        return A.Skip(stmt.line)
    return stmt


def find_redundant_sync(
    source: str,
    variable: str,
    thread: str | None = None,
    use_prefilter: bool = True,
    **circ_options,
) -> list[RedundancyFinding]:
    """Which synchronization constructs are unnecessary for race freedom
    on ``variable``?

    The baseline program must itself verify; otherwise a ValueError is
    raised (redundancy is only meaningful relative to a correct program).

    With ``use_prefilter`` (the default), each stripped variant is first
    classified by the static pre-analysis (:mod:`repro.static`): when the
    variable stays ``protected`` (or better) without the construct -- the
    remaining synchronization alone discharges it -- the site is reported
    redundant without re-running CIRC.  Only removals that leave the
    variable ``must-check`` pay for a full verification.
    """
    from ..static.classify import classify

    program = parse_program(source)
    tdef = program.thread(thread)

    def static_verdict(cfa):
        if not use_prefilter or variable not in cfa.globals:
            return None
        vv = classify(cfa, [variable]).verdict(variable)
        return vv if vv.prunable else None

    base_cfa = lower_thread(program, tdef.name)
    if static_verdict(base_cfa) is None:
        baseline = circ(base_cfa, race_on=variable, **circ_options)
        if not baseline.safe:
            raise ValueError(
                f"the program already races on {variable!r}; "
                "redundancy analysis needs a race-free baseline"
            )

    findings: list[RedundancyFinding] = []

    def check_variant(site: SyncSite, drop_atomic, drop_mutex) -> None:
        stripped_threads = tuple(
            A.ThreadDef(
                t.name,
                _strip(t.body, drop_atomic, drop_mutex),
                t.line,
            )
            if t.name == tdef.name
            else t
            for t in program.threads
        )
        stripped_functions = tuple(
            A.Function(
                f.name,
                f.params,
                f.returns_value,
                _strip(f.body, drop_atomic, drop_mutex),
                f.line,
            )
            for f in program.functions
        )
        variant = A.Program(
            program.globals, stripped_functions, stripped_threads
        )
        variant_cfa = lower_thread(variant, tdef.name)
        vv = static_verdict(variant_cfa)
        if vv is not None:
            findings.append(
                RedundancyFinding(
                    site,
                    True,
                    f"statically {vv.verdict.value} without it "
                    "(no CIRC run needed)",
                )
            )
            return
        try:
            result = circ(
                variant_cfa,
                race_on=variable,
                **circ_options,
            )
        except CircError as exc:
            findings.append(
                RedundancyFinding(site, False, f"undecided: {exc}")
            )
            return
        if result.safe:
            findings.append(
                RedundancyFinding(
                    site,
                    True,
                    "program remains race-free without it",
                )
            )
        else:
            findings.append(
                RedundancyFinding(
                    site,
                    False,
                    f"removal introduces a race "
                    f"({result.n_threads}-thread witness)",
                )
            )

    for i, atomic in enumerate(_atomic_sites(tdef)):
        site = SyncSite("atomic", str(atomic.line), i)
        check_variant(site, atomic, None)
    for i, mutex in enumerate(_mutexes(tdef)):
        site = SyncSite("lock", mutex, i)
        check_variant(site, None, mutex)
    return findings
