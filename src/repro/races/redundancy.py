"""Redundant-synchronization detection (the paper's second use case).

Section 1: race detectors "also allow more aggressive programming by
detecting redundant synchronizations (by verifying the safety of the
program without the synchronizations)."  In nesC this matters doubly:
atomic sections are implemented by disabling interrupts, so every
unnecessary one costs responsiveness.

``find_redundant_sync`` enumerates the synchronization constructs of a
program (atomic sections and lock/unlock pairs), removes each in turn, and
re-runs the CIRC verifier: a construct is *redundant for variable x* when
the program remains race-free on x without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circ.circ import CircError, circ
from ..lang import ast as A
from ..lang.lower import lower_thread
from ..lang.parser import parse_program

__all__ = ["SyncSite", "RedundancyFinding", "find_redundant_sync"]


@dataclass(frozen=True)
class SyncSite:
    """One synchronization construct of the program."""

    kind: str  # 'atomic' | 'lock'
    ident: str  # description: source line for atomic, mutex name for locks
    index: int

    def __str__(self) -> str:
        if self.kind == "atomic":
            return f"atomic section #{self.index} (line {self.ident})"
        return f"lock discipline on {self.ident!r}"


@dataclass
class RedundancyFinding:
    """Verdict for one synchronization site."""

    site: SyncSite
    redundant: bool
    detail: str = ""


def _atomic_sites(thread: A.ThreadDef) -> list[A.Atomic]:
    sites: list[A.Atomic] = []

    def walk(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                walk(s)
        elif isinstance(stmt, A.Atomic):
            sites.append(stmt)
            walk(stmt.body)
        elif isinstance(stmt, A.If):
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, A.While):
            walk(stmt.body)

    walk(thread.body)
    return sites


def _mutexes(thread: A.ThreadDef) -> list[str]:
    names: list[str] = []

    def walk(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                walk(s)
        elif isinstance(stmt, A.Lock):
            if stmt.mutex not in names:
                names.append(stmt.mutex)
        elif isinstance(stmt, A.Atomic):
            walk(stmt.body)
        elif isinstance(stmt, A.If):
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, A.While):
            walk(stmt.body)

    walk(thread.body)
    return names


def _strip(
    stmt: A.Stmt, drop_atomic: Optional[A.Atomic], drop_mutex: Optional[str]
) -> A.Stmt:
    """Rebuild ``stmt`` with one synchronization construct removed."""
    if isinstance(stmt, A.Block):
        return A.Block(
            tuple(_strip(s, drop_atomic, drop_mutex) for s in stmt.stmts),
            stmt.line,
        )
    if isinstance(stmt, A.Atomic):
        body = _strip(stmt.body, drop_atomic, drop_mutex)
        if stmt is drop_atomic:
            return body  # unwrap: the body runs preemptibly
        return A.Atomic(body, stmt.line)
    if isinstance(stmt, A.If):
        return A.If(
            stmt.cond,
            _strip(stmt.then, drop_atomic, drop_mutex),
            _strip(stmt.els, drop_atomic, drop_mutex)
            if stmt.els is not None
            else None,
            stmt.line,
        )
    if isinstance(stmt, A.While):
        return A.While(
            stmt.cond, _strip(stmt.body, drop_atomic, drop_mutex), stmt.line
        )
    if isinstance(stmt, (A.Lock, A.Unlock)) and stmt.mutex == drop_mutex:
        return A.Skip(stmt.line)
    return stmt


def _variant_program(
    program: A.Program,
    tdef: A.ThreadDef,
    drop_atomic: Optional[A.Atomic],
    drop_mutex: Optional[str],
) -> A.Program:
    """The whole program with one synchronization construct removed."""
    stripped_threads = tuple(
        A.ThreadDef(
            t.name,
            _strip(t.body, drop_atomic, drop_mutex),
            t.line,
        )
        if t.name == tdef.name
        else t
        for t in program.threads
    )
    stripped_functions = tuple(
        A.Function(
            f.name,
            f.params,
            f.returns_value,
            _strip(f.body, drop_atomic, drop_mutex),
            f.line,
        )
        for f in program.functions
    )
    return A.Program(program.globals, stripped_functions, stripped_threads)


def _sync_sites(tdef: A.ThreadDef) -> list[tuple[SyncSite, object, object]]:
    """Every synchronization site with its (drop_atomic, drop_mutex) key."""
    sites: list[tuple[SyncSite, object, object]] = []
    for i, atomic in enumerate(_atomic_sites(tdef)):
        sites.append((SyncSite("atomic", str(atomic.line), i), atomic, None))
    for i, mutex in enumerate(_mutexes(tdef)):
        sites.append((SyncSite("lock", mutex, i), None, mutex))
    return sites


def _find_redundant_engine(
    program: A.Program,
    tdef: A.ThreadDef,
    variable: str,
    use_prefilter: bool,
    cache_dir: str | None,
    workers: int | None,
    circ_options: dict,
) -> list[RedundancyFinding]:
    """Engine-backed redundancy audit: one batch over every variant.

    The baseline and all stripped variants go through a single
    :func:`repro.engine.run_batch` call, so variants whose slices for
    ``variable`` are byte-identical (removals that never touch its
    accesses) deduplicate to one CIRC run, and repeat audits answer
    from the artifact cache.
    """
    from ..engine import BatchItem, run_batch
    from ..lang.unparse import unparse

    sites = _sync_sites(tdef)
    items = [
        BatchItem(
            model="baseline",
            source=unparse(program),
            thread=tdef.name,
            variables=(variable,),
        )
    ]
    for n, (_, drop_atomic, drop_mutex) in enumerate(sites):
        variant = _variant_program(program, tdef, drop_atomic, drop_mutex)
        items.append(
            BatchItem(
                model=f"variant-{n}",
                source=unparse(variant),
                thread=tdef.name,
                variables=(variable,),
            )
        )

    report = run_batch(
        items,
        cache_dir=cache_dir,
        workers=workers,
        prefilter=use_prefilter,
        **circ_options,
    )
    by_model = {row.model: row for row in report.rows}

    baseline = by_model["baseline"]
    if baseline.verdict != "safe":
        raise ValueError(
            f"the program already races on {variable!r}; "
            "redundancy analysis needs a race-free baseline"
            if baseline.verdict == "race"
            else f"baseline verification undecided: {baseline.detail}"
        )

    findings: list[RedundancyFinding] = []
    for n, (site, _, _) in enumerate(sites):
        row = by_model[f"variant-{n}"]
        if row.verdict == "safe":
            detail = (
                f"statically safe without it ({row.detail}; "
                "no CIRC run needed)"
                if row.source == "static"
                else "program remains race-free without it"
            )
            findings.append(RedundancyFinding(site, True, detail))
        elif row.verdict == "race":
            n_threads = getattr(row.result, "n_threads", 0)
            findings.append(
                RedundancyFinding(
                    site,
                    False,
                    f"removal introduces a race "
                    f"({n_threads}-thread witness)",
                )
            )
        else:
            findings.append(
                RedundancyFinding(site, False, f"undecided: {row.detail}")
            )
    return findings


def find_redundant_sync(
    source: str,
    variable: str,
    thread: str | None = None,
    use_prefilter: bool = True,
    engine: bool = False,
    cache_dir: str | None = None,
    workers: int | None = None,
    **circ_options,
) -> list[RedundancyFinding]:
    """Which synchronization constructs are unnecessary for race freedom
    on ``variable``?

    The baseline program must itself verify; otherwise a ValueError is
    raised (redundancy is only meaningful relative to a correct program).

    With ``use_prefilter`` (the default), each stripped variant is first
    classified by the static pre-analysis (:mod:`repro.static`): when the
    variable stays ``protected`` (or better) without the construct -- the
    remaining synchronization alone discharges it -- the site is reported
    redundant without re-running CIRC.  Only removals that leave the
    variable ``must-check`` pay for a full verification.

    With ``engine=True`` the baseline and every stripped variant are
    submitted as one batch to the verification engine
    (:mod:`repro.engine`): variants whose relevant slices coincide are
    verified once, verdicts persist in the artifact cache under
    ``cache_dir``, and independent variants run in parallel over
    ``workers`` processes.
    """
    from ..static.classify import classify

    program = parse_program(source)
    tdef = program.thread(thread)

    if engine:
        return _find_redundant_engine(
            program,
            tdef,
            variable,
            use_prefilter,
            cache_dir,
            workers,
            circ_options,
        )

    def static_verdict(cfa):
        if not use_prefilter or variable not in cfa.globals:
            return None
        vv = classify(cfa, [variable]).verdict(variable)
        return vv if vv.prunable else None

    base_cfa = lower_thread(program, tdef.name)
    if static_verdict(base_cfa) is None:
        baseline = circ(base_cfa, race_on=variable, **circ_options)
        if not baseline.safe:
            raise ValueError(
                f"the program already races on {variable!r}; "
                "redundancy analysis needs a race-free baseline"
            )

    findings: list[RedundancyFinding] = []

    def check_variant(site: SyncSite, drop_atomic, drop_mutex) -> None:
        variant = _variant_program(program, tdef, drop_atomic, drop_mutex)
        variant_cfa = lower_thread(variant, tdef.name)
        vv = static_verdict(variant_cfa)
        if vv is not None:
            findings.append(
                RedundancyFinding(
                    site,
                    True,
                    f"statically {vv.verdict.value} without it "
                    "(no CIRC run needed)",
                )
            )
            return
        try:
            result = circ(
                variant_cfa,
                race_on=variable,
                **circ_options,
            )
        except CircError as exc:
            findings.append(
                RedundancyFinding(site, False, f"undecided: {exc}")
            )
            return
        if result.safe:
            findings.append(
                RedundancyFinding(
                    site,
                    True,
                    "program remains race-free without it",
                )
            )
        else:
            findings.append(
                RedundancyFinding(
                    site,
                    False,
                    f"removal introduces a race "
                    f"({result.n_threads}-thread witness)",
                )
            )

    for site, drop_atomic, drop_mutex in _sync_sites(tdef):
        check_variant(site, drop_atomic, drop_mutex)
    return findings
