"""Counter abstraction for unboundedly many context threads (Section 3.4).

The number of abstract threads at each ACFA location is tracked exactly up
to the parameter ``k`` and as ``OMEGA`` beyond, with the paper's saturating
arithmetic::

    k + 1 = OMEGA        OMEGA + 1 = OMEGA        OMEGA - 1 = OMEGA

A context state ``G`` maps every ACFA location to a counter value; it is
represented as a tuple indexed by location for hashability.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

__all__ = ["OMEGA", "CounterValue", "counter_inc", "counter_dec", "ContextState"]


class _Omega:
    """The 'arbitrarily many threads' counter value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "OMEGA"

    def __reduce__(self):
        return (_Omega, ())


OMEGA = _Omega()

CounterValue = int | _Omega


def counter_inc(value: CounterValue, k: int) -> CounterValue:
    """Saturating increment: values beyond ``k`` become OMEGA."""
    if value is OMEGA:
        return OMEGA
    if value + 1 > k:
        return OMEGA
    return value + 1


def counter_dec(value: CounterValue) -> CounterValue:
    """Saturating decrement: OMEGA - 1 = OMEGA."""
    if value is OMEGA:
        return OMEGA
    if value <= 0:
        raise ValueError("cannot decrement a zero counter")
    return value - 1


class ContextState:
    """An abstract context state ``G : Q_A -> {0..k, OMEGA}``.

    Immutable value object; location indices follow the ACFA's location ids
    (assumed dense from 0, as produced by collapse/empty_acfa).
    """

    __slots__ = ("counts",)

    def __init__(self, counts: Sequence[CounterValue]):
        object.__setattr__(self, "counts", tuple(counts))

    def __setattr__(self, *a):
        raise AttributeError("ContextState is immutable")

    @classmethod
    def initial_omega(
        cls, n_locations: int, q0: int | Iterable[int]
    ) -> "ContextState":
        """Arbitrarily many threads at each start location (CIRC).

        ``q0`` may be a single entry (symmetric programs) or an iterable of
        entries (one unbounded pool per thread template)."""
        counts: list[CounterValue] = [0] * n_locations
        for q in ([q0] if isinstance(q0, int) else q0):
            counts[q] = OMEGA
        return cls(counts)

    @classmethod
    def initial_exact(
        cls, n_locations: int, q0: int | Iterable[int], k: int
    ) -> "ContextState":
        """Exactly ``k`` context threads at each start (the infinity-check
        optimization of Section 5 runs reachability with this start)."""
        counts: list[CounterValue] = [0] * n_locations
        for q in ([q0] if isinstance(q0, int) else q0):
            counts[q] = k
        return cls(counts)

    def count(self, q: int) -> CounterValue:
        return self.counts[q]

    def occupied(self) -> Iterator[int]:
        """Locations with at least one thread."""
        for q, v in enumerate(self.counts):
            if v is OMEGA or v > 0:
                yield q

    def at_least_two(self, q: int) -> bool:
        v = self.counts[q]
        return v is OMEGA or v >= 2

    def move(self, src: int, dst: int, k: int) -> "ContextState":
        """One thread moves from ``src`` to ``dst`` (paper's post)."""
        counts = list(self.counts)
        counts[src] = counter_dec(counts[src])
        counts[dst] = counter_inc(counts[dst], k)
        return ContextState(counts)

    def __eq__(self, other):
        return isinstance(other, ContextState) and self.counts == other.counts

    def __hash__(self):
        return hash(self.counts)

    def __repr__(self):
        parts = []
        for q, v in enumerate(self.counts):
            if v is OMEGA:
                parts.append(f"{q}:w")
            elif v:
                parts.append(f"{q}:{v}")
        return "{" + ", ".join(parts) + "}"
