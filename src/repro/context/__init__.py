"""Context abstraction: counters and abstract multithreaded program states."""

from .counters import OMEGA, ContextState, counter_dec, counter_inc
from .state import AbsState, AbstractProgram, CtxMove, MainMove
