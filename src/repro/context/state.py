"""Abstract program states and the abstract transition relation
(Section 3.4: abstract multithreaded programs).

An abstract state is ``((pc, region), G)``: the main thread's control
location and abstract data region, plus the counter-abstracted context
state.  The scheduler follows the paper exactly:

* if no occupied (abstract) location is atomic, every occupied location's
  operations are enabled;
* if exactly one is atomic, only its operations are enabled;
* more than one atomic location cannot become occupied from a non-atomic
  start.

``post`` implements both transition kinds: main CFA operations (strongest
postcondition + context invariant) and context ACFA havoc moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..acfa.acfa import Acfa, AcfaEdge
from ..cfa.cfa import CFA, Edge
from ..predabs.abstractor import Abstractor
from ..predabs.region import Region
from ..smt import terms as T
from .counters import ContextState

__all__ = ["AbsState", "MainMove", "CtxMove", "AbstractProgram"]


@dataclass(frozen=True)
class AbsState:
    """((pc, region), G) -- immutable and hashable."""

    pc: int
    region: Region
    context: ContextState

    def thread_state(self) -> tuple[int, Region]:
        return (self.pc, self.region)


@dataclass(frozen=True)
class MainMove:
    """The main thread takes a CFA edge."""

    edge: Edge


@dataclass(frozen=True)
class CtxMove:
    """A context thread takes an ACFA havoc edge."""

    edge: AcfaEdge


Move = MainMove | CtxMove


class AbstractProgram:
    """The abstract multithreaded program ((C, P), (A, k))."""

    def __init__(
        self,
        cfa: CFA,
        abstractor: Abstractor,
        acfa: Acfa,
        k: int,
    ):
        self.cfa = cfa
        self.abstractor = abstractor
        self.acfa = acfa
        self.k = k
        self._n_acfa_locs = max(self.acfa.locations) + 1

    # -- initial state -----------------------------------------------------------

    def initial(self, omega_start: bool = True) -> AbsState:
        region = self.abstractor.initial_region(
            self.cfa.global_init, self.cfa.variables
        )
        if omega_start:
            ctx = ContextState.initial_omega(
                self._n_acfa_locs, self.acfa.entries
            )
        else:
            ctx = ContextState.initial_exact(
                self._n_acfa_locs, self.acfa.entries, self.k
            )
        return AbsState(self.cfa.q0, region, ctx)

    # -- scheduling ----------------------------------------------------------------

    def atomic_locations(self, state: AbsState) -> list[tuple[str, int]]:
        """Occupied atomic locations, tagged 'main'/'ctx' (the set AL)."""
        out: list[tuple[str, int]] = []
        if self.cfa.is_atomic(state.pc):
            out.append(("main", state.pc))
        for q in state.context.occupied():
            if self.acfa.is_atomic(q):
                out.append(("ctx", q))
        return out

    def enabled_moves(self, state: AbsState) -> Iterator[Move]:
        al = self.atomic_locations(state)
        if len(al) > 1:
            return
        if len(al) == 1:
            kind, loc = al[0]
            if kind == "main":
                for e in self.cfa.out(state.pc):
                    yield MainMove(e)
            else:
                for e in self.acfa.out(loc):
                    yield CtxMove(e)
            return
        for e in self.cfa.out(state.pc):
            yield MainMove(e)
        for q in state.context.occupied():
            for e in self.acfa.out(q):
                yield CtxMove(e)

    # -- context invariant ------------------------------------------------------------

    def context_invariant(self, ctx: ContextState) -> list[T.Term]:
        """The conjunction of labels of occupied ACFA locations."""
        inv: list[T.Term] = []
        for q in ctx.occupied():
            inv.extend(self.acfa.label[q])
        return inv

    # -- the abstract post operator -----------------------------------------------------

    def post(self, state: AbsState, move: Move) -> AbsState | None:
        """Abstract successor; None when the successor region is empty.

        Location labels act at *move time*: a context move is guarded by
        its source label and constrains its successor with its target label
        (the ACFA transition relation of Section 3.3).  Labels of parked
        threads do not constrain other threads' moves -- soundness comes
        from the ARG's Union over environment edges, which makes the labels
        validated by the guarantee check interference-closed.
        """
        if isinstance(move, MainMove):
            edge = move.edge
            region = self.abstractor.post_op(state.region, edge.op)
            if region.is_bottom():
                return None
            return AbsState(edge.dst, region, state.context)
        if isinstance(move, CtxMove):
            edge = move.edge
            new_ctx = state.context.move(edge.src, edge.dst, self.k)
            region = self.abstractor.post_havoc(
                state.region,
                edge.havoc,
                self.acfa.label[edge.dst],
                source_label=self.acfa.label[edge.src],
            )
            if region.is_bottom():
                return None
            return AbsState(state.pc, region, new_ctx)
        raise TypeError(f"unknown move {move!r}")

    # -- the race predicate (Section 4.1, lifted to abstract states) ------------------

    def is_race_state(self, state: AbsState, x: str) -> bool:
        """Two distinct threads have enabled accesses to ``x``, at least one
        a write, and no occupied location is atomic.

        Abstract context threads only write (havoc); their reads are empty,
        so context-context races need two writers.
        """
        if self.atomic_locations(state):
            return False
        main_writes = self.cfa.may_write(state.pc, x)
        main_accesses = self.cfa.may_access(state.pc, x)
        ctx_writers = [
            q for q in state.context.occupied() if self.acfa.may_write(q, x)
        ]
        # main writer + context writer (write-write)
        if main_writes and ctx_writers:
            return True
        # context writer + main reader/writer
        if ctx_writers and main_accesses:
            return True
        # two distinct context writers
        if len(ctx_writers) >= 2:
            return True
        if len(ctx_writers) == 1 and state.context.at_least_two(ctx_writers[0]):
            return True
        return False
