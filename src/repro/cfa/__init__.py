"""Control flow automata and their semantic operations."""

from .cfa import CFA, AssignOp, AssumeOp, Edge, Op
from .ops import SsaBuilder, TraceStep, sp, trace_formula, wp
