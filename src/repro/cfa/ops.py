"""Semantic operations on CFA edges: strongest postcondition, weakest
precondition, and SSA-style trace formulas.

The strongest postcondition is used by predicate abstraction; the weakest
precondition drives the default predicate-mining strategy of the refinement
procedure; trace formulas (Figure 5 of the paper) decide the feasibility of
concretized interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..smt import terms as T
from .cfa import AssignOp, AssumeOp, Op

__all__ = [
    "sp",
    "wp",
    "SsaBuilder",
    "TraceStep",
    "trace_formula",
]


def sp(phi: T.Term, op: Op, fresh: str = "__old") -> T.Term:
    """Strongest postcondition of ``phi`` under ``op``.

    For ``x := e``::

        sp(phi, x := e)  =  exists x0. phi[x0/x] and x == e[x0/x]

    The existential is expressed by introducing the fresh variable ``x0``
    (named ``lhs + fresh``); callers that need a quantifier-free region
    should eliminate it (the predicate abstractor does so via projection).
    For ``[p]``::

        sp(phi, [p])  =  phi and p
    """
    if isinstance(op, AssumeOp):
        return T.and_(phi, op.pred)
    if isinstance(op, AssignOp):
        old = op.lhs + fresh
        phi0 = T.substitute(phi, {op.lhs: T.var(old)})
        rhs0 = T.substitute(op.rhs, {op.lhs: T.var(old)})
        return T.and_(phi0, T.eq(T.var(op.lhs), rhs0))
    raise TypeError(f"unknown op {op!r}")


def wp(phi: T.Term, op: Op) -> T.Term:
    """Weakest precondition of ``phi`` under ``op``.

    ``wp(phi, x := e) = phi[e/x]``;  ``wp(phi, [p]) = p -> phi`` (we use the
    stronger ``p and phi`` variant for predicate mining, which corresponds
    to the feasible branch).
    """
    if isinstance(op, AssumeOp):
        return T.and_(op.pred, phi)
    if isinstance(op, AssignOp):
        return T.substitute(phi, {op.lhs: op.rhs})
    raise TypeError(f"unknown op {op!r}")


@dataclass(frozen=True)
class TraceStep:
    """One operation of an interleaved trace.

    ``thread`` identifies which thread executes; thread 0 is the main
    thread by convention.
    """

    thread: int
    op: Op


class SsaBuilder:
    """Static-single-assignment renaming for interleaved traces.

    Globals share one version counter across all threads (they are written
    in interleaved order); locals are versioned per thread and prefixed with
    the thread id so distinct threads' locals never collide.
    """

    SEP = "$"

    def __init__(self, globals_: Iterable[str]):
        self.globals = frozenset(globals_)
        self._version: dict[str, int] = {}

    def _base(self, thread: int, name: str) -> str:
        if name in self.globals:
            return name
        return f"t{thread}{self.SEP}{name}"

    def current(self, thread: int, name: str) -> str:
        base = self._base(thread, name)
        v = self._version.get(base, 0)
        return f"{base}{self.SEP}{v}"

    def bump(self, thread: int, name: str) -> str:
        base = self._base(thread, name)
        v = self._version.get(base, 0) + 1
        self._version[base] = v
        return f"{base}{self.SEP}{v}"

    def rename_term(self, thread: int, term: T.Term) -> T.Term:
        mapping = {
            name: T.var(self.current(thread, name))
            for name in T.free_vars(term)
        }
        return T.substitute(term, mapping)

    @staticmethod
    def unrename(name: str) -> str:
        """Map an SSA variable back to its program name."""
        base = name.rsplit(SsaBuilder.SEP, 1)[0]
        if SsaBuilder.SEP in base:
            # local: strip the thread prefix
            base = base.split(SsaBuilder.SEP, 1)[1]
        return base

    @staticmethod
    def unrename_term(term: T.Term) -> T.Term:
        mapping = {
            name: T.var(SsaBuilder.unrename(name))
            for name in T.free_vars(term)
        }
        return T.substitute(term, mapping)


def trace_formula(
    steps: Sequence[TraceStep], globals_: Iterable[str]
) -> tuple[list[T.Term], SsaBuilder]:
    """Build the trace formula of an interleaved trace (paper Figure 5).

    Returns one clause per step (the conjunction is the TF) and the SSA
    builder used, so callers can map model values or interpolants back to
    program variables.
    """
    ssa = SsaBuilder(globals_)
    clauses: list[T.Term] = []
    for step in steps:
        op = step.op
        if isinstance(op, AssumeOp):
            clauses.append(ssa.rename_term(step.thread, op.pred))
        elif isinstance(op, AssignOp):
            rhs = ssa.rename_term(step.thread, op.rhs)
            lhs = ssa.bump(step.thread, op.lhs)
            clauses.append(T.eq(T.var(lhs), rhs))
        else:
            raise TypeError(f"unknown op {op!r}")
    return clauses, ssa
