"""Control Flow Automata (Section 3.2 of the paper).

A CFA is a finite graph whose edges carry operations -- assignments
``x := e`` or assume predicates ``[p]`` -- and whose locations may be marked
*atomic*: when any thread of the multithreaded program sits at an atomic
location, only that thread is scheduled (the semantics of nesC ``atomic``
sections).

Variables are partitioned into globals (shared between all threads) and
locals (per-thread copies, renamed ``x$i`` for thread ``i`` when the
multithreaded program is built).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..smt.terms import Term, free_vars, pretty

__all__ = ["AssignOp", "AssumeOp", "Op", "Edge", "CFA"]


@dataclass(frozen=True)
class AssignOp:
    """The operation ``lhs := rhs``."""

    lhs: str
    rhs: Term

    def reads(self) -> frozenset[str]:
        return free_vars(self.rhs)

    def writes(self) -> frozenset[str]:
        return frozenset({self.lhs})

    def __str__(self) -> str:
        return f"{self.lhs} := {pretty(self.rhs)}"


@dataclass(frozen=True)
class AssumeOp:
    """The operation ``[pred]``: enabled only when ``pred`` holds."""

    pred: Term

    def reads(self) -> frozenset[str]:
        return free_vars(self.pred)

    def writes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"[{pretty(self.pred)}]"


Op = AssignOp | AssumeOp


@dataclass(frozen=True)
class Edge:
    """A CFA edge ``src --op--> dst``.

    ``lock_info`` tags edges produced by lock/unlock desugaring so the
    lockset baseline can recognize them: ``("acquire", m)``/``("release", m)``.
    """

    src: int
    op: Op
    dst: int
    lock_info: Optional[tuple[str, str]] = None

    def __str__(self) -> str:
        return f"{self.src} --{self.op}--> {self.dst}"


class CFA:
    """A control flow automaton.

    Attributes:
        name: diagnostic name (thread name).
        q0: the start location.
        locations: all locations.
        atomic: the atomic locations (``Q*`` in the paper).
        error_locations: targets of failed assertions.
        globals: shared variable names.
        locals: thread-local variable names (including function-inlined
            temporaries).
    """

    def __init__(
        self,
        name: str,
        q0: int,
        locations: Iterable[int],
        edges: Iterable[Edge],
        atomic: Iterable[int] = (),
        error_locations: Iterable[int] = (),
        globals_: Iterable[str] = (),
        locals_: Iterable[str] = (),
        global_init: dict[str, int] | None = None,
    ):
        self.name = name
        self.q0 = q0
        self.locations = frozenset(locations)
        self.edges = tuple(edges)
        self.atomic = frozenset(atomic)
        self.error_locations = frozenset(error_locations)
        self.globals = frozenset(globals_)
        self.locals = frozenset(locals_)
        #: Initial values of globals (paper default: everything starts 0).
        self.global_init = {g: 0 for g in self.globals}
        if global_init:
            unknown = set(global_init) - self.globals
            if unknown:
                raise ValueError(f"init for unknown globals {sorted(unknown)}")
            self.global_init.update(global_init)
        self._out: dict[int, tuple[Edge, ...]] = {}
        self._in: dict[int, tuple[Edge, ...]] = {}
        out: dict[int, list[Edge]] = {q: [] for q in self.locations}
        inc: dict[int, list[Edge]] = {q: [] for q in self.locations}
        for e in self.edges:
            out[e.src].append(e)
            inc[e.dst].append(e)
        self._out = {q: tuple(es) for q, es in out.items()}
        self._in = {q: tuple(es) for q, es in inc.items()}
        self.validate()

    # -- structure -----------------------------------------------------------

    def out(self, q: int) -> tuple[Edge, ...]:
        """Out-edges of location ``q``."""
        return self._out[q]

    def into(self, q: int) -> tuple[Edge, ...]:
        """In-edges of location ``q``."""
        return self._in[q]

    @property
    def variables(self) -> frozenset[str]:
        return self.globals | self.locals

    def is_atomic(self, q: int) -> bool:
        return q in self.atomic

    def validate(self) -> None:
        """Check well-formedness; raises ValueError on violations."""
        if self.q0 not in self.locations:
            raise ValueError("start location not in location set")
        if self.q0 in self.atomic:
            raise ValueError(
                "the start location must not be atomic (paper Section 2.1)"
            )
        for e in self.edges:
            if e.src not in self.locations or e.dst not in self.locations:
                raise ValueError(f"edge {e} mentions unknown location")
            used = e.op.reads() | e.op.writes()
            unknown = used - self.variables
            if unknown:
                raise ValueError(
                    f"edge {e} uses undeclared variables {sorted(unknown)}"
                )
        overlap = self.globals & self.locals
        if overlap:
            raise ValueError(f"variables both global and local: {sorted(overlap)}")

    # -- access sets (Section 4.1) ----------------------------------------------

    def writes_at(self, q: int) -> frozenset[str]:
        """Variables some out-edge of ``q`` may write."""
        vs: set[str] = set()
        for e in self.out(q):
            vs.update(e.op.writes())
        return frozenset(vs)

    def reads_at(self, q: int) -> frozenset[str]:
        """Variables some out-edge of ``q`` may read."""
        vs: set[str] = set()
        for e in self.out(q):
            vs.update(e.op.reads())
        return frozenset(vs)

    def accesses_at(self, q: int) -> frozenset[str]:
        return self.writes_at(q) | self.reads_at(q)

    def may_write(self, q: int, x: str) -> bool:
        """Does location ``q`` have an enabled operation writing ``x``?"""
        return x in self.writes_at(q)

    def may_access(self, q: int, x: str) -> bool:
        return x in self.writes_at(q) or x in self.reads_at(q)

    # -- rendering -----------------------------------------------------------------

    def __str__(self) -> str:
        lines = [f"CFA {self.name} (start {self.q0})"]
        for q in sorted(self.locations):
            marks = []
            if q in self.atomic:
                marks.append("atomic")
            if q in self.error_locations:
                marks.append("error")
            suffix = f"  ({', '.join(marks)})" if marks else ""
            lines.append(f"  loc {q}{suffix}")
            for e in self.out(q):
                lines.append(f"    --{e.op}--> {e.dst}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering for debugging and documentation."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for q in sorted(self.locations):
            shape = "doublecircle" if q == self.q0 else "circle"
            style = ', style=filled, fillcolor="#ffdddd"' if q in self.atomic else ""
            label = f"{q}*" if q in self.atomic else str(q)
            lines.append(f'  n{q} [label="{label}", shape={shape}{style}];')
        for e in self.edges:
            text = str(e.op).replace('"', '\\"')
            lines.append(f'  n{e.src} -> n{e.dst} [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)
