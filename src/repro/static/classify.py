"""Shared-variable classification: the verdict lattice of the pre-analysis.

Every global of the thread template gets one of four verdicts, ordered by
how much work remains for the heavyweight checker:

* ``local`` -- never accessed at any reachable location: the variable is
  dead to this template (a thread-local or unused global) and cannot race;
* ``read-shared`` -- accessed but never written: a race needs a write;
* ``protected`` -- written, but every location pair that could witness a
  race (two accesses, one a write) is killed by the MHP analysis: an
  atomic member, or a common must-held monitor;
* ``must-check`` -- everything else; only these are handed to CIRC.

Soundness of pruning (why a skipped variable cannot hide a race): a race
on ``x`` is a reachable state where two distinct threads have enabled
accesses to ``x``, one a write, and no thread occupies an atomic location
(Section 4.1).  Such a state exhibits a location pair ``(q1, q2)`` with an
access at each side and a write at one -- exactly a *conflicting pair*.
``local`` and ``read-shared`` verdicts mean no conflicting pair exists at
all; ``protected`` means every one is refuted by a sound impossibility
argument (reachability, single-occupancy of atomic locations, or monitor
mutual exclusion as proved in :mod:`repro.static.protect`).  No conflicting
pair, no race state: the verdict implies the same ``SAFE`` answer CIRC
would return, without constructing a context.  The converse direction is
deliberately absent -- ``must-check`` never claims a race, it only refuses
to rule one out -- so the pipeline can only lose speed, never precision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from ..baselines.lockset import ATOMIC_LOCK
from ..cfa.cfa import CFA
from .mhp import MhpReport, mhp_analysis
from .protect import Monitor, infer_monitors

__all__ = ["Verdict", "VariableVerdict", "StaticReport", "classify"]


class Verdict(str, enum.Enum):
    """The per-variable verdict lattice, weakest knowledge last."""

    LOCAL = "local"
    READ_SHARED = "read-shared"
    PROTECTED = "protected"
    MUST_CHECK = "must-check"


@dataclass(frozen=True)
class VariableVerdict:
    """The classification of one global, with its evidence."""

    variable: str
    verdict: Verdict
    reason: str
    read_sites: tuple[int, ...] = ()
    write_sites: tuple[int, ...] = ()
    #: Monitors held at *every* access site (Eraser-style common lockset);
    #: may be empty even for ``protected`` -- pairwise exclusion suffices.
    protectors: tuple[str, ...] = ()
    #: Surviving conflicting pairs (non-empty iff ``must-check``).
    racing_pairs: tuple[tuple[int, int], ...] = ()

    @property
    def prunable(self) -> bool:
        """May the heavyweight checker skip this variable?"""
        return self.verdict is not Verdict.MUST_CHECK

    def __str__(self) -> str:
        return f"{self.variable}: {self.verdict.value} ({self.reason})"


@dataclass
class StaticReport:
    """The pre-analysis result for one thread template."""

    cfa_name: str
    verdicts: dict[str, VariableVerdict]
    monitors: tuple[Monitor, ...]
    mhp: MhpReport

    def verdict(self, variable: str) -> VariableVerdict:
        return self.verdicts[variable]

    @property
    def must_check(self) -> tuple[str, ...]:
        """The variables that still need CIRC, sorted."""
        return tuple(
            sorted(
                v.variable
                for v in self.verdicts.values()
                if not v.prunable
            )
        )

    @property
    def pruned(self) -> tuple[str, ...]:
        """The variables discharged statically, sorted."""
        return tuple(
            sorted(
                v.variable for v in self.verdicts.values() if v.prunable
            )
        )

    def counts(self) -> dict[str, int]:
        """Verdict-class histogram (benchmark and CLI summary lines)."""
        out = {v.value: 0 for v in Verdict}
        for vv in self.verdicts.values():
            out[vv.verdict.value] += 1
        return out

    def __str__(self) -> str:
        lines = [f"static pre-analysis of {self.cfa_name!r}"]
        if self.monitors:
            mons = ", ".join(str(m) for m in self.monitors)
            lines.append(f"  monitors: {mons}")
        width = max((len(v) for v in self.verdicts), default=0)
        for name in sorted(self.verdicts):
            vv = self.verdicts[name]
            lines.append(
                f"  {name:<{width}s}  {vv.verdict.value:<12s} {vv.reason}"
            )
        c = self.counts()
        lines.append(
            "  summary: "
            + ", ".join(f"{c[v.value]} {v.value}" for v in Verdict)
            + f" -> {len(self.must_check)}/{len(self.verdicts)} need CIRC"
        )
        return "\n".join(lines)


def _common_protectors(
    mhp: MhpReport, sites: Iterable[int]
) -> tuple[str, ...]:
    common: frozenset[str] | None = None
    for q in sites:
        held = mhp.held[q]
        common = held if common is None else common & held
    return tuple(sorted(common or ()))


def classify(
    cfa: CFA, variables: Iterable[str] | None = None
) -> StaticReport:
    """Classify ``variables`` (default: every global) of the template.

    One monitor-inference and one MHP run are shared across all variables,
    so classifying a whole program costs little more than one variable.
    """
    monitors = infer_monitors(cfa)
    mhp = mhp_analysis(cfa, monitors)
    if variables is None:
        variables = sorted(cfa.globals)
    else:
        variables = sorted(variables)
        unknown = set(variables) - cfa.globals
        if unknown:
            raise ValueError(
                f"not globals of the program: {sorted(unknown)}"
            )

    verdicts: dict[str, VariableVerdict] = {}
    for x in variables:
        read_sites = tuple(
            sorted(
                q
                for q in mhp.reachable
                if x in cfa.reads_at(q)
            )
        )
        write_sites = tuple(
            sorted(
                q
                for q in mhp.reachable
                if x in cfa.writes_at(q)
            )
        )
        access_sites = tuple(sorted(set(read_sites) | set(write_sites)))
        if not access_sites:
            verdicts[x] = VariableVerdict(
                x,
                Verdict.LOCAL,
                "never accessed at a reachable location",
            )
            continue
        if not write_sites:
            verdicts[x] = VariableVerdict(
                x,
                Verdict.READ_SHARED,
                f"read-only: {len(read_sites)} read sites, no writes",
                read_sites=read_sites,
            )
            continue
        pairs = tuple(mhp.conflicting_pairs(cfa, x))
        protectors = _common_protectors(mhp, access_sites)
        if not pairs:
            if protectors:
                what = ", ".join(
                    "atomic sections" if p == ATOMIC_LOCK else f"monitor {p!r}"
                    for p in protectors
                )
                reason = f"every access holds {what}"
            else:
                reason = (
                    "every conflicting access pair is excluded "
                    "(atomic sections / pairwise monitors)"
                )
            verdicts[x] = VariableVerdict(
                x,
                Verdict.PROTECTED,
                reason,
                read_sites=read_sites,
                write_sites=write_sites,
                protectors=protectors,
            )
            continue
        verdicts[x] = VariableVerdict(
            x,
            Verdict.MUST_CHECK,
            f"{len(pairs)} co-enabled conflicting access pair(s)",
            read_sites=read_sites,
            write_sites=write_sites,
            protectors=protectors,
            racing_pairs=pairs,
        )
    return StaticReport(
        cfa_name=cfa.name,
        verdicts=verdicts,
        monitors=monitors,
        mhp=mhp,
    )
