"""The prefilter driver: static verdicts in front of the CIRC pipeline.

``prefilter_check`` is the fast path behind
``repro.races.check_race(..., prefilter=True)``: classify the variable,
return a :class:`StaticSafe` proof immediately when the verdict is
prunable, and fall through to :func:`repro.circ.circ` only for
``must-check`` variables.  ``StaticSafe`` quacks like
:class:`~repro.circ.result.CircSafe` (``safe``, ``predicates``,
``context``, ``stats``) so every downstream consumer -- the CLI, audits,
redundancy analysis -- handles both transparently; its empty context is
honest, since the proof needed no environment abstraction at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..acfa.acfa import empty_acfa
from ..cfa.cfa import CFA
from ..circ.circ import circ
from ..circ.result import CircResult, CircSafe, CircStats
from .classify import StaticReport, Verdict, classify

__all__ = ["StaticSafe", "prefilter_check"]


@dataclass
class StaticSafe(CircSafe):
    """Race freedom discharged by the static pre-analysis alone.

    A drop-in :class:`~repro.circ.result.CircSafe` with no predicates and
    the empty context, annotated with the verdict that justified pruning.
    """

    static_verdict: Verdict = Verdict.PROTECTED
    reason: str = ""

    def __str__(self) -> str:
        return (
            f"SAFE: no race on {self.variable!r}\n"
            f"  proved statically: {self.static_verdict.value} "
            f"-- {self.reason}\n"
            f"  (no CIRC run needed)"
        )


def prefilter_check(
    cfa: CFA,
    variable: str,
    report: StaticReport | None = None,
    **circ_options,
) -> CircResult:
    """Check race freedom on ``variable``, pruning statically when sound.

    ``report`` lets callers checking many variables share one
    classification run (see ``repro-race check --all``).
    """
    start = time.perf_counter()
    if report is None:
        report = classify(cfa, [variable])
    vv = report.verdict(variable)
    if vv.prunable:
        stats = CircStats(
            elapsed_seconds=time.perf_counter() - start
        )
        return StaticSafe(
            variable=variable,
            predicates=(),
            context=empty_acfa(),
            stats=stats,
            static_verdict=vv.verdict,
            reason=vv.reason,
        )
    return circ(cfa, race_on=variable, **circ_options)
