"""Sound static pre-analysis: classify shared variables before CIRC runs.

CIRC pays the full CEGAR price -- predicate discovery, ARG construction,
simulation checks -- for every variable it is pointed at, including ones
that trivially cannot race.  This package is the cheap sound pass in front
of it:

* :mod:`protect` -- monitor inference (tagged ``lock()`` mutexes and
  atomic test-and-set flags) plus must-held and dominator reasoning;
* :mod:`mhp` -- may-happen-in-parallel over location pairs, with atomic
  regions and inferred monitors as kill-sets;
* :mod:`classify` -- the per-variable verdict lattice
  ``{local, read-shared, protected, must-check}``;
* :mod:`prefilter` -- the driver that feeds only ``must-check`` variables
  into :func:`repro.circ.circ`.

Entry points: :func:`classify` for a whole-program report,
:func:`prefilter_check` (or ``check_race(..., prefilter=True)``) for one
variable, and ``repro-race static FILE`` on the command line.
"""

from .classify import StaticReport, VariableVerdict, Verdict, classify
from .mhp import MhpReport, mhp_analysis
from .prefilter import StaticSafe, prefilter_check
from .protect import (
    Monitor,
    dominators,
    held_locks,
    infer_monitors,
    protecting_acquisition,
    reachable_locations,
)

__all__ = [
    "StaticReport",
    "VariableVerdict",
    "Verdict",
    "classify",
    "MhpReport",
    "mhp_analysis",
    "StaticSafe",
    "prefilter_check",
    "Monitor",
    "dominators",
    "held_locks",
    "infer_monitors",
    "protecting_acquisition",
    "reachable_locations",
]
